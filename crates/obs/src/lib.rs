//! Zero-dependency metrics and run-accounting.
//!
//! The instrumented crates (`noisy-simplex`, `mw-framework`, `repro-bench`)
//! record what happened during a run — decision-site outcomes, gate checks,
//! queue depths, bytes on the wire — into a shared [`MetricsRegistry`].
//! Handles ([`Counter`], [`TimeAccumulator`], [`Gauge`], [`Histogram`]) are
//! `Arc`-backed and lock-free on the hot path: the registry's lock is taken
//! only at registration time, never per increment.
//!
//! A registry snapshot serializes to JSON or CSV with no external
//! dependencies; see [`MetricsRegistry::to_json`] / [`MetricsRegistry::to_csv`].

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An accumulator for non-negative durations (virtual or wall-clock time),
/// stored as `f64` bits in an atomic for lock-free concurrent adds.
#[derive(Debug, Default)]
pub struct TimeAccumulator {
    bits: AtomicU64,
}

impl TimeAccumulator {
    /// An accumulator starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `dt` (same unit the caller consistently uses — seconds or
    /// virtual-time units).
    pub fn add(&self, dt: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + dt).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current total.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A high-water-mark gauge: records the maximum value ever observed.
#[derive(Debug, Default)]
pub struct Gauge {
    max: AtomicU64,
}

impl Gauge {
    /// A gauge whose high-water mark starts at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an observation, raising the high-water mark if it exceeds it.
    pub fn record(&self, v: u64) {
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// The largest value recorded so far.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }
}

/// Number of log-2 buckets in a [`Histogram`] (covers 1 .. 2^63).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A log-2-bucketed histogram of `u64` observations.
///
/// Observation `v` lands in bucket `floor(log2(v)) + 1`; zero lands in
/// bucket 0. Concurrent `observe` calls are lock-free.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn observe(&self, v: u64) {
        let idx = if v == 0 {
            0
        } else {
            (64 - v.leading_zeros()) as usize
        };
        self.buckets[idx.min(HISTOGRAM_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean observed value (zero when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Per-bucket counts, as `(bucket_lower_bound, count)` for non-empty
    /// buckets.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                if c == 0 {
                    return None;
                }
                let lo = if i == 0 { 0 } else { 1u64 << (i - 1) };
                Some((lo, c))
            })
            .collect()
    }
}

/// One registered metric handle.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Time(Arc<TimeAccumulator>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A snapshot of one metric's value at export time.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A counter's current count.
    Counter(u64),
    /// A time accumulator's total.
    Time(f64),
    /// A gauge's high-water mark.
    Gauge(u64),
    /// A histogram's `(count, sum, non-empty buckets)`.
    Histogram {
        /// Total observations.
        count: u64,
        /// Sum of observed values.
        sum: u64,
        /// `(bucket_lower_bound, count)` pairs for non-empty buckets.
        buckets: Vec<(u64, u64)>,
    },
}

/// A named collection of metrics, shared across threads.
///
/// Names are dotted paths (`"pc.site.c3.resampled"`). Registration is
/// get-or-create: asking twice for the same name returns the same handle, so
/// independent components can contribute to one metric.
///
/// # Panics
/// Re-registering a name as a *different* metric kind panics — that is
/// always a programming error.
#[derive(Debug, Default, Clone)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn entry(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut map = self.inner.lock().unwrap();
        map.entry(name.to_string()).or_insert_with(make).clone()
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.entry(name, || Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} already registered as {other:?}, wanted counter"),
        }
    }

    /// Get or create the time accumulator named `name`.
    pub fn time(&self, name: &str) -> Arc<TimeAccumulator> {
        match self.entry(name, || Metric::Time(Arc::new(TimeAccumulator::new()))) {
            Metric::Time(t) => t,
            other => panic!("metric {name:?} already registered as {other:?}, wanted time"),
        }
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.entry(name, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} already registered as {other:?}, wanted gauge"),
        }
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match self.entry(name, || Metric::Histogram(Arc::new(Histogram::new()))) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} already registered as {other:?}, wanted histogram"),
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot every metric's current value, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        let map = self.inner.lock().unwrap();
        map.iter()
            .map(|(name, m)| {
                let v = match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Time(t) => MetricValue::Time(t.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.max()),
                    Metric::Histogram(h) => MetricValue::Histogram {
                        count: h.count(),
                        sum: h.sum(),
                        buckets: h.nonzero_buckets(),
                    },
                };
                (name.clone(), v)
            })
            .collect()
    }

    /// Serialize the current snapshot as a JSON object keyed by metric name.
    ///
    /// Counters and gauges become integers, time accumulators become floats,
    /// histograms become `{"count": .., "sum": .., "buckets": [[lo, n], ..]}`.
    pub fn to_json(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::from("{\n");
        for (i, (name, v)) in snap.iter().enumerate() {
            out.push_str("  ");
            push_json_string(&mut out, name);
            out.push_str(": ");
            match v {
                MetricValue::Counter(n) | MetricValue::Gauge(n) => {
                    out.push_str(&n.to_string());
                }
                MetricValue::Time(t) => out.push_str(&format_json_f64(*t)),
                MetricValue::Histogram {
                    count,
                    sum,
                    buckets,
                } => {
                    out.push_str(&format!(
                        "{{\"count\": {count}, \"sum\": {sum}, \"buckets\": ["
                    ));
                    for (j, (lo, n)) in buckets.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        out.push_str(&format!("[{lo}, {n}]"));
                    }
                    out.push_str("]}");
                }
            }
            if i + 1 < snap.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push('}');
        out
    }

    /// Serialize the current snapshot as CSV with header
    /// `metric,kind,value` (histograms export count, sum, and mean rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("metric,kind,value\n");
        for (name, v) in self.snapshot() {
            match v {
                MetricValue::Counter(n) => {
                    out.push_str(&format!("{},counter,{}\n", csv_field(&name), n));
                }
                MetricValue::Time(t) => {
                    out.push_str(&format!(
                        "{},time,{}\n",
                        csv_field(&name),
                        format_json_f64(t)
                    ));
                }
                MetricValue::Gauge(n) => {
                    out.push_str(&format!("{},gauge,{}\n", csv_field(&name), n));
                }
                MetricValue::Histogram { count, sum, .. } => {
                    let mean = if count == 0 {
                        0.0
                    } else {
                        sum as f64 / count as f64
                    };
                    out.push_str(&format!("{}.count,histogram,{}\n", csv_field(&name), count));
                    out.push_str(&format!("{}.sum,histogram,{}\n", csv_field(&name), sum));
                    out.push_str(&format!(
                        "{}.mean,histogram,{}\n",
                        csv_field(&name),
                        format_json_f64(mean)
                    ));
                }
            }
        }
        out
    }
}

/// Render an `f64` in a JSON-safe way (`NaN`/`inf` have no JSON encoding, so
/// they export as `null`).
fn format_json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // Bare integers like "3" are valid JSON numbers; keep them as-is.
        s
    } else {
        "null".to_string()
    }
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// A minimal JSON value parser used by tests and exporter consumers to
/// round-trip [`MetricsRegistry::to_json`] output without serde.
pub mod json {
    use std::collections::BTreeMap;

    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any JSON number.
        Number(f64),
        /// A string.
        String(String),
        /// An array.
        Array(Vec<Value>),
        /// An object.
        Object(BTreeMap<String, Value>),
    }

    impl Value {
        /// The numeric value, if this is a number.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Number(n) => Some(*n),
                _ => None,
            }
        }

        /// The integer value, if this is a whole number.
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
                _ => None,
            }
        }

        /// The object map, if this is an object.
        pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
            match self {
                Value::Object(m) => Some(m),
                _ => None,
            }
        }

        /// Look up a key in an object.
        pub fn get(&self, key: &str) -> Option<&Value> {
            self.as_object().and_then(|m| m.get(key))
        }
    }

    /// Parse a JSON document.
    pub fn parse(input: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
            {
                self.pos += 1;
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!(
                    "expected {:?} at byte {}, found {:?}",
                    b as char,
                    self.pos,
                    self.peek().map(|c| c as char)
                ))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Value::String(self.string()?)),
                Some(b't') => self.literal("true", Value::Bool(true)),
                Some(b'f') => self.literal("false", Value::Bool(false)),
                Some(b'n') => self.literal("null", Value::Null),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
                other => Err(format!(
                    "unexpected {:?} at byte {}",
                    other.map(|c| c as char),
                    self.pos
                )),
            }
        }

        fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(v)
            } else {
                Err(format!("invalid literal at byte {}", self.pos))
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| {
                b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-')
            }) {
                self.pos += 1;
            }
            std::str::from_utf8(&self.bytes[start..self.pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(Value::Number)
                .ok_or_else(|| format!("invalid number at byte {start}"))
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'u') => {
                                let hex = self
                                    .bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                    16,
                                )
                                .map_err(|e| e.to_string())?;
                                out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                                self.pos += 4;
                            }
                            other => {
                                return Err(format!("bad escape {:?}", other.map(|c| c as char)))
                            }
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar (may span multiple bytes).
                        let rest = std::str::from_utf8(&self.bytes[self.pos..])
                            .map_err(|e| e.to_string())?;
                        let c = rest.chars().next().unwrap();
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Array(items));
                    }
                    other => {
                        return Err(format!(
                            "expected , or ] found {:?}",
                            other.map(|c| c as char)
                        ))
                    }
                }
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut map = BTreeMap::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Object(map));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                let v = self.value()?;
                map.insert(key, v);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Object(map));
                    }
                    other => {
                        return Err(format!(
                            "expected , or }} found {:?}",
                            other.map(|c| c as char)
                        ))
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.record(3);
        g.record(9);
        g.record(7);
        assert_eq!(g.max(), 9);
    }

    #[test]
    fn time_accumulator_adds() {
        let t = TimeAccumulator::new();
        t.add(1.5);
        t.add(2.25);
        assert_eq!(t.get(), 3.75);
    }

    #[test]
    fn histogram_buckets_and_mean() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 8, 1024] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1038);
        assert!((h.mean() - 173.0).abs() < 1.0);
        let buckets = h.nonzero_buckets();
        // 0 -> bucket lo 0; 1 -> lo 1; 2,3 -> lo 2; 8 -> lo 8; 1024 -> lo 1024.
        assert_eq!(buckets, vec![(0, 1), (1, 1), (2, 2), (8, 1), (1024, 1)]);
    }

    #[test]
    fn registry_get_or_create_shares_handles() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x.events");
        let b = reg.counter("x.events");
        a.inc();
        b.inc();
        assert_eq!(reg.counter("x.events").get(), 2);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn registry_kind_conflict_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("dual");
        reg.gauge("dual");
    }

    #[test]
    fn json_export_parses_back() {
        let reg = MetricsRegistry::new();
        reg.counter("a.count").add(42);
        reg.time("a.seconds").add(1.25);
        reg.gauge("a.depth").record(17);
        reg.histogram("a.sizes").observe(100);
        let doc = json::parse(&reg.to_json()).expect("exporter output must be valid JSON");
        assert_eq!(doc.get("a.count").and_then(|v| v.as_u64()), Some(42));
        assert_eq!(doc.get("a.seconds").and_then(|v| v.as_f64()), Some(1.25));
        assert_eq!(doc.get("a.depth").and_then(|v| v.as_u64()), Some(17));
        let h = doc.get("a.sizes").unwrap();
        assert_eq!(h.get("count").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(h.get("sum").and_then(|v| v.as_u64()), Some(100));
    }

    #[test]
    fn csv_export_has_header_and_rows() {
        let reg = MetricsRegistry::new();
        reg.counter("n").add(3);
        reg.histogram("h").observe(4);
        let csv = reg.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "metric,kind,value");
        assert!(lines.contains(&"n,counter,3"));
        assert!(lines.contains(&"h.count,histogram,1"));
        assert!(lines.contains(&"h.sum,histogram,4"));
        assert!(lines.contains(&"h.mean,histogram,4"));
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        let reg = MetricsRegistry::new();
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let reg = reg.clone();
                s.spawn(move || {
                    let c = reg.counter("contended.count");
                    let t = reg.time("contended.seconds");
                    let g = reg.gauge("contended.depth");
                    let h = reg.histogram("contended.sizes");
                    for i in 0..per_thread {
                        c.inc();
                        t.add(0.001);
                        g.record(i);
                        h.observe(i);
                    }
                });
            }
        });
        let total = threads as u64 * per_thread;
        assert_eq!(reg.counter("contended.count").get(), total);
        assert_eq!(reg.gauge("contended.depth").max(), per_thread - 1);
        assert_eq!(reg.histogram("contended.sizes").count(), total);
        let t = reg.time("contended.seconds").get();
        assert!((t - total as f64 * 0.001).abs() < 1e-6, "time drifted: {t}");
    }

    #[test]
    fn json_parser_rejects_garbage() {
        assert!(json::parse("{\"a\": }").is_err());
        assert!(json::parse("[1, 2,]").is_err());
        assert!(json::parse("{} trailing").is_err());
    }
}
