//! `nsx-sched` — a multi-run scheduling service for the stochastic-simplex
//! engine.
//!
//! Historically a run *owned* its sampling pool: `Det::run` (and friends)
//! drove a closed loop that monopolized whatever backend the config built.
//! This crate inverts that ownership for multi-tenant workloads:
//!
//! * [`Scheduler`] admits runs ([`RunSpec`]: objective, driver, priority,
//!   fair-share weight) and time-slices them in ticks of
//!   [`SchedConfig::quantum`] simplex rounds over at most
//!   [`SchedConfig::width`] resident runs, picking by minimum weighted
//!   virtual runtime.
//! * [`FleetBackend`] is the shared sampling service: each tick it merges
//!   the concurrent runs' sampling rounds into single batches on one inner
//!   [`SamplingBackend`](stoch_eval::backend::SamplingBackend) — one
//!   dispatch per rendezvous instead of one per run.
//! * Preemption uses the checkpoint codec: a suspended run becomes bytes in
//!   memory (or a per-run file via
//!   [`CheckpointConfig::for_run`](noisy_simplex::checkpoint::CheckpointConfig::for_run))
//!   and later resumes bit-identically, on the fleet or on any other
//!   backend.
//!
//! The load-bearing invariant, asserted by this crate's tests and CI's
//! `service_scaleup` exhibit: **a run's result is bit-identical whether it
//! ran alone, time-sliced against 999 neighbours, or was preempted and
//! resumed mid-flight.**
//!
//! Configuration comes from [`SchedConfig`] or the `NSX_SCHED` environment
//! variable (`width=N:quantum=R`).

#![warn(missing_docs)]

pub mod config;
pub mod fleet;
pub mod scheduler;

pub use config::SchedConfig;
pub use fleet::{FleetBackend, FleetTicket};
pub use scheduler::{RunSpec, Scheduler};

#[cfg(test)]
mod tests {
    use super::*;
    use noisy_simplex::config::{BackendChoice, ConfigError, SimplexConfig};
    use noisy_simplex::result::RunResult;
    use noisy_simplex::session::{Driver, RunSession};
    use noisy_simplex::termination::Termination;
    use std::sync::Arc;
    use stoch_eval::backend::SerialBackend;
    use stoch_eval::clock::TimeMode;
    use stoch_eval::functions::Rosenbrock;
    use stoch_eval::noise::ConstantNoise;
    use stoch_eval::sampler::Noisy;

    fn serial_cfg() -> SimplexConfig {
        SimplexConfig {
            backend: BackendChoice::Serial,
            ..SimplexConfig::default()
        }
    }

    fn term(iters: u64) -> Termination {
        Termination {
            tolerance: None,
            max_time: None,
            max_iterations: Some(iters),
        }
    }

    fn init(seed: u64) -> Vec<Vec<f64>> {
        noisy_simplex::init::random_uniform(2, -4.0, 4.0, seed)
    }

    fn assert_bit_identical(solo: &RunResult, svc: &RunResult, what: &str) {
        assert_eq!(solo.best_point, svc.best_point, "{what}: best_point");
        assert_eq!(
            solo.best_observed.to_bits(),
            svc.best_observed.to_bits(),
            "{what}: best_observed"
        );
        assert_eq!(solo.iterations, svc.iterations, "{what}: iterations");
        assert_eq!(
            solo.elapsed.to_bits(),
            svc.elapsed.to_bits(),
            "{what}: elapsed"
        );
        assert_eq!(
            solo.total_sampling.to_bits(),
            svc.total_sampling.to_bits(),
            "{what}: total_sampling"
        );
        assert_eq!(solo.stop, svc.stop, "{what}: stop reason");
        assert_eq!(
            solo.trace.points().len(),
            svc.trace.points().len(),
            "{what}: trace length"
        );
    }

    #[test]
    fn interleaved_runs_match_solo_bitwise_with_preemption() {
        let obj = Noisy::new(Rosenbrock::new(2), ConstantNoise(10.0));
        let drivers = [
            Driver::Det,
            Driver::Mn(Default::default()),
            Driver::Pc(Default::default()),
            Driver::PcMn(Default::default(), Default::default()),
        ];

        // Solo baselines, one closed loop each on a serial backend.
        let solos: Vec<RunResult> = drivers
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                RunSession::new(
                    &obj,
                    init(100 + i as u64),
                    serial_cfg(),
                    term(30),
                    TimeMode::Parallel,
                    i as u64,
                    d,
                )
                .run_to_completion()
            })
            .collect();

        // Width 2 over 4 ready runs forces preemption every tick.
        let mut sched = Scheduler::new(
            SchedConfig {
                width: 2,
                quantum: 3,
            },
            Arc::new(SerialBackend),
        );
        for (i, &d) in drivers.iter().enumerate() {
            sched
                .admit(
                    RunSpec::new(
                        &obj,
                        init(100 + i as u64),
                        serial_cfg(),
                        term(30),
                        TimeMode::Parallel,
                        i as u64,
                        d,
                    )
                    .priority((i as i32) - 1)
                    .weight(1.0 + i as f64),
                )
                .unwrap();
        }
        sched.run();

        let svc = sched.service_registry();
        assert!(
            svc.counter("sched.preemptions").get() > 0,
            "width 2 over 4 runs must preempt"
        );
        assert_eq!(svc.counter("sched.runs_completed").get(), 4);

        for (i, solo) in solos.iter().enumerate() {
            let run_reg = sched.run_registry(i as u64).unwrap();
            assert!(run_reg.counter("sched.run.rounds").get() > 0);
            let got = sched.result(i as u64).unwrap();
            assert_bit_identical(solo, got, &format!("driver {i}"));
        }
    }

    #[test]
    fn uncontended_runs_stay_resident() {
        let obj = Noisy::new(Rosenbrock::new(2), ConstantNoise(1.0));
        let mut sched = Scheduler::new(
            SchedConfig {
                width: 4,
                quantum: 2,
            },
            Arc::new(SerialBackend),
        );
        for s in 0..3u64 {
            sched
                .admit(RunSpec::new(
                    &obj,
                    init(s),
                    serial_cfg(),
                    term(10),
                    TimeMode::Parallel,
                    s,
                    Driver::Det,
                ))
                .unwrap();
        }
        sched.run();
        assert_eq!(
            sched.service_registry().counter("sched.preemptions").get(),
            0,
            "no contention, no preemption"
        );
        assert_eq!(
            sched
                .service_registry()
                .counter("sched.runs_completed")
                .get(),
            3
        );
    }

    #[test]
    fn customized_runs_get_dedicated_backends_and_still_match_solo() {
        use mw_framework::{FaultPlan, RetryPolicy};
        let obj = Noisy::new(Rosenbrock::new(2), ConstantNoise(5.0));
        // A chaos config: worker faults + retry tweaks. The scheduler must
        // isolate it on its own backend, not the shared fleet.
        let chaos_cfg = SimplexConfig {
            backend: BackendChoice::Threaded { workers: 2 },
            faults: Some(FaultPlan::none().kill(0, 7)),
            retry: RetryPolicy {
                max_attempts: 3,
                ..RetryPolicy::default()
            },
            ..SimplexConfig::default()
        };
        assert!(chaos_cfg.customized());

        let solo = RunSession::new(
            &obj,
            init(7),
            chaos_cfg.clone(),
            term(15),
            TimeMode::Parallel,
            7,
            Driver::Det,
        )
        .run_to_completion();

        let mut sched = Scheduler::new(
            SchedConfig {
                width: 1,
                quantum: 2,
            },
            Arc::new(SerialBackend),
        );
        let chaos_id = sched
            .admit(RunSpec::new(
                &obj,
                init(7),
                chaos_cfg,
                term(15),
                TimeMode::Parallel,
                7,
                Driver::Det,
            ))
            .unwrap();
        let calm_id = sched
            .admit(RunSpec::new(
                &obj,
                init(8),
                serial_cfg(),
                term(15),
                TimeMode::Parallel,
                8,
                Driver::Det,
            ))
            .unwrap();
        sched.run();

        let calm_solo = RunSession::new(
            &obj,
            init(8),
            serial_cfg(),
            term(15),
            TimeMode::Parallel,
            8,
            Driver::Det,
        )
        .run_to_completion();
        assert_bit_identical(&solo, sched.result(chaos_id).unwrap(), "chaos run");
        assert_bit_identical(&calm_solo, sched.result(calm_id).unwrap(), "calm run");
    }

    #[test]
    fn budget_exhausted_run_is_quarantined_then_readmitted_bit_identically() {
        use mw_framework::FaultPlan;
        use noisy_simplex::result::RunNote;
        let obj = Noisy::new(Rosenbrock::new(2), ConstantNoise(6.0));
        // Hostile environment: the sole worker dies after 2 jobs and the
        // respawn budget is zero, so the dedicated backend degrades almost
        // immediately. The scheduler must evict the run rather than let it
        // limp along serially in a fleet slot.
        let chaos_cfg = SimplexConfig {
            backend: BackendChoice::Threaded { workers: 1 },
            faults: Some(FaultPlan::none().kill(0, 2)),
            respawn_budget: Some(0),
            ..SimplexConfig::default()
        };
        assert!(chaos_cfg.customized());

        // The reference answer is a clean solo run: quarantine + readmit
        // must be invisible in the result bits.
        let clean_solo = RunSession::new(
            &obj,
            init(21),
            serial_cfg(),
            term(15),
            TimeMode::Parallel,
            21,
            Driver::Det,
        )
        .run_to_completion();

        let mut sched = Scheduler::new(
            SchedConfig {
                width: 1,
                quantum: 2,
            },
            Arc::new(SerialBackend),
        );
        let doomed = sched
            .admit(RunSpec::new(
                &obj,
                init(21),
                chaos_cfg,
                term(15),
                TimeMode::Parallel,
                21,
                Driver::Det,
            ))
            .unwrap();
        let calm = sched
            .admit(RunSpec::new(
                &obj,
                init(22),
                serial_cfg(),
                term(15),
                TimeMode::Parallel,
                22,
                Driver::Det,
            ))
            .unwrap();
        sched.run();

        // The calm run finished; the doomed run is parked, not finished.
        assert!(sched.result(calm).is_some());
        assert!(sched.result(doomed).is_none());
        assert_eq!(sched.quarantined(), vec![doomed]);
        assert!(
            sched
                .service_registry()
                .counter("sched.runs.quarantined")
                .get()
                >= 1
        );
        // Readmission strips the chaos and resumes on the shared fleet.
        assert!(sched.readmit(doomed));
        assert!(!sched.readmit(doomed), "readmit is one-shot");
        sched.run();
        let got = sched.result(doomed).expect("readmitted run finishes");
        assert!(got.notes.contains(&RunNote::Quarantined));
        assert_bit_identical(&clean_solo, got, "quarantined run");
    }

    #[test]
    fn nested_dispatch_is_refused_at_admission() {
        use mw_framework::{MwObjective, MwPool, ThreadedBackend};
        let pool = Arc::new(MwPool::new(2));
        let inner = Noisy::new(Rosenbrock::new(2), ConstantNoise(1.0));
        let obj = MwObjective::new(inner, Arc::clone(&pool));
        // The fleet dispatches on the same pool the objective ships to:
        // admitting this run must fail with the typed error, not deadlock.
        let mut sched: Scheduler<MwObjective<Noisy<Rosenbrock, ConstantNoise>>> = Scheduler::new(
            SchedConfig::default(),
            Arc::new(ThreadedBackend::over(Arc::clone(&pool))),
        );
        let err = sched
            .admit(RunSpec::new(
                &obj,
                init(1),
                serial_cfg(),
                term(5),
                TimeMode::Parallel,
                1,
                Driver::Det,
            ))
            .unwrap_err();
        assert_eq!(err, ConfigError::NestedDispatch);
        let _ = pool.shutdown();
    }

    #[test]
    fn weights_skew_round_shares() {
        let obj = Noisy::new(Rosenbrock::new(2), ConstantNoise(10.0));
        let mut sched = Scheduler::new(
            SchedConfig {
                width: 1,
                quantum: 1,
            },
            Arc::new(SerialBackend),
        );
        let heavy = sched
            .admit(
                RunSpec::new(
                    &obj,
                    init(1),
                    serial_cfg(),
                    term(60),
                    TimeMode::Parallel,
                    1,
                    Driver::Det,
                )
                .weight(4.0),
            )
            .unwrap();
        let light = sched
            .admit(RunSpec::new(
                &obj,
                init(2),
                serial_cfg(),
                term(60),
                TimeMode::Parallel,
                2,
                Driver::Det,
            ))
            .unwrap();
        // Tick enough for both to be mid-flight, then compare shares.
        for _ in 0..40 {
            if !sched.tick() {
                break;
            }
        }
        let h = sched
            .run_registry(heavy)
            .unwrap()
            .counter("sched.run.rounds")
            .get();
        let l = sched
            .run_registry(light)
            .unwrap()
            .counter("sched.run.rounds")
            .get();
        assert!(
            h > l,
            "weight-4 run got {h} rounds vs weight-1's {l}; fair-share should favor it"
        );
        sched.run();
    }
}
