//! The multi-run scheduler: admits runs with priority and fair-share
//! weights, time-slices them over one shared [`FleetBackend`], and preempts
//! via the checkpoint codec when more runs are ready than the fleet width.
//!
//! # Fairness policy
//!
//! Weighted virtual runtime, in miniature CFS style: every run carries a
//! `vruntime` that advances by `rounds / effective_weight` each time it is
//! scheduled, where `effective_weight = weight · 2^priority`. Each tick the
//! `width` ready runs with the *smallest* vruntime are selected, so a
//! double-weight run receives twice the rounds per unit of vruntime and a
//! starved run's unchanged vruntime eventually makes it the minimum.
//!
//! # Preemption
//!
//! At the end of a tick, an unfinished resident run is suspended to
//! checkpoint bytes in memory (the PR-5 codec: simplex, streams, RNG
//! cursor, trace, accounting) whenever contention exists (more ready runs
//! than width). Resumption rebuilds the engine on whatever backend the
//! scheduler chooses — the snapshot carries no backend state — which is
//! also how a run migrates between a dedicated backend and the shared
//! fleet. Runs whose streams cannot `save_state` simply stay resident:
//! they are non-preemptible but still correct.
//!
//! # Determinism invariant
//!
//! A run's result is `f64::to_bits`-identical whether it ran alone,
//! time-sliced against 999 neighbours, or was preempted and resumed
//! mid-flight. Three mechanisms compose to guarantee it: the backend
//! determinism contract (jobs independent, submission order preserved)
//! makes merged fleet batches equal solo batches; `RunSession::step`
//! performs the same calls in the same order as a solo loop; and the
//! checkpoint codec round-trips the full master-side state bit-exactly.

use crate::config::SchedConfig;
use crate::fleet::{FleetBackend, FleetTicket};
use noisy_simplex::config::{check_nested_dispatch, ConfigError, SimplexConfig};
use noisy_simplex::result::{RunNote, RunResult};
use noisy_simplex::session::{Driver, RunSession, SessionStatus};
use noisy_simplex::termination::Termination;
use obs::{Counter, Gauge, MetricsRegistry};
use std::sync::Arc;
use std::time::Instant;
use stoch_eval::backend::SamplingBackend;
use stoch_eval::clock::TimeMode;
use stoch_eval::objective::StochasticObjective;

/// Everything needed to admit one run to the service.
pub struct RunSpec<'a, F: StochasticObjective> {
    /// The objective to optimize (shared, never consumed).
    pub objective: &'a F,
    /// Initial simplex vertices.
    pub init: Vec<Vec<f64>>,
    /// Engine configuration. The scheduler overrides the backend choice
    /// (runs dispatch on the shared fleet) unless the config is
    /// [`customized`](SimplexConfig::customized) — fault plans, retry
    /// tweaks, respawn budgets — in which case the run gets a dedicated
    /// backend so its chaos cannot starve its neighbours. A configured
    /// checkpoint path is made per-run via
    /// [`CheckpointConfig::for_run`](noisy_simplex::checkpoint::CheckpointConfig::for_run).
    pub cfg: SimplexConfig,
    /// Termination criteria.
    pub term: Termination,
    /// Virtual-time accounting mode.
    pub mode: TimeMode,
    /// Master RNG seed.
    pub seed: u64,
    /// Which algorithm drives the run.
    pub driver: Driver,
    /// Scheduling priority; each step up doubles the effective weight.
    /// Clamped to ±16.
    pub priority: i32,
    /// Fair-share weight (> 0); relative share of scheduler rounds.
    pub weight: f64,
}

impl<'a, F: StochasticObjective> RunSpec<'a, F> {
    /// A spec with default priority (0) and weight (1).
    pub fn new(
        objective: &'a F,
        init: Vec<Vec<f64>>,
        cfg: SimplexConfig,
        term: Termination,
        mode: TimeMode,
        seed: u64,
        driver: Driver,
    ) -> Self {
        RunSpec {
            objective,
            init,
            cfg,
            term,
            mode,
            seed,
            driver,
            priority: 0,
            weight: 1.0,
        }
    }

    /// Set the priority (doubling effective weight per step, clamped ±16).
    pub fn priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }

    /// Set the fair-share weight (values ≤ 0 are treated as 1).
    pub fn weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }
}

enum State<'a, F: StochasticObjective> {
    /// Admitted, never started. `Option` so activation can take the init.
    Pending,
    /// Live engine between time slices.
    Resident(Box<RunSession<'a, F>>),
    /// Preempted to checkpoint bytes.
    Suspended(Vec<u8>),
    /// Evicted to checkpoint bytes after its dedicated backend exhausted
    /// its fault budgets (DESIGN.md §16). Not schedulable until
    /// [`Scheduler::readmit`] re-homes it.
    Quarantined(Vec<u8>),
    /// Finished (boxed: results dwarf the other variants).
    Done(Box<RunResult>),
}

struct Entry<'a, F: StochasticObjective> {
    objective: &'a F,
    cfg: SimplexConfig,
    term: Termination,
    mode: TimeMode,
    seed: u64,
    driver: Driver,
    effective_weight: f64,
    vruntime: f64,
    init: Option<Vec<Vec<f64>>>,
    state: State<'a, F>,
    /// Dedicated backend for customized (chaos) configs; `None` = fleet.
    dedicated: Option<Arc<dyn SamplingBackend<F::Stream>>>,
    registry: MetricsRegistry,
    rounds: Arc<Counter>,
    preemptions: Arc<Counter>,
    wait_nanos: Arc<Counter>,
    ready_since: Option<Instant>,
    admitted_at: Instant,
    started: bool,
    /// The run was quarantined at least once; its final result carries
    /// [`RunNote::Quarantined`].
    was_quarantined: bool,
}

/// The shared-fleet scheduling service. See the module docs.
pub struct Scheduler<'a, F: StochasticObjective> {
    cfg: SchedConfig,
    fleet: Arc<FleetBackend<F::Stream>>,
    service: MetricsRegistry,
    entries: Vec<Entry<'a, F>>,
    ticks: Arc<Counter>,
    admitted: Arc<Counter>,
    completed: Arc<Counter>,
    svc_preemptions: Arc<Counter>,
    quarantines: Arc<Counter>,
    admission_latency: Arc<Counter>,
    queue_depth_hwm: Arc<Gauge>,
    fairness_spread: Arc<Gauge>,
}

impl<'a, F: StochasticObjective> Scheduler<'a, F> {
    /// A scheduler dispatching the fleet's merged batches on `inner`.
    pub fn new(cfg: SchedConfig, inner: Arc<dyn SamplingBackend<F::Stream>>) -> Self {
        let service = MetricsRegistry::new();
        let fleet = Arc::new(FleetBackend::with_registry(inner, &service));
        Scheduler {
            cfg,
            fleet,
            ticks: service.counter("sched.ticks"),
            admitted: service.counter("sched.runs_admitted"),
            completed: service.counter("sched.runs_completed"),
            svc_preemptions: service.counter("sched.preemptions"),
            quarantines: service.counter("sched.runs.quarantined"),
            admission_latency: service.counter("sched.admission_latency_nanos"),
            queue_depth_hwm: service.gauge("sched.queue_depth_hwm"),
            fairness_spread: service.gauge("sched.fairness.vruntime_spread_milli"),
            service,
            entries: Vec::new(),
        }
    }

    /// The service-wide metrics registry (`sched.*`, `sched.fleet.*`, and —
    /// when a shared `MwPool` attaches to it — `mw.pool.*`).
    pub fn service_registry(&self) -> &MetricsRegistry {
        &self.service
    }

    /// The per-run registry (`sched.run.*`), if `id` exists.
    pub fn run_registry(&self, id: u64) -> Option<&MetricsRegistry> {
        self.entries.get(id as usize).map(|e| &e.registry)
    }

    /// Route a shared [`MwPool`](mw_framework::MwPool)'s `mw.pool.*`
    /// counters (jobs submitted, queue-depth high-water mark — pool-global,
    /// so they account for every run on the shared pool) into the service
    /// registry. First attachment wins; returns `false` if the pool already
    /// reports elsewhere.
    pub fn attach_pool(&self, pool: &mw_framework::MwPool) -> bool {
        pool.attach_registry(&self.service)
    }

    /// Admit a run, returning its id. Fails with
    /// [`ConfigError::NestedDispatch`] if the objective dispatches on the
    /// same worker pool as the backend the run would use — the deadlock
    /// DESIGN.md §8 used to merely document is refused here, up front.
    pub fn admit(&mut self, spec: RunSpec<'a, F>) -> Result<u64, ConfigError> {
        let dedicated: Option<Arc<dyn SamplingBackend<F::Stream>>> = if spec.cfg.customized() {
            Some(spec.cfg.build_backend())
        } else {
            None
        };
        match &dedicated {
            Some(b) => check_nested_dispatch(b.as_ref(), spec.objective)?,
            None => check_nested_dispatch(self.fleet.as_ref(), spec.objective)?,
        }
        let id = self.entries.len() as u64;
        let mut cfg = spec.cfg;
        if let Some(ck) = &cfg.checkpoint {
            cfg.checkpoint = Some(ck.for_run(id));
        }
        let priority = spec.priority.clamp(-16, 16);
        let weight = if spec.weight > 0.0 { spec.weight } else { 1.0 };
        let registry = MetricsRegistry::new();
        let entry = Entry {
            objective: spec.objective,
            cfg,
            term: spec.term,
            mode: spec.mode,
            seed: spec.seed,
            driver: spec.driver,
            effective_weight: weight * 2f64.powi(priority),
            vruntime: 0.0,
            init: Some(spec.init),
            state: State::Pending,
            dedicated,
            rounds: registry.counter("sched.run.rounds"),
            preemptions: registry.counter("sched.run.preemptions"),
            wait_nanos: registry.counter("sched.run.wait_nanos"),
            registry,
            ready_since: Some(Instant::now()),
            admitted_at: Instant::now(),
            started: false,
            was_quarantined: false,
        };
        self.entries.push(entry);
        self.admitted.inc();
        Ok(id)
    }

    fn ready_indices(&self) -> Vec<usize> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| !matches!(e.state, State::Done(_) | State::Quarantined(_)))
            .map(|(i, _)| i)
            .collect()
    }

    /// Run one scheduling tick: select up to `width` ready runs by minimum
    /// vruntime, step each `quantum` rounds concurrently (fleet runs merge
    /// their sampling through the gate), then preempt unfinished runs if
    /// contention remains. Returns `false` once every run is done.
    pub fn tick(&mut self) -> bool {
        let mut ready = self.ready_indices();
        if ready.is_empty() {
            return false;
        }
        self.ticks.inc();
        self.queue_depth_hwm.record(ready.len() as u64);
        ready.sort_by(|&a, &b| {
            self.entries[a]
                .vruntime
                .total_cmp(&self.entries[b].vruntime)
                .then(a.cmp(&b))
        });
        let width = self.cfg.width.max(1).min(ready.len());
        let contention = ready.len() > width;
        let quantum = self.cfg.quantum.max(1);
        let selected = &ready[..width];

        // Activate: build/resume sessions and account for wait time.
        let mut batch: Vec<(usize, Box<RunSession<'a, F>>, bool)> = Vec::with_capacity(width);
        for &i in selected {
            let e = &mut self.entries[i];
            if let Some(since) = e.ready_since.take() {
                e.wait_nanos.add(since.elapsed().as_nanos() as u64);
            }
            if !e.started {
                e.started = true;
                self.admission_latency
                    .add(e.admitted_at.elapsed().as_nanos() as u64);
            }
            let backend: Arc<dyn SamplingBackend<F::Stream>> = match &e.dedicated {
                Some(b) => Arc::clone(b),
                None => self.fleet.clone() as Arc<dyn SamplingBackend<F::Stream>>,
            };
            let uses_fleet = e.dedicated.is_none();
            let session = match std::mem::replace(&mut e.state, State::Pending) {
                State::Pending => {
                    let init = e
                        .init
                        .take()
                        .expect("pending run without an initial simplex");
                    Box::new(RunSession::with_backend(
                        e.objective,
                        init,
                        e.cfg.clone(),
                        e.term,
                        e.mode,
                        e.seed,
                        e.driver,
                        backend,
                    ))
                }
                State::Suspended(payload) => Box::new(
                    RunSession::resume_with_backend(
                        e.objective,
                        e.cfg.clone(),
                        &payload,
                        None,
                        e.driver,
                        backend,
                    )
                    .expect("in-memory checkpoint failed to resume"),
                ),
                State::Resident(s) => s,
                State::Done(_) | State::Quarantined(_) => {
                    unreachable!("done and quarantined runs are filtered from the ready set")
                }
            };
            batch.push((i, session, uses_fleet));
        }

        // Register every fleet participant before any thread starts, so the
        // rendezvous gate knows the tick's population.
        let fleet = Arc::clone(&self.fleet);
        for (_, _, uses_fleet) in &batch {
            if *uses_fleet {
                fleet.enter();
            }
        }
        let finished_slices: Vec<(usize, Box<RunSession<'a, F>>, u64)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = batch
                    .into_iter()
                    .map(|(i, mut session, uses_fleet)| {
                        let fleet = &fleet;
                        scope.spawn(move || {
                            // Leaves the gate even if the objective panics,
                            // so neighbours are not stranded mid-rendezvous.
                            let _ticket = uses_fleet.then(|| FleetTicket::adopt(fleet.as_ref()));
                            let mut steps = 0u64;
                            for _ in 0..quantum {
                                steps += 1;
                                if session.step() == SessionStatus::Finished {
                                    break;
                                }
                            }
                            (i, session, steps)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("scheduler worker panicked"))
                    .collect()
            });

        for (i, session, steps) in finished_slices {
            let e = &mut self.entries[i];
            e.vruntime += steps as f64 / e.effective_weight;
            e.rounds.add(steps);
            if session.is_finished() {
                let mut res = session.finish();
                if e.was_quarantined && !res.notes.contains(&RunNote::Quarantined) {
                    res.notes.push(RunNote::Quarantined);
                }
                e.state = State::Done(Box::new(res));
                self.completed.inc();
            } else {
                e.ready_since = Some(Instant::now());
                // Run-level supervision (DESIGN.md §16): a run whose
                // *dedicated* backend has burned through its retry/respawn
                // budgets is living in a hostile environment. Evict it to a
                // checkpoint instead of letting it limp along serially and
                // occupy fleet-width slots forever; `readmit` can later
                // re-home it on the shared fleet, bit-identically (the
                // snapshot carries no backend state).
                if e.dedicated.as_ref().is_some_and(|b| b.degraded()) {
                    if let Ok(payload) = session.snapshot() {
                        e.was_quarantined = true;
                        e.dedicated = None;
                        e.state = State::Quarantined(payload);
                        self.quarantines.inc();
                        continue;
                    }
                    // Non-checkpointable: it cannot be evicted, only
                    // tolerated. Falls through to the normal states below.
                }
                if contention {
                    match session.snapshot() {
                        Ok(payload) => {
                            e.preemptions.inc();
                            self.svc_preemptions.inc();
                            e.state = State::Suspended(payload);
                        }
                        // Streams that cannot save state make the run
                        // non-preemptible; it stays resident (correct, just
                        // occupying a slot until it finishes).
                        Err(_) => e.state = State::Resident(session),
                    }
                } else {
                    e.state = State::Resident(session);
                }
            }
        }

        let live: Vec<f64> = self
            .entries
            .iter()
            .filter(|e| e.started && !matches!(e.state, State::Done(_)))
            .map(|e| e.vruntime)
            .collect();
        if live.len() > 1 {
            let max = live.iter().cloned().fold(f64::MIN, f64::max);
            let min = live.iter().cloned().fold(f64::MAX, f64::min);
            self.fairness_spread.record(((max - min) * 1000.0) as u64);
        }
        self.entries
            .iter()
            .any(|e| !matches!(e.state, State::Done(_)))
    }

    /// Tick until every schedulable run has finished. Quarantined runs stay
    /// parked; call [`readmit`](Self::readmit) and `run` again to finish
    /// them.
    pub fn run(&mut self) {
        while self.tick() {}
    }

    /// Ids of runs currently quarantined (DESIGN.md §16).
    pub fn quarantined(&self) -> Vec<u64> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e.state, State::Quarantined(_)))
            .map(|(i, _)| i as u64)
            .collect()
    }

    /// Re-admit a quarantined run from its eviction checkpoint. The hostile
    /// parts of its configuration — fault plan, respawn-budget override,
    /// retry tweaks — are stripped, so the run resumes on the shared fleet
    /// in a sane environment; everything the optimization itself depends on
    /// (streams, RNG cursor, simplex) is in the checkpoint, so the answer
    /// is bit-identical to a run that never saw chaos. Its final result
    /// carries [`RunNote::Quarantined`]. Returns `false` when `id` is
    /// unknown or not quarantined.
    pub fn readmit(&mut self, id: u64) -> bool {
        let Some(e) = self.entries.get_mut(id as usize) else {
            return false;
        };
        if !matches!(e.state, State::Quarantined(_)) {
            return false;
        }
        let State::Quarantined(payload) = std::mem::replace(&mut e.state, State::Pending) else {
            unreachable!("matched above");
        };
        e.cfg.faults = None;
        e.cfg.respawn_budget = None;
        e.cfg.retry = Default::default();
        e.dedicated = None;
        e.state = State::Suspended(payload);
        e.ready_since = Some(Instant::now());
        true
    }

    /// The finished result for `id`, if that run is done.
    pub fn result(&self, id: u64) -> Option<&RunResult> {
        match self.entries.get(id as usize).map(|e| &e.state) {
            Some(State::Done(res)) => Some(res.as_ref()),
            _ => None,
        }
    }

    /// Consume the scheduler, yielding `(id, result)` for every finished
    /// run (unfinished runs are dropped).
    pub fn into_results(self) -> Vec<(u64, RunResult)> {
        self.entries
            .into_iter()
            .enumerate()
            .filter_map(|(i, e)| match e.state {
                State::Done(res) => Some((i as u64, *res)),
                _ => None,
            })
            .collect()
    }
}
