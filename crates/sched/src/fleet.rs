//! `FleetBackend` — a rendezvous gate that merges the sampling rounds of
//! many concurrent runs into single batches on one inner backend.
//!
//! Each scheduling tick, the scheduler marks `k` participants with
//! [`FleetBackend::enter`] and lets them step concurrently. A participant's
//! `extend_batch` call posts its jobs at the gate and parks; when every
//! still-active participant has a request posted (or has [`left`]
//! [`FleetBackend::leave`] for the tick), the last arrival becomes the
//! dispatcher: it concatenates all pending requests, runs **one**
//! `extend_batch` on the inner backend, splits the results back per
//! request, and wakes the owners.
//!
//! # Why this preserves bit-identity
//!
//! The [`SamplingBackend`] determinism contract does the heavy lifting:
//! jobs are independent (each stream owns its RNG) and submission order is
//! preserved, so a job's result does not depend on its neighbours in the
//! batch. Merging requests therefore changes *throughput*, never *values*:
//! each run gets back exactly the streams it would have gotten dispatching
//! alone, in the order it submitted them.
//!
//! # Why this cannot deadlock
//!
//! Every active participant is, at any moment, either computing (and will
//! eventually post a request or leave) or parked with a request posted. The
//! gate fires exactly when `requests == active`, and `leave` re-checks the
//! condition, so the last event of any tick — a post or a leave — always
//! releases everyone parked. With no participants entered, the gate
//! degenerates to a pass-through and dispatches immediately.

use obs::{Counter, Gauge, MetricsRegistry};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use stoch_eval::backend::{SamplingBackend, StreamJob};
use stoch_eval::objective::SampleStream;

struct Pending<S> {
    jobs: Vec<StreamJob<S>>,
    tx: mpsc::Sender<Vec<StreamJob<S>>>,
}

struct Gate<S> {
    /// Participants entered for the current tick and not yet left.
    active: usize,
    /// Requests parked at the gate, in arrival order.
    requests: Vec<Pending<S>>,
}

struct FleetObs {
    dispatches: Arc<Counter>,
    merged_dispatches: Arc<Counter>,
    jobs: Arc<Counter>,
    batch_jobs_hwm: Arc<Gauge>,
}

/// A shared sampling service multiplexing many runs over one inner backend.
/// See the module docs for the merge protocol and its guarantees.
pub struct FleetBackend<S> {
    inner: Arc<dyn SamplingBackend<S>>,
    gate: Mutex<Gate<S>>,
    obs: Option<FleetObs>,
}

impl<S: SampleStream + 'static> FleetBackend<S> {
    /// Wrap `inner` with an idle gate (no participants).
    pub fn new(inner: Arc<dyn SamplingBackend<S>>) -> Self {
        FleetBackend {
            inner,
            gate: Mutex::new(Gate {
                active: 0,
                requests: Vec::new(),
            }),
            obs: None,
        }
    }

    /// Like [`new`](Self::new), recording `sched.fleet.*` counters into
    /// `registry`: dispatches to the inner backend, how many of those merged
    /// more than one run's round, total jobs shipped, and the largest
    /// combined batch.
    pub fn with_registry(inner: Arc<dyn SamplingBackend<S>>, registry: &MetricsRegistry) -> Self {
        let mut fleet = Self::new(inner);
        fleet.obs = Some(FleetObs {
            dispatches: registry.counter("sched.fleet.dispatches"),
            merged_dispatches: registry.counter("sched.fleet.merged_dispatches"),
            jobs: registry.counter("sched.fleet.jobs"),
            batch_jobs_hwm: registry.gauge("sched.fleet.batch_jobs_hwm"),
        });
        fleet
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &Arc<dyn SamplingBackend<S>> {
        &self.inner
    }

    /// Register one participant for the current tick. The scheduler calls
    /// this once per selected run *before* any of them starts stepping, so
    /// the gate knows how many requests to wait for.
    pub fn enter(&self) {
        let mut g = self.gate.lock().expect("fleet gate poisoned");
        g.active += 1;
    }

    /// Withdraw a participant (its time slice ended). If everyone still
    /// active is already parked at the gate, the leaver dispatches their
    /// merged batch on the way out.
    pub fn leave(&self) {
        let ready = {
            let mut g = self.gate.lock().expect("fleet gate poisoned");
            g.active = g.active.saturating_sub(1);
            if g.active > 0 && g.requests.len() == g.active {
                std::mem::take(&mut g.requests)
            } else {
                Vec::new()
            }
        };
        if !ready.is_empty() {
            self.dispatch(ready);
        }
    }

    /// Merge `reqs` into one inner batch and reply to each requester with
    /// its own jobs, original slots restored, submission order intact.
    fn dispatch(&self, reqs: Vec<Pending<S>>) {
        let total: usize = reqs.iter().map(|r| r.jobs.len()).sum();
        let mut combined = Vec::with_capacity(total);
        let mut slots = Vec::with_capacity(total);
        let mut replies = Vec::with_capacity(reqs.len());
        for req in reqs {
            replies.push((req.tx, req.jobs.len()));
            for job in req.jobs {
                // Tag each job with a batch-unique slot so the inner
                // backend never sees two runs' jobs colliding on one slot
                // index; the originals are restored before the split.
                slots.push(job.slot);
                combined.push(StreamJob {
                    slot: combined.len(),
                    dt: job.dt,
                    stream: job.stream,
                });
            }
        }
        if let Some(o) = &self.obs {
            o.dispatches.inc();
            if replies.len() > 1 {
                o.merged_dispatches.inc();
            }
            o.jobs.add(total as u64);
            o.batch_jobs_hwm.record(total as u64);
        }
        let mut done = self.inner.extend_batch(combined);
        for (job, original) in done.iter_mut().zip(&slots) {
            job.slot = *original;
        }
        let mut rest = done.into_iter();
        for (tx, len) in replies {
            let part: Vec<StreamJob<S>> = rest.by_ref().take(len).collect();
            // A receiver can only be gone if its thread panicked; dropping
            // the reply is then the right thing.
            let _ = tx.send(part);
        }
    }
}

impl<S: SampleStream + 'static> SamplingBackend<S> for FleetBackend<S> {
    fn extend_batch(&self, jobs: Vec<StreamJob<S>>) -> Vec<StreamJob<S>> {
        let (tx, rx) = mpsc::channel();
        let ready = {
            let mut g = self.gate.lock().expect("fleet gate poisoned");
            g.requests.push(Pending { jobs, tx });
            if g.requests.len() >= g.active {
                std::mem::take(&mut g.requests)
            } else {
                Vec::new()
            }
        };
        if !ready.is_empty() {
            self.dispatch(ready);
        }
        rx.recv().expect("fleet dispatcher vanished mid-batch")
    }

    fn name(&self) -> &'static str {
        "fleet"
    }

    fn degraded(&self) -> bool {
        self.inner.degraded()
    }

    fn pool_token(&self) -> Option<usize> {
        self.inner.pool_token()
    }
}

/// RAII participant handle: `leave`s the gate on drop, so a participant
/// that panics mid-step cannot strand the others at the gate.
pub struct FleetTicket<'g, S: SampleStream + 'static> {
    fleet: &'g FleetBackend<S>,
}

impl<'g, S: SampleStream + 'static> FleetTicket<'g, S> {
    /// Enter the gate, returning the handle that leaves it on drop.
    pub fn enter(fleet: &'g FleetBackend<S>) -> Self {
        fleet.enter();
        FleetTicket { fleet }
    }

    /// Adopt a slot already registered with [`FleetBackend::enter`] (the
    /// scheduler enters all of a tick's participants up front, before any
    /// of their threads start, then hands each thread its ticket).
    pub fn adopt(fleet: &'g FleetBackend<S>) -> Self {
        FleetTicket { fleet }
    }
}

impl<S: SampleStream + 'static> Drop for FleetTicket<'_, S> {
    fn drop(&mut self) {
        self.fleet.leave();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stoch_eval::backend::SerialBackend;
    use stoch_eval::functions::Sphere;
    use stoch_eval::noise::ConstantNoise;
    use stoch_eval::objective::StochasticObjective;
    use stoch_eval::sampler::Noisy;

    fn job(
        obj: &Noisy<Sphere, ConstantNoise>,
        slot: usize,
        seed: u64,
    ) -> StreamJob<<Noisy<Sphere, ConstantNoise> as StochasticObjective>::Stream> {
        StreamJob {
            slot,
            dt: 1.0,
            stream: obj.open(&[1.0, 2.0], seed),
        }
    }

    #[test]
    fn passthrough_without_participants() {
        let obj = Noisy::new(Sphere::new(2), ConstantNoise(1.0));
        let fleet = FleetBackend::new(Arc::new(SerialBackend));
        let done = fleet.extend_batch(vec![job(&obj, 3, 7), job(&obj, 1, 8)]);
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].slot, 3);
        assert_eq!(done[1].slot, 1);
        assert!(done[0].stream.estimate().time > 0.0);
    }

    #[test]
    fn merged_rounds_match_solo_rounds_bitwise() {
        let obj = Noisy::new(Sphere::new(2), ConstantNoise(2.0));
        // Solo: each run dispatches alone on a serial backend.
        let solo_a = SerialBackend.extend_batch(vec![job(&obj, 0, 41), job(&obj, 1, 42)]);
        let solo_b = SerialBackend.extend_batch(vec![job(&obj, 0, 99)]);

        // Fleet: both runs post concurrently; the gate merges them.
        let fleet = FleetBackend::new(Arc::new(SerialBackend));
        let obj_ref = &obj;
        let (got_a, got_b) = std::thread::scope(|s| {
            fleet.enter();
            fleet.enter();
            let fa = &fleet;
            let ha = s.spawn(move || {
                let _t = FleetTicket::adopt(fa);
                fa.extend_batch(vec![job(obj_ref, 0, 41), job(obj_ref, 1, 42)])
            });
            let fb = &fleet;
            let hb = s.spawn(move || {
                let _t = FleetTicket::adopt(fb);
                fb.extend_batch(vec![job(obj_ref, 0, 99)])
            });
            (ha.join().unwrap(), hb.join().unwrap())
        });

        for (solo, got) in solo_a.iter().zip(&got_a) {
            assert_eq!(solo.slot, got.slot);
            assert_eq!(
                solo.stream.estimate().value.to_bits(),
                got.stream.estimate().value.to_bits()
            );
        }
        assert_eq!(
            solo_b[0].stream.estimate().value.to_bits(),
            got_b[0].stream.estimate().value.to_bits()
        );
    }

    #[test]
    fn leave_releases_waiting_participants() {
        // One participant posts, the other leaves without posting; the
        // leaver must dispatch the parked request.
        let obj = Noisy::new(Sphere::new(2), ConstantNoise(1.0));
        let fleet = FleetBackend::new(Arc::new(SerialBackend));
        fleet.enter();
        fleet.enter();
        let done = std::thread::scope(|s| {
            let f = &fleet;
            let h = s.spawn(move || {
                let _t = FleetTicket::adopt(f);
                f.extend_batch(vec![job(&obj, 0, 5)])
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            fleet.leave(); // second participant's slice ends without sampling
            h.join().unwrap()
        });
        assert_eq!(done.len(), 1);
    }

    #[test]
    fn registry_counts_merges() {
        let obj = Noisy::new(Sphere::new(2), ConstantNoise(1.0));
        let reg = MetricsRegistry::new();
        let fleet = FleetBackend::with_registry(Arc::new(SerialBackend), &reg);
        let obj_ref = &obj;
        std::thread::scope(|s| {
            fleet.enter();
            fleet.enter();
            for seed in [1u64, 2] {
                let f = &fleet;
                s.spawn(move || {
                    let _t = FleetTicket::adopt(f);
                    f.extend_batch(vec![job(obj_ref, 0, seed)])
                });
            }
        });
        assert_eq!(reg.counter("sched.fleet.jobs").get(), 2);
        assert!(reg.counter("sched.fleet.dispatches").get() >= 1);
    }
}
