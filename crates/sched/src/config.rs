//! Scheduler configuration and the `NSX_SCHED` environment grammar.

/// Tunables for the [`Scheduler`](crate::Scheduler)'s tick loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedConfig {
    /// Maximum number of runs resident (actively stepping) per tick. Ready
    /// runs beyond the width wait their turn; resident runs are preempted
    /// to checkpoint bytes at the end of a tick whenever more than `width`
    /// runs are ready.
    pub width: usize,
    /// Simplex rounds each selected run advances per tick (its time slice).
    pub quantum: u64,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            width: 4,
            quantum: 8,
        }
    }
}

impl SchedConfig {
    /// Parse the `NSX_SCHED` grammar: colon-separated `key=value` pairs,
    /// `width=N` and `quantum=R`, each optional, in any order — e.g.
    /// `width=8`, `quantum=1:width=2`. Returns `None` on an unknown key or
    /// unparsable value (mirroring `NSX_CHECKPOINT`'s strictness).
    pub fn parse(spec: &str) -> Option<Self> {
        let mut cfg = SchedConfig::default();
        for part in spec.split(':').filter(|p| !p.is_empty()) {
            let (key, value) = part.split_once('=')?;
            match key {
                "width" => cfg.width = value.parse::<usize>().ok().filter(|&w| w > 0)?,
                "quantum" => cfg.quantum = value.parse::<u64>().ok().filter(|&q| q > 0)?,
                _ => return None,
            }
        }
        Some(cfg)
    }

    /// Read `NSX_SCHED` from the environment; defaults when unset or
    /// malformed.
    pub fn from_env() -> Self {
        std::env::var("NSX_SCHED")
            .ok()
            .and_then(|s| Self::parse(&s))
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_and_partial_specs() {
        assert_eq!(
            SchedConfig::parse("width=8:quantum=2"),
            Some(SchedConfig {
                width: 8,
                quantum: 2
            })
        );
        let d = SchedConfig::default();
        assert_eq!(
            SchedConfig::parse("width=2"),
            Some(SchedConfig {
                width: 2,
                quantum: d.quantum
            })
        );
        assert_eq!(
            SchedConfig::parse("quantum=1"),
            Some(SchedConfig {
                width: d.width,
                quantum: 1
            })
        );
        assert_eq!(SchedConfig::parse(""), Some(d));
    }

    #[test]
    fn parse_rejects_unknown_keys_and_zeroes() {
        assert_eq!(SchedConfig::parse("widht=8"), None);
        assert_eq!(SchedConfig::parse("width=0"), None);
        assert_eq!(SchedConfig::parse("quantum=x"), None);
        assert_eq!(SchedConfig::parse("width"), None);
    }
}
