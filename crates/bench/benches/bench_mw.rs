//! Criterion micro-benchmarks for the MW framework: round-trip dispatch
//! latency and batched fan-out throughput — the in-process analogue of the
//! paper's master↔worker communication overhead (§3.4's "minor
//! degradation... attributed to the I/O").

use criterion::{criterion_group, criterion_main, Criterion};
use mw_framework::{MwDriver, MwPool, MwTask, WorkerCtx};
use std::hint::black_box;

struct NoopTask;
impl MwTask for NoopTask {
    type Output = u64;
    fn execute(self, ctx: &WorkerCtx) -> u64 {
        ctx.worker_id as u64
    }
}

fn bench_mw(c: &mut Criterion) {
    let pool = MwPool::new(4);
    c.bench_function("pool_call_roundtrip", |b| {
        b.iter(|| black_box(pool.call(|w| w + 1)))
    });

    let driver = MwDriver::new(4, 1);
    c.bench_function("driver_dispatch_all_23_tasks", |b| {
        // 23 = the d+3 workers of a 20-dimensional deployment.
        b.iter(|| {
            let tasks: Vec<NoopTask> = (0..23).map(|_| NoopTask).collect();
            black_box(driver.dispatch_all(tasks))
        })
    });

    let driver_ns = MwDriver::new(2, 6);
    struct ClientTask;
    impl MwTask for ClientTask {
        type Output = usize;
        fn execute(self, ctx: &WorkerCtx) -> usize {
            ctx.run_clients(|i| i).into_iter().sum()
        }
    }
    c.bench_function("server_client_fanout_ns6", |b| {
        b.iter(|| black_box(driver_ns.dispatch_all(vec![ClientTask])))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_mw
);
criterion_main!(benches);
