//! Criterion micro-benchmarks for the MD substrate: the pair-force loop
//! (naive oracle vs cell-list kernel) and a full velocity-Verlet+SHAKE step
//! at two system sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use water_md::forces::compute_forces;
use water_md::integrate::step;
use water_md::kernel::{ForceEngine, ForceKernel};
use water_md::model::TIP4P;
use water_md::system::System;

fn bench_md(c: &mut Criterion) {
    for n_side in [3usize, 4] {
        let sys = System::lattice(TIP4P, n_side, 0.997, 298.0, 1);
        let rc = sys.box_len / 2.0;
        let n = sys.n_molecules();
        c.bench_function(&format!("compute_forces_n{n}"), |b| {
            b.iter(|| black_box(compute_forces(black_box(&sys), rc)))
        });
        c.bench_function(&format!("cell_list_forces_n{n}"), |b| {
            let mut engine = ForceEngine::new(ForceKernel::CellList);
            b.iter(|| black_box(engine.compute(black_box(&sys), rc)))
        });
        c.bench_function(&format!("md_step_n{n}"), |b| {
            let mut sys2 = sys.clone();
            let mut engine = ForceEngine::new(ForceKernel::CellList);
            let mut f = engine.compute(&sys2, rc);
            b.iter(|| {
                f = step(&mut sys2, &f, 1.0, rc, &mut engine);
                black_box(f.potential)
            })
        });
    }
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_md
);
criterion_main!(benches);
