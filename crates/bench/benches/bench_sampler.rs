//! Criterion micro-benchmarks for the sampling substrate: stream extension
//! throughput and normal-variate generation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use stoch_eval::objective::SampleStream;
use stoch_eval::rng::rng_from_seed;
use stoch_eval::sampler::{standard_normal, EmpiricalStream, GaussianStream};

fn bench_streams(c: &mut Criterion) {
    c.bench_function("gaussian_stream_extend", |b| {
        let mut s = GaussianStream::new(1.0, 10.0, 7);
        b.iter(|| {
            s.extend(black_box(1.0));
            black_box(s.estimate())
        })
    });

    c.bench_function("empirical_stream_extend_10_batches", |b| {
        let mut s = EmpiricalStream::new(1.0, 10.0, 1.0, 7);
        b.iter(|| {
            s.extend(black_box(10.0));
            black_box(s.estimate())
        })
    });

    c.bench_function("standard_normal", |b| {
        let mut rng = rng_from_seed(3);
        b.iter(|| black_box(standard_normal(&mut rng)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_streams
);
criterion_main!(benches);
