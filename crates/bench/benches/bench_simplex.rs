//! Criterion micro-benchmarks for the simplex-algorithm kernels: full short
//! optimizations of each method under identical noise, plus the raw
//! geometry operations.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use noisy_simplex::geometry::{centroid_excluding, diameter, order, reflect};
use noisy_simplex::prelude::*;
use std::hint::black_box;
use stoch_eval::functions::Rosenbrock;
use stoch_eval::noise::ConstantNoise;
use stoch_eval::sampler::Noisy;

fn short_term() -> Termination {
    Termination {
        tolerance: Some(1e-4),
        max_time: Some(2e3),
        max_iterations: Some(200),
    }
}

fn bench_methods(c: &mut Criterion) {
    let obj = Noisy::new(Rosenbrock::new(4), ConstantNoise(10.0));
    let mut g = c.benchmark_group("optimize_rosenbrock4_noise10");
    let methods: [(&str, SimplexMethod); 5] = [
        ("det", SimplexMethod::Det(Det::new())),
        ("mn", SimplexMethod::Mn(MaxNoise::with_k(2.0))),
        ("pc", SimplexMethod::Pc(PointComparison::new())),
        ("pcmn", SimplexMethod::PcMn(PcMn::new())),
        (
            "anderson",
            SimplexMethod::Anderson(AndersonNm::with_k1(1024.0)),
        ),
    ];
    for (name, m) in methods {
        g.bench_function(name, |b| {
            let mut seed = 0u64;
            b.iter_batched(
                || {
                    seed += 1;
                    (init::random_uniform(4, -5.0, 5.0, seed), seed)
                },
                |(init, s)| black_box(m.run(&obj, init, short_term(), TimeMode::Parallel, s)),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_geometry(c: &mut Criterion) {
    let mut g = c.benchmark_group("geometry");
    for d in [4usize, 20, 100] {
        let pts: Vec<Vec<f64>> = (0..=d)
            .map(|i| (0..d).map(|j| ((i * 31 + j * 7) % 13) as f64).collect())
            .collect();
        let values: Vec<f64> = (0..=d).map(|i| (i as f64).sin()).collect();
        g.bench_function(format!("centroid_d{d}"), |b| {
            b.iter(|| black_box(centroid_excluding(black_box(&pts), 0)))
        });
        g.bench_function(format!("reflect_d{d}"), |b| {
            let cent = centroid_excluding(&pts, 0);
            b.iter(|| black_box(reflect(black_box(&cent), black_box(&pts[0]), 1.0)))
        });
        g.bench_function(format!("diameter_d{d}"), |b| {
            b.iter(|| black_box(diameter(black_box(&pts))))
        });
        g.bench_function(format!("order_d{d}"), |b| {
            b.iter(|| black_box(order(black_box(&values))))
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_methods, bench_geometry
);
criterion_main!(benches);
