//! Ablation benches for the design decisions called out in DESIGN.md §6.
//! Each compares two variants of a design choice under identical workloads;
//! criterion reports the cost, and the bench bodies assert the qualitative
//! quality claim where one exists.
//!
//! * continuous worker sampling on/off (the MW always-busy-workers model);
//! * parallel vs serial virtual-time accounting;
//! * oracle vs empirical error estimation under PC;
//! * geometric sampling-growth factor (1.1 / 1.5 / 2.0).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use noisy_simplex::prelude::*;
use std::hint::black_box;
use stoch_eval::functions::Rosenbrock;
use stoch_eval::noise::ConstantNoise;
use stoch_eval::sampler::Noisy;

fn term() -> Termination {
    Termination {
        tolerance: Some(1e-4),
        max_time: Some(5e3),
        max_iterations: Some(300),
    }
}

fn bench_continuous_sampling(c: &mut Criterion) {
    let obj = Noisy::new(Rosenbrock::new(3), ConstantNoise(50.0));
    let mut g = c.benchmark_group("ablation_continuous_sampling");
    for (name, continuous) in [("on", true), ("off", false)] {
        let pc = PointComparison {
            cfg: SimplexConfig {
                continuous,
                ..SimplexConfig::default()
            },
            params: PcParams::default(),
        };
        g.bench_function(name, |b| {
            let mut seed = 0u64;
            b.iter_batched(
                || {
                    seed += 1;
                    (init::random_uniform(3, -6.0, 3.0, seed), seed)
                },
                |(init, s)| black_box(pc.run(&obj, init, term(), TimeMode::Parallel, s)),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_time_modes(c: &mut Criterion) {
    let obj = Noisy::new(Rosenbrock::new(3), ConstantNoise(50.0));
    let mut g = c.benchmark_group("ablation_time_mode");
    for (name, mode) in [
        ("parallel", TimeMode::Parallel),
        ("serial", TimeMode::Serial),
    ] {
        g.bench_function(name, |b| {
            let mut seed = 0u64;
            b.iter_batched(
                || {
                    seed += 1;
                    (init::random_uniform(3, -6.0, 3.0, seed), seed)
                },
                |(init, s)| black_box(MaxNoise::with_k(2.0).run(&obj, init, term(), mode, s)),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_error_estimators(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_error_estimator");
    for name in ["oracle", "empirical"] {
        g.bench_function(name, |b| {
            let mut seed = 0u64;
            b.iter_batched(
                || {
                    seed += 1;
                    (init::random_uniform(3, -6.0, 3.0, seed), seed)
                },
                |(init, s)| {
                    if name == "oracle" {
                        let obj = Noisy::new(Rosenbrock::new(3), ConstantNoise(50.0));
                        black_box(PointComparison::new().run(
                            &obj,
                            init,
                            term(),
                            TimeMode::Parallel,
                            s,
                        ))
                    } else {
                        let obj = Noisy::empirical(Rosenbrock::new(3), ConstantNoise(50.0), 1.0);
                        black_box(PointComparison::new().run(
                            &obj,
                            init,
                            term(),
                            TimeMode::Parallel,
                            s,
                        ))
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_sampling_growth(c: &mut Criterion) {
    let obj = Noisy::new(Rosenbrock::new(3), ConstantNoise(50.0));
    let mut g = c.benchmark_group("ablation_sampling_growth");
    for growth in [1.1, 1.5, 2.0] {
        let mn = MaxNoise {
            cfg: SimplexConfig {
                sampling: SamplingPolicy {
                    initial_dt: 1.0,
                    growth,
                },
                ..SimplexConfig::default()
            },
            params: MnParams { k: 2.0 },
        };
        g.bench_function(format!("growth_{growth}"), |b| {
            let mut seed = 0u64;
            b.iter_batched(
                || {
                    seed += 1;
                    (init::random_uniform(3, -6.0, 3.0, seed), seed)
                },
                |(init, s)| black_box(mn.run(&obj, init, term(), TimeMode::Parallel, s)),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_continuous_sampling,
    bench_time_modes,
    bench_error_estimators,
    bench_sampling_growth
);
criterion_main!(benches);
