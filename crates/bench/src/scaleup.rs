//! The scale-up experiment (§3.4, Fig 3.18, Table 3.3): optimize the
//! Rosenbrock function in `d = 20 / 50 / 100` dimensions with the full MW
//! hierarchy — one dispatched task per vertex evaluation, `Ns` client
//! threads per task — measuring real wall-clock time per simplex step.

use mw_framework::alloc::Allocation;
use mw_framework::task::{MwDriver, MwTask, WorkerCtx};
use noisy_simplex::geometry::{centroid_excluding, contract, expand, order, reflect};
use std::time::Instant;
use stoch_eval::functions::Rosenbrock;
use stoch_eval::objective::{Objective, SampleStream};
use stoch_eval::rng::child_seed;
use stoch_eval::sampler::GaussianStream;

/// Evaluate the noisy Rosenbrock at a point: the task shipped to a worker.
///
/// The worker's server side fans out to `Ns` clients; each client samples an
/// independent system (an independent Gaussian stream at the same point) for
/// duration `dt`, and the server averages the client results — the vertex
/// estimate has variance `σ0²/(Ns·dt)`.
#[derive(Debug, Clone)]
pub struct VertexEvalTask {
    /// The point in parameter space.
    pub x: Vec<f64>,
    /// Inherent per-system noise magnitude.
    pub sigma0: f64,
    /// Sampling duration per client.
    pub dt: f64,
    /// Task seed (clients derive child seeds).
    pub seed: u64,
}

impl MwTask for VertexEvalTask {
    type Output = f64;

    fn execute(self, ctx: &WorkerCtx) -> f64 {
        let f = Rosenbrock::new(self.x.len()).value(&self.x);
        let shards = ctx.run_clients(|client| {
            let mut s = GaussianStream::new(f, self.sigma0, child_seed(self.seed, client as u64));
            s.extend(self.dt);
            s.estimate().value
        });
        shards.iter().sum::<f64>() / shards.len() as f64
    }
}

/// One per-step record of the scale-up run.
#[derive(Debug, Clone, Copy)]
pub struct ScaleupPoint {
    /// 1-based simplex step.
    pub step: u64,
    /// Wall-clock seconds since the optimization started.
    pub wall_secs: f64,
    /// Best observed vertex value after the step.
    pub best_value: f64,
}

/// Result of one scale-up run.
#[derive(Debug, Clone)]
pub struct ScaleupResult {
    /// Problem dimensionality.
    pub d: usize,
    /// Clients per vertex.
    pub ns: usize,
    /// The MW processor allocation this deployment represents.
    pub alloc: Allocation,
    /// Steps actually taken.
    pub steps: u64,
    /// Total wall-clock seconds.
    pub total_wall_secs: f64,
    /// Mean wall-clock seconds per simplex step (Fig 3.18c).
    pub secs_per_step: f64,
    /// Per-step trace (Figs 3.18a/b).
    pub trace: Vec<ScaleupPoint>,
}

/// Run the DET simplex over the MW hierarchy on noisy Rosenbrock.
///
/// `max_steps` bounds the run; it stops early if the vertex spread drops
/// below `tol`.
pub fn scaleup_rosenbrock(
    d: usize,
    ns: usize,
    sigma0: f64,
    eval_dt: f64,
    max_steps: u64,
    tol: f64,
    seed: u64,
) -> ScaleupResult {
    scaleup_rosenbrock_with_metrics(d, ns, sigma0, eval_dt, max_steps, tol, seed, None)
}

/// [`scaleup_rosenbrock`] with optional run accounting: when `registry` is
/// given, the worker pool records its job, busy/idle and queue-depth
/// tallies into it (`mw.pool.*` metrics).
#[allow(clippy::too_many_arguments)]
pub fn scaleup_rosenbrock_with_metrics(
    d: usize,
    ns: usize,
    sigma0: f64,
    eval_dt: f64,
    max_steps: u64,
    tol: f64,
    seed: u64,
    registry: Option<&obs::MetricsRegistry>,
) -> ScaleupResult {
    let alloc = Allocation::new(d, ns);
    let driver = match registry {
        Some(reg) => MwDriver::with_metrics(alloc.workers(), ns, reg),
        None => MwDriver::new(alloc.workers(), ns),
    };
    let mut next_seed = seed;
    let mut seed_gen = move || {
        next_seed = next_seed.wrapping_add(1);
        child_seed(0xC0FFEE, next_seed)
    };

    let mut points = noisy_simplex::init::random_uniform(d, -6.0, 3.0, seed);
    let eval = |x: &[f64], s: u64| VertexEvalTask {
        x: x.to_vec(),
        sigma0,
        dt: eval_dt,
        seed: s,
    };

    // Initial concurrent evaluation of all d+1 vertices.
    let tasks: Vec<VertexEvalTask> = points.iter().map(|x| eval(x, seed_gen())).collect();
    let mut values = driver
        .dispatch_all(tasks)
        .expect("MW worker lost during scale-up bench");

    let t0 = Instant::now();
    let mut trace = Vec::new();
    let mut steps = 0u64;

    while steps < max_steps {
        let spread = {
            let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            max - min
        };
        if spread <= tol {
            break;
        }
        let ord = order(&values);
        let cent = centroid_excluding(&points, ord.max);
        let refl_x = reflect(&cent, &points[ord.max], 1.0);
        // The reflection and (prospective) expansion/contraction evaluations
        // are dispatched to the two trial-vertex workers concurrently.
        let refl_h = driver.dispatch(eval(&refl_x, seed_gen()));
        let g_ref = refl_h.recv().expect("MW worker lost");

        if g_ref < values[ord.min] {
            let exp_x = expand(&cent, &refl_x, 2.0);
            let g_exp = driver
                .dispatch(eval(&exp_x, seed_gen()))
                .recv()
                .expect("MW worker lost");
            if g_exp < g_ref {
                points[ord.max] = exp_x;
                values[ord.max] = g_exp;
            } else {
                points[ord.max] = refl_x;
                values[ord.max] = g_ref;
            }
        } else if g_ref < values[ord.max] {
            points[ord.max] = refl_x;
            values[ord.max] = g_ref;
        } else {
            let con_x = contract(&cent, &points[ord.max], 0.5);
            let g_con = driver
                .dispatch(eval(&con_x, seed_gen()))
                .recv()
                .expect("MW worker lost");
            if g_con < values[ord.max] {
                points[ord.max] = con_x;
                values[ord.max] = g_con;
            } else {
                // Collapse towards the best vertex and re-evaluate everyone
                // concurrently (one task per worker).
                let keep = points[ord.min].clone();
                let mut tasks = Vec::new();
                for (i, p) in points.iter_mut().enumerate() {
                    if i == ord.min {
                        continue;
                    }
                    for (pj, kj) in p.iter_mut().zip(&keep) {
                        *pj = 0.5 * *pj + 0.5 * kj;
                    }
                    tasks.push((i, eval(p, seed_gen())));
                }
                let handles: Vec<_> = tasks
                    .into_iter()
                    .map(|(i, t)| (i, driver.dispatch(t)))
                    .collect();
                for (i, h) in handles {
                    values[i] = h.recv().expect("MW worker lost");
                }
            }
        }

        steps += 1;
        trace.push(ScaleupPoint {
            step: steps,
            wall_secs: t0.elapsed().as_secs_f64(),
            best_value: values.iter().cloned().fold(f64::INFINITY, f64::min),
        });
    }

    let total = t0.elapsed().as_secs_f64();
    ScaleupResult {
        d,
        ns,
        alloc,
        steps,
        total_wall_secs: total,
        secs_per_step: if steps > 0 {
            total / steps as f64
        } else {
            f64::NAN
        },
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaleup_runs_and_descends_in_20d() {
        let res = scaleup_rosenbrock(20, 1, 0.1, 1.0, 300, 1e-6, 42);
        assert!(res.steps > 0);
        assert_eq!(res.alloc.total(), 70);
        let first = res.trace.first().unwrap().best_value;
        let last = res.trace.last().unwrap().best_value;
        assert!(last < first, "no descent: {first} -> {last}");
    }

    #[test]
    fn scaleup_with_metrics_counts_dispatched_jobs() {
        let reg = obs::MetricsRegistry::new();
        let res = scaleup_rosenbrock_with_metrics(5, 1, 0.1, 1.0, 20, 0.0, 3, Some(&reg));
        assert!(res.steps > 0);
        // d+1 initial vertex evaluations, then at least one dispatch
        // (the reflection) per simplex step.
        let jobs = reg.counter("mw.pool.jobs_submitted").get();
        assert!(
            jobs >= res.steps + 6,
            "only {jobs} jobs for {} steps",
            res.steps
        );
    }

    #[test]
    fn scaleup_trace_wall_time_is_monotone() {
        let res = scaleup_rosenbrock(5, 2, 0.1, 1.0, 50, 0.0, 7);
        for w in res.trace.windows(2) {
            assert!(w[1].wall_secs >= w[0].wall_secs);
            assert_eq!(w[1].step, w[0].step + 1);
        }
    }

    #[test]
    fn vertex_eval_task_averages_clients() {
        // With sigma0 = 0 every client returns exactly f(x).
        let driver = MwDriver::new(2, 4);
        let x = vec![0.0, 0.0, 0.0];
        let f = Rosenbrock::new(3).value(&x);
        let out = driver.dispatch_all(vec![VertexEvalTask {
            x,
            sigma0: 0.0,
            dt: 1.0,
            seed: 1,
        }]);
        assert_eq!(out.unwrap()[0], f);
    }

    #[test]
    fn more_clients_reduce_noise() {
        let driver = MwDriver::new(2, 1);
        let driver16 = MwDriver::new(2, 16);
        let x = vec![1.0, 1.0];
        let f = Rosenbrock::new(2).value(&x); // 0
        let noisy = |d: &MwDriver, n: usize| -> f64 {
            let tasks: Vec<VertexEvalTask> = (0..n as u64)
                .map(|s| VertexEvalTask {
                    x: x.clone(),
                    sigma0: 10.0,
                    dt: 1.0,
                    seed: s,
                })
                .collect();
            let outs = d.dispatch_all(tasks).unwrap();
            let mean_sq: f64 =
                outs.iter().map(|v| (v - f) * (v - f)).sum::<f64>() / outs.len() as f64;
            mean_sq.sqrt()
        };
        let rms1 = noisy(&driver, 64);
        let rms16 = noisy(&driver16, 64);
        assert!(
            rms16 < rms1,
            "16 clients should average noise down: {rms16} vs {rms1}"
        );
    }
}
