//! Hostile-noise exhibit (DESIGN.md §14): samples-to-solution ratios for the
//! PC gate across noise distributions, Welford vs median-of-means.
//!
//! For each distribution in {gaussian, student_t(3), student_t(3)+5%
//! contamination, contaminated, drifting} and each estimator in {welford,
//! mom}, PC runs to tolerance on the noisy 2-d sphere over `replicates()`
//! seeds. Samples-to-solution is the virtual time at which the run's best
//! vertex *first* reaches true error ≤ the solve threshold — a run that
//! terminates without ever getting there scores ∞ (speed at a wrong answer
//! is not a solution). The reported statistic is the median, normalised by
//! the same estimator's Gaussian baseline. Under contamination the Welford
//! variance is corrupted in both directions — clean prefixes breed false
//! confidence (fast, wrong decisions), spikes breed huge error bars — while
//! the median-of-means scale stays calibrated to the clean core.
//!
//! Gates (exit non-zero on failure):
//!
//! 1. The robust estimator's combined-hostile ratio stays within 2x of its
//!    Gaussian baseline.
//! 2. Plain Welford degrades measurably more than the robust estimator on
//!    the combined-hostile distribution.
//! 3. Serial and threaded runs are f64-bit-identical under hostile noise.
//! 4. A checkpoint-preempted run equals the solo run bit for bit.
//!
//! Writes `BENCH_noise.json`.
//!
//! ```text
//! cargo run --release --bin noise_robustness -- [--smoke] [--out <path>]
//! ```

use noisy_simplex::prelude::*;
use repro_bench::{apply_smoke_defaults, replicates};
use stoch_eval::functions::Sphere;
use stoch_eval::noise::ConstantNoise;
use stoch_eval::sampler::Noisy;
use stoch_eval::stats::EstimatorChoice;
use stoch_eval::{DriftSpec, NoiseDistribution};

/// The robust estimator the exhibit measures. Sixteen blocks, not the
/// engine's eight-block default: with 5% contamination the expected spikes
/// per block reach one around n ≈ blocks/ε, after which every block mean is
/// corrupted and the median-of-means scale saturates to the contaminated
/// variance. Sixteen blocks keep the decision-relevant sample counts below
/// that saturation point while still yielding a finite standard error by
/// n = blocks + 2.
const ROBUST: EstimatorChoice = EstimatorChoice::MedianOfMeans { blocks: 16 };

fn scenarios() -> Vec<(&'static str, NoiseDistribution)> {
    vec![
        ("gaussian", NoiseDistribution::gaussian()),
        ("student_t3", NoiseDistribution::student_t(3.0)),
        (
            "t3_contaminated",
            NoiseDistribution::student_t(3.0).with_contamination(0.05, 20.0),
        ),
        (
            "contaminated",
            NoiseDistribution::gaussian().with_contamination(0.05, 20.0),
        ),
        (
            "drifting",
            NoiseDistribution::drifting(DriftSpec::default_spec()),
        ),
    ]
}

/// Fixed-budget termination with no tolerance stop: every run samples the
/// same budget and the statistic is read off the trace (the time the best
/// vertex first reaches the solve threshold). Stopping on an *observed*
/// spread would confound the measurement — a miscalibrated estimator can
/// fire the spread criterion early at a wrong point, which looked "fast".
/// The smoke/full switch scales `replicates()` only.
fn term() -> Termination {
    Termination {
        tolerance: None,
        max_time: Some(100_000.0),
        max_iterations: Some(2_000),
    }
}

fn pc_with(backend: BackendChoice, ckpt: Option<CheckpointConfig>) -> PointComparison {
    let mut pc = PointComparison::new();
    pc.cfg.backend = backend;
    pc.cfg.checkpoint = ckpt;
    pc
}

/// One PC run; returns its total virtual sampling (samples-to-solution).
fn run_one(dist: NoiseDistribution, est: EstimatorChoice, seed: u64) -> RunResult {
    let obj = Noisy::new(Sphere::new(2), ConstantNoise(0.5))
        .with_distribution(dist)
        .with_estimator(est);
    let init = init::random_uniform(2, -3.0, 3.0, 500 + seed);
    pc_with(BackendChoice::Serial, None).run(&obj, init, term(), TimeMode::Parallel, seed)
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// True error below which the 2-d sphere counts as solved.
const SOLVE_TOL: f64 = 1e-1;

/// Virtual time at which the run first *solved* the problem (best vertex's
/// true error ≤ [`SOLVE_TOL`]), or ∞ if it never did. This is the
/// samples-to-solution statistic: a run that stops early at a wrong answer
/// is a failure, not a fast success.
fn solved_at(run: &RunResult) -> f64 {
    run.trace
        .points()
        .iter()
        .find(|p| p.best_true.is_some_and(|v| v <= SOLVE_TOL))
        .map_or(f64::INFINITY, |p| p.time)
}

/// A JSON number, with non-finite values (an unsolved cell) as `null`.
fn jnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".to_string()
    }
}

fn same_result(a: &RunResult, b: &RunResult) -> bool {
    a.best_point == b.best_point
        && a.best_observed.to_bits() == b.best_observed.to_bits()
        && a.iterations == b.iterations
        && a.elapsed.to_bits() == b.elapsed.to_bits()
        && a.total_sampling.to_bits() == b.total_sampling.to_bits()
        && a.stop == b.stop
        && a.notes == b.notes
}

/// Gate 3: serial vs threaded bit-identity under the combined-hostile
/// distribution, both estimators.
fn backend_invariant(dist: NoiseDistribution) -> bool {
    [EstimatorChoice::Welford, ROBUST].into_iter().all(|est| {
        let obj = Noisy::new(Sphere::new(2), ConstantNoise(2.0))
            .with_distribution(dist)
            .with_estimator(est);
        let init = init::random_uniform(2, -3.0, 3.0, 42);
        let a = pc_with(BackendChoice::Serial, None).run(
            &obj,
            init.clone(),
            term(),
            TimeMode::Parallel,
            7,
        );
        let b = pc_with(BackendChoice::Threaded { workers: 3 }, None).run(
            &obj,
            init,
            term(),
            TimeMode::Parallel,
            7,
        );
        same_result(&a, &b)
    })
}

/// Gate 4: checkpoint-preempted vs solo bit-identity under the
/// combined-hostile distribution with the robust estimator.
fn resume_invariant(dist: NoiseDistribution) -> bool {
    let obj = Noisy::new(Sphere::new(2), ConstantNoise(2.0))
        .with_distribution(dist)
        .with_estimator(ROBUST);
    let init = init::random_uniform(2, -3.0, 3.0, 43);
    let solo =
        pc_with(BackendChoice::Serial, None).run(&obj, init.clone(), term(), TimeMode::Parallel, 8);
    if solo.iterations <= 3 {
        return true; // nothing to preempt
    }
    let path = std::env::temp_dir().join(format!("nsx_bench_noise_{}.bin", std::process::id()));
    let ckpt = CheckpointConfig {
        path: path.clone(),
        every: 1,
        retain: true,
    };
    let m = pc_with(BackendChoice::Serial, Some(ckpt));
    let trunc = Termination {
        max_iterations: Some(3),
        ..term()
    };
    m.run(&obj, init, trunc, TimeMode::Parallel, 8);
    let resumed = m.resume(&obj, &path, Some(term()));
    for suffix in ["", ".1", ".tmp"] {
        let mut p = path.as_os_str().to_os_string();
        p.push(suffix);
        let _ = std::fs::remove_file(std::path::PathBuf::from(p));
    }
    match resumed {
        Ok(r) => same_result(&solo, &r),
        Err(e) => {
            eprintln!("resume failed: {e}");
            false
        }
    }
}

fn main() {
    let mut out = std::path::PathBuf::from("BENCH_noise.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => apply_smoke_defaults(),
            "--out" => match args.next() {
                Some(p) => out = p.into(),
                None => {
                    eprintln!("error: --out requires a path argument");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown argument `{other}`");
                eprintln!("usage: noise_robustness [--smoke] [--out <path>]");
                std::process::exit(2);
            }
        }
    }

    let n = replicates();
    println!("# Hostile-noise robustness: PC on noisy 2-d sphere, {n} seeds per cell");
    println!(
        "# {:<16} {:>14} {:>14} {:>9} {:>9}",
        "distribution", "welford", "mom", "w-ratio", "m-ratio"
    );

    let estimators = [("welford", EstimatorChoice::Welford), ("mom", ROBUST)];
    // medians[scenario][estimator]
    let mut medians: Vec<[f64; 2]> = Vec::new();
    let mut rows = String::new();
    for (sname, dist) in scenarios() {
        let mut cell = [0.0f64; 2];
        for (e, (ename, est)) in estimators.iter().enumerate() {
            let runs: Vec<RunResult> = (0..n as u64).map(|s| run_one(dist, *est, s)).collect();
            let times: Vec<f64> = runs.iter().map(solved_at).collect();
            let unsolved = times.iter().filter(|t| !t.is_finite()).count();
            if unsolved > 0 {
                println!("  # {unsolved}/{n} {sname}/{ename} runs never solved (cost = inf)");
            }
            cell[e] = median(times);
        }
        medians.push(cell);
        let base = medians[0];
        let (rw, rm) = (cell[0] / base[0], cell[1] / base[1]);
        println!(
            "  {sname:<16} {:>14.1} {:>14.1} {rw:>9.3} {rm:>9.3}",
            cell[0], cell[1]
        );
        rows.push_str(&format!(
            "    {{\"distribution\": \"{sname}\", \"welford\": {}, \"mom\": {}, \
             \"welford_ratio\": {}, \"mom_ratio\": {}}},\n",
            jnum(cell[0]),
            jnum(cell[1]),
            jnum(rw),
            jnum(rm)
        ));
    }

    // The combined-hostile row (student_t3 + contamination) drives the gates.
    let combined = medians[2];
    let base = medians[0];
    let welford_ratio = combined[0] / base[0];
    let mom_ratio = combined[1] / base[1];
    let robust_within_2x = mom_ratio.is_finite() && mom_ratio <= 2.0;
    let welford_degrades = welford_ratio > mom_ratio;
    println!("combined-hostile: welford ratio {welford_ratio:.3}, mom ratio {mom_ratio:.3}");

    let hostile = NoiseDistribution::student_t(3.0).with_contamination(0.05, 20.0);
    let backend_ok = backend_invariant(hostile);
    let resume_ok = resume_invariant(hostile);
    println!("backend-invariant: {backend_ok}, resume-invariant: {resume_ok}");

    let ok = robust_within_2x && welford_degrades && backend_ok && resume_ok;
    let json = format!(
        "{{\n  \"cells\": [\n{}  ],\n  \"welford_ratio\": {},\n  \
         \"mom_ratio\": {},\n  \"robust_within_2x\": {robust_within_2x},\n  \
         \"welford_degrades\": {welford_degrades},\n  \"backend_invariant\": {backend_ok},\n  \
         \"resume_invariant\": {resume_ok}\n}}\n",
        rows.trim_end_matches('\n').trim_end_matches(',').to_owned() + "\n",
        jnum(welford_ratio),
        jnum(mom_ratio)
    );
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("error: cannot write {}: {e}", out.display());
        std::process::exit(1);
    }
    println!("written to {}", out.display());

    if !ok {
        eprintln!("error: a hostile-noise gate failed");
        std::process::exit(1);
    }
}
