//! Wall-clock scale-up of the sampling backends (DESIGN.md §8).
//!
//! Runs MN on noisy Rosenbrock at d = 20 and d = 50 with identical seeds
//! under the `Serial` and `Threaded` backends, checks the results are
//! bit-identical (the backend determinism contract), and reports the
//! wall-clock speedup. Writes `BENCH_backend.json`.
//!
//! Speedup is only expected on machines with several hardware threads; the
//! JSON records `hardware_threads` so downstream tooling can judge the
//! numbers in context.
//!
//! ```text
//! cargo run --release --bin backend_scaleup -- [--smoke] [--out <path>]
//! ```

use mw_framework::backend::default_workers;
use noisy_simplex::prelude::*;
use repro_bench::{apply_smoke_defaults, iteration_cap_or, time_budget_or};
use std::time::Instant;
use stoch_eval::functions::Rosenbrock;
use stoch_eval::noise::ConstantNoise;
use stoch_eval::sampler::Noisy;

struct Case {
    d: usize,
    serial_secs: f64,
    threaded_secs: f64,
    identical: bool,
    iterations: u64,
    total_sampling: f64,
}

impl Case {
    fn speedup(&self) -> f64 {
        self.serial_secs / self.threaded_secs.max(1e-12)
    }
}

fn run_once(d: usize, backend: BackendChoice) -> RunResult {
    // Empirical streams so each extension performs real per-sample compute
    // (ceil(dt / dt_sample) Gaussian draws) — that is the work the threaded
    // backend fans out.
    let obj = Noisy::empirical(Rosenbrock::new(d), ConstantNoise(5.0), 0.02);
    let mut mn = MaxNoise::with_k(2.0);
    mn.cfg.backend = backend;
    let term = Termination {
        tolerance: Some(1e-8),
        max_time: Some(time_budget_or(20_000.0)),
        max_iterations: Some(iteration_cap_or(2_000)),
    };
    let init = init::random_uniform(d, -2.0, 2.0, 1_000 + d as u64);
    mn.run(&obj, init, term, TimeMode::Parallel, 9_000 + d as u64)
}

fn same_result(a: &RunResult, b: &RunResult) -> bool {
    a.best_point == b.best_point
        && a.best_observed == b.best_observed
        && a.iterations == b.iterations
        && a.elapsed == b.elapsed
        && a.total_sampling == b.total_sampling
        && a.stop == b.stop
        && a.trace.points().len() == b.trace.points().len()
}

fn main() {
    let mut out = std::path::PathBuf::from("BENCH_backend.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => apply_smoke_defaults(),
            "--out" => match args.next() {
                Some(p) => out = p.into(),
                None => {
                    eprintln!("error: --out requires a path argument");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown argument `{other}`");
                eprintln!("usage: backend_scaleup [--smoke] [--out <path>]");
                std::process::exit(2);
            }
        }
    }

    let hardware_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = default_workers();
    println!("backend scale-up: MN on noisy Rosenbrock (empirical streams)");
    println!("hardware threads: {hardware_threads}, threaded workers: {workers}");
    println!("d,serial_secs,threaded_secs,speedup,identical,iterations");

    let mut cases = Vec::new();
    for d in [20, 50] {
        let t0 = Instant::now();
        let serial = run_once(d, BackendChoice::Serial);
        let serial_secs = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let threaded = run_once(d, BackendChoice::Threaded { workers: 0 });
        let threaded_secs = t1.elapsed().as_secs_f64();

        let case = Case {
            d,
            serial_secs,
            threaded_secs,
            identical: same_result(&serial, &threaded),
            iterations: serial.iterations,
            total_sampling: serial.total_sampling,
        };
        println!(
            "{},{:.3},{:.3},{:.2},{},{}",
            case.d,
            case.serial_secs,
            case.threaded_secs,
            case.speedup(),
            case.identical,
            case.iterations
        );
        cases.push(case);
    }

    let body = render_json(hardware_threads, workers, &cases);
    if let Err(e) = std::fs::write(&out, &body) {
        eprintln!("error: cannot write {}: {e}", out.display());
        std::process::exit(1);
    }
    println!("written to {}", out.display());

    if cases.iter().any(|c| !c.identical) {
        eprintln!("error: serial and threaded backends disagreed — determinism contract broken");
        std::process::exit(1);
    }
}

fn render_json(hardware_threads: usize, workers: usize, cases: &[Case]) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"hardware_threads\": {hardware_threads},\n"));
    s.push_str(&format!("  \"workers\": {workers},\n"));
    s.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"d\": {}, \"serial_secs\": {:.6}, \"threaded_secs\": {:.6}, \
             \"speedup\": {:.4}, \"identical\": {}, \"iterations\": {}, \
             \"total_sampling\": {:.3}}}{}\n",
            c.d,
            c.serial_secs,
            c.threaded_secs,
            c.speedup(),
            c.identical,
            c.iterations,
            c.total_sampling,
            if i + 1 < cases.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
