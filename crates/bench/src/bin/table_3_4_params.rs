//! Table 3.4 (parameters) — initial and final TIP4P parameters
//! `(ε kcal/mol, σ Å, q_H e)` obtained with the MN, PC, and PC+MN
//! algorithms on the water-parameterization objective, started from the
//! paper's poor initial vertices (Table 3.4a).
//!
//! Paper finals for comparison: MN (.1514, 3.150, .520),
//! PC (.1470, 3.160, .523), PC+MN (.1470, 3.162, .522);
//! published TIP4P (.1550, 3.154, .520).

use noisy_simplex::prelude::*;
use repro_bench::csv_row;
use water_md::cost::WaterObjective;
use water_md::reference::{paper_final_params, INITIAL_VERTICES};
use water_md::surrogate::SurrogateWater;

fn main() {
    repro_bench::smoke_args();
    let objective = WaterObjective::new(SurrogateWater);
    let init: Vec<Vec<f64>> = INITIAL_VERTICES[..4].iter().map(|v| v.to_vec()).collect();
    let term = repro_bench::water_termination();

    println!("# Table 3.4: initial (a) and final (b-d) water-model parameters");
    println!("\n## (a) Initial vertices (poor parameters)");
    csv_row(
        &["epsilon", "sigma", "q_H"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    );
    for v in &INITIAL_VERTICES {
        csv_row(&[
            format!("{:.4}", v[0]),
            format!("{:.3}", v[1]),
            format!("{:.3}", v[2]),
        ]);
    }

    println!("\n## Final parameters per algorithm (paper values in parens)");
    csv_row(
        &[
            "algorithm",
            "steps",
            "epsilon",
            "sigma",
            "q_H",
            "true_cost",
            "paper_eps",
            "paper_sigma",
            "paper_qH",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>(),
    );
    let methods: [(&str, SimplexMethod, [f64; 3]); 3] = [
        (
            "MN",
            SimplexMethod::Mn(MaxNoise::with_k(2.0)),
            paper_final_params::MN,
        ),
        (
            "PC",
            SimplexMethod::Pc(PointComparison::new()),
            paper_final_params::PC,
        ),
        (
            "PC+MN",
            SimplexMethod::PcMn(PcMn::new()),
            paper_final_params::PCMN,
        ),
    ];
    for (name, method, paper) in methods {
        let res = method.run(&objective, init.clone(), term, TimeMode::Parallel, 11);
        let p = &res.best_point;
        csv_row(&[
            name.to_string(),
            res.iterations.to_string(),
            format!("{:.4}", p[0]),
            format!("{:.4}", p[1]),
            format!("{:.4}", p[2]),
            format!("{:.4}", objective.true_cost(&[p[0], p[1], p[2]])),
            format!("{:.4}", paper[0]),
            format!("{:.3}", paper[1]),
            format!("{:.3}", paper[2]),
        ]);
    }
    println!(
        "\n# published TIP4P: eps={:.4} sigma={:.3} qH={:.3}, true cost {:.4}",
        paper_final_params::TIP4P[0],
        paper_final_params::TIP4P[1],
        paper_final_params::TIP4P[2],
        objective.true_cost(&[0.1550, 3.1540, 0.5200])
    );
}
