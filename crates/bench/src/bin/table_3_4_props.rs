//! Table 3.4 (properties) — the six fitted properties (D, gHH, gOH, gOO,
//! P, E) of the models found by MN, PC, and PC+MN, compared with published
//! TIP4P and experiment.
//!
//! Each algorithm's final parameters come from a fresh optimization run on
//! the noisy surrogate (same protocol as `table_3_4_params`); the property
//! values and their sampling errors are then measured at those parameters.

use noisy_simplex::prelude::*;
use repro_bench::csv_row;
use water_md::cost::{WaterObjective, DEFAULT_PROP_SIGMA0};
use water_md::reference::{Experiment, Tip4pPublished, INITIAL_VERTICES};
use water_md::surrogate::SurrogateWater;

const PROP_NAMES: [&str; 6] = ["D(1e-5cm2/s)", "gHH", "gOH", "gOO", "P(atm)", "E(kJ/mol)"];

fn main() {
    repro_bench::smoke_args();
    let objective = WaterObjective::new(SurrogateWater);
    let init: Vec<Vec<f64>> = INITIAL_VERTICES[..4].iter().map(|v| v.to_vec()).collect();
    let term = repro_bench::water_termination();

    // Re-run the three optimizations.
    let methods: [(&str, SimplexMethod); 3] = [
        ("MN", SimplexMethod::Mn(MaxNoise::with_k(2.0))),
        ("PC", SimplexMethod::Pc(PointComparison::new())),
        ("PC+MN", SimplexMethod::PcMn(PcMn::new())),
    ];
    let mut finals: Vec<(&str, [f64; 3], f64)> = Vec::new();
    for (name, method) in methods {
        let res = method.run(&objective, init.clone(), term, TimeMode::Parallel, 11);
        let p = [res.best_point[0], res.best_point[1], res.best_point[2]];
        // Error bar on each property after the accumulated sampling at the
        // final vertex: σ0_i/√t.
        finals.push((name, p, res.elapsed.max(1.0)));
    }

    println!("# Table 3.4 (properties): value (V) and sampling error (E) per property");
    csv_row(
        &[
            "property", "MN_V", "MN_E", "PC_V", "PC_E", "PCMN_V", "PCMN_E", "TIP4P", "EXP",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>(),
    );

    let exp = [Experiment::D, 0.0, 0.0, 0.0, Experiment::P, Experiment::U];
    let tip4p_published = [
        Tip4pPublished::D,
        f64::NAN,
        f64::NAN,
        f64::NAN,
        Tip4pPublished::P,
        Tip4pPublished::U,
    ];

    for i in 0..6 {
        let mut row = vec![PROP_NAMES[i].to_string()];
        for (_, params, t_final) in &finals {
            let v = objective.true_properties(params)[i];
            // Representative per-vertex sampling time: the run's elapsed
            // virtual time / the d+3 concurrently sampled points.
            let t_vertex = (t_final / 6.0).max(1.0);
            let e = DEFAULT_PROP_SIGMA0[i] / t_vertex.sqrt();
            row.push(format!("{v:.4}"));
            row.push(format!("{e:.2e}"));
        }
        row.push(if tip4p_published[i].is_nan() {
            "-".to_string()
        } else {
            format!("{:.4}", tip4p_published[i])
        });
        row.push(format!("{:.4}", exp[i]));
        csv_row(&row);
    }
}
