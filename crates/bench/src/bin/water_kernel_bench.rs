//! Force-kernel exhibit (DESIGN.md §10, §15): how much do the O(n)
//! cell-list kernel and the lane-batched SoA kernel buy over the naive
//! O(n²) double loop, and do all kernels agree?
//!
//! For each system size the harness builds a liquid-density TIP4P box,
//! verifies that every production kernel (scalar cell-list, lane-batched
//! `simd`, worker-pool `sharded`) reproduces the naive forces/energy/virial
//! to 1e-10 relative (both on the fresh configuration and after a short
//! trajectory that exercises stale-list reuse), checks that sharded results
//! are bit-identical across 1/2/4 workers, then times an MD run per kernel
//! and reports ns/step, the measured speedups, rebuild counts, and neighbor
//! statistics.
//!
//! Writes `BENCH_water.json`. Exits non-zero if any kernel disagrees with
//! the oracle, if sharded results depend on the worker count, if the cell
//! list fails to beat the naive kernel at n = 256, or if the simd kernel
//! fails to beat the cell list at n = 512.
//!
//! ```text
//! cargo run --release --bin water_kernel_bench -- [--smoke] [--out <path>]
//! ```

use repro_bench::apply_smoke_defaults;
use water_md::forces::{compute_forces, Forces};
use water_md::integrate::step;
use water_md::kernel::{ForceEngine, ForceKernel, DEFAULT_SKIN};
use water_md::system::System;
use water_md::TIP4P;

/// Liquid water at ambient conditions.
const DENSITY: f64 = 0.997;
const TEMPERATURE: f64 = 300.0;
/// Benchmark cutoff (Å), clamped to the half-box per size. Short enough
/// that the O(n²) sweep — not the in-cutoff force work shared by all
/// kernels — dominates the naive cost at n = 512 (see DESIGN.md §10).
const RC: f64 = 3.0;
const DT_FS: f64 = 1.0;
const EQUIV_TOL: f64 = 1e-10;

fn rel(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(b.abs()).max(1.0)
}

fn max_rel_err(a: &Forces, b: &Forces) -> f64 {
    let mut worst = rel(a.potential, b.potential).max(rel(a.virial, b.virial));
    for (fa, fb) in a.f.iter().zip(&b.f) {
        for (va, vb) in fa.iter().zip(fb) {
            worst = worst
                .max(rel(va.x, vb.x))
                .max(rel(va.y, vb.y))
                .max(rel(va.z, vb.z));
        }
    }
    worst
}

/// Run `steps` MD steps from `sys0` under `kernel`; return (ns/force-eval,
/// rebuilds, avg neighbors per molecule).
fn time_kernel(kernel: ForceKernel, sys0: &System, rc: f64, steps: u64) -> (f64, u64, f64) {
    let mut sys = sys0.clone();
    let mut engine = ForceEngine::with_skin(kernel, DEFAULT_SKIN);
    let mut f = engine.compute(&sys, rc);
    for _ in 0..steps {
        f = step(&mut sys, &f, DT_FS, rc, &mut engine);
    }
    let s = engine.stats();
    (s.ns_per_eval(), s.rebuilds, engine.avg_neighbors())
}

/// `kernel` vs naive on the fresh lattice, then again after `steps` of MD
/// under that kernel (stale-list reuse + at least one rebuild in the loop).
fn equivalence_err(kernel: ForceKernel, sys0: &System, rc: f64, steps: u64) -> f64 {
    let mut engine = ForceEngine::with_skin(kernel, DEFAULT_SKIN);
    let mut sys = sys0.clone();
    let mut f = engine.compute(&sys, rc);
    let worst = max_rel_err(&f, &compute_forces(&sys, rc));
    for _ in 0..steps {
        f = step(&mut sys, &f, DT_FS, rc, &mut engine);
    }
    worst.max(max_rel_err(&f, &compute_forces(&sys, rc)))
}

/// Sharded results must not depend on the worker count: evaluate the fresh
/// configuration under 1, 2, and 4 workers and demand bitwise equality.
fn sharded_is_worker_invariant(sys: &System, rc: f64) -> bool {
    let mut reference: Option<Forces> = None;
    for workers in [1usize, 2, 4] {
        let mut engine = ForceEngine::with_sharding(DEFAULT_SKIN, 8, workers);
        let out = engine.compute(sys, rc);
        match &reference {
            None => reference = Some(out),
            Some(r) => {
                if r.potential.to_bits() != out.potential.to_bits()
                    || r.virial.to_bits() != out.virial.to_bits()
                    || r.f != out.f
                {
                    return false;
                }
            }
        }
    }
    true
}

struct SizeResult {
    n: usize,
    rc: f64,
    box_len: f64,
    naive_ns_per_step: f64,
    cell_ns_per_step: f64,
    simd_ns_per_step: f64,
    sharded_ns_per_step: f64,
    cell_speedup_vs_naive: f64,
    simd_speedup_vs_cell: f64,
    rebuilds: u64,
    avg_neighbors: f64,
    cell_max_rel_err: f64,
    simd_max_rel_err: f64,
    sharded_max_rel_err: f64,
    sharded_worker_invariant: bool,
}

impl SizeResult {
    fn to_json(&self) -> String {
        format!(
            "  {{\n    \"n\": {},\n    \"rc\": {:.3},\n    \"box_len\": {:.3},\n    \
             \"naive_ns_per_step\": {:.1},\n    \"cell_ns_per_step\": {:.1},\n    \
             \"simd_ns_per_step\": {:.1},\n    \"sharded_ns_per_step\": {:.1},\n    \
             \"cell_speedup_vs_naive\": {:.3},\n    \"simd_speedup_vs_cell\": {:.3},\n    \
             \"rebuilds\": {},\n    \"avg_neighbors\": {:.2},\n    \
             \"cell_max_rel_err\": {:.3e},\n    \"simd_max_rel_err\": {:.3e},\n    \
             \"sharded_max_rel_err\": {:.3e},\n    \"sharded_worker_invariant\": {}\n  }}",
            self.n,
            self.rc,
            self.box_len,
            self.naive_ns_per_step,
            self.cell_ns_per_step,
            self.simd_ns_per_step,
            self.sharded_ns_per_step,
            self.cell_speedup_vs_naive,
            self.simd_speedup_vs_cell,
            self.rebuilds,
            self.avg_neighbors,
            self.cell_max_rel_err,
            self.simd_max_rel_err,
            self.sharded_max_rel_err,
            self.sharded_worker_invariant,
        )
    }
}

fn report_json(steps: u64, results: &[SizeResult]) -> String {
    let sizes: Vec<String> = results.iter().map(SizeResult::to_json).collect();
    format!(
        "{{\n  \"density_g_cm3\": {DENSITY},\n  \"temperature_k\": {TEMPERATURE},\n  \
         \"skin\": {DEFAULT_SKIN},\n  \"dt_fs\": {DT_FS},\n  \"steps\": {steps},\n  \
         \"sizes\": [\n{}\n  ]\n}}\n",
        sizes.join(",\n")
    )
}

fn main() {
    let mut out = std::path::PathBuf::from("BENCH_water.json");
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => {
                apply_smoke_defaults();
                smoke = true;
            }
            "--out" => match args.next() {
                Some(p) => out = p.into(),
                None => {
                    eprintln!("error: --out requires a path argument");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown argument `{other}`");
                eprintln!("usage: water_kernel_bench [--smoke] [--out <path>]");
                std::process::exit(2);
            }
        }
    }

    // Smoke still runs enough steps to leave the near-lattice start-up
    // regime: the first few dozen steps keep molecules close to their
    // ordered initial sites, which flatters the scalar kernel's cache
    // behavior and is not the configuration distribution production runs
    // spend their time in. ~100 steps is past the crossover and still
    // milliseconds per kernel.
    let (sizes, steps): (&[usize], u64) = if smoke {
        (&[64, 256, 512], 100)
    } else {
        (&[64, 256, 512, 1024, 2048], 300)
    };

    println!("water kernel bench: naive O(n\u{b2}) vs cell vs simd vs sharded (DESIGN.md \u{a7}10, \u{a7}15)");
    let mut results = Vec::with_capacity(sizes.len());
    for &n in sizes {
        let lattice = System::lattice_count(TIP4P, n, DENSITY, TEMPERATURE, 2_000 + n as u64);
        let rc = RC.min(lattice.box_len / 2.0);
        // Equilibrate off the artificial lattice before measuring anything:
        // for the first several dozen steps the molecules sit near their
        // ordered initial sites, a memory-access pattern no production run
        // ever sees again, and one that flatters the scalar kernel's cache
        // behavior. All kernels are then compared on the disordered
        // configuration the trajectory actually spends its time in. The
        // equilibration is deterministic (cell kernel, fixed step count),
        // so the benchmark remains reproducible.
        let sys = {
            let mut s = lattice;
            let mut engine = ForceEngine::with_skin(ForceKernel::CellList, DEFAULT_SKIN);
            let mut f = engine.compute(&s, rc);
            for _ in 0..300 {
                f = step(&mut s, &f, DT_FS, rc, &mut engine);
            }
            s
        };
        let cell_err = equivalence_err(ForceKernel::CellList, &sys, rc, steps.min(50));
        let simd_err = equivalence_err(ForceKernel::Simd, &sys, rc, steps.min(50));
        let sharded_err = equivalence_err(ForceKernel::Sharded, &sys, rc, steps.min(50));
        let invariant = sharded_is_worker_invariant(&sys, rc);
        // Best of three timed runs per kernel: the short smoke runs are
        // only a few ms, and shared-machine scheduler blips of ±15% per
        // run are routine — the minimum is the estimator least distorted
        // by interference, and the speedup gates below compare minima.
        let best = |kernel: ForceKernel, steps: u64| {
            let mut best = time_kernel(kernel, &sys, rc, steps);
            for _ in 0..2 {
                let t = time_kernel(kernel, &sys, rc, steps);
                if t.0 < best.0 {
                    best = t;
                }
            }
            best
        };
        // The O(n²) sweep at n ≥ 1024 takes tens of ms per step; a tenth of
        // the steps still averages hundreds of evals' worth of pair work.
        let naive_steps = if n > 512 { (steps / 10).max(5) } else { steps };
        let (naive_ns, _, _) = best(ForceKernel::Naive, naive_steps);
        let (cell_ns, rebuilds, avg_neighbors) = best(ForceKernel::CellList, steps);
        let (simd_ns, _, _) = best(ForceKernel::Simd, steps);
        let (sharded_ns, _, _) = best(ForceKernel::Sharded, steps);
        let r = SizeResult {
            n,
            rc,
            box_len: sys.box_len,
            naive_ns_per_step: naive_ns,
            cell_ns_per_step: cell_ns,
            simd_ns_per_step: simd_ns,
            sharded_ns_per_step: sharded_ns,
            cell_speedup_vs_naive: naive_ns / cell_ns.max(1.0),
            simd_speedup_vs_cell: cell_ns / simd_ns.max(1.0),
            rebuilds,
            avg_neighbors,
            cell_max_rel_err: cell_err,
            simd_max_rel_err: simd_err,
            sharded_max_rel_err: sharded_err,
            sharded_worker_invariant: invariant,
        };
        println!(
            "n={:4}: naive {:9.0} cell {:9.0} simd {:9.0} sharded {:9.0} ns/step | \
             cell/naive {:5.2}x, simd/cell {:5.2}x | rebuilds {}, avg nb {:.1}, \
             err c={:.1e} s={:.1e} sh={:.1e}, inv={}",
            r.n,
            r.naive_ns_per_step,
            r.cell_ns_per_step,
            r.simd_ns_per_step,
            r.sharded_ns_per_step,
            r.cell_speedup_vs_naive,
            r.simd_speedup_vs_cell,
            r.rebuilds,
            r.avg_neighbors,
            r.cell_max_rel_err,
            r.simd_max_rel_err,
            r.sharded_max_rel_err,
            r.sharded_worker_invariant,
        );
        results.push(r);
    }

    if let Err(e) = std::fs::write(&out, report_json(steps, &results)) {
        eprintln!("error: cannot write {}: {e}", out.display());
        std::process::exit(1);
    }
    println!("written to {}", out.display());

    let mut ok = true;
    for r in &results {
        let worst = r
            .cell_max_rel_err
            .max(r.simd_max_rel_err)
            .max(r.sharded_max_rel_err);
        if worst > EQUIV_TOL {
            eprintln!(
                "error: kernels disagree at n={} (max rel err {:.3e} > {EQUIV_TOL:.0e})",
                r.n, worst
            );
            ok = false;
        }
        if !r.sharded_worker_invariant {
            eprintln!(
                "error: sharded results depend on the worker count at n={}",
                r.n
            );
            ok = false;
        }
        if r.n == 256 && r.cell_speedup_vs_naive <= 1.0 {
            eprintln!(
                "error: cell list is not faster than naive at n=256 (speedup {:.3})",
                r.cell_speedup_vs_naive
            );
            ok = false;
        }
        if r.n == 512 && r.simd_speedup_vs_cell <= 1.0 {
            eprintln!(
                "error: simd kernel is not faster than cell at n=512 (speedup {:.3})",
                r.simd_speedup_vs_cell
            );
            ok = false;
        }
    }
    if !ok {
        std::process::exit(1);
    }
}
