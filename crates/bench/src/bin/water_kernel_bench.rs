//! Force-kernel exhibit (DESIGN.md §10): how much does the O(n) cell-list /
//! Verlet kernel buy over the naive O(n²) double loop, and do the two agree?
//!
//! For each system size the harness builds a liquid-density TIP4P box,
//! verifies naive and cell-list forces/energy/virial agree to 1e-10
//! relative (both on the fresh configuration and after a short trajectory
//! that exercises stale-list reuse), then times an MD run per kernel and
//! reports ns/step, the measured speedup, rebuild counts, and neighbor
//! statistics.
//!
//! Writes `BENCH_water.json`. Exits non-zero if the kernels disagree or if
//! the cell list fails to beat the naive kernel at n = 256.
//!
//! ```text
//! cargo run --release --bin water_kernel_bench -- [--smoke] [--out <path>]
//! ```

use repro_bench::apply_smoke_defaults;
use water_md::forces::{compute_forces, Forces};
use water_md::integrate::step;
use water_md::kernel::{ForceEngine, ForceKernel, DEFAULT_SKIN};
use water_md::system::System;
use water_md::TIP4P;

/// Liquid water at ambient conditions.
const DENSITY: f64 = 0.997;
const TEMPERATURE: f64 = 300.0;
/// Benchmark cutoff (Å), clamped to the half-box per size. Short enough
/// that the O(n²) sweep — not the in-cutoff force work shared by both
/// kernels — dominates the naive cost at n = 512 (see DESIGN.md §10).
const RC: f64 = 3.0;
const DT_FS: f64 = 1.0;
const EQUIV_TOL: f64 = 1e-10;

fn rel(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(b.abs()).max(1.0)
}

fn max_rel_err(a: &Forces, b: &Forces) -> f64 {
    let mut worst = rel(a.potential, b.potential).max(rel(a.virial, b.virial));
    for (fa, fb) in a.f.iter().zip(&b.f) {
        for (va, vb) in fa.iter().zip(fb) {
            worst = worst
                .max(rel(va.x, vb.x))
                .max(rel(va.y, vb.y))
                .max(rel(va.z, vb.z));
        }
    }
    worst
}

/// Run `steps` MD steps from `sys0` under `kernel`; return (ns/force-eval,
/// rebuilds, avg neighbors per molecule).
fn time_kernel(kernel: ForceKernel, sys0: &System, rc: f64, steps: u64) -> (f64, u64, f64) {
    let mut sys = sys0.clone();
    let mut engine = ForceEngine::with_skin(kernel, DEFAULT_SKIN);
    let mut f = engine.compute(&sys, rc);
    for _ in 0..steps {
        f = step(&mut sys, &f, DT_FS, rc, &mut engine);
    }
    let s = engine.stats();
    (s.ns_per_eval(), s.rebuilds, engine.avg_neighbors())
}

/// Naive vs cell-list on the fresh lattice, then again after `steps` of
/// cell-kernel MD (stale-list reuse + at least one rebuild in the loop).
fn equivalence_err(sys0: &System, rc: f64, steps: u64) -> f64 {
    let mut engine = ForceEngine::with_skin(ForceKernel::CellList, DEFAULT_SKIN);
    let mut sys = sys0.clone();
    let mut f = engine.compute(&sys, rc);
    let worst = max_rel_err(&f, &compute_forces(&sys, rc));
    for _ in 0..steps {
        f = step(&mut sys, &f, DT_FS, rc, &mut engine);
    }
    worst.max(max_rel_err(&f, &compute_forces(&sys, rc)))
}

struct SizeResult {
    n: usize,
    rc: f64,
    box_len: f64,
    naive_ns_per_step: f64,
    cell_ns_per_step: f64,
    speedup: f64,
    rebuilds: u64,
    avg_neighbors: f64,
    max_rel_err: f64,
}

impl SizeResult {
    fn to_json(&self) -> String {
        format!(
            "  {{\n    \"n\": {},\n    \"rc\": {:.3},\n    \"box_len\": {:.3},\n    \
             \"naive_ns_per_step\": {:.1},\n    \"cell_ns_per_step\": {:.1},\n    \
             \"speedup\": {:.3},\n    \"rebuilds\": {},\n    \
             \"avg_neighbors\": {:.2},\n    \"max_rel_err\": {:.3e}\n  }}",
            self.n,
            self.rc,
            self.box_len,
            self.naive_ns_per_step,
            self.cell_ns_per_step,
            self.speedup,
            self.rebuilds,
            self.avg_neighbors,
            self.max_rel_err,
        )
    }
}

fn report_json(steps: u64, results: &[SizeResult]) -> String {
    let sizes: Vec<String> = results.iter().map(SizeResult::to_json).collect();
    format!(
        "{{\n  \"density_g_cm3\": {DENSITY},\n  \"temperature_k\": {TEMPERATURE},\n  \
         \"skin\": {DEFAULT_SKIN},\n  \"dt_fs\": {DT_FS},\n  \"steps\": {steps},\n  \
         \"sizes\": [\n{}\n  ]\n}}\n",
        sizes.join(",\n")
    )
}

fn main() {
    let mut out = std::path::PathBuf::from("BENCH_water.json");
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => {
                apply_smoke_defaults();
                smoke = true;
            }
            "--out" => match args.next() {
                Some(p) => out = p.into(),
                None => {
                    eprintln!("error: --out requires a path argument");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown argument `{other}`");
                eprintln!("usage: water_kernel_bench [--smoke] [--out <path>]");
                std::process::exit(2);
            }
        }
    }

    let (sizes, steps): (&[usize], u64) = if smoke {
        (&[64, 256], 30)
    } else {
        (&[64, 256, 512], 300)
    };

    println!("water kernel bench: naive O(n\u{b2}) vs cell-list (DESIGN.md \u{a7}10)");
    let mut results = Vec::with_capacity(sizes.len());
    for &n in sizes {
        let sys = System::lattice_count(TIP4P, n, DENSITY, TEMPERATURE, 2_000 + n as u64);
        let rc = RC.min(sys.box_len / 2.0);
        let err = equivalence_err(&sys, rc, steps.min(50));
        // Best of two timed runs per kernel: the short smoke runs are only
        // a few ms and a scheduler blip would otherwise dominate them.
        let best = |kernel: ForceKernel| {
            let a = time_kernel(kernel, &sys, rc, steps);
            let b = time_kernel(kernel, &sys, rc, steps);
            if a.0 <= b.0 {
                a
            } else {
                b
            }
        };
        let (naive_ns, _, _) = best(ForceKernel::Naive);
        let (cell_ns, rebuilds, avg_neighbors) = best(ForceKernel::CellList);
        let r = SizeResult {
            n,
            rc,
            box_len: sys.box_len,
            naive_ns_per_step: naive_ns,
            cell_ns_per_step: cell_ns,
            speedup: naive_ns / cell_ns.max(1.0),
            rebuilds,
            avg_neighbors,
            max_rel_err: err,
        };
        println!(
            "n={:4}: naive {:9.0} ns/step, cell {:9.0} ns/step, speedup {:5.2}x, \
             rebuilds {}, avg neighbors {:.1}, max rel err {:.2e}",
            r.n,
            r.naive_ns_per_step,
            r.cell_ns_per_step,
            r.speedup,
            r.rebuilds,
            r.avg_neighbors,
            r.max_rel_err
        );
        results.push(r);
    }

    if let Err(e) = std::fs::write(&out, report_json(steps, &results)) {
        eprintln!("error: cannot write {}: {e}", out.display());
        std::process::exit(1);
    }
    println!("written to {}", out.display());

    let mut ok = true;
    for r in &results {
        if r.max_rel_err > EQUIV_TOL {
            eprintln!(
                "error: kernels disagree at n={} (max rel err {:.3e} > {EQUIV_TOL:.0e})",
                r.n, r.max_rel_err
            );
            ok = false;
        }
        if r.n == 256 && r.speedup <= 1.0 {
            eprintln!(
                "error: cell list is not faster than naive at n=256 (speedup {:.3})",
                r.speedup
            );
            ok = false;
        }
    }
    if !ok {
        std::process::exit(1);
    }
}
