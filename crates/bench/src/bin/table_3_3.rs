//! Table 3.3 — processor allocation for Rosenbrock optimization with the MW
//! framework, d ∈ {20, 50, 100}, Ns = 1.
//!
//! Note: the dissertation's printed table repeats "23" in the clients
//! column for all rows; the totals it prints (70/160/310) are only
//! consistent with the stated formula `(d+3)·Ns`, which is what we report.

use mw_framework::Allocation;
use repro_bench::csv_row;

fn main() {
    repro_bench::smoke_args();
    println!("# Table 3.3: MW processor allocation (Ns = 1)");
    csv_row(
        &[
            "d",
            "workers(d+3)",
            "servers(d+3)",
            "clients((d+3)Ns)",
            "total(dNs+3Ns+2d+7)",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>(),
    );
    for d in [20usize, 50, 100] {
        let a = Allocation::new(d, 1);
        csv_row(&[
            d.to_string(),
            a.workers().to_string(),
            a.servers().to_string(),
            a.clients().to_string(),
            a.total().to_string(),
        ]);
    }
}
