//! Fig 3.7 — PC with confidence multiplier k = 1 vs k = 2 on 4-d
//! Rosenbrock at σ0 = 1000. The paper finds no substantial difference.

use noisy_simplex::prelude::*;
use repro_bench::{final_minima, print_ratio_panel, replicates};
use stoch_eval::functions::Rosenbrock;
use stoch_eval::noise::ConstantNoise;
use stoch_eval::sampler::Noisy;

fn main() {
    repro_bench::smoke_args();
    let rosen = Rosenbrock::new(4);
    let n = replicates();
    let objective = Noisy::new(rosen, ConstantNoise(1000.0));
    println!("# Fig 3.7: PC k=1 vs k=2, Rosenbrock 4-d, noise=1000, {n} states");
    let pc = |k: f64| {
        SimplexMethod::Pc(PointComparison::with_params(PcParams {
            k,
            conditions: PcConditions::all(),
        }))
    };
    let k1 = final_minima(&objective, &rosen, &pc(1.0), 4, -5.0, 5.0, n, 1);
    let k2 = final_minima(&objective, &rosen, &pc(2.0), 4, -5.0, 5.0, n, 1);
    print_ratio_panel("log10(min k=1 / min k=2)", &k1, &k2);
}
