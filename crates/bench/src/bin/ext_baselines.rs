//! Extension experiment: the full optimizer roster — the paper's simplex
//! family against classical stochastic baselines (SPSA, simulated
//! annealing, PSO, random search, the PSO+MN hybrid, and multistart MN) on
//! the same noisy substrate and budget.
//!
//! Two workloads: unimodal-but-hard (Rosenbrock 4-d) and multimodal
//! (Rastrigin 2-d), which is where the global baselines and hybrids earn
//! their keep (paper §5.2).

use noisy_simplex::prelude::*;
use repro_bench::{csv_row, fmt};
use stoch_eval::functions::{Rastrigin, Rosenbrock};
use stoch_eval::noise::ConstantNoise;
use stoch_eval::objective::{Objective, StochasticObjective};
use stoch_eval::sampler::Noisy;

fn term() -> Termination {
    Termination {
        tolerance: Some(1e-6),
        max_time: Some(repro_bench::time_budget_or(3e4)),
        max_iterations: Some(repro_bench::iteration_cap_or(20_000)),
    }
}

fn sweep<F, O>(title: &str, objective: &F, underlying: &O, lo: f64, hi: f64)
where
    F: StochasticObjective,
    O: Objective,
{
    println!("\n## {title}");
    csv_row(
        &["method", "mean_true_f", "mean_iters"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    );
    let d = underlying.dim();
    let reps = 5u64;

    let report = |name: &str, f: &mut dyn FnMut(u64) -> RunResult| {
        let (mut sum_f, mut sum_it) = (0.0, 0.0);
        for s in 0..reps {
            let res = f(s);
            sum_f += underlying.value(&res.best_point).max(1e-12).log10();
            sum_it += res.iterations as f64;
        }
        csv_row(&[
            name.to_string(),
            format!("1e{}", fmt(sum_f / reps as f64)),
            fmt(sum_it / reps as f64),
        ]);
    };

    report("MN", &mut |s| {
        let init = init::random_uniform(d, lo, hi, 60 + s);
        MaxNoise::with_k(2.0).run(objective, init, term(), TimeMode::Parallel, s)
    });
    report("PC", &mut |s| {
        let init = init::random_uniform(d, lo, hi, 60 + s);
        PointComparison::new().run(objective, init, term(), TimeMode::Parallel, s)
    });
    report("SPSA", &mut |s| {
        let x0: Vec<f64> = init::random_uniform(d, lo, hi, 60 + s)[0].clone();
        Spsa::default().run(objective, x0, term(), TimeMode::Parallel, s)
    });
    report("SA", &mut |s| {
        let x0: Vec<f64> = init::random_uniform(d, lo, hi, 60 + s)[0].clone();
        SimulatedAnnealing::default().run(objective, x0, term(), TimeMode::Parallel, s)
    });
    report("PSO", &mut |s| {
        Pso::in_box(lo, hi).run(objective, term(), TimeMode::Parallel, s)
    });
    report("PSO+MN", &mut |s| {
        PsoSimplex::new(
            Pso::in_box(lo, hi),
            SimplexMethod::Mn(MaxNoise::with_k(2.0)),
        )
        .run(objective, term(), TimeMode::Parallel, s)
    });
    report("restart-MN", &mut |s| {
        RestartedSimplex::new(SimplexMethod::Mn(MaxNoise::with_k(2.0)), lo, hi).run(
            objective,
            term(),
            TimeMode::Parallel,
            s,
        )
    });
    report("random", &mut |s| {
        RandomSearch::new(lo, hi).run(objective, term(), TimeMode::Parallel, s)
    });
}

fn main() {
    repro_bench::smoke_args();
    println!("# Extension: optimizer roster under a shared 3e4 virtual-time budget");
    println!("# mean_true_f is the geometric mean of the true value at the result");

    let rosen = Rosenbrock::new(4);
    let obj = Noisy::new(rosen, ConstantNoise(10.0));
    sweep("Rosenbrock 4-d, sigma0 = 10", &obj, &rosen, -5.0, 5.0);

    let rast = Rastrigin::new(2);
    let obj = Noisy::new(rast, ConstantNoise(1.0));
    sweep(
        "Rastrigin 2-d (multimodal), sigma0 = 1",
        &obj,
        &rast,
        -5.0,
        5.0,
    );
}
