//! Fig 3.19 — oxygen–oxygen radial distribution functions:
//!
//! (a) the four initial (non-optimal) parameter vertices,
//! (b) parameters found by MN, (c) by PC, (d) by PC+MN,
//! each against the experimental curve and the published TIP4P model.
//!
//! Output: long-format CSV `panel,series,r,g`.

use noisy_simplex::prelude::*;
use repro_bench::{csv_row, harness_args, water_termination};
use water_md::cost::WaterObjective;
use water_md::reference::{Experiment, INITIAL_VERTICES};
use water_md::surrogate::SurrogateWater;

fn emit_curve(panel: &str, series: &str, f: impl Fn(f64) -> f64) {
    for i in 0..110 {
        let r = 2.0 + i as f64 * 0.09;
        csv_row(&[
            panel.to_string(),
            series.to_string(),
            format!("{r:.3}"),
            format!("{:.4}", f(r)),
        ]);
    }
}

fn main() {
    let args = harness_args();
    let registry = args.registry();
    let objective = WaterObjective::new(SurrogateWater);
    let init: Vec<Vec<f64>> = INITIAL_VERTICES[..4].iter().map(|v| v.to_vec()).collect();
    let term = water_termination();

    println!("# Fig 3.19: gOO(r) panels");
    csv_row(
        &["panel", "series", "r", "g"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    );

    // Panel (a): initial non-optimal vertices.
    for (i, v) in init.iter().enumerate() {
        let p = [v[0], v[1], v[2]];
        emit_curve("a", &format!("vertex{}", i + 1), |r| {
            SurrogateWater.g_oo_curve(&p, r)
        });
    }
    emit_curve("a", "experiment", Experiment::g_oo);

    // Panels (b)-(d): optimized models vs experiment vs TIP4P.
    let tip4p = [0.1550, 3.1540, 0.5200];
    let methods: [(&str, SimplexMethod); 3] = [
        ("b_MN", SimplexMethod::Mn(MaxNoise::with_k(2.0))),
        ("c_PC", SimplexMethod::Pc(PointComparison::new())),
        ("d_PC+MN", SimplexMethod::PcMn(PcMn::new())),
    ];
    for (panel, method) in methods {
        let res = method.run_with_metrics(
            &objective,
            init.clone(),
            term,
            TimeMode::Parallel,
            11,
            registry.as_ref(),
        );
        let p = [res.best_point[0], res.best_point[1], res.best_point[2]];
        emit_curve(panel, "optimized", |r| SurrogateWater.g_oo_curve(&p, r));
        emit_curve(panel, "TIP4P", |r| SurrogateWater.g_oo_curve(&tip4p, r));
        emit_curve(panel, "experiment", Experiment::g_oo);
    }
    args.write_metrics(registry.as_ref());
}
