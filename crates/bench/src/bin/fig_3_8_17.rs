//! Figs 3.8–3.17 — the PC error-bar condition-set ablations on 4-d
//! Rosenbrock at σ0 = 1000, averaged over 100 initial simplexes:
//!
//! * Fig 3.8  — c1 only vs c6 only
//! * Figs 3.9–3.15 — each single condition c1…c7 vs the strict c1-7
//! * Fig 3.16 — c1 only vs c136
//! * Fig 3.17 — c136 vs c1-7
//!
//! Paper conclusions to check: any single condition beats c1-7; c1 beats
//! c6; c136 beats c1-7 but not c1 alone.

use noisy_simplex::prelude::*;
use repro_bench::{final_minima, print_ratio_panel, replicates};
use stoch_eval::functions::Rosenbrock;
use stoch_eval::noise::ConstantNoise;
use stoch_eval::sampler::Noisy;

fn pc(conds: PcConditions) -> SimplexMethod {
    SimplexMethod::Pc(PointComparison::with_params(PcParams {
        k: 1.0,
        conditions: conds,
    }))
}

fn main() {
    repro_bench::smoke_args();
    let rosen = Rosenbrock::new(4);
    let n = replicates();
    let objective = Noisy::new(rosen, ConstantNoise(1000.0));
    println!("# Figs 3.8-3.17: PC condition ablations, Rosenbrock 4-d, noise=1000, {n} states");

    let run = |conds: PcConditions| -> Vec<f64> {
        final_minima(&objective, &rosen, &pc(conds), 4, -5.0, 5.0, n, 1)
    };

    // Evaluate each variant once and reuse across panels.
    let singles: Vec<Vec<f64>> = (1..=7).map(|c| run(PcConditions::only(&[c]))).collect();
    let all = run(PcConditions::all());
    let c136 = run(PcConditions::only(&[1, 3, 6]));

    print_ratio_panel("Fig 3.8: log10(c1 / c6)", &singles[0], &singles[5]);
    for c in 1..=7usize {
        print_ratio_panel(
            &format!("Fig 3.{}: log10(c{c} / c1-7)", 8 + c),
            &singles[c - 1],
            &all,
        );
    }
    print_ratio_panel("Fig 3.16: log10(c1 / c136)", &singles[0], &c136);
    print_ratio_panel("Fig 3.17: log10(c136 / c1-7)", &c136, &all);
}
