//! Fig 3.4 — best function value vs virtual time for the MN algorithm
//! (k ∈ {2,3,4,5}) and the Anderson criterion (k1 ∈ {2⁰,2¹⁰,2²⁰,2³⁰}),
//! from five different initial simplexes on noisy 3-d Rosenbrock.
//!
//! Output: long-format CSV `input,method,param,time,best_true` — one series
//! per (input, method, param), the ten panels of the figure.

use noisy_simplex::prelude::*;
use repro_bench::{csv_row, standard_termination};
use stoch_eval::functions::Rosenbrock;
use stoch_eval::noise::ConstantNoise;
use stoch_eval::sampler::Noisy;

fn emit_series(input: u64, method: &str, param: &str, res: &RunResult) {
    // Thin the trace to ≤ 60 points per series to keep the output readable.
    let pts = res.trace.points();
    let stride = (pts.len() / 60).max(1);
    for p in pts.iter().step_by(stride) {
        csv_row(&[
            input.to_string(),
            method.to_string(),
            param.to_string(),
            format!("{:.1}", p.time),
            format!("{:.6e}", p.best_true.unwrap_or(p.best_observed)),
        ]);
    }
}

fn main() {
    repro_bench::smoke_args();
    let objective = Noisy::new(Rosenbrock::new(3), ConstantNoise(100.0));
    println!("# Fig 3.4: value vs time, MN (left) vs Anderson (right), 5 inputs");
    csv_row(
        &["input", "method", "param", "time", "best_true"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    );
    for input in 1..=5u64 {
        let init = init::random_uniform(3, -6.0, 3.0, 100 + input);
        for k in [2.0, 3.0, 4.0, 5.0] {
            let res = MaxNoise::with_k(k).run(
                &objective,
                init.clone(),
                standard_termination(),
                TimeMode::Parallel,
                input * 10 + k as u64,
            );
            emit_series(input, "MN", &format!("k={k}"), &res);
        }
        for e in [0, 10, 20, 30] {
            let res = AndersonNm::with_k1(2f64.powi(e)).run(
                &objective,
                init.clone(),
                standard_termination(),
                TimeMode::Parallel,
                input * 100 + e as u64,
            );
            emit_series(input, "Anderson", &format!("k1=2^{e}"), &res);
        }
    }
}
