//! Extension experiment (paper §5.2 future work): algorithm behaviour under
//! varying dimensionality. The paper tested d = 2, 3, 4 only; this sweep
//! runs DET/MN/PC on noisy Rosenbrock for d ∈ {2, 3, 4, 6, 8} and reports
//! the paper's three measures per method.

use noisy_simplex::prelude::*;
use repro_bench::{csv_row, fmt, standard_termination};
use stoch_eval::functions::Rosenbrock;
use stoch_eval::noise::ConstantNoise;
use stoch_eval::objective::Objective;
use stoch_eval::sampler::Noisy;

fn main() {
    repro_bench::smoke_args();
    println!("# Extension: dimensionality sweep, noisy Rosenbrock (sigma0=100), 5 seeds each");
    csv_row(
        &["d", "method", "mean_N", "mean_R", "mean_D"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    );
    for d in [2usize, 3, 4, 6, 8] {
        let rosen = Rosenbrock::new(d);
        let objective = Noisy::new(rosen, ConstantNoise(100.0));
        let minimizer = rosen.minimizer().unwrap();
        let methods: [(&str, SimplexMethod); 3] = [
            ("DET", SimplexMethod::Det(Det::new())),
            ("MN", SimplexMethod::Mn(MaxNoise::with_k(2.0))),
            ("PC", SimplexMethod::Pc(PointComparison::new())),
        ];
        for (name, m) in methods {
            let (mut n, mut r, mut dist) = (0.0, 0.0, 0.0);
            let reps = 5;
            for s in 0..reps {
                let init = init::random_uniform(d, -6.0, 3.0, 40 + s);
                let res = m.run(
                    &objective,
                    init,
                    standard_termination(),
                    TimeMode::Parallel,
                    s,
                );
                let meas = res.measures(&objective, &minimizer, 0.0);
                n += meas.n as f64;
                r += meas.r;
                dist += meas.d;
            }
            let k = reps as f64;
            csv_row(&[
                d.to_string(),
                name.to_string(),
                fmt(n / k),
                fmt(r / k),
                fmt(dist / k),
            ]);
        }
    }
}
