//! Fig 3.3 — the Rosenbrock "banana" surface: a grid dump of
//! `f(x, y) = (1−x)² + 100(y − x²)²` over the paper's plotting window,
//! suitable for gnuplot `splot`.

use repro_bench::csv_row;
use stoch_eval::functions::Rosenbrock;
use stoch_eval::objective::Objective;

fn main() {
    repro_bench::smoke_args();
    println!("# Fig 3.3: Rosenbrock surface, x in [-2, 2.5], y in [-1, 2]");
    csv_row(
        &["x", "y", "f"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    );
    let f = Rosenbrock::new(2);
    let (nx, ny) = (46, 31);
    for i in 0..=nx {
        let x = -2.0 + i as f64 * 4.5 / nx as f64;
        for j in 0..=ny {
            let y = -1.0 + j as f64 * 3.0 / ny as f64;
            csv_row(&[
                format!("{x:.3}"),
                format!("{y:.3}"),
                format!("{:.6e}", f.value(&[x, y])),
            ]);
        }
    }
}
