//! Crash-recovery exhibit (DESIGN.md §11): does a run SIGKILLed mid-flight
//! recover bit-identically from its last durable checkpoint, and what does
//! the checkpoint write cost per round?
//!
//! Three legs, all on the same seed:
//!
//! 1. **Golden** — MN on empirical noisy Rosenbrock runs uninterrupted
//!    in-process, with run accounting attached.
//! 2. **Crash + resume** — the same configuration is re-run in a *child
//!    process* (`--run-child`, spawned from this binary) whose streams are
//!    slowed so the kill lands mid-run. The child checkpoints every
//!    iteration; the parent polls the checkpoint until it reaches
//!    `--kill-at` iterations, then delivers a real SIGKILL. The run is then
//!    resumed in-process from the survivor file and must match the golden
//!    run bit for bit — best point, values, counters, trace length, and the
//!    full accounting summary.
//! 3. **Write overhead** — a real snapshot payload is written (atomic tmp +
//!    fsync + rename, retention on) repeatedly and the mean cost is gated
//!    at < 2% of a representative sampling round. The round time is
//!    measured on a sampling-bound objective (a 5 ms floor per extension —
//!    orders of magnitude below the minutes-long MD rounds of the paper's
//!    deployment, so the gate is conservative).
//!
//! Writes `BENCH_checkpoint.json`. Exits non-zero if the child was not
//! killed mid-run, recovery is not bit-identical, or the write overhead
//! breaches the gate.
//!
//! ```text
//! cargo run --release --bin crash_resume -- [--smoke] [--kill-at <N>] [--out <path>]
//! ```

use noisy_simplex::engine::Engine;
use noisy_simplex::prelude::*;
use obs::MetricsRegistry;
use repro_bench::{apply_smoke_defaults, iteration_cap_or, time_budget_or};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use stoch_eval::codec::{CodecError, Reader, Writer};
use stoch_eval::functions::Rosenbrock;
use stoch_eval::noise::ConstantNoise;
use stoch_eval::objective::{Estimate, SampleStream, StochasticObjective};
use stoch_eval::sampler::{Noisy, NoisyStream};

/// Wall-clock microseconds each stream extension sleeps. Zero in the parent
/// (golden + resume legs); non-zero in the crash child so the SIGKILL lands
/// mid-run, and in the representative-round measurement. Sleeping changes
/// nothing observable: virtual clocks and RNG draws are wall-time free.
static SLEEP_US: AtomicU64 = AtomicU64::new(0);

/// [`NoisyStream`] slowed by [`SLEEP_US`]. Persistence delegates to the
/// inner stream, so checkpoints written by a slow child are byte-identical
/// to ones a fast run would write.
#[derive(Debug, Clone)]
struct SlowStream(NoisyStream);

impl SampleStream for SlowStream {
    fn extend(&mut self, dt: f64) {
        let us = SLEEP_US.load(Ordering::Relaxed);
        if us > 0 {
            std::thread::sleep(Duration::from_micros(us));
        }
        self.0.extend(dt);
    }
    fn estimate(&self) -> Estimate {
        self.0.estimate()
    }
    fn save_state(&self, w: &mut Writer) -> Result<(), CodecError> {
        self.0.save_state(w)
    }
    fn load_state(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(SlowStream(NoisyStream::load_state(r)?))
    }
    fn nonfinite_samples(&self) -> u64 {
        self.0.nonfinite_samples()
    }
}

struct SlowObjective(Noisy<Rosenbrock, ConstantNoise>);

impl StochasticObjective for SlowObjective {
    type Stream = SlowStream;
    fn dim(&self) -> usize {
        self.0.dim()
    }
    fn open(&self, x: &[f64], seed: u64) -> SlowStream {
        SlowStream(self.0.open(x, seed))
    }
    fn true_value(&self, x: &[f64]) -> Option<f64> {
        self.0.true_value(x)
    }
}

const D: usize = 3;
const SEED: u64 = 42;

fn objective() -> SlowObjective {
    SlowObjective(Noisy::empirical(
        Rosenbrock::new(D),
        ConstantNoise(2.0),
        0.25,
    ))
}

fn term() -> Termination {
    Termination {
        tolerance: Some(1e-6),
        max_time: Some(time_budget_or(3_000.0)),
        max_iterations: Some(iteration_cap_or(150)),
    }
}

fn method(checkpoint: Option<CheckpointConfig>) -> MaxNoise {
    let mut mn = MaxNoise::with_k(2.0);
    mn.cfg.backend = BackendChoice::Serial;
    mn.cfg.checkpoint = checkpoint;
    mn
}

fn initial_simplex() -> Vec<Vec<f64>> {
    init::random_uniform(D, -2.0, 2.0, SEED)
}

fn same_result(a: &RunResult, b: &RunResult) -> bool {
    a.best_point == b.best_point
        && a.best_observed.to_bits() == b.best_observed.to_bits()
        && a.iterations == b.iterations
        && a.elapsed.to_bits() == b.elapsed.to_bits()
        && a.total_sampling.to_bits() == b.total_sampling.to_bits()
        && a.stop == b.stop
        && a.trace.points().len() == b.trace.points().len()
}

/// Child mode: run with per-iteration checkpointing and slowed streams
/// until the parent's SIGKILL arrives (or termination, if the kill never
/// comes — the parent treats that as a failure).
fn run_child(path: &Path) -> ! {
    SLEEP_US.store(3_000, Ordering::Relaxed);
    let mn = method(Some(CheckpointConfig {
        path: path.to_path_buf(),
        every: 1,
        retain: true,
    }));
    let reg = MetricsRegistry::new();
    let obj = objective();
    let _ = mn.run_with_metrics(
        &obj,
        initial_simplex(),
        term(),
        TimeMode::Parallel,
        SEED,
        Some(&reg),
    );
    std::process::exit(0);
}

/// Poll the checkpoint until it reports at least `kill_at` iterations, then
/// SIGKILL the child. Returns the iteration count observed at kill time.
fn kill_when_ready(
    child: &mut std::process::Child,
    path: &Path,
    kill_at: u64,
) -> Result<u64, String> {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(info) = noisy_simplex::checkpoint::inspect(path) {
            if info.iterations >= kill_at {
                // `Child::kill` delivers SIGKILL on Unix: no destructors, no
                // flush — the only state the run keeps is the checkpoint.
                child.kill().map_err(|e| format!("kill failed: {e}"))?;
                let status = child.wait().map_err(|e| format!("wait failed: {e}"))?;
                if status.success() {
                    return Err("child finished before the kill landed".into());
                }
                return Ok(info.iterations);
            }
        }
        if let Ok(Some(status)) = child.try_wait() {
            return Err(format!("child exited early with {status}"));
        }
        if Instant::now() > deadline {
            let _ = child.kill();
            let _ = child.wait();
            return Err("timed out waiting for the checkpoint to advance".into());
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Mean wall-clock cost of one durable checkpoint write (atomic + fsync +
/// retention), using a real snapshot payload.
fn mean_write_secs(payload: &[u8], path: &Path) -> f64 {
    const REPS: u32 = 30;
    let t0 = Instant::now();
    for _ in 0..REPS {
        noisy_simplex::checkpoint::save(path, true, payload).expect("bench write");
    }
    let secs = t0.elapsed().as_secs_f64() / f64::from(REPS);
    cleanup(path);
    secs
}

/// Wall-clock per iteration on a sampling-bound objective (5 ms floor per
/// stream extension) — the representative round the overhead gate divides
/// by.
fn representative_round_secs() -> f64 {
    SLEEP_US.store(5_000, Ordering::Relaxed);
    let mn = method(None);
    let t = Termination {
        tolerance: None,
        max_time: None,
        max_iterations: Some(8),
    };
    let obj = objective();
    let t0 = Instant::now();
    let res = mn.run(&obj, initial_simplex(), t, TimeMode::Parallel, SEED);
    let secs = t0.elapsed().as_secs_f64();
    SLEEP_US.store(0, Ordering::Relaxed);
    secs / res.iterations.max(1) as f64
}

fn cleanup(path: &Path) {
    for suffix in ["", ".1", ".tmp"] {
        let mut p = path.as_os_str().to_os_string();
        p.push(suffix);
        let _ = std::fs::remove_file(PathBuf::from(p));
    }
}

struct Report {
    golden_secs: f64,
    golden_iterations: u64,
    killed_at_iteration: u64,
    resume_identical: bool,
    metrics_identical: bool,
    write_usecs: f64,
    round_usecs: f64,
    overhead_pct: f64,
}

impl Report {
    fn ok(&self) -> bool {
        self.resume_identical && self.metrics_identical && self.overhead_pct < 2.0
    }

    fn to_json(&self) -> String {
        format!(
            "{{\n  \"golden_secs\": {:.6},\n  \"golden_iterations\": {},\n  \
             \"killed_at_iteration\": {},\n  \"resume_identical\": {},\n  \
             \"metrics_identical\": {},\n  \"write_usecs\": {:.2},\n  \
             \"round_usecs\": {:.2},\n  \"overhead_pct\": {:.4},\n  \
             \"overhead_ok\": {}\n}}\n",
            self.golden_secs,
            self.golden_iterations,
            self.killed_at_iteration,
            self.resume_identical,
            self.metrics_identical,
            self.write_usecs,
            self.round_usecs,
            self.overhead_pct,
            self.overhead_pct < 2.0,
        )
    }
}

fn main() {
    let mut out = PathBuf::from("BENCH_checkpoint.json");
    let mut kill_at: u64 = 3;
    let mut child_path: Option<PathBuf> = None;
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => {
                smoke = true;
                apply_smoke_defaults();
            }
            "--kill-at" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => kill_at = n,
                None => die("--kill-at requires an integer argument"),
            },
            "--out" => match args.next() {
                Some(p) => out = p.into(),
                None => die("--out requires a path argument"),
            },
            "--run-child" => match args.next() {
                Some(p) => child_path = Some(p.into()),
                None => die("--run-child requires a checkpoint path"),
            },
            other => die(&format!(
                "unknown argument `{other}`\nusage: crash_resume [--smoke] [--kill-at <N>] [--out <path>]"
            )),
        }
    }
    if let Some(path) = child_path {
        run_child(&path);
    }

    println!("crash resume: durable checkpoint recovery (DESIGN.md \u{a7}11)");

    // Leg 1: golden uninterrupted run.
    let obj = objective();
    let golden_reg = MetricsRegistry::new();
    let t0 = Instant::now();
    let golden = method(None).run_with_metrics(
        &obj,
        initial_simplex(),
        term(),
        TimeMode::Parallel,
        SEED,
        Some(&golden_reg),
    );
    let golden_secs = t0.elapsed().as_secs_f64();
    println!(
        "golden: {} iterations in {:.3}s, stop {:?}",
        golden.iterations, golden_secs, golden.stop
    );
    if golden.iterations <= kill_at {
        die(&format!(
            "golden run too short ({} iterations) to kill at {kill_at}",
            golden.iterations
        ));
    }

    // Leg 2: crash a child mid-run, resume from its checkpoint.
    let ckpt = std::env::temp_dir().join(format!("nsx_crash_resume_{}.bin", std::process::id()));
    cleanup(&ckpt);
    let exe = std::env::current_exe().expect("current_exe");
    let mut cmd = std::process::Command::new(exe);
    cmd.arg("--run-child").arg(&ckpt);
    if smoke {
        cmd.arg("--smoke");
    }
    let mut child = cmd.spawn().expect("spawn crash child");
    let killed_at_iteration = match kill_when_ready(&mut child, &ckpt, kill_at) {
        Ok(n) => n,
        Err(e) => {
            cleanup(&ckpt);
            die(&format!("crash leg failed: {e}"));
        }
    };
    println!("child SIGKILLed at iteration {killed_at_iteration}");

    let resume_reg = MetricsRegistry::new();
    let resumed = match method(Some(CheckpointConfig {
        path: ckpt.clone(),
        every: 1,
        retain: true,
    }))
    .resume_with_metrics(&obj, &ckpt, Some(term()), Some(&resume_reg))
    {
        Ok(r) => r,
        Err(e) => {
            cleanup(&ckpt);
            die(&format!("resume from crashed checkpoint failed: {e}"));
        }
    };
    let resume_identical = same_result(&golden, &resumed);
    let metrics_identical = golden.metrics == resumed.metrics;
    println!("resume: identical {resume_identical}, accounting identical {metrics_identical}");

    // Leg 3: checkpoint write overhead against a representative round.
    let eng = Engine::new(
        &obj,
        initial_simplex(),
        method(None).cfg.clone(),
        term(),
        TimeMode::Parallel,
        SEED,
    );
    let payload = eng.snapshot().expect("snapshot");
    drop(eng);
    let write_secs = mean_write_secs(&payload, &ckpt);
    let round_secs = representative_round_secs();
    let overhead_pct = 100.0 * write_secs / round_secs;
    println!(
        "overhead: write {:.1}us, round {:.1}us, {overhead_pct:.3}% (gate < 2%)",
        write_secs * 1e6,
        round_secs * 1e6
    );
    cleanup(&ckpt);

    let report = Report {
        golden_secs,
        golden_iterations: golden.iterations,
        killed_at_iteration,
        resume_identical,
        metrics_identical,
        write_usecs: write_secs * 1e6,
        round_usecs: round_secs * 1e6,
        overhead_pct,
    };
    if let Err(e) = std::fs::write(&out, report.to_json()) {
        eprintln!("error: cannot write {}: {e}", out.display());
        std::process::exit(1);
    }
    println!("written to {}", out.display());

    if !report.ok() {
        eprintln!("error: crash recovery broke the bit-identical contract or the overhead gate");
        std::process::exit(1);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
