//! Service-resilience exhibit (DESIGN.md §16): the chaos storm.
//!
//! PR-10's resilience features — straggler hedging, heartbeat liveness,
//! respawn backoff, run quarantine — all promise the same thing: they buy
//! latency and availability without touching a single result bit. This
//! exhibit composes every fault axis at once and checks that promise.
//!
//! Three legs:
//!
//! 1. **Hedging vs a straggler** — a two-worker threaded backend where one
//!    worker sleeps on every job. Round latency (p50/p99 over repeated
//!    batches) is measured with hedging off and on; the hedged p99 must
//!    come in at ≤ 0.5× the unhedged p99, and every hedged batch must stay
//!    bit-identical to inline serial extension.
//! 2. **The storm** — a multi-run fleet (four drivers, hostile student-t +
//!    contamination noise) where one run rides a threaded backend under
//!    kill/delay/drop faults and another rides the process transport under
//!    kill + net-delay/drop/reorder faults. Every storm result must be
//!    bit-identical to its clean solo serial baseline.
//! 3. **Quarantine** — a run whose dedicated backend burns its entire
//!    respawn budget is evicted to a checkpoint, readmitted onto the shared
//!    fleet, and must finish bit-identical to a clean solo run, tagged
//!    `RunNote::Quarantined`.
//!
//! Writes `BENCH_resilience.json`. Exits non-zero if any gate fails.
//!
//! ```text
//! cargo run --release --bin resilience_storm -- [--smoke] [--out <path>]
//! ```

use mw_framework::resilience::HedgePolicy;
use mw_framework::ThreadedBackend;
use noisy_simplex::prelude::*;
use nsx_sched::{RunSpec, SchedConfig, Scheduler};
use obs::MetricsRegistry;
use repro_bench::apply_smoke_defaults;
use std::sync::Arc;
use std::time::{Duration, Instant};
use stoch_eval::backend::{SamplingBackend, SerialBackend, StreamJob};
use stoch_eval::functions::Rosenbrock;
use stoch_eval::noise::ConstantNoise;
use stoch_eval::objective::SampleStream;
use stoch_eval::sampler::{GaussianStream, Noisy};
use stoch_eval::NoiseDistribution;

/// Serial reference config: in-process transport pinned explicitly so an
/// ambient `NSX_TRANSPORT=process` cannot reroute the baseline.
fn serial_cfg() -> SimplexConfig {
    SimplexConfig {
        backend: BackendChoice::Serial,
        transport: TransportChoice::Inproc,
        ..SimplexConfig::default()
    }
}

fn term(iters: u64) -> Termination {
    Termination {
        tolerance: None,
        max_time: None,
        max_iterations: Some(iters),
    }
}

/// A per-attempt timeout short enough to recover dropped frames inside the
/// exhibit's budget but far above the injected straggler delay, so retries
/// never race the hedges being measured.
fn chaos_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 5,
        timeout: Some(Duration::from_millis(500)),
        backoff: Duration::from_millis(1),
    }
}

fn same_result(a: &RunResult, b: &RunResult) -> bool {
    a.best_point == b.best_point
        && a.best_observed.to_bits() == b.best_observed.to_bits()
        && a.iterations == b.iterations
        && a.elapsed.to_bits() == b.elapsed.to_bits()
        && a.total_sampling.to_bits() == b.total_sampling.to_bits()
        && a.stop == b.stop
        && a.trace.points().len() == b.trace.points().len()
}

fn make_batch(n: usize) -> Vec<StreamJob<GaussianStream>> {
    (0..n)
        .map(|i| StreamJob {
            slot: i,
            dt: 1.0 + i as f64 * 0.25,
            stream: GaussianStream::new(i as f64, 3.0, 100 + i as u64),
        })
        .collect()
}

/// Extend one batch through `backend`, returning the round's wall-clock and
/// whether the results matched inline serial extension bit for bit.
fn timed_round(backend: &dyn SamplingBackend<GaussianStream>, n: usize) -> (f64, bool) {
    let jobs = make_batch(n);
    let mut reference: Vec<GaussianStream> = jobs.iter().map(|j| j.stream.clone()).collect();
    for (r, j) in reference.iter_mut().zip(&jobs) {
        r.extend(j.dt);
    }
    let t = Instant::now();
    let out = backend.extend_batch(jobs);
    let secs = t.elapsed().as_secs_f64();
    let identical = out.len() == n
        && out.iter().zip(&reference).enumerate().all(|(i, (j, r))| {
            let (a, b) = (j.stream.estimate(), r.estimate());
            j.slot == i
                && a.value.to_bits() == b.value.to_bits()
                && a.std_err.to_bits() == b.std_err.to_bits()
                && a.time.to_bits() == b.time.to_bits()
        });
    (secs * 1e3, identical)
}

/// The `q`-quantile of `xs` by nearest-rank on the sorted sample.
fn quantile_ms(xs: &[f64], q: f64) -> f64 {
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    sorted[((sorted.len() - 1) as f64 * q).round() as usize]
}

struct HedgeLeg {
    unhedged_p50: f64,
    unhedged_p99: f64,
    hedged_p50: f64,
    hedged_p99: f64,
    launched: u64,
    wins: u64,
    identical: bool,
}

/// Leg 1: round latency with and without hedging, same straggler plan.
fn hedge_leg(rounds: usize, straggle_ms: u64) -> HedgeLeg {
    let straggler = || FaultPlan::none().delay(0, 0, straggle_ms);
    let policy = HedgePolicy::parse("on:q=0.5:factor=1:min_ms=2:warmup=3").unwrap();
    let mut identical = true;

    let unhedged = ThreadedBackend::with_options(2, straggler(), chaos_retry(), 4, None);
    let reg = MetricsRegistry::new();
    let hedged = ThreadedBackend::with_options(2, straggler(), chaos_retry(), 4, Some(&reg))
        .with_hedge(policy);

    // Prime both pools (and the hedged pool's latency estimator) before
    // timing: the first hedged rounds run blind until `warmup` completions.
    for backend in [&unhedged, &hedged] {
        for _ in 0..3 {
            let (_, ok) = timed_round(backend, 8);
            identical &= ok;
        }
    }

    let mut measure = |backend: &ThreadedBackend| -> Vec<f64> {
        (0..rounds)
            .map(|_| {
                let (ms, ok) = timed_round(backend, 8);
                identical &= ok;
                ms
            })
            .collect()
    };
    let base = measure(&unhedged);
    let fast = measure(&hedged);

    HedgeLeg {
        unhedged_p50: quantile_ms(&base, 0.50),
        unhedged_p99: quantile_ms(&base, 0.99),
        hedged_p50: quantile_ms(&fast, 0.50),
        hedged_p99: quantile_ms(&fast, 0.99),
        launched: reg.counter("mw.hedge.launched").get(),
        wins: reg.counter("mw.hedge.wins").get(),
        identical,
    }
}

/// Leg 2: four drivers under hostile noise, two of them behind chaos-laden
/// dedicated backends, time-sliced on one fleet. Returns (runs, identical).
fn storm_leg() -> (usize, bool) {
    let obj = Noisy::new(Rosenbrock::new(2), ConstantNoise(6.0))
        .with_distribution(NoiseDistribution::student_t(3.0).with_contamination(0.05, 20.0));
    let init = |seed: u64| init::random_uniform(2, -3.0, 3.0, seed);
    let drivers = [
        Driver::Det,
        Driver::Mn(Default::default()),
        Driver::Pc(Default::default()),
        Driver::PcMn(Default::default(), Default::default()),
    ];

    // Worker-side chaos on a dedicated threaded pool: a kill, a per-job
    // delay, and a swallowed result.
    let thread_chaos = SimplexConfig {
        backend: BackendChoice::Threaded { workers: 3 },
        transport: TransportChoice::Inproc,
        faults: Some(
            FaultPlan::none()
                .kill(0, 2)
                .delay(1, 0, 1)
                .drop_result(2, 1),
        ),
        retry: chaos_retry(),
        ..SimplexConfig::default()
    };
    // Wire-side chaos on a dedicated process pool: a kill plus net delay,
    // a dropped frame, and a reordered frame (heartbeats stay on defaults).
    let wire_chaos = SimplexConfig {
        backend: BackendChoice::Threaded { workers: 2 },
        transport: TransportChoice::Process,
        faults: Some(
            FaultPlan::none()
                .kill(0, 2)
                .net_delay(1, 0, 2)
                .net_drop(0, 3)
                .reorder(1, 5),
        ),
        retry: chaos_retry(),
        ..SimplexConfig::default()
    };
    let configs = [thread_chaos, wire_chaos, serial_cfg(), serial_cfg()];

    let solos: Vec<RunResult> = drivers
        .iter()
        .enumerate()
        .map(|(i, &d)| {
            RunSession::new(
                &obj,
                init(40 + i as u64),
                serial_cfg(),
                term(20),
                TimeMode::Parallel,
                40 + i as u64,
                d,
            )
            .run_to_completion()
        })
        .collect();

    let mut sched = Scheduler::new(
        SchedConfig {
            width: 2,
            quantum: 3,
        },
        Arc::new(SerialBackend),
    );
    let ids: Vec<u64> = drivers
        .iter()
        .zip(configs)
        .enumerate()
        .map(|(i, (&d, cfg))| {
            sched
                .admit(RunSpec::new(
                    &obj,
                    init(40 + i as u64),
                    cfg,
                    term(20),
                    TimeMode::Parallel,
                    40 + i as u64,
                    d,
                ))
                .expect("storm run admits")
        })
        .collect();
    sched.run();

    let identical = ids
        .iter()
        .zip(&solos)
        .all(|(&id, solo)| sched.result(id).is_some_and(|got| same_result(solo, got)));
    (ids.len(), identical)
}

struct QuarantineLeg {
    quarantined: u64,
    readmitted: bool,
    noted: bool,
    identical: bool,
}

/// Leg 3: budget exhaustion → quarantine → readmission → clean-solo bits.
fn quarantine_leg() -> QuarantineLeg {
    let obj = Noisy::new(Rosenbrock::new(2), ConstantNoise(6.0));
    let init = |seed: u64| init::random_uniform(2, -3.0, 3.0, seed);
    let doomed_cfg = SimplexConfig {
        backend: BackendChoice::Threaded { workers: 1 },
        transport: TransportChoice::Inproc,
        faults: Some(FaultPlan::none().kill(0, 2)),
        respawn_budget: Some(0),
        ..SimplexConfig::default()
    };

    let clean_solo = RunSession::new(
        &obj,
        init(60),
        serial_cfg(),
        term(15),
        TimeMode::Parallel,
        60,
        Driver::Det,
    )
    .run_to_completion();

    let mut sched = Scheduler::new(
        SchedConfig {
            width: 1,
            quantum: 2,
        },
        Arc::new(SerialBackend),
    );
    let doomed = sched
        .admit(RunSpec::new(
            &obj,
            init(60),
            doomed_cfg,
            term(15),
            TimeMode::Parallel,
            60,
            Driver::Det,
        ))
        .expect("doomed run admits");
    sched.run();

    let quarantined = sched
        .service_registry()
        .counter("sched.runs.quarantined")
        .get();
    let readmitted = sched.quarantined() == vec![doomed] && sched.readmit(doomed);
    sched.run();
    let (noted, identical) = sched.result(doomed).map_or((false, false), |got| {
        (
            got.notes.contains(&RunNote::Quarantined),
            same_result(&clean_solo, got),
        )
    });
    QuarantineLeg {
        quarantined,
        readmitted,
        noted,
        identical,
    }
}

struct Report {
    straggle_ms: u64,
    rounds: usize,
    hedge: HedgeLeg,
    storm_runs: usize,
    storm_identical: bool,
    quarantine: QuarantineLeg,
}

impl Report {
    /// The headline gate: hedged tail latency under a straggler.
    fn hedge_ok(&self) -> bool {
        self.hedge.hedged_p99 <= 0.5 * self.hedge.unhedged_p99
            && self.hedge.launched >= 1
            && self.hedge.identical
    }

    fn ok(&self) -> bool {
        self.hedge_ok()
            && self.storm_identical
            && self.quarantine.quarantined >= 1
            && self.quarantine.readmitted
            && self.quarantine.noted
            && self.quarantine.identical
    }

    fn to_json(&self) -> String {
        format!(
            "{{\n  \"straggle_ms\": {},\n  \"rounds\": {},\n  \
             \"unhedged_p50_ms\": {:.3},\n  \"unhedged_p99_ms\": {:.3},\n  \
             \"hedged_p50_ms\": {:.3},\n  \"hedged_p99_ms\": {:.3},\n  \
             \"hedges_launched\": {},\n  \"hedge_wins\": {},\n  \
             \"hedged_identical\": {},\n  \"storm_runs\": {},\n  \
             \"storm_identical\": {},\n  \"quarantined\": {},\n  \
             \"quarantine_readmitted\": {},\n  \"quarantine_noted\": {},\n  \
             \"quarantine_identical\": {},\n  \"ok\": {}\n}}\n",
            self.straggle_ms,
            self.rounds,
            self.hedge.unhedged_p50,
            self.hedge.unhedged_p99,
            self.hedge.hedged_p50,
            self.hedge.hedged_p99,
            self.hedge.launched,
            self.hedge.wins,
            self.hedge.identical,
            self.storm_runs,
            self.storm_identical,
            self.quarantine.quarantined,
            self.quarantine.readmitted,
            self.quarantine.noted,
            self.quarantine.identical,
            self.ok(),
        )
    }
}

fn main() {
    let mut out = std::path::PathBuf::from("BENCH_resilience.json");
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => {
                smoke = true;
                apply_smoke_defaults();
            }
            "--out" => match args.next() {
                Some(p) => out = p.into(),
                None => {
                    eprintln!("error: --out requires a path argument");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown argument `{other}`");
                eprintln!("usage: resilience_storm [--smoke] [--out <path>]");
                std::process::exit(2);
            }
        }
    }

    println!("resilience storm: service-level fault composition (DESIGN.md \u{a7}16)");
    let (rounds, straggle_ms) = if smoke { (16, 15) } else { (48, 25) };

    let hedge = hedge_leg(rounds, straggle_ms);
    println!(
        "hedging: unhedged p50/p99 {:.1}/{:.1} ms, hedged {:.1}/{:.1} ms, \
         launched {}, wins {}, identical: {}",
        hedge.unhedged_p50,
        hedge.unhedged_p99,
        hedge.hedged_p50,
        hedge.hedged_p99,
        hedge.launched,
        hedge.wins,
        hedge.identical
    );

    let (storm_runs, storm_identical) = storm_leg();
    println!("storm: {storm_runs} runs under composed chaos, identical: {storm_identical}");

    let quarantine = quarantine_leg();
    println!(
        "quarantine: evictions {}, readmitted {}, noted {}, identical: {}",
        quarantine.quarantined, quarantine.readmitted, quarantine.noted, quarantine.identical
    );

    let report = Report {
        straggle_ms,
        rounds,
        hedge,
        storm_runs,
        storm_identical,
        quarantine,
    };
    if let Err(e) = std::fs::write(&out, report.to_json()) {
        eprintln!("error: cannot write {}: {e}", out.display());
        std::process::exit(1);
    }
    println!("written to {}", out.display());

    if !report.ok() {
        eprintln!("error: a resilience gate failed");
        std::process::exit(1);
    }
}
