//! Fig 3.20 — gOO(r) curves for the water model at various stages of the
//! simplex optimization: the best-vertex parameters at ~0%, 25%, 50%, 75%
//! and 100% of the MN run, showing the curve walking onto the experimental
//! one.

use noisy_simplex::prelude::*;
use repro_bench::{csv_row, harness_args, water_termination};
use water_md::cost::WaterObjective;
use water_md::reference::{Experiment, INITIAL_VERTICES};
use water_md::surrogate::SurrogateWater;

fn main() {
    let args = harness_args();
    let registry = args.registry();
    let objective = WaterObjective::new(SurrogateWater);
    let init: Vec<Vec<f64>> = INITIAL_VERTICES[..4].iter().map(|v| v.to_vec()).collect();

    println!("# Fig 3.20: gOO(r) at optimization stages (MN run)");
    csv_row(
        &["stage", "r", "g"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    );

    // Run MN with several iteration caps to capture intermediate states.
    // (The engine is deterministic for a fixed seed, so truncated runs
    // retrace the same trajectory.)
    let full = MaxNoise::with_k(2.0).run_with_metrics(
        &objective,
        init.clone(),
        water_termination(),
        TimeMode::Parallel,
        11,
        registry.as_ref(),
    );
    // Only the full run is accounted in --metrics-out: the truncated stage
    // replays below retrace the same trajectory and would double-count.
    let total = full.iterations.max(4);
    let stages: Vec<u64> = vec![1, total / 4, total / 2, 3 * total / 4, total];

    for (si, &cap) in stages.iter().enumerate() {
        let res = MaxNoise::with_k(2.0).run(
            &objective,
            init.clone(),
            Termination {
                tolerance: None,
                max_time: None,
                max_iterations: Some(cap),
            },
            TimeMode::Parallel,
            11,
        );
        let p = [res.best_point[0], res.best_point[1], res.best_point[2]];
        let label = format!("stage{}_iter{}", si, cap);
        for i in 0..110 {
            let r = 2.0 + i as f64 * 0.09;
            csv_row(&[
                label.clone(),
                format!("{r:.3}"),
                format!("{:.4}", SurrogateWater.g_oo_curve(&p, r)),
            ]);
        }
    }
    for i in 0..110 {
        let r = 2.0 + i as f64 * 0.09;
        csv_row(&[
            "experiment".to_string(),
            format!("{r:.3}"),
            format!("{:.4}", Experiment::g_oo(r)),
        ]);
    }
    args.write_metrics(registry.as_ref());
}
