//! Fig 3.6 — the same three comparison panels as Fig 3.5, on the 4-d
//! Powell singular function.

use noisy_simplex::prelude::*;
use repro_bench::{final_minima, print_ratio_panel, replicates};
use stoch_eval::functions::Powell;
use stoch_eval::noise::ConstantNoise;
use stoch_eval::sampler::Noisy;

fn main() {
    repro_bench::smoke_args();
    let powell = Powell;
    let n = replicates();
    println!("# Fig 3.6: Powell 4-d, {n} initial simplexes per panel");
    for sigma0 in [1.0, 100.0, 1000.0] {
        let objective = Noisy::new(powell, ConstantNoise(sigma0));
        let run = |method: SimplexMethod, tag: u64| {
            final_minima(&objective, &powell, &method, 4, -5.0, 5.0, n, tag)
        };
        let det = run(SimplexMethod::Det(Det::new()), 1);
        let mn = run(SimplexMethod::Mn(MaxNoise::with_k(2.0)), 1);
        let pc = run(SimplexMethod::Pc(PointComparison::new()), 1);
        let pcmn = run(SimplexMethod::PcMn(PcMn::new()), 1);
        print_ratio_panel(&format!("(a) log10(MN/DET), noise={sigma0}"), &mn, &det);
        print_ratio_panel(&format!("(b) log10(PC/MN), noise={sigma0}"), &pc, &mn);
        print_ratio_panel(
            &format!("(c) log10((PC+MN)/PC), noise={sigma0}"),
            &pcmn,
            &pc,
        );
    }
}
