//! Multi-run service scale-up (DESIGN.md §13).
//!
//! Exercises the `nsx-sched` shared-fleet scheduler at service scale and
//! proves its load-bearing invariant on the way:
//!
//! 1. **Determinism gate** — one MN run is executed solo on a serial
//!    backend, then again admitted among 15 neighbours at `width=4`,
//!    `quantum=1` over a threaded fleet (so it is repeatedly preempted to
//!    checkpoint bytes and resumed, migrating serial → fleet). The two
//!    results must be bit-identical, and the run must actually have been
//!    preempted. Any breach exits 1.
//! 2. **Service scale** — 1000 concurrent tiny runs (random priorities and
//!    weights) time-slice over one shared worker pool; per-run
//!    admit-to-completion latency percentiles (p50/p90/p99) are reported.
//! 3. **Width sweep** — throughput (runs/second) as the fleet width grows
//!    1→16, locating the saturation knee where extra width stops paying.
//!
//! Writes `BENCH_service.json`.
//!
//! ```text
//! cargo run --release --bin service_scaleup -- [--smoke] [--out <path>]
//! ```

use mw_framework::ThreadedBackend;
use noisy_simplex::prelude::*;
use noisy_simplex::session::RunSession;
use nsx_sched::{RunSpec, SchedConfig, Scheduler};
use repro_bench::apply_smoke_defaults;
use std::sync::Arc;
use std::time::Instant;
use stoch_eval::functions::{Rosenbrock, Sphere};
use stoch_eval::noise::ConstantNoise;
use stoch_eval::sampler::Noisy;

/// Runs in the service-scale phase (the 1k-concurrent-runs exhibit).
const SERVICE_RUNS: usize = 1000;
/// Runs per width in the saturation sweep.
const SWEEP_RUNS: usize = 200;
/// Widths probed for the saturation knee.
const SWEEP_WIDTHS: [usize; 5] = [1, 2, 4, 8, 16];

fn serial_cfg() -> SimplexConfig {
    SimplexConfig {
        backend: BackendChoice::Serial,
        ..SimplexConfig::default()
    }
}

fn same_result(a: &RunResult, b: &RunResult) -> bool {
    a.best_point == b.best_point
        && a.best_observed.to_bits() == b.best_observed.to_bits()
        && a.iterations == b.iterations
        && a.elapsed.to_bits() == b.elapsed.to_bits()
        && a.total_sampling.to_bits() == b.total_sampling.to_bits()
        && a.stop == b.stop
        && a.trace.points().len() == b.trace.points().len()
}

/// A tiny run spec: Sphere 2-d, a handful of iterations, per-index seed.
fn tiny_spec(
    obj: &Noisy<Sphere, ConstantNoise>,
    i: usize,
) -> RunSpec<'_, Noisy<Sphere, ConstantNoise>> {
    let term = Termination {
        tolerance: None,
        max_time: None,
        max_iterations: Some(5),
    };
    let init = init::random_uniform(2, -3.0, 3.0, 10_000 + i as u64);
    // Deterministic pseudo-random priorities and weights per run.
    let priority = (i % 5) as i32 - 2;
    let weight = 1.0 + (i % 4) as f64;
    RunSpec::new(
        obj,
        init,
        serial_cfg(),
        term,
        TimeMode::Parallel,
        i as u64,
        Driver::Det,
    )
    .priority(priority)
    .weight(weight)
}

/// Phase 1: the preempted-and-resumed run must equal its solo execution
/// bitwise. Returns (identical, preemptions_of_target).
fn determinism_gate(workers: usize) -> (bool, u64) {
    let obj = Noisy::new(Rosenbrock::new(2), ConstantNoise(10.0));
    let term = Termination {
        tolerance: None,
        max_time: None,
        max_iterations: Some(40),
    };
    let init = init::random_uniform(2, -4.0, 4.0, 77);
    let driver = Driver::Mn(MnParams::default());

    let solo = RunSession::new(
        &obj,
        init.clone(),
        serial_cfg(),
        term,
        TimeMode::Parallel,
        7,
        driver,
    )
    .run_to_completion();

    // The same run admitted among 15 neighbours, width 4, quantum 1: it is
    // suspended to bytes and resumed onto the threaded fleet every slice.
    let mut sched = Scheduler::new(
        SchedConfig {
            width: 4,
            quantum: 1,
        },
        Arc::new(ThreadedBackend::new(workers)),
    );
    let target = sched
        .admit(RunSpec::new(
            &obj,
            init,
            serial_cfg(),
            term,
            TimeMode::Parallel,
            7,
            driver,
        ))
        .expect("admission failed");
    for n in 0..15u64 {
        let neighbour_init = init::random_uniform(2, -4.0, 4.0, 500 + n);
        sched
            .admit(
                RunSpec::new(
                    &obj,
                    neighbour_init,
                    serial_cfg(),
                    term,
                    TimeMode::Parallel,
                    100 + n,
                    driver,
                )
                .priority((n % 3) as i32)
                .weight(1.0 + (n % 2) as f64),
            )
            .expect("admission failed");
    }
    sched.run();
    let preemptions = sched
        .run_registry(target)
        .map(|r| r.counter("sched.run.preemptions").get())
        .unwrap_or(0);
    let identical = sched
        .result(target)
        .is_some_and(|got| same_result(&solo, got));
    (identical, preemptions)
}

struct ServiceStats {
    wall_secs: f64,
    p50: f64,
    p90: f64,
    p99: f64,
    preemptions: u64,
    queue_depth_hwm: u64,
    pool_jobs: u64,
    merged_dispatches: u64,
}

/// Phase 2: 1000 tiny runs over one shared pool; per-run admit-to-done
/// latency distribution.
fn service_scale(workers: usize, width: usize, quantum: u64) -> ServiceStats {
    let obj = Noisy::new(Sphere::new(2), ConstantNoise(1.0));
    let backend = Arc::new(ThreadedBackend::new(workers));
    let pool = Arc::clone(backend.pool());
    let mut sched: Scheduler<Noisy<Sphere, ConstantNoise>> =
        Scheduler::new(SchedConfig { width, quantum }, backend);
    // Shared-pool accounting (queue depth, jobs) lands in the service
    // registry — one attachment covers every run on the pool.
    sched.attach_pool(&pool);
    for i in 0..SERVICE_RUNS {
        sched.admit(tiny_spec(&obj, i)).expect("admission failed");
    }
    let t0 = Instant::now();
    let mut done_at: Vec<Option<f64>> = vec![None; SERVICE_RUNS];
    while sched.tick() {
        let now = t0.elapsed().as_secs_f64();
        for (i, slot) in done_at.iter_mut().enumerate() {
            if slot.is_none() && sched.result(i as u64).is_some() {
                *slot = Some(now);
            }
        }
    }
    let wall_secs = t0.elapsed().as_secs_f64();
    let mut lat: Vec<f64> = done_at.iter().map(|d| d.unwrap_or(wall_secs)).collect();
    lat.sort_by(f64::total_cmp);
    let pct = |p: f64| lat[((lat.len() - 1) as f64 * p) as usize];
    let svc = sched.service_registry();
    ServiceStats {
        wall_secs,
        p50: pct(0.50),
        p90: pct(0.90),
        p99: pct(0.99),
        preemptions: svc.counter("sched.preemptions").get(),
        queue_depth_hwm: svc.gauge("sched.queue_depth_hwm").max(),
        pool_jobs: svc.counter("mw.pool.jobs_submitted").get(),
        merged_dispatches: svc.counter("sched.fleet.merged_dispatches").get(),
    }
}

/// Phase 3: throughput per width; the knee is the last width whose gain
/// over its predecessor exceeds 10%.
fn width_sweep(workers: usize, quantum: u64) -> (Vec<(usize, f64)>, usize) {
    let obj = Noisy::new(Sphere::new(2), ConstantNoise(1.0));
    let mut sweep = Vec::new();
    for width in SWEEP_WIDTHS {
        let mut sched = Scheduler::new(
            SchedConfig { width, quantum },
            Arc::new(ThreadedBackend::new(workers)),
        );
        for i in 0..SWEEP_RUNS {
            sched.admit(tiny_spec(&obj, i)).expect("admission failed");
        }
        let t0 = Instant::now();
        sched.run();
        let secs = t0.elapsed().as_secs_f64().max(1e-9);
        sweep.push((width, SWEEP_RUNS as f64 / secs));
    }
    let mut knee = sweep[0].0;
    for w in 1..sweep.len() {
        if sweep[w].1 > sweep[w - 1].1 * 1.10 {
            knee = sweep[w].0;
        } else {
            break;
        }
    }
    (sweep, knee)
}

fn main() {
    let mut out = std::path::PathBuf::from("BENCH_service.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => apply_smoke_defaults(),
            "--out" => match args.next() {
                Some(p) => out = p.into(),
                None => {
                    eprintln!("error: --out requires a path argument");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown argument `{other}`");
                eprintln!("usage: service_scaleup [--smoke] [--out <path>]");
                std::process::exit(2);
            }
        }
    }

    let workers = std::thread::available_parallelism().map_or(2, |n| n.get());
    println!(
        "multi-run service scale-up: {SERVICE_RUNS} runs over one shared pool ({workers} workers)"
    );

    let (identical, target_preemptions) = determinism_gate(workers);
    println!(
        "determinism gate: preempted/resumed run identical to solo = {identical} \
         (target preempted {target_preemptions}x)"
    );

    let stats = service_scale(workers, 8, 2);
    println!(
        "service: {SERVICE_RUNS} runs in {:.3}s; latency p50 {:.3}s p90 {:.3}s p99 {:.3}s",
        stats.wall_secs, stats.p50, stats.p90, stats.p99
    );
    println!(
        "         preemptions {}, queue depth hwm {}, pool jobs {}, merged dispatches {}",
        stats.preemptions, stats.queue_depth_hwm, stats.pool_jobs, stats.merged_dispatches
    );

    let (sweep, knee) = width_sweep(workers, 2);
    println!("width,runs_per_sec");
    for (w, rps) in &sweep {
        println!("{w},{rps:.1}");
    }
    println!("saturation knee at width {knee}");

    let body = render_json(workers, identical, target_preemptions, &stats, &sweep, knee);
    if let Err(e) = std::fs::write(&out, &body) {
        eprintln!("error: cannot write {}: {e}", out.display());
        std::process::exit(1);
    }
    println!("written to {}", out.display());

    if !identical {
        eprintln!("error: preempted/resumed run diverged from solo — determinism contract broken");
        std::process::exit(1);
    }
    if target_preemptions == 0 {
        eprintln!(
            "error: the determinism gate never preempted its target — the exhibit is vacuous"
        );
        std::process::exit(1);
    }
}

fn render_json(
    workers: usize,
    identical: bool,
    target_preemptions: u64,
    stats: &ServiceStats,
    sweep: &[(usize, f64)],
    knee: usize,
) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"workers\": {workers},\n"));
    s.push_str(&format!("  \"service_runs\": {SERVICE_RUNS},\n"));
    s.push_str(&format!(
        "  \"determinism\": {{\"identical\": {identical}, \"target_preemptions\": {target_preemptions}}},\n"
    ));
    s.push_str(&format!(
        "  \"latency_secs\": {{\"p50\": {:.6}, \"p90\": {:.6}, \"p99\": {:.6}, \"wall\": {:.6}}},\n",
        stats.p50, stats.p90, stats.p99, stats.wall_secs
    ));
    s.push_str(&format!(
        "  \"service\": {{\"preemptions\": {}, \"queue_depth_hwm\": {}, \"pool_jobs\": {}, \"merged_dispatches\": {}}},\n",
        stats.preemptions, stats.queue_depth_hwm, stats.pool_jobs, stats.merged_dispatches
    ));
    s.push_str("  \"width_sweep\": [\n");
    for (i, (w, rps)) in sweep.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"width\": {w}, \"runs_per_sec\": {rps:.3}}}{}\n",
            if i + 1 < sweep.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!("  \"saturation_knee_width\": {knee}\n"));
    s.push_str("}\n");
    s
}
