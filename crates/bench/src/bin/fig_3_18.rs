//! Fig 3.18 — MW scale-up: DET over the full MW hierarchy on noisy
//! Rosenbrock in d ∈ {20, 50, 100} dimensions (Ns = 1):
//!
//! (a) best value vs wall time, (b) best value vs steps, (c) wall time per
//! simplex step vs dimension. The paper's expectation: more dimensions →
//! more steps and time to converge, with only a minor per-step overhead
//! growth (its I/O; our dispatch + O(d²) geometry).

use repro_bench::scaleup::scaleup_rosenbrock_with_metrics;
use repro_bench::{csv_row, harness_args};

fn main() {
    let args = harness_args();
    let registry = args.registry();
    println!("# Fig 3.18: MW scale-up, DET on Rosenbrock, Ns=1");
    let steps: u64 = std::env::var("REPRO_SCALEUP_STEPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);

    csv_row(
        &["d", "step", "wall_secs", "best_value"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    );
    let mut per_step = Vec::new();
    for d in [20usize, 50, 100] {
        let res = scaleup_rosenbrock_with_metrics(
            d,
            1,
            0.5,
            1.0,
            steps,
            1e-9,
            42 + d as u64,
            registry.as_ref(),
        );
        let stride = (res.trace.len() / 80).max(1);
        for p in res.trace.iter().step_by(stride) {
            csv_row(&[
                d.to_string(),
                p.step.to_string(),
                format!("{:.5}", p.wall_secs),
                format!("{:.6e}", p.best_value),
            ]);
        }
        per_step.push((d, res.alloc, res.steps, res.secs_per_step));
    }

    println!("\n# Panel (c): time per simplex step vs dimension");
    csv_row(
        &["d", "total_cores", "steps", "secs_per_step"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    );
    for (d, alloc, steps, sps) in per_step {
        csv_row(&[
            d.to_string(),
            alloc.total().to_string(),
            steps.to_string(),
            format!("{sps:.6}"),
        ]);
    }
    args.write_metrics(registry.as_ref());
}
