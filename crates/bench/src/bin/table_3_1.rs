//! Table 3.1 — MN algorithm on the 3-d Rosenbrock function with controlled
//! noise: five random initial simplexes (coords U[−6, 3)), gate constant
//! k ∈ {2, 3, 4, 5}; reports N (iterations), R (true function error at
//! convergence), D (distance of the best vertex to the solution).

use noisy_simplex::prelude::*;
use repro_bench::{csv_row, fmt, harness_args, standard_termination};
use stoch_eval::functions::Rosenbrock;
use stoch_eval::noise::ConstantNoise;
use stoch_eval::objective::Objective;
use stoch_eval::sampler::Noisy;

fn main() {
    let args = harness_args();
    let registry = args.registry();
    let rosen = Rosenbrock::new(3);
    let objective = Noisy::new(rosen, ConstantNoise(100.0));
    let minimizer = rosen.minimizer().unwrap();
    let ks = [2.0, 3.0, 4.0, 5.0];

    println!("# Table 3.1: MN on Rosenbrock 3-d, five inputs x k in {{2,3,4,5}}");
    csv_row(
        &["input", "k", "N", "R", "D"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    );
    for input in 1..=5u64 {
        let init = init::random_uniform(3, -6.0, 3.0, 100 + input);
        for &k in &ks {
            let res = MaxNoise::with_k(k).run_with_metrics(
                &objective,
                init.clone(),
                standard_termination(),
                TimeMode::Parallel,
                input * 10 + k as u64,
                registry.as_ref(),
            );
            let m = res.measures(&objective, &minimizer, 0.0);
            csv_row(&[
                input.to_string(),
                format!("{k}"),
                m.n.to_string(),
                fmt(m.r),
                fmt(m.d),
            ]);
        }
    }
    args.write_metrics(registry.as_ref());
}
