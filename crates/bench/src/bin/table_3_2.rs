//! Table 3.2 — the Anderson convergence criterion on the 3-d Rosenbrock
//! function with controlled noise: five random initial simplexes,
//! k1 ∈ {2⁰, 2¹⁰, 2²⁰, 2³⁰} (k2 = 0); reports N, R, D.
//!
//! The paper's headline: overly small k1 (a criterion the initial noise
//! already satisfies... i.e. *loose* relative to nothing — strictly small
//! ceilings force premature contraction) produces large errors R, while
//! large k1 approaches MN's accuracy.

use noisy_simplex::prelude::*;
use repro_bench::{csv_row, fmt, harness_args, standard_termination};
use stoch_eval::functions::Rosenbrock;
use stoch_eval::noise::ConstantNoise;
use stoch_eval::objective::Objective;
use stoch_eval::sampler::Noisy;

fn main() {
    let args = harness_args();
    let registry = args.registry();
    let rosen = Rosenbrock::new(3);
    let objective = Noisy::new(rosen, ConstantNoise(100.0));
    let minimizer = rosen.minimizer().unwrap();
    let k1s: Vec<(String, f64)> = [0, 10, 20, 30]
        .iter()
        .map(|&e| (format!("2^{e}"), 2f64.powi(e)))
        .collect();

    println!("# Table 3.2: Anderson criterion on Rosenbrock 3-d, k1 in {{2^0,2^10,2^20,2^30}}");
    csv_row(
        &["input", "k1", "N", "R", "D"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    );
    for input in 1..=5u64 {
        let init = init::random_uniform(3, -6.0, 3.0, 100 + input);
        for (label, k1) in &k1s {
            let res = AndersonNm::with_k1(*k1).run_with_metrics(
                &objective,
                init.clone(),
                standard_termination(),
                TimeMode::Parallel,
                input * 100 + *k1 as u64 % 97,
                registry.as_ref(),
            );
            let m = res.measures(&objective, &minimizer, 0.0);
            csv_row(&[
                input.to_string(),
                label.clone(),
                m.n.to_string(),
                fmt(m.r),
                fmt(m.d),
            ]);
        }
    }
    args.write_metrics(registry.as_ref());
}
