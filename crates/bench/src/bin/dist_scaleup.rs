//! Distributed scale-up over the process transport (DESIGN.md §12).
//!
//! Spawns a pool of real worker *processes* — `hardware_threads + 2` of
//! them, deliberately oversubscribed to prove process-level fan-out beyond
//! the core count — and checks the distributed determinism contract three
//! ways on MN over noisy Rosenbrock (empirical streams, so every extension
//! ships real per-sample compute across the wire):
//!
//! 1. in-process serial execution (`TransportChoice::Inproc`),
//! 2. the process transport with a clean wire,
//! 3. the process transport under a survivable chaos plan (a worker killed
//!    mid-run, an outbound frame dropped, another delayed on the wire).
//!
//! All three must be bit-identical, and the chaos run must finish without a
//! degradation note — losing a worker or a frame is recoverable, so a
//! degraded run here means the supervision machinery is broken. Any breach
//! exits 1. Writes `BENCH_dist.json`.
//!
//! ```text
//! cargo run --release --bin dist_scaleup -- [--smoke] [--out <path>]
//! ```

use mw_framework::{FaultPlan, ProcessBackend, RetryPolicy};
use noisy_simplex::prelude::*;
use repro_bench::{apply_smoke_defaults, iteration_cap_or, time_budget_or};
use std::time::{Duration, Instant};
use stoch_eval::functions::Rosenbrock;
use stoch_eval::noise::ConstantNoise;
use stoch_eval::sampler::Noisy;

struct Case {
    d: usize,
    inproc_secs: f64,
    process_secs: f64,
    chaos_secs: f64,
    identical: bool,
    degraded: bool,
    iterations: u64,
    total_sampling: f64,
}

/// A retry policy that recovers dropped frames quickly: the per-attempt
/// timeout is what turns wire silence into a re-dispatch.
fn chaos_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 5,
        timeout: Some(Duration::from_millis(500)),
        backoff: Duration::ZERO,
    }
}

/// Survivable chaos: worker 0 is killed after two jobs (respawned from the
/// default budget), worker 1 loses its second outbound frame (recovered by
/// the attempt timeout), worker 2 gets 3 ms of wire delay per frame.
fn chaos_plan(workers: usize) -> FaultPlan {
    FaultPlan::none()
        .kill(0, 2)
        .net_drop(1 % workers, 1)
        .net_delay(2 % workers, 0, 3)
}

fn run_once(d: usize, workers: usize, faults: Option<FaultPlan>) -> RunResult {
    let obj = Noisy::empirical(Rosenbrock::new(d), ConstantNoise(5.0), 0.02);
    let mut mn = MaxNoise::with_k(2.0);
    match faults {
        // workers == 0 encodes the in-process serial baseline.
        None if workers == 0 => {
            mn.cfg.transport = TransportChoice::Inproc;
            mn.cfg.backend = BackendChoice::Serial;
        }
        None => {
            mn.cfg.transport = TransportChoice::Process;
            mn.cfg.backend = BackendChoice::Threaded { workers };
        }
        Some(plan) => {
            mn.cfg.transport = TransportChoice::Process;
            mn.cfg.backend = BackendChoice::Threaded { workers };
            mn.cfg.faults = Some(plan);
            mn.cfg.retry = chaos_retry();
        }
    }
    let term = Termination {
        tolerance: Some(1e-8),
        max_time: Some(time_budget_or(2_000.0)),
        max_iterations: Some(iteration_cap_or(300)),
    };
    let init = init::random_uniform(d, -2.0, 2.0, 1_000 + d as u64);
    mn.run(&obj, init, term, TimeMode::Parallel, 9_000 + d as u64)
}

fn same_result(a: &RunResult, b: &RunResult) -> bool {
    a.best_point == b.best_point
        && a.best_observed.to_bits() == b.best_observed.to_bits()
        && a.iterations == b.iterations
        && a.elapsed.to_bits() == b.elapsed.to_bits()
        && a.total_sampling.to_bits() == b.total_sampling.to_bits()
        && a.stop == b.stop
        && a.trace.points().len() == b.trace.points().len()
}

fn degraded(r: &RunResult) -> bool {
    r.notes.contains(&RunNote::TransportDegraded) || r.notes.contains(&RunNote::DegradedToSerial)
}

fn main() {
    let mut out = std::path::PathBuf::from("BENCH_dist.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => apply_smoke_defaults(),
            "--out" => match args.next() {
                Some(p) => out = p.into(),
                None => {
                    eprintln!("error: --out requires a path argument");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown argument `{other}`");
                eprintln!("usage: dist_scaleup [--smoke] [--out <path>]");
                std::process::exit(2);
            }
        }
    }

    let hardware_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = hardware_threads + 2;

    // Prove the machine fields the full oversubscribed pool: spawn it
    // directly, count live OS processes, then drop it — the engine runs
    // below spawn their own pools through the same code path.
    let probe = ProcessBackend::new(workers);
    let alive = probe.pool().alive_workers();
    let pids = probe.pool().worker_pids();
    drop(probe);
    println!("distributed scale-up: MN on noisy Rosenbrock over the process transport");
    println!(
        "hardware threads: {hardware_threads}, worker processes: {workers}, alive: {alive}, pids: {pids:?}"
    );
    if alive < workers {
        eprintln!("error: only {alive}/{workers} worker processes came up");
        std::process::exit(1);
    }

    println!("d,inproc_secs,process_secs,chaos_secs,identical,degraded,iterations");
    let mut cases = Vec::new();
    for d in [6, 12] {
        let t0 = Instant::now();
        let inproc = run_once(d, 0, None);
        let inproc_secs = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let clean = run_once(d, workers, None);
        let process_secs = t1.elapsed().as_secs_f64();

        let t2 = Instant::now();
        let chaos = run_once(d, workers, Some(chaos_plan(workers)));
        let chaos_secs = t2.elapsed().as_secs_f64();

        let case = Case {
            d,
            inproc_secs,
            process_secs,
            chaos_secs,
            identical: same_result(&inproc, &clean) && same_result(&inproc, &chaos),
            degraded: degraded(&clean) || degraded(&chaos),
            iterations: inproc.iterations,
            total_sampling: inproc.total_sampling,
        };
        println!(
            "{},{:.3},{:.3},{:.3},{},{},{}",
            case.d,
            case.inproc_secs,
            case.process_secs,
            case.chaos_secs,
            case.identical,
            case.degraded,
            case.iterations
        );
        cases.push(case);
    }

    let body = render_json(hardware_threads, workers, alive, &cases);
    if let Err(e) = std::fs::write(&out, &body) {
        eprintln!("error: cannot write {}: {e}", out.display());
        std::process::exit(1);
    }
    println!("written to {}", out.display());

    if cases.iter().any(|c| !c.identical) {
        eprintln!("error: inproc and process transports disagreed — determinism contract broken");
        std::process::exit(1);
    }
    if cases.iter().any(|c| c.degraded) {
        eprintln!("error: a survivable fault plan degraded the run — supervision broken");
        std::process::exit(1);
    }
}

fn render_json(hardware_threads: usize, workers: usize, alive: usize, cases: &[Case]) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"hardware_threads\": {hardware_threads},\n"));
    s.push_str(&format!("  \"worker_processes\": {workers},\n"));
    s.push_str(&format!("  \"alive_at_probe\": {alive},\n"));
    s.push_str("  \"transport\": \"process\",\n");
    s.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"d\": {}, \"inproc_secs\": {:.6}, \"process_secs\": {:.6}, \
             \"chaos_secs\": {:.6}, \"identical\": {}, \"degraded\": {}, \
             \"iterations\": {}, \"total_sampling\": {:.3}}}{}\n",
            c.d,
            c.inproc_secs,
            c.process_secs,
            c.chaos_secs,
            c.identical,
            c.degraded,
            c.iterations,
            c.total_sampling,
            if i + 1 < cases.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
