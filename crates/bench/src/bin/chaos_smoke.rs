//! Fault-tolerance exhibit (DESIGN.md §9): how much does surviving worker
//! failure cost, and does the determinism contract hold through it?
//!
//! Three legs, all on the same seeds:
//!
//! 1. **Engine under chaos** — MN on noisy Rosenbrock, serial vs a threaded
//!    backend with an injected kill + dropped result; the RunResults must be
//!    bit-identical and the faulted wall-clock overhead is reported.
//! 2. **Backend counters** — a metered pool with kill/delay/drop faults
//!    extends a batch; reports `mw.pool.workers_lost`, `mw.pool.respawns`,
//!    `mw.retry.attempts`, `mw.retry.timeouts`.
//! 3. **Graceful degradation** — every worker killed with a zero respawn
//!    budget; the batch must still complete inline, bit-identical, with
//!    `mw.backend.degraded` recorded.
//!
//! Writes `BENCH_faults.json`. Exits non-zero if any leg breaks the
//! determinism contract.
//!
//! ```text
//! cargo run --release --bin chaos_smoke -- [--smoke] [--out <path>]
//! ```

use mw_framework::backend::ThreadedBackend;
use mw_framework::pool::{default_respawn_budget, RetryPolicy};
use mw_framework::FaultPlan;
use noisy_simplex::prelude::*;
use obs::MetricsRegistry;
use repro_bench::{apply_smoke_defaults, iteration_cap_or, time_budget_or};
use std::time::{Duration, Instant};
use stoch_eval::backend::{SamplingBackend, StreamJob};
use stoch_eval::functions::Rosenbrock;
use stoch_eval::noise::ConstantNoise;
use stoch_eval::objective::SampleStream;
use stoch_eval::sampler::{GaussianStream, Noisy};

fn chaos_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 5,
        timeout: Some(Duration::from_millis(250)),
        backoff: Duration::from_millis(1),
    }
}

fn run_once(d: usize, backend: BackendChoice, faults: Option<FaultPlan>) -> RunResult {
    let obj = Noisy::empirical(Rosenbrock::new(d), ConstantNoise(5.0), 0.05);
    let mut mn = MaxNoise::with_k(2.0);
    mn.cfg.backend = backend;
    mn.cfg.faults = faults;
    mn.cfg.retry = chaos_retry();
    let term = Termination {
        tolerance: Some(1e-8),
        max_time: Some(time_budget_or(5_000.0)),
        max_iterations: Some(iteration_cap_or(300)),
    };
    let init = init::random_uniform(d, -2.0, 2.0, 1_000 + d as u64);
    mn.run(&obj, init, term, TimeMode::Parallel, 9_000 + d as u64)
}

fn same_result(a: &RunResult, b: &RunResult) -> bool {
    a.best_point == b.best_point
        && a.best_observed.to_bits() == b.best_observed.to_bits()
        && a.iterations == b.iterations
        && a.elapsed.to_bits() == b.elapsed.to_bits()
        && a.total_sampling.to_bits() == b.total_sampling.to_bits()
        && a.stop == b.stop
        && a.trace.points().len() == b.trace.points().len()
}

fn make_batch(n: usize) -> Vec<StreamJob<GaussianStream>> {
    (0..n)
        .map(|i| StreamJob {
            slot: i,
            dt: 1.0 + i as f64 * 0.25,
            stream: GaussianStream::new(i as f64, 3.0, 100 + i as u64),
        })
        .collect()
}

/// Extend `jobs` through `backend` and check the results are bit-identical
/// to inline serial extension of the same (cloned) streams.
fn batch_matches_serial(backend: &dyn SamplingBackend<GaussianStream>, n: usize) -> bool {
    let jobs = make_batch(n);
    let mut reference: Vec<GaussianStream> = jobs.iter().map(|j| j.stream.clone()).collect();
    for (r, j) in reference.iter_mut().zip(&jobs) {
        r.extend(j.dt);
    }
    let out = backend.extend_batch(jobs);
    out.len() == n
        && out.iter().zip(&reference).enumerate().all(|(i, (j, r))| {
            let (a, b) = (j.stream.estimate(), r.estimate());
            j.slot == i
                && a.value.to_bits() == b.value.to_bits()
                && a.std_err.to_bits() == b.std_err.to_bits()
                && a.time.to_bits() == b.time.to_bits()
        })
}

struct Report {
    clean_secs: f64,
    faulted_secs: f64,
    engine_identical: bool,
    iterations: u64,
    workers_lost: u64,
    respawns: u64,
    retry_attempts: u64,
    retry_timeouts: u64,
    batch_identical: bool,
    degraded_events: u64,
    degraded_identical: bool,
}

impl Report {
    fn overhead(&self) -> f64 {
        self.faulted_secs / self.clean_secs.max(1e-12)
    }

    fn ok(&self) -> bool {
        self.engine_identical && self.batch_identical && self.degraded_identical
    }

    fn to_json(&self) -> String {
        format!(
            "{{\n  \"clean_secs\": {:.6},\n  \"faulted_secs\": {:.6},\n  \
             \"overhead\": {:.4},\n  \"engine_identical\": {},\n  \
             \"iterations\": {},\n  \"workers_lost\": {},\n  \
             \"respawns\": {},\n  \"retry_attempts\": {},\n  \
             \"retry_timeouts\": {},\n  \"batch_identical\": {},\n  \
             \"degraded_events\": {},\n  \"degraded_identical\": {}\n}}\n",
            self.clean_secs,
            self.faulted_secs,
            self.overhead(),
            self.engine_identical,
            self.iterations,
            self.workers_lost,
            self.respawns,
            self.retry_attempts,
            self.retry_timeouts,
            self.batch_identical,
            self.degraded_events,
            self.degraded_identical,
        )
    }
}

fn main() {
    let mut out = std::path::PathBuf::from("BENCH_faults.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => apply_smoke_defaults(),
            "--out" => match args.next() {
                Some(p) => out = p.into(),
                None => {
                    eprintln!("error: --out requires a path argument");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown argument `{other}`");
                eprintln!("usage: chaos_smoke [--smoke] [--out <path>]");
                std::process::exit(2);
            }
        }
    }

    println!("chaos smoke: MW fault tolerance (DESIGN.md \u{a7}9)");
    let d = 6;

    // Leg 1: engine under chaos vs fault-free serial.
    let t0 = Instant::now();
    let clean = run_once(d, BackendChoice::Serial, None);
    let clean_secs = t0.elapsed().as_secs_f64();

    let plan = FaultPlan::none().kill(0, 2).drop_result(1, 1);
    let t1 = Instant::now();
    let faulted = run_once(d, BackendChoice::Threaded { workers: 3 }, Some(plan));
    let faulted_secs = t1.elapsed().as_secs_f64();
    let engine_identical = same_result(&clean, &faulted);
    println!(
        "engine: clean {clean_secs:.3}s, faulted {faulted_secs:.3}s, identical: {engine_identical}"
    );

    // Leg 2: metered backend with kill + delay + drop faults.
    let reg = MetricsRegistry::new();
    let metered = ThreadedBackend::with_options(
        3,
        FaultPlan::none()
            .kill(0, 1)
            .delay(1, 0, 2)
            .drop_result(2, 2),
        chaos_retry(),
        default_respawn_budget(3),
        Some(&reg),
    );
    let batch_identical = (0..4).all(|_| batch_matches_serial(&metered, 12));
    let counter = |name: &str| reg.counter(name).get();
    let (workers_lost, respawns) = (counter("mw.pool.workers_lost"), counter("mw.pool.respawns"));
    let (retry_attempts, retry_timeouts) =
        (counter("mw.retry.attempts"), counter("mw.retry.timeouts"));
    println!(
        "backend: lost {workers_lost}, respawned {respawns}, retries {retry_attempts}, \
         timeouts {retry_timeouts}, identical: {batch_identical}"
    );

    // Leg 3: graceful degradation — all workers killed, no respawn budget.
    let dreg = MetricsRegistry::new();
    let doomed = ThreadedBackend::with_options(
        2,
        FaultPlan::none().kill(0, 0).kill(1, 0),
        chaos_retry(),
        0,
        Some(&dreg),
    );
    let degraded_identical =
        batch_matches_serial(&doomed, 8) && SamplingBackend::<GaussianStream>::degraded(&doomed);
    let degraded_events = dreg.counter("mw.backend.degraded").get();
    println!("degradation: events {degraded_events}, identical: {degraded_identical}");

    let report = Report {
        clean_secs,
        faulted_secs,
        engine_identical,
        iterations: clean.iterations,
        workers_lost,
        respawns,
        retry_attempts,
        retry_timeouts,
        batch_identical,
        degraded_events,
        degraded_identical,
    };
    if let Err(e) = std::fs::write(&out, report.to_json()) {
        eprintln!("error: cannot write {}: {e}", out.display());
        std::process::exit(1);
    }
    println!("written to {}", out.display());

    if !report.ok() {
        eprintln!("error: a fault leg broke the determinism contract");
        std::process::exit(1);
    }
}
