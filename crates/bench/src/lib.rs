//! `repro-bench` — the experiment harness that regenerates every table and
//! figure of the paper's evaluation (Ch. 3). One binary per exhibit; see
//! `DESIGN.md` §3 for the index and `EXPERIMENTS.md` for recorded results.
//!
//! All binaries print their exhibit to stdout (CSV-ish rows plus ASCII
//! histograms). Knobs via environment variables:
//!
//! * `REPRO_REPLICATES` — override the number of initial simplex states for
//!   the distribution figures (paper: 100).
//! * `REPRO_TIME` — override the virtual-walltime budget per run.

#![warn(missing_docs)]

use noisy_simplex::prelude::*;
use stoch_eval::objective::{Objective, StochasticObjective};
use stoch_eval::stats::{Histogram, PairedComparison};

/// Number of replicate initial simplex states (paper default 100; override
/// with `REPRO_REPLICATES`).
pub fn replicates() -> usize {
    std::env::var("REPRO_REPLICATES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(100)
}

/// Virtual-walltime budget per optimization run (override `REPRO_TIME`).
pub fn time_budget() -> f64 {
    std::env::var("REPRO_TIME")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0e5)
}

/// The termination criteria used by the comparison experiments: Eq. 2.9
/// tolerance plus the virtual-walltime budget (paper §2.4.1).
pub fn standard_termination() -> Termination {
    Termination {
        tolerance: Some(1e-6),
        max_time: Some(time_budget()),
        max_iterations: Some(100_000),
    }
}

/// Run `method` from each of `n` random initial simplexes drawn uniformly
/// from `[lo, hi)` and return the *true* final minimum values (floored for
/// log-ratio plots).
pub fn final_minima<F, O>(
    objective: &F,
    underlying: &O,
    method: &SimplexMethod,
    d: usize,
    lo: f64,
    hi: f64,
    n: usize,
    seed_base: u64,
) -> Vec<f64>
where
    F: StochasticObjective,
    O: Objective,
{
    let term = standard_termination();
    (0..n)
        .map(|i| {
            let init = init::random_uniform(d, lo, hi, seed_base + i as u64);
            let res = method.run(objective, init, term, TimeMode::Parallel, 7_000 + i as u64);
            underlying.value(&res.best_point)
        })
        .collect()
}

/// Print a paper-style histogram panel of `log10(min_a / min_b)`.
pub fn print_ratio_panel(title: &str, mins_a: &[f64], mins_b: &[f64]) {
    let cmp = PairedComparison::new(mins_a, mins_b, 1e-12, 0.25);
    let hist: Histogram = cmp.histogram(-8.0, 8.0, 16);
    println!("--- {title} ---");
    println!(
        "A wins: {:.0}%   tie: {:.0}%   B wins: {:.0}%   (n = {}, sign-test p = {:.3})",
        100.0 * cmp.frac_a_wins,
        100.0 * cmp.frac_tie,
        100.0 * cmp.frac_b_wins,
        mins_a.len(),
        cmp.sign_test_p(0.25)
    );
    print!("{}", hist.render(40));
    println!();
}

/// CSV row helper: prints comma-separated values with a fixed precision.
pub fn csv_row(values: &[String]) {
    println!("{}", values.join(","));
}

/// Format an `f64` compactly for tables.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        return "0".into();
    }
    let a = v.abs();
    if (0.01..10_000.0).contains(&a) {
        format!("{v:.4}")
    } else {
        format!("{v:.3e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stoch_eval::functions::Sphere;
    use stoch_eval::noise::ConstantNoise;
    use stoch_eval::sampler::Noisy;

    #[test]
    fn env_knobs_have_defaults() {
        // Do not set the env vars here (tests run in one process); just
        // check the defaults parse.
        assert!(replicates() >= 1);
        assert!(time_budget() > 0.0);
    }

    #[test]
    fn final_minima_returns_one_value_per_replicate() {
        let sphere = Sphere::new(2);
        let obj = Noisy::new(sphere, ConstantNoise(1.0));
        std::env::set_var("REPRO_TIME", "2000");
        let mins = final_minima(
            &obj,
            &sphere,
            &SimplexMethod::Det(Det::new()),
            2,
            -3.0,
            3.0,
            4,
            1,
        );
        std::env::remove_var("REPRO_TIME");
        assert_eq!(mins.len(), 4);
        assert!(mins.iter().all(|m| m.is_finite()));
    }

    #[test]
    fn fmt_is_compact() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(1.5), "1.5000");
        assert_eq!(fmt(1.0e-6), "1.000e-6");
    }
}
