//! `repro-bench` — the experiment harness that regenerates every table and
//! figure of the paper's evaluation (Ch. 3). One binary per exhibit; see
//! `DESIGN.md` §3 for the index and `EXPERIMENTS.md` for recorded results.
//!
//! All binaries print their exhibit to stdout (CSV-ish rows plus ASCII
//! histograms). Common CLI flags (parse them with [`harness_args`] /
//! [`smoke_args`]):
//!
//! * `--smoke` — shrink every budget knob to CI-smoke size (seconds, not
//!   minutes) unless the corresponding env var is already set.
//! * `--metrics-out <path>` — write the run-accounting registry (JSON, or
//!   CSV if the path ends in `.csv`) after the exhibit finishes. Only the
//!   binaries that thread a registry through their runs accept this.
//! * `--backend <serial|threaded|threaded:N>` — which sampling backend the
//!   algorithms use (sets `NSX_BACKEND`, so it applies to every run in the
//!   process; results are identical either way, see DESIGN.md §8).
//!
//! Knobs via environment variables:
//!
//! * `REPRO_REPLICATES` — override the number of initial simplex states for
//!   the distribution figures (paper: 100).
//! * `REPRO_TIME` — override the virtual-walltime budget per run.
//! * `REPRO_ITERS` — override the iteration cap per run.
//! * `REPRO_SCALEUP_STEPS` — override the MW scale-up step count
//!   (`fig_3_18`).

#![warn(missing_docs)]

pub mod scaleup;

use noisy_simplex::prelude::*;
use obs::MetricsRegistry;
use stoch_eval::objective::{Objective, StochasticObjective};
use stoch_eval::stats::{Histogram, PairedComparison};

/// Number of replicate initial simplex states (paper default 100; override
/// with `REPRO_REPLICATES`).
pub fn replicates() -> usize {
    std::env::var("REPRO_REPLICATES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(100)
}

/// Virtual-walltime budget per optimization run (override `REPRO_TIME`).
pub fn time_budget() -> f64 {
    time_budget_or(1.0e5)
}

/// Virtual-walltime budget with a caller-chosen default, for exhibits whose
/// paper setting differs from the standard 1e5 (override `REPRO_TIME`).
pub fn time_budget_or(default: f64) -> f64 {
    std::env::var("REPRO_TIME")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Iteration cap with a caller-chosen default (override `REPRO_ITERS`).
pub fn iteration_cap_or(default: u64) -> u64 {
    std::env::var("REPRO_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// The termination criteria used by the comparison experiments: Eq. 2.9
/// tolerance plus the virtual-walltime budget (paper §2.4.1).
pub fn standard_termination() -> Termination {
    Termination {
        tolerance: Some(1e-6),
        max_time: Some(time_budget()),
        max_iterations: Some(iteration_cap_or(100_000)),
    }
}

/// The termination criteria for the water-parameterization exhibits
/// (Figs 3.19/3.20, Table 3.4): looser tolerance, longer budget.
pub fn water_termination() -> Termination {
    Termination {
        tolerance: Some(1e-4),
        max_time: Some(time_budget_or(2e5)),
        max_iterations: Some(iteration_cap_or(10_000)),
    }
}

/// Common CLI flags shared by the exhibit binaries.
#[derive(Debug, Clone, Default)]
pub struct HarnessArgs {
    /// `--smoke`: budgets were shrunk to CI-smoke size.
    pub smoke: bool,
    /// `--metrics-out <path>`: where to write the metrics registry.
    pub metrics_out: Option<std::path::PathBuf>,
    /// `--backend <choice>`: explicit sampling-backend selection (also
    /// exported as `NSX_BACKEND` so `BackendChoice::default()` picks it up).
    pub backend: Option<BackendChoice>,
}

impl HarnessArgs {
    /// A fresh registry when `--metrics-out` was requested, else `None`.
    /// Pass `registry.as_ref()` to the `run_with_metrics` entry points.
    pub fn registry(&self) -> Option<MetricsRegistry> {
        self.metrics_out.as_ref().map(|_| MetricsRegistry::new())
    }

    /// Write `registry` to the `--metrics-out` path (CSV if it ends in
    /// `.csv`, JSON otherwise). No-op when the flag was not given.
    pub fn write_metrics(&self, registry: Option<&MetricsRegistry>) {
        let (Some(path), Some(reg)) = (self.metrics_out.as_deref(), registry) else {
            return;
        };
        let body = if path.extension().is_some_and(|e| e == "csv") {
            reg.to_csv()
        } else {
            reg.to_json()
        };
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("error: cannot write metrics to {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("metrics written to {}", path.display());
    }
}

/// Parse the common flags from the process arguments, honouring
/// `--metrics-out`. Exits with a usage message on unknown flags.
pub fn harness_args() -> HarnessArgs {
    parse_args(std::env::args().skip(1), true).unwrap_or_else(|e| {
        eprintln!("{e}");
        eprintln!(
            "usage: [--smoke] [--metrics-out <path>] [--backend <serial|threaded|threaded:N>]"
        );
        std::process::exit(2);
    })
}

/// Like [`harness_args`] for exhibits that do not produce a metrics
/// registry: `--smoke` only, `--metrics-out` is rejected.
pub fn smoke_args() -> HarnessArgs {
    parse_args(std::env::args().skip(1), false).unwrap_or_else(|e| {
        eprintln!("{e}");
        eprintln!("usage: [--smoke] [--backend <serial|threaded|threaded:N>]");
        std::process::exit(2);
    })
}

fn parse_args(
    args: impl Iterator<Item = String>,
    metrics_supported: bool,
) -> Result<HarnessArgs, String> {
    let mut parsed = HarnessArgs::default();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => parsed.smoke = true,
            "--metrics-out" if metrics_supported => {
                let path = args
                    .next()
                    .ok_or("error: --metrics-out requires a path argument")?;
                parsed.metrics_out = Some(path.into());
            }
            "--metrics-out" => {
                return Err("error: this exhibit does not support --metrics-out".into());
            }
            other if metrics_supported && other.starts_with("--metrics-out=") => {
                let path = &other["--metrics-out=".len()..];
                if path.is_empty() {
                    return Err("error: --metrics-out requires a path argument".into());
                }
                parsed.metrics_out = Some(path.into());
            }
            "--backend" => {
                let sel = args
                    .next()
                    .ok_or("error: --backend requires a selection argument")?;
                parsed.backend = Some(parse_backend(&sel)?);
            }
            other if other.starts_with("--backend=") => {
                parsed.backend = Some(parse_backend(&other["--backend=".len()..])?);
            }
            other => return Err(format!("error: unknown argument `{other}`")),
        }
    }
    if parsed.smoke {
        apply_smoke_defaults();
    }
    if let Some(choice) = parsed.backend {
        // Export so every BackendChoice::default() in the process — engine
        // configs, baselines, PSO — picks the same selection up.
        std::env::set_var(
            "NSX_BACKEND",
            match choice {
                BackendChoice::Serial => "serial".to_string(),
                BackendChoice::Threaded { workers: 0 } => "threaded".to_string(),
                BackendChoice::Threaded { workers } => format!("threaded:{workers}"),
            },
        );
    }
    Ok(parsed)
}

fn parse_backend(sel: &str) -> Result<BackendChoice, String> {
    BackendChoice::parse(sel).ok_or_else(|| {
        format!("error: unknown backend `{sel}` (expected serial, threaded, or threaded:<N>)")
    })
}

/// Shrink every budget knob to CI-smoke size. Explicit env settings win:
/// only unset variables are defaulted, so `REPRO_TIME=500 bin --smoke`
/// keeps the caller's 500.
pub fn apply_smoke_defaults() {
    for (var, small) in [
        ("REPRO_TIME", "2000"),
        ("REPRO_REPLICATES", "4"),
        ("REPRO_ITERS", "300"),
        ("REPRO_SCALEUP_STEPS", "40"),
    ] {
        if std::env::var_os(var).is_none() {
            std::env::set_var(var, small);
        }
    }
}

/// Run `method` from each of `n` random initial simplexes drawn uniformly
/// from `[lo, hi)` and return the *true* final minimum values (floored for
/// log-ratio plots).
#[allow(clippy::too_many_arguments)]
pub fn final_minima<F, O>(
    objective: &F,
    underlying: &O,
    method: &SimplexMethod,
    d: usize,
    lo: f64,
    hi: f64,
    n: usize,
    seed_base: u64,
) -> Vec<f64>
where
    F: StochasticObjective,
    O: Objective,
{
    let term = standard_termination();
    (0..n)
        .map(|i| {
            let init = init::random_uniform(d, lo, hi, seed_base + i as u64);
            let res = method.run(objective, init, term, TimeMode::Parallel, 7_000 + i as u64);
            underlying.value(&res.best_point)
        })
        .collect()
}

/// Print a paper-style histogram panel of `log10(min_a / min_b)`.
pub fn print_ratio_panel(title: &str, mins_a: &[f64], mins_b: &[f64]) {
    let cmp = PairedComparison::new(mins_a, mins_b, 1e-12, 0.25);
    let hist: Histogram = cmp.histogram(-8.0, 8.0, 16);
    println!("--- {title} ---");
    println!(
        "A wins: {:.0}%   tie: {:.0}%   B wins: {:.0}%   (n = {}, sign-test p = {:.3})",
        100.0 * cmp.frac_a_wins,
        100.0 * cmp.frac_tie,
        100.0 * cmp.frac_b_wins,
        mins_a.len(),
        cmp.sign_test_p(0.25)
    );
    print!("{}", hist.render(40));
    println!();
}

/// CSV row helper: prints comma-separated values with a fixed precision.
pub fn csv_row(values: &[String]) {
    println!("{}", values.join(","));
}

/// Format an `f64` compactly for tables.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        return "0".into();
    }
    let a = v.abs();
    if (0.01..10_000.0).contains(&a) {
        format!("{v:.4}")
    } else {
        format!("{v:.3e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stoch_eval::functions::Sphere;
    use stoch_eval::noise::ConstantNoise;
    use stoch_eval::sampler::Noisy;

    #[test]
    fn env_knobs_have_defaults() {
        // Do not set the env vars here (tests run in one process); just
        // check the defaults parse.
        assert!(replicates() >= 1);
        assert!(time_budget() > 0.0);
    }

    #[test]
    fn final_minima_returns_one_value_per_replicate() {
        let sphere = Sphere::new(2);
        let obj = Noisy::new(sphere, ConstantNoise(1.0));
        std::env::set_var("REPRO_TIME", "2000");
        let mins = final_minima(
            &obj,
            &sphere,
            &SimplexMethod::Det(Det::new()),
            2,
            -3.0,
            3.0,
            4,
            1,
        );
        std::env::remove_var("REPRO_TIME");
        assert_eq!(mins.len(), 4);
        assert!(mins.iter().all(|m| m.is_finite()));
    }

    #[test]
    fn fmt_is_compact() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(1.5), "1.5000");
        assert_eq!(fmt(1.0e-6), "1.000e-6");
    }

    fn args(list: &[&str]) -> std::vec::IntoIter<String> {
        list.iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn parse_accepts_both_flags() {
        let a = parse_args(args(&["--smoke", "--metrics-out", "m.json"]), true).unwrap();
        assert!(a.smoke);
        assert_eq!(
            a.metrics_out.as_deref(),
            Some(std::path::Path::new("m.json"))
        );
        let b = parse_args(args(&["--metrics-out=m.csv"]), true).unwrap();
        assert_eq!(
            b.metrics_out.as_deref(),
            Some(std::path::Path::new("m.csv"))
        );
        assert!(!b.smoke);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(parse_args(args(&["--metrics-out"]), true).is_err());
        assert!(parse_args(args(&["--metrics-out="]), true).is_err());
        assert!(parse_args(args(&["--frobnicate"]), true).is_err());
        // Exhibits without a registry reject the flag outright.
        assert!(parse_args(args(&["--metrics-out", "m.json"]), false).is_err());
        assert!(parse_args(args(&["--smoke"]), false).unwrap().smoke);
    }

    #[test]
    fn parse_backend_selection() {
        // Only `serial` here: parsing a selection exports NSX_BACKEND for
        // the whole process, and tests share it. `serial` == the default.
        let a = parse_args(args(&["--backend", "serial"]), false).unwrap();
        assert_eq!(a.backend, Some(BackendChoice::Serial));
        let b = parse_args(args(&["--backend=serial"]), true).unwrap();
        assert_eq!(b.backend, Some(BackendChoice::Serial));
        assert!(parse_args(args(&["--backend"]), false).is_err());
        assert!(parse_args(args(&["--backend", "frobnicate"]), false).is_err());
        assert!(parse_args(args(&["--backend=threaded:x"]), false).is_err());
        // Rejected selections must not touch the environment.
        assert!(parse_backend("warp-drive").is_err());
    }

    #[test]
    fn registry_exists_only_when_requested() {
        let none = HarnessArgs::default();
        assert!(none.registry().is_none());
        none.write_metrics(None); // must be a no-op, not a crash

        let dir = std::env::temp_dir().join("repro-bench-metrics-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        let some = HarnessArgs {
            smoke: false,
            metrics_out: Some(path.clone()),
            backend: None,
        };
        let reg = some.registry().expect("registry expected");
        reg.counter("engine.rounds").add(3);
        some.write_metrics(Some(&reg));
        let body = std::fs::read_to_string(&path).unwrap();
        let parsed = obs::json::parse(&body).expect("valid JSON metrics file");
        assert!(parsed.get("engine.rounds").is_some());
        std::fs::remove_dir_all(&dir).ok();
    }
}
