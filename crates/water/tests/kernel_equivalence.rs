//! Property tests: every production kernel (cell-list scalar, lane-batched
//! simd, sharded) must reproduce the naive O(n²) force loop exactly
//! (≤ 1e-10 relative) on random periodic configurations — including
//! boundary-straddling molecules, stale-list reuse within the skin, and
//! post-NPT box rescales — and the sharded kernel must be bit-identical
//! across worker counts.

use proptest::prelude::*;
use water_md::forces::{compute_forces, Forces};
use water_md::kernel::{ForceEngine, ForceKernel};
use water_md::npt::scale_box;
use water_md::system::System;
use water_md::vec3::Vec3;
use water_md::TIP4P;

const TOL: f64 = 1e-10;

/// The production kernels under test (the naive oracle is the reference).
const KERNELS: [ForceKernel; 3] = [
    ForceKernel::CellList,
    ForceKernel::Simd,
    ForceKernel::Sharded,
];

fn rel(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(b.abs()).max(1.0)
}

/// Maximum relative discrepancy across energy, virial, and every force
/// component of the two evaluations.
fn max_rel_err(a: &Forces, b: &Forces) -> f64 {
    let mut worst = rel(a.potential, b.potential).max(rel(a.virial, b.virial));
    assert_eq!(a.f.len(), b.f.len());
    for (fa, fb) in a.f.iter().zip(&b.f) {
        for (va, vb) in fa.iter().zip(fb) {
            worst = worst
                .max(rel(va.x, vb.x))
                .max(rel(va.y, vb.y))
                .max(rel(va.z, vb.z));
        }
    }
    worst
}

/// Translate every molecule rigidly by `shift` — positions are unwrapped,
/// so a large shift leaves many molecules straddling or far outside the
/// primary box and exercises the kernel's wrapping-on-bin path.
fn translate_all(sys: &mut System, shift: Vec3) {
    for m in &mut sys.molecules {
        for r in &mut m.r {
            *r += shift;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random configs (size, density, cutoff, rigid translation): every
    /// production kernel's forces/energy/virial match the naive oracle to
    /// 1e-10 relative.
    #[test]
    fn cell_list_matches_naive_on_random_configs(
        n in 8usize..=128,
        density in 0.6f64..1.3,
        rc_frac in 0.4f64..1.0,
        sx in -25.0f64..25.0,
        sy in -25.0f64..25.0,
        sz in -25.0f64..25.0,
    ) {
        let mut sys = System::lattice_count(TIP4P, n, density, 300.0, n as u64);
        translate_all(&mut sys, Vec3::new(sx, sy, sz));
        let rc = rc_frac * (sys.box_len / 2.0);
        prop_assume!(rc > 2.0); // below ~2 Å the model is unphysical anyway

        let naive = compute_forces(&sys, rc);
        for kernel in KERNELS {
            let mut engine = ForceEngine::new(kernel);
            let out = engine.compute(&sys, rc);
            let err = max_rel_err(&out, &naive);
            prop_assert!(
                err <= TOL,
                "{} vs naive diverged: max rel err {:.3e} (n={}, rc={:.2}, L={:.2})",
                kernel.name(), err, n, rc, sys.box_len
            );
        }
    }

    /// A list built once stays exact while every molecule drifts by less
    /// than skin/2, and stays exact after a drift large enough to force a
    /// rebuild — for every list-backed kernel.
    #[test]
    fn stale_list_reuse_within_skin_is_exact(
        n in 8usize..=64,
        density in 0.8f64..1.2,
        seed in 0u64..500,
        drift in 0.05f64..0.45,
        kernel_ix in 0usize..3,
    ) {
        let kernel = KERNELS[kernel_ix];
        let skin = 1.0;
        let mut sys = System::lattice_count(TIP4P, n, density, 300.0, seed);
        let rc = (sys.box_len / 2.0).min(5.0);
        let mut engine = ForceEngine::with_skin(kernel, skin);
        engine.compute(&sys, rc); // build the list at the reference config

        // Per-molecule drifts below skin/2: the stale list must still cover
        // every interacting pair.
        for (i, m) in sys.molecules.iter_mut().enumerate() {
            let d = drift * Vec3::new(
                ((i * 7919 + 1) % 13) as f64 / 13.0 - 0.5,
                ((i * 104_729 + 5) % 11) as f64 / 11.0 - 0.5,
                ((i * 1_299_709 + 3) % 7) as f64 / 7.0 - 0.5,
            );
            for r in &mut m.r {
                *r += d;
            }
        }
        let reused = engine.compute(&sys, rc);
        prop_assert!(engine.stats().rebuilds == 1, "drift < skin/2 must reuse the list");
        let err = max_rel_err(&reused, &compute_forces(&sys, rc));
        prop_assert!(err <= TOL, "{} stale-list reuse diverged: {:.3e}", kernel.name(), err);

        // Now push one molecule past skin/2 — rebuild must trigger and the
        // fresh list must again match the oracle. A full-skin push keeps the
        // net displacement above skin/2 even if the earlier drift (≤ 0.225
        // per component) partially cancels it.
        for r in &mut sys.molecules[0].r {
            *r += Vec3::new(skin, 0.0, 0.0);
        }
        let rebuilt = engine.compute(&sys, rc);
        prop_assert!(engine.stats().rebuilds == 2, "drift > skin/2 must rebuild");
        let err = max_rel_err(&rebuilt, &compute_forces(&sys, rc));
        prop_assert!(err <= TOL, "{} post-rebuild diverged: {:.3e}", kernel.name(), err);
    }

    /// An NPT-style box rescale invalidates the cached geometry: with or
    /// without an explicit `invalidate()`, the next compute must match the
    /// naive oracle at the new box length — for every list-backed kernel.
    #[test]
    fn post_rescale_compute_matches_naive(
        n in 8usize..=64,
        density in 0.8f64..1.2,
        seed in 500u64..1_000,
        mu in 0.9f64..1.1,
        explicit in 0usize..2,
        kernel_ix in 0usize..3,
    ) {
        let kernel = KERNELS[kernel_ix];
        let mut sys = System::lattice_count(TIP4P, n, density, 300.0, seed);
        let rc = (sys.box_len / 2.0).min(5.0);
        let mut engine = ForceEngine::new(kernel);
        engine.compute(&sys, rc);

        scale_box(&mut sys, mu);
        if explicit == 1 {
            engine.invalidate();
        }
        // rc must stay legal for the shrunk box.
        let rc = rc.min(sys.box_len / 2.0);
        let after = engine.compute(&sys, rc);
        let err = max_rel_err(&after, &compute_forces(&sys, rc));
        prop_assert!(
            err <= TOL,
            "{} post-rescale diverged (mu={:.3}, explicit={}): {:.3e}",
            kernel.name(), mu, explicit, err
        );
    }

    /// Sharded evaluation is a pure function of the shard partition, never
    /// of the worker count: 1, 2, and 4 workers produce bit-identical
    /// forces, energy, and virial on random configurations.
    #[test]
    fn sharded_worker_count_is_bit_invariant(
        n in 8usize..=96,
        density in 0.7f64..1.25,
        seed in 1_000u64..1_500,
        shards in 1usize..=8,
    ) {
        let sys = System::lattice_count(TIP4P, n, density, 300.0, seed);
        let rc = (sys.box_len / 2.0).min(5.0);
        let mut reference: Option<Forces> = None;
        for workers in [1usize, 2, 4] {
            let mut engine = ForceEngine::with_sharding(1.0, shards, workers);
            let out = engine.compute(&sys, rc);
            match &reference {
                None => {
                    // Anchor the partition's correctness against the oracle
                    // once; the remaining worker counts must match bitwise.
                    let err = max_rel_err(&out, &compute_forces(&sys, rc));
                    prop_assert!(err <= TOL, "sharded vs naive diverged: {:.3e}", err);
                    reference = Some(out);
                }
                Some(r) => {
                    prop_assert!(r.potential.to_bits() == out.potential.to_bits(),
                        "potential differs at workers={workers}");
                    prop_assert!(r.virial.to_bits() == out.virial.to_bits(),
                        "virial differs at workers={workers}");
                    prop_assert!(r.f == out.f, "forces differ at workers={workers}");
                }
            }
        }
    }
}
