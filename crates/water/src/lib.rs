//! `water-md` — the molecular-simulation substrate for the paper's TIP4P
//! reparameterization application (§3.5).
//!
//! Two interchangeable property engines drive the same cost function:
//!
//! * [`simulate`] — a real (miniature) molecular-dynamics engine: rigid
//!   4-site TIP4P-form water, SHAKE/RATTLE constraints, shifted-force
//!   electrostatics, NVT equilibration + NVE production, measuring
//!   ⟨U⟩, ⟨P⟩, D, and the three RDFs.
//! * [`surrogate`] — a fast analytic response-surface surrogate calibrated
//!   so the published TIP4P parameters sit near its optimum, with the same
//!   `σ²(t) = σ0²/t` sampling-noise structure; this is what the
//!   paper-reproduction experiments run, since a full MD parameterization
//!   needs CPU-years (see `DESIGN.md` — substitutions).
//!
//! [`cost`] implements the weighted relative-residual cost function
//! (Eq. 3.4) with the RDF-to-scalar reduction (Eq. 3.5), exposed as a
//! [`stoch_eval::objective::StochasticObjective`] so every optimizer in
//! `noisy-simplex` can drive it unchanged.

#![warn(missing_docs)]

pub mod blocking;
pub mod cost;
pub mod forces;
pub mod integrate;
pub mod kernel;
pub mod model;
pub mod npt;
pub mod properties;
pub mod reference;
pub mod shard;
pub mod simd;
pub mod simulate;
pub mod soa;
pub mod surrogate;
pub mod system;
pub mod trajectory;
pub mod units;
pub mod vec3;

pub use cost::{CostWeights, WaterObjective};
pub use kernel::{ForceEngine, ForceKernel};
pub use model::{WaterModel, TIP4P};
pub use reference::Experiment;
pub use simulate::{run_md, MdConfig, MdProperties, Measured};
pub use surrogate::SurrogateWater;
pub use system::System;
pub use vec3::Vec3;
