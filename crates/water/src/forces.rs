//! Pairwise forces: Lennard-Jones on oxygen sites plus shifted-force
//! (Wolf-style) Coulomb between charge sites, with molecular-virial
//! accumulation and M-site force redistribution.
//!
//! The paper's production simulations would use Ewald electrostatics; the
//! shifted-force Coulomb used here is the standard small-box substitution
//! (documented in DESIGN.md): both the potential and the force go smoothly
//! to zero at the cutoff, so the dynamics conserve energy and the RDF
//! structure is preserved.

use crate::system::{min_image_vec, System};
use crate::units::COULOMB;
use crate::vec3::Vec3;

/// Forces and energy for one configuration.
#[derive(Debug, Clone)]
pub struct Forces {
    /// Per-molecule forces on the massive sites `[O, H1, H2]`, kcal/mol/Å
    /// (M-site forces already redistributed).
    pub f: Vec<[Vec3; 3]>,
    /// Total potential energy, kcal/mol.
    pub potential: f64,
    /// Molecular virial `Σ_pairs R_ij · F_ij`, kcal/mol.
    pub virial: f64,
}

/// Compute forces, potential energy, and molecular virial with an O–O
/// distance cutoff `rc` (Å).
pub fn compute_forces(sys: &System, rc: f64) -> Forces {
    let n = sys.n_molecules();
    let l = sys.box_len;
    let model = sys.model;
    let rc2 = rc * rc;
    let a_coef = model.msite_coeff();
    let (lj_a, lj_b) = (model.lj_a(), model.lj_b());
    // Shifted-force LJ: both the energy and the force go smoothly to zero
    // at rc (essential for energy conservation with the short cutoffs a
    // small box forces on us).
    let (lj_e_rc, lj_f_rc) = {
        let inv_rc2 = 1.0 / rc2;
        let inv_rc6 = inv_rc2 * inv_rc2 * inv_rc2;
        let inv_rc12 = inv_rc6 * inv_rc6;
        (
            lj_a * inv_rc12 - lj_b * inv_rc6,
            (12.0 * lj_a * inv_rc12 - 6.0 * lj_b * inv_rc6) / rc,
        )
    };
    let charges = [model.q_h, model.q_h, model.q_m()];
    let inv_rc = 1.0 / rc;
    let inv_rc2 = inv_rc * inv_rc;

    // Per-molecule forces on [O, H1, H2, M]; M redistributed afterwards.
    let mut f4: Vec<[Vec3; 4]> = vec![[Vec3::zero(); 4]; n];
    let mut potential = 0.0;
    let mut virial = 0.0;

    // Charge-site positions [H1, H2, M] per molecule.
    let msites: Vec<Vec3> = sys
        .molecules
        .iter()
        .map(|m| model.msite(m.r[0], m.r[1], m.r[2]))
        .collect();

    for i in 0..n {
        for j in i + 1..n {
            let d_oo = min_image_vec(sys.molecules[i].r[0] - sys.molecules[j].r[0], l);
            let r2 = d_oo.norm_sq();
            // Lattice shift that brings molecule j next to molecule i.
            let shift = (sys.molecules[i].r[0] - d_oo) - sys.molecules[j].r[0];

            let mut f_pair_on_i = Vec3::zero();
            let mut interacted = false;

            // LJ acts between the oxygen sites only (inclusion by O–O
            // distance).
            if r2 <= rc2 {
                interacted = true;
                let r = r2.sqrt();
                let inv_r2 = 1.0 / r2;
                let inv_r6 = inv_r2 * inv_r2 * inv_r2;
                let inv_r12 = inv_r6 * inv_r6;
                potential += lj_a * inv_r12 - lj_b * inv_r6 - lj_e_rc + (r - rc) * lj_f_rc;
                let fr = (12.0 * lj_a * inv_r12 - 6.0 * lj_b * inv_r6) / r;
                let fv = d_oo * ((fr - lj_f_rc) / r);
                f4[i][0] += fv;
                f4[j][0] -= fv;
                f_pair_on_i += fv;
            }

            // Molecule pairs whose O–O distance exceeds rc by more than the
            // largest possible site offset cannot have any interacting site
            // pair — skip them outright.
            if r2 > (rc + 3.0) * (rc + 3.0) {
                continue;
            }

            // Shifted-force Coulomb between charge sites (H1, H2, M) x (...),
            // included per site pair (Wolf-style), so nothing jumps when the
            // O–O distance crosses rc.
            let sites_i = [sys.molecules[i].r[1], sys.molecules[i].r[2], msites[i]];
            let sites_j = [
                sys.molecules[j].r[1] + shift,
                sys.molecules[j].r[2] + shift,
                msites[j] + shift,
            ];
            for (si, &ri) in sites_i.iter().enumerate() {
                for (sj, &rj) in sites_j.iter().enumerate() {
                    let d = ri - rj;
                    let r = d.norm();
                    if r >= rc {
                        continue;
                    }
                    interacted = true;
                    let qq = COULOMB * charges[si] * charges[sj];
                    potential += qq * (1.0 / r - inv_rc + (r - rc) * inv_rc2);
                    let fmag = qq * (1.0 / (r * r) - inv_rc2) / r;
                    let fv = d * fmag;
                    // Map charge-site index (0=H1, 1=H2, 2=M) to f4 slot
                    // (1=H1, 2=H2, 3=M).
                    f4[i][si + 1] += fv;
                    f4[j][sj + 1] -= fv;
                    f_pair_on_i += fv;
                }
            }

            if interacted {
                virial += d_oo.dot(f_pair_on_i);
            }
        }
    }

    // Redistribute M-site forces: F_O += (1−2a) F_M, F_Hi += a F_M.
    let f = f4
        .into_iter()
        .map(|[fo, fh1, fh2, fm]| {
            [
                fo + (1.0 - 2.0 * a_coef) * fm,
                fh1 + a_coef * fm,
                fh2 + a_coef * fm,
            ]
        })
        .collect();

    Forces {
        f,
        potential,
        virial,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{WaterModel, TIP4P};
    use crate::system::Molecule;

    /// Two molecules at a given O–O separation along x in a huge box.
    fn dimer(model: WaterModel, sep: f64, box_len: f64) -> System {
        let (o, h1, h2) = model.reference_sites();
        let make = |c: Vec3| Molecule {
            r: [o + c, h1 + c, h2 + c],
            v: [Vec3::zero(); 3],
        };
        System {
            model,
            molecules: vec![
                make(Vec3::new(0.0, 0.0, 0.0)),
                make(Vec3::new(sep, 0.0, 0.0)),
            ],
            box_len,
        }
    }

    #[test]
    fn beyond_cutoff_is_zero() {
        let sys = dimer(TIP4P, 20.0, 100.0);
        let f = compute_forces(&sys, 8.0);
        assert_eq!(f.potential, 0.0);
        assert_eq!(f.virial, 0.0);
        assert!(f.f.iter().flatten().all(|v| v.norm() == 0.0));
    }

    #[test]
    fn newtons_third_law() {
        let sys = dimer(TIP4P, 3.0, 100.0);
        let f = compute_forces(&sys, 8.0);
        let mut total = Vec3::zero();
        for mol in &f.f {
            for fv in mol {
                total += *fv;
            }
        }
        assert!(total.norm() < 1e-10, "net force {}", total.norm());
    }

    #[test]
    fn lj_only_matches_closed_form() {
        // Zero charges: pure shifted-force LJ between oxygens.
        let model = WaterModel::with_params(0.2, 3.0, 0.0);
        let rc = 10.0;
        let sep = 3.5;
        let sys = dimer(model, sep, 100.0);
        let f = compute_forces(&sys, rc);
        let lj = |r: f64| 4.0 * 0.2 * ((3.0f64 / r).powi(12) - (3.0f64 / r).powi(6));
        let ljf = |r: f64| {
            4.0 * 0.2 * (12.0 * 3.0f64.powi(12) / r.powi(13) - 6.0 * 3.0f64.powi(6) / r.powi(7))
        };
        let expected = lj(sep) - lj(rc) + (sep - rc) * ljf(rc);
        assert!(
            (f.potential - expected).abs() < 1e-10,
            "{} vs {}",
            f.potential,
            expected
        );
    }

    #[test]
    fn lj_energy_and_force_vanish_smoothly_at_cutoff() {
        let model = WaterModel::with_params(0.2, 3.0, 0.0);
        let rc = 6.0;
        let eps = 1e-4;
        let just_in = compute_forces(&dimer(model, rc - eps, 100.0), rc);
        assert!(
            just_in.potential.abs() < 1e-6,
            "E(rc-) = {}",
            just_in.potential
        );
        assert!(
            just_in.f[0][0].norm() < 1e-4,
            "F(rc-) = {}",
            just_in.f[0][0].norm()
        );
    }

    #[test]
    fn lj_force_is_minus_gradient() {
        let model = WaterModel::with_params(0.2, 3.0, 0.0);
        let rc = 10.0;
        let h = 1e-6;
        for sep in [3.0, 3.2, 4.0, 5.0] {
            let fp = compute_forces(&dimer(model, sep + h, 100.0), rc).potential;
            let fm = compute_forces(&dimer(model, sep - h, 100.0), rc).potential;
            let numeric = -(fp - fm) / (2.0 * h);
            let f = compute_forces(&dimer(model, sep, 100.0), rc);
            // Force on molecule 2's oxygen along +x.
            let analytic = f.f[1][0].x;
            assert!(
                (numeric - analytic).abs() < 1e-5,
                "sep {sep}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn coulomb_force_is_minus_gradient() {
        // Full TIP4P dimer: check the x-derivative of the energy against the
        // total x-force on molecule 2 (with M redistributed, the total force
        // on the molecule is unchanged).
        let rc = 12.0;
        let h = 1e-6;
        let sep = 3.1;
        let fp = compute_forces(&dimer(TIP4P, sep + h, 100.0), rc).potential;
        let fm = compute_forces(&dimer(TIP4P, sep - h, 100.0), rc).potential;
        let numeric = -(fp - fm) / (2.0 * h);
        let f = compute_forces(&dimer(TIP4P, sep, 100.0), rc);
        let analytic: f64 = f.f[1].iter().map(|v| v.x).sum();
        assert!(
            (numeric - analytic).abs() < 1e-4,
            "numeric {numeric} vs analytic {analytic}"
        );
    }

    #[test]
    fn periodic_image_is_equivalent() {
        let l = 20.0;
        let a = dimer(TIP4P, 3.0, l);
        let mut b = dimer(TIP4P, 3.0, l);
        // Translate molecule 2 by one full box: identical physics.
        for r in &mut b.molecules[1].r {
            r.x += l;
        }
        let fa = compute_forces(&a, 8.0);
        let fb = compute_forces(&b, 8.0);
        assert!((fa.potential - fb.potential).abs() < 1e-10);
        assert!((fa.f[0][0] - fb.f[0][0]).norm() < 1e-10);
    }

    #[test]
    fn close_oxygens_repel() {
        let sys = dimer(TIP4P, 2.4, 100.0);
        let f = compute_forces(&sys, 8.0);
        // Molecule 1 pushed towards −x, molecule 2 towards +x.
        assert!(f.f[0][0].x < 0.0);
        assert!(f.f[1][0].x > 0.0);
        assert!(f.virial > 0.0, "repulsive pair must have positive virial");
    }

    #[test]
    fn tip4p_dimer_minimum_is_attractive_region() {
        // Near the known TIP4P dimer O–O distance (~2.75 Å) the interaction
        // energy should be negative for at least some relative orientation;
        // our aligned dimer at 2.8–3.0 Å should be bound (E < 0) thanks to
        // dipole-dipole attraction being absent in this symmetric layout —
        // instead just verify the LJ+Coulomb balance is finite and smooth.
        let e1 = compute_forces(&dimer(TIP4P, 2.8, 100.0), 9.0).potential;
        let e2 = compute_forces(&dimer(TIP4P, 2.9, 100.0), 9.0).potential;
        assert!(e1.is_finite() && e2.is_finite());
        assert!((e1 - e2).abs() < 50.0);
    }
}
