//! Minimal 3-vector arithmetic for the MD engine.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 3-component vector (Å, Å/fs, or kcal/mol/Å depending on context).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

impl Vec3 {
    /// Construct from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// The zero vector.
    #[inline]
    pub const fn zero() -> Self {
        Vec3::new(0.0, 0.0, 0.0)
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Unit vector in this direction.
    ///
    /// # Panics
    /// On the zero vector (debug builds).
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        debug_assert!(n > 0.0, "normalizing zero vector");
        self / n
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        self.x += o.x;
        self.y += o.y;
        self.z += o.z;
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        self.x -= o.x;
        self.y -= o.y;
        self.z -= o.z;
    }
}

/// Four f64 lanes with elementwise arithmetic.
///
/// Stable-Rust SIMD: the fixed-size array plus per-lane loops compile to
/// packed vector instructions under `-O` (the autovectorizer keeps a
/// `[f64; 4]` that only flows through elementwise ops in registers), with
/// no nightly `std::simd` features. Used by the lane-batched force kernel
/// (`water::simd`); lane order is part of the determinism contract — sums
/// over lanes must use [`F64x4::fold_sum`] so the reduction order is fixed.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct F64x4(pub [f64; 4]);

impl F64x4 {
    /// All four lanes set to `v`.
    #[inline(always)]
    pub fn splat(v: f64) -> F64x4 {
        F64x4([v; 4])
    }

    /// Load four consecutive values from `s` starting at `at`.
    #[inline(always)]
    pub fn load(s: &[f64], at: usize) -> F64x4 {
        F64x4([s[at], s[at + 1], s[at + 2], s[at + 3]])
    }

    /// Store the four lanes into `s` starting at `at`.
    #[inline(always)]
    pub fn store(self, s: &mut [f64], at: usize) {
        s[at..at + 4].copy_from_slice(&self.0);
    }

    /// Elementwise square root.
    #[inline(always)]
    pub fn sqrt(self) -> F64x4 {
        let mut o = self.0;
        for v in &mut o {
            *v = v.sqrt();
        }
        F64x4(o)
    }

    /// Elementwise reciprocal (exact IEEE division, not an approximation).
    #[inline(always)]
    pub fn recip(self) -> F64x4 {
        let mut o = self.0;
        for v in &mut o {
            *v = 1.0 / *v;
        }
        F64x4(o)
    }

    /// Sum of the lanes in fixed order: `((l0 + l1) + l2) + l3`.
    #[inline(always)]
    pub fn fold_sum(self) -> f64 {
        ((self.0[0] + self.0[1]) + self.0[2]) + self.0[3]
    }
}

macro_rules! lanewise {
    ($trait:ident, $fn:ident, $op:tt) => {
        impl $trait for F64x4 {
            type Output = F64x4;
            #[inline(always)]
            fn $fn(self, o: F64x4) -> F64x4 {
                let mut r = [0.0; 4];
                for l in 0..4 {
                    r[l] = self.0[l] $op o.0[l];
                }
                F64x4(r)
            }
        }
    };
}

lanewise!(Add, add, +);
lanewise!(Sub, sub, -);
lanewise!(Mul, mul, *);
lanewise!(Div, div, /);

impl AddAssign for F64x4 {
    #[inline(always)]
    fn add_assign(&mut self, o: F64x4) {
        for l in 0..4 {
            self.0[l] += o.0[l];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn dot_cross_norm() {
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(Vec3::new(3.0, 4.0, 0.0).norm(), 5.0);
        assert_eq!(Vec3::new(3.0, 4.0, 0.0).norm_sq(), 25.0);
    }

    #[test]
    fn normalized_is_unit() {
        let v = Vec3::new(3.0, -4.0, 12.0).normalized();
        assert!((v.norm() - 1.0).abs() < 1e-14);
    }

    #[test]
    fn assign_ops() {
        let mut v = Vec3::new(1.0, 1.0, 1.0);
        v += Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(v, Vec3::new(2.0, 3.0, 4.0));
        v -= Vec3::new(2.0, 3.0, 4.0);
        assert_eq!(v, Vec3::zero());
    }

    #[test]
    fn lanes_elementwise_ops() {
        let a = F64x4([1.0, 4.0, 9.0, 16.0]);
        let b = F64x4::splat(2.0);
        assert_eq!((a + b).0, [3.0, 6.0, 11.0, 18.0]);
        assert_eq!((a - b).0, [-1.0, 2.0, 7.0, 14.0]);
        assert_eq!((a * b).0, [2.0, 8.0, 18.0, 32.0]);
        assert_eq!((a / b).0, [0.5, 2.0, 4.5, 8.0]);
        assert_eq!(a.sqrt().0, [1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.recip().0, [1.0, 0.25, 1.0 / 9.0, 0.0625]);
        assert_eq!(a.fold_sum(), 30.0);
    }

    #[test]
    fn lanes_load_store_roundtrip() {
        let src = [0.5, 1.5, 2.5, 3.5, 4.5, 5.5];
        let v = F64x4::load(&src, 2);
        assert_eq!(v.0, [2.5, 3.5, 4.5, 5.5]);
        let mut dst = [0.0; 6];
        v.store(&mut dst, 1);
        assert_eq!(dst, [0.0, 2.5, 3.5, 4.5, 5.5, 0.0]);
        let mut acc = F64x4::splat(1.0);
        acc += v;
        assert_eq!(acc.0, [3.5, 4.5, 5.5, 6.5]);
    }
}
