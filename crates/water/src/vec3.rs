//! Minimal 3-vector arithmetic for the MD engine.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 3-component vector (Å, Å/fs, or kcal/mol/Å depending on context).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

impl Vec3 {
    /// Construct from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// The zero vector.
    #[inline]
    pub const fn zero() -> Self {
        Vec3::new(0.0, 0.0, 0.0)
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Unit vector in this direction.
    ///
    /// # Panics
    /// On the zero vector (debug builds).
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        debug_assert!(n > 0.0, "normalizing zero vector");
        self / n
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        self.x += o.x;
        self.y += o.y;
        self.z += o.z;
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        self.x -= o.x;
        self.y -= o.y;
        self.z -= o.z;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn dot_cross_norm() {
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(Vec3::new(3.0, 4.0, 0.0).norm(), 5.0);
        assert_eq!(Vec3::new(3.0, 4.0, 0.0).norm_sq(), 25.0);
    }

    #[test]
    fn normalized_is_unit() {
        let v = Vec3::new(3.0, -4.0, 12.0).normalized();
        assert!((v.norm() - 1.0).abs() < 1e-14);
    }

    #[test]
    fn assign_ops() {
        let mut v = Vec3::new(1.0, 1.0, 1.0);
        v += Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(v, Vec3::new(2.0, 3.0, 4.0));
        v -= Vec3::new(2.0, 3.0, 4.0);
        assert_eq!(v, Vec3::zero());
    }
}
