//! Unit system and physical constants.
//!
//! Internal MD units: length Å, time fs, mass amu, energy kcal/mol,
//! charge in elementary charges. Conversions to the paper's reporting units
//! (kJ/mol, atm, cm²/s) are provided.

/// Boltzmann constant, kcal/(mol·K).
pub const KB: f64 = 1.987_204_1e-3;

/// Coulomb prefactor `e²/(4πε₀)` in kcal·Å/mol.
pub const COULOMB: f64 = 332.063_71;

/// Acceleration conversion: `a [Å/fs²] = KCAL_ACC · F[kcal/mol/Å] / m[amu]`.
pub const KCAL_ACC: f64 = 4.184e-4;

/// Kinetic-energy conversion: `KE [kcal/mol] = (m v²/2) / KCAL_ACC` with `v`
/// in Å/fs and `m` in amu.
pub const KE_TO_KCAL: f64 = 1.0 / KCAL_ACC;

/// Pressure conversion: kcal/(mol·Å³) → atm.
pub const KCAL_A3_TO_ATM: f64 = 68_568.4;

/// Energy conversion: kcal → kJ.
pub const KCAL_TO_KJ: f64 = 4.184;

/// Diffusion conversion: Å²/fs → cm²/s.
pub const A2_FS_TO_CM2_S: f64 = 0.1;

/// Molar mass of water, g/mol.
pub const WATER_MOLAR_MASS: f64 = 18.015_28;

/// Avogadro-based density conversion: molecules per Å³ for a density in
/// g/cm³ of a species with molar mass `m` g/mol.
pub fn number_density(density_g_cm3: f64, molar_mass: f64) -> f64 {
    // rho [g/cm3] * 6.02214e23 [1/mol] / m [g/mol] * 1e-24 [cm3/Å3]
    density_g_cm3 * 0.602_214_076 / molar_mass
}

/// Mass of an oxygen atom, amu.
pub const MASS_O: f64 = 15.999_4;
/// Mass of a hydrogen atom, amu.
pub const MASS_H: f64 = 1.008;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn water_number_density_at_ambient() {
        // 0.997 g/cm3 water = 0.03334 molecules per Å³ (textbook value).
        let n = number_density(0.997, WATER_MOLAR_MASS);
        assert!((n - 0.033_33).abs() < 3e-4, "got {n}");
    }

    #[test]
    fn kinetic_temperature_roundtrip() {
        // A 1-amu particle at v = 1 Å/fs carries KE = 0.5/KCAL_ACC kcal/mol
        // ≈ 1195 kcal/mol; check the constant's self-consistency.
        let ke = 0.5 * 1.0 * 1.0 * KE_TO_KCAL;
        assert!((ke - 0.5 / 4.184e-4).abs() < 1e-9);
    }

    #[test]
    fn pressure_conversion_magnitude() {
        // 1 kcal/mol/Å³ ≈ 6.9e4 atm (kBT per water volume scale check:
        // kB*298K / 30 Å³ ≈ 0.0197 kcal/mol/Å³ ≈ 1354 atm).
        let p = KB * 298.0 / 30.0 * KCAL_A3_TO_ATM;
        assert!((p - 1353.0).abs() < 10.0, "got {p}");
    }

    #[test]
    fn diffusion_conversion() {
        // Water self-diffusion 2.3e-5 cm²/s = 2.3e-4 Å²/fs.
        assert!((2.3e-4 * A2_FS_TO_CM2_S / 2.3e-5 - 1.0).abs() < 1e-12);
    }
}
