//! The simulation system: N rigid water molecules in a periodic cubic box.
//!
//! Positions are kept *unwrapped* (molecules may drift outside the primary
//! box); all pair interactions apply the minimum-image convention to the
//! oxygen–oxygen displacement and shift whole molecules by the same lattice
//! vector, so rigid intramolecular geometry is never broken by wrapping.
//! Unwrapped positions also make mean-square-displacement (diffusion)
//! measurement trivial.

use crate::model::WaterModel;
use crate::units::{number_density, MASS_H, MASS_O, WATER_MOLAR_MASS};
use crate::vec3::Vec3;
use rand::rngs::StdRng;
use rand::Rng;
use stoch_eval::rng::rng_from_seed;
use stoch_eval::sampler::NormalSource;

/// One rigid water molecule: three massive sites (O, H1, H2) with positions
/// and velocities. The M site is virtual and derived from these.
#[derive(Debug, Clone, Copy)]
pub struct Molecule {
    /// Site positions `[O, H1, H2]`, Å.
    pub r: [Vec3; 3],
    /// Site velocities `[O, H1, H2]`, Å/fs.
    pub v: [Vec3; 3],
}

/// Atom masses `[O, H, H]` in amu.
pub const MASSES: [f64; 3] = [MASS_O, MASS_H, MASS_H];

/// The periodic simulation system.
#[derive(Debug, Clone)]
pub struct System {
    /// The water model in force.
    pub model: WaterModel,
    /// The molecules.
    pub molecules: Vec<Molecule>,
    /// Cubic box edge length, Å.
    pub box_len: f64,
}

/// Minimum-image displacement component.
#[inline]
pub fn min_image(dx: f64, l: f64) -> f64 {
    dx - l * (dx / l).round()
}

/// Minimum-image displacement vector.
#[inline]
pub fn min_image_vec(d: Vec3, l: f64) -> Vec3 {
    Vec3::new(min_image(d.x, l), min_image(d.y, l), min_image(d.z, l))
}

/// Rotate `v` by the unit quaternion `(w, x, y, z)`.
fn rotate(v: Vec3, q: [f64; 4]) -> Vec3 {
    let u = Vec3::new(q[1], q[2], q[3]);
    let s = q[0];
    2.0 * u.dot(v) * u + (s * s - u.dot(u)) * v + 2.0 * s * u.cross(v)
}

/// Draw a uniformly random unit quaternion.
fn random_quaternion(rng: &mut StdRng) -> [f64; 4] {
    let u1: f64 = rng.gen();
    let u2: f64 = rng.gen::<f64>() * std::f64::consts::TAU;
    let u3: f64 = rng.gen::<f64>() * std::f64::consts::TAU;
    let a = (1.0 - u1).sqrt();
    let b = u1.sqrt();
    [a * u2.sin(), a * u2.cos(), b * u3.sin(), b * u3.cos()]
}

impl System {
    /// Build `n³` molecules on a cubic lattice with random orientations at
    /// the given mass density (g/cm³), with Maxwell–Boltzmann velocities at
    /// `temperature` (K) and zero total momentum.
    pub fn lattice(
        model: WaterModel,
        n_side: usize,
        density_g_cm3: f64,
        temperature: f64,
        seed: u64,
    ) -> System {
        assert!(n_side >= 1);
        Self::lattice_count(
            model,
            n_side * n_side * n_side,
            density_g_cm3,
            temperature,
            seed,
        )
    }

    /// Build exactly `n` molecules at the given mass density: the smallest
    /// cubic grid holding `n` sites, with `n` of them occupied at evenly
    /// strided indices so vacancies spread uniformly rather than clustering
    /// in one corner. For perfect cubes this reduces to [`System::lattice`]
    /// (same site order, same RNG consumption — bit-identical systems).
    pub fn lattice_count(
        model: WaterModel,
        n: usize,
        density_g_cm3: f64,
        temperature: f64,
        seed: u64,
    ) -> System {
        assert!(n >= 1);
        let mut n_side = (n as f64).cbrt().round() as usize;
        while n_side * n_side * n_side < n {
            n_side += 1;
        }
        let total = n_side * n_side * n_side;
        let rho = number_density(density_g_cm3, WATER_MOLAR_MASS);
        let box_len = (n as f64 / rho).cbrt();
        let spacing = box_len / n_side as f64;
        let mut rng = rng_from_seed(seed);
        let (o_ref, h1_ref, h2_ref) = model.reference_sites();

        let mut molecules = Vec::with_capacity(n);
        for k in 0..n {
            // Evenly strided occupied-site index; strictly increasing since
            // total / n >= 1, and the identity map when n == total.
            let s = k * total / n;
            let (ix, rem) = (s / (n_side * n_side), s % (n_side * n_side));
            let (iy, iz) = (rem / n_side, rem % n_side);
            let center = Vec3::new(
                (ix as f64 + 0.5) * spacing,
                (iy as f64 + 0.5) * spacing,
                (iz as f64 + 0.5) * spacing,
            );
            let q = random_quaternion(&mut rng);
            let r = [
                center + rotate(o_ref, q),
                center + rotate(h1_ref, q),
                center + rotate(h2_ref, q),
            ];
            molecules.push(Molecule {
                r,
                v: [Vec3::zero(); 3],
            });
        }

        let mut sys = System {
            model,
            molecules,
            box_len,
        };
        sys.thermalize(temperature, &mut NormalSource::from_rng(rng));
        sys
    }

    /// Number of molecules.
    pub fn n_molecules(&self) -> usize {
        self.molecules.len()
    }

    /// Box volume, Å³.
    pub fn volume(&self) -> f64 {
        self.box_len.powi(3)
    }

    /// Assign rigid-body Maxwell–Boltzmann velocities at `temperature` and
    /// remove net momentum.
    ///
    /// Each molecule gets an independent COM velocity (no initial angular
    /// velocity); RATTLE keeps subsequent dynamics on the constraint
    /// manifold, and a short equilibration redistributes energy into
    /// rotation. The 3n variates come from one [`NormalSource::fill`] call —
    /// the bulk Marsaglia path, bit-exact with per-draw sampling.
    pub fn thermalize(&mut self, temperature: f64, src: &mut NormalSource) {
        use crate::units::{KB, KCAL_ACC};
        let m_mol: f64 = MASSES.iter().sum();
        // v component std: sqrt(kB T / m) in MD units: kB T [kcal/mol],
        // KE = m v² / (2 KCAL_ACC) => v_std = sqrt(KCAL_ACC kB T / m).
        let v_std = (KCAL_ACC * KB * temperature / m_mol).sqrt();
        let mut z = vec![0.0; 3 * self.molecules.len()];
        src.fill(&mut z);
        let mut total = Vec3::zero();
        for (mol, z) in self.molecules.iter_mut().zip(z.chunks_exact(3)) {
            let v = Vec3::new(v_std * z[0], v_std * z[1], v_std * z[2]);
            mol.v = [v, v, v];
            total += v;
        }
        let correction = total / self.molecules.len() as f64;
        for mol in &mut self.molecules {
            for v in &mut mol.v {
                *v -= correction;
            }
        }
    }

    /// Net linear momentum (amu·Å/fs).
    pub fn momentum(&self) -> Vec3 {
        let mut p = Vec3::zero();
        for mol in &self.molecules {
            for (v, m) in mol.v.iter().zip(&MASSES) {
                p += *v * *m;
            }
        }
        p
    }

    /// Check every molecule's rigid constraints to within `tol` Å.
    pub fn constraints_satisfied(&self, tol: f64) -> bool {
        let d_oh = self.model.r_oh;
        let d_hh = self.model.r_hh();
        self.molecules.iter().all(|m| {
            ((m.r[0] - m.r[1]).norm() - d_oh).abs() < tol
                && ((m.r[0] - m.r[2]).norm() - d_oh).abs() < tol
                && ((m.r[1] - m.r[2]).norm() - d_hh).abs() < tol
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TIP4P;

    #[test]
    fn lattice_count_matches_lattice_for_perfect_cubes() {
        let a = System::lattice(TIP4P, 3, 0.997, 298.0, 42);
        let b = System::lattice_count(TIP4P, 27, 0.997, 298.0, 42);
        assert_eq!(a.box_len, b.box_len);
        for (ma, mb) in a.molecules.iter().zip(&b.molecules) {
            assert_eq!(ma.r, mb.r);
            assert_eq!(ma.v, mb.v);
        }
    }

    #[test]
    fn lattice_count_handles_non_cubes() {
        use crate::units::WATER_MOLAR_MASS;
        let sys = System::lattice_count(TIP4P, 256, 0.997, 298.0, 1);
        assert_eq!(sys.n_molecules(), 256);
        assert!(sys.constraints_satisfied(1e-9));
        let density = 256.0 * WATER_MOLAR_MASS / 0.602_214_076 / sys.volume();
        assert!((density - 0.997).abs() < 1e-9, "density {density}");
        // No two molecules share a lattice site.
        for i in 0..sys.n_molecules() {
            for j in i + 1..sys.n_molecules() {
                let d = min_image_vec(sys.molecules[i].r[0] - sys.molecules[j].r[0], sys.box_len);
                assert!(d.norm() > 1.0, "molecules {i} and {j} overlap");
            }
        }
    }

    #[test]
    fn min_image_wraps_to_half_box() {
        assert_eq!(min_image(6.0, 10.0), -4.0);
        assert_eq!(min_image(-6.0, 10.0), 4.0);
        assert_eq!(min_image(3.0, 10.0), 3.0);
        let v = min_image_vec(Vec3::new(9.0, -9.0, 0.5), 10.0);
        assert_eq!(v, Vec3::new(-1.0, 1.0, 0.5));
    }

    #[test]
    fn lattice_has_right_density_and_geometry() {
        let sys = System::lattice(TIP4P, 3, 0.997, 298.0, 1);
        assert_eq!(sys.n_molecules(), 27);
        let rho = sys.n_molecules() as f64 / sys.volume();
        assert!((rho - 0.03333).abs() < 3e-4, "rho = {rho}");
        assert!(sys.constraints_satisfied(1e-9));
    }

    #[test]
    fn thermalize_zeroes_momentum() {
        let sys = System::lattice(TIP4P, 2, 0.997, 298.0, 2);
        assert!(sys.momentum().norm() < 1e-10);
    }

    #[test]
    fn rotation_preserves_lengths() {
        let mut rng = rng_from_seed(3);
        for _ in 0..10 {
            let q = random_quaternion(&mut rng);
            let v = Vec3::new(1.0, 2.0, 3.0);
            assert!((rotate(v, q).norm() - v.norm()).abs() < 1e-12);
        }
    }

    #[test]
    fn lattice_is_reproducible() {
        let a = System::lattice(TIP4P, 2, 0.997, 298.0, 9);
        let b = System::lattice(TIP4P, 2, 0.997, 298.0, 9);
        assert_eq!(a.molecules[3].r[1], b.molecules[3].r[1]);
        assert_eq!(a.molecules[5].v[0], b.molecules[5].v[0]);
    }
}
