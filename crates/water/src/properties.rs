//! Property estimators: pressure, radial distribution functions, and
//! mean-square displacement / self-diffusion.
//!
//! These are the six observables the paper's cost function fits (§3.5):
//! ⟨U⟩, ⟨P⟩, D, and the three RDFs gOO, gOH, gHH.

use crate::system::{min_image_vec, System};
use crate::units::{A2_FS_TO_CM2_S, KB, KCAL_A3_TO_ATM};
use crate::vec3::Vec3;

/// Instantaneous pressure from the molecular virial, atm:
/// `P = (N kB T + W/3) / V`.
pub fn pressure_atm(sys: &System, temperature: f64, virial: f64) -> f64 {
    let n = sys.n_molecules() as f64;
    let v = sys.volume();
    (n * KB * temperature + virial / 3.0) / v * KCAL_A3_TO_ATM
}

/// Which site pair a radial distribution function correlates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RdfKind {
    /// Oxygen–oxygen.
    OO,
    /// Oxygen–hydrogen (intermolecular).
    OH,
    /// Hydrogen–hydrogen (intermolecular).
    HH,
}

/// A binned radial distribution function accumulator.
#[derive(Debug, Clone)]
pub struct RdfAccumulator {
    kind: RdfKind,
    r_max: f64,
    dr: f64,
    counts: Vec<f64>,
    samples: usize,
}

impl RdfAccumulator {
    /// Accumulate `g(r)` for `kind` out to `r_max` with `bins` bins.
    pub fn new(kind: RdfKind, r_max: f64, bins: usize) -> Self {
        assert!(r_max > 0.0 && bins > 0);
        RdfAccumulator {
            kind,
            r_max,
            dr: r_max / bins as f64,
            counts: vec![0.0; bins],
            samples: 0,
        }
    }

    /// Site positions relevant to this RDF, per molecule.
    fn sites(kind: RdfKind, sys: &System, i: usize) -> Vec<Vec3> {
        let m = &sys.molecules[i];
        match kind {
            RdfKind::OO => vec![m.r[0]],
            RdfKind::OH => vec![m.r[0], m.r[1], m.r[2]], // handled pairwise below
            RdfKind::HH => vec![m.r[1], m.r[2]],
        }
    }

    /// Record one configuration (intermolecular pairs only).
    pub fn sample(&mut self, sys: &System) {
        let l = sys.box_len;
        let n = sys.n_molecules();
        for i in 0..n {
            for j in i + 1..n {
                match self.kind {
                    RdfKind::OO | RdfKind::HH => {
                        let si = Self::sites(self.kind, sys, i);
                        let sj = Self::sites(self.kind, sys, j);
                        for &a in &si {
                            for &b in &sj {
                                self.push(min_image_vec(a - b, l).norm());
                            }
                        }
                    }
                    RdfKind::OH => {
                        // O of i with Hs of j and vice versa.
                        let (mi, mj) = (&sys.molecules[i], &sys.molecules[j]);
                        for &(a, b) in &[
                            (mi.r[0], mj.r[1]),
                            (mi.r[0], mj.r[2]),
                            (mj.r[0], mi.r[1]),
                            (mj.r[0], mi.r[2]),
                        ] {
                            self.push(min_image_vec(a - b, l).norm());
                        }
                    }
                }
            }
        }
        self.samples += 1;
    }

    fn push(&mut self, r: f64) {
        if r < self.r_max {
            let last = self.counts.len() - 1;
            let bin = ((r / self.dr) as usize).min(last);
            self.counts[bin] += 1.0;
        }
    }

    /// Normalize into `g(r)`: returns `(r_centers, g)` such that an ideal
    /// gas gives `g ≈ 1` at large `r`.
    pub fn normalize(&self, sys: &System) -> (Vec<f64>, Vec<f64>) {
        let n = sys.n_molecules() as f64;
        let v = sys.volume();
        // Pairs counted per sample by `sample()`:
        let pairs_per_sample = match self.kind {
            RdfKind::OO => n * (n - 1.0) / 2.0,
            RdfKind::HH => n * (n - 1.0) / 2.0 * 4.0,
            RdfKind::OH => n * (n - 1.0) / 2.0 * 4.0,
        };
        let mut rs = Vec::with_capacity(self.counts.len());
        let mut gs = Vec::with_capacity(self.counts.len());
        let nsamp = self.samples.max(1) as f64;
        for (b, &c) in self.counts.iter().enumerate() {
            let r_lo = b as f64 * self.dr;
            let r_hi = r_lo + self.dr;
            let shell = 4.0 / 3.0 * std::f64::consts::PI * (r_hi.powi(3) - r_lo.powi(3));
            // Ideal count in this shell for pairs_per_sample pairs: the pair
            // density is pairs/V.
            let ideal = pairs_per_sample * shell / v;
            rs.push(r_lo + 0.5 * self.dr);
            gs.push(c / (nsamp * ideal));
        }
        (rs, gs)
    }
}

/// Mean-square-displacement tracker for the oxygen atoms (positions are
/// unwrapped, so no image bookkeeping is needed).
#[derive(Debug, Clone)]
pub struct MsdTracker {
    origin: Vec<Vec3>,
    /// (time fs, MSD Å²) samples.
    pub series: Vec<(f64, f64)>,
}

impl MsdTracker {
    /// Start tracking from the current configuration.
    pub fn new(sys: &System) -> Self {
        MsdTracker {
            origin: sys.molecules.iter().map(|m| m.r[0]).collect(),
            series: Vec::new(),
        }
    }

    /// Record the MSD at elapsed time `t` fs.
    pub fn sample(&mut self, sys: &System, t: f64) {
        let msd = sys
            .molecules
            .iter()
            .zip(&self.origin)
            .map(|(m, &r0)| (m.r[0] - r0).norm_sq())
            .sum::<f64>()
            / sys.n_molecules() as f64;
        self.series.push((t, msd));
    }

    /// Self-diffusion coefficient in cm²/s via the Einstein relation,
    /// least-squares slope of the second half of the MSD series:
    /// `D = slope / 6`.
    pub fn diffusion_cm2_s(&self) -> f64 {
        let pts = &self.series[self.series.len() / 2..];
        if pts.len() < 2 {
            return f64::NAN;
        }
        let n = pts.len() as f64;
        let (mut st, mut sm, mut stt, mut stm) = (0.0, 0.0, 0.0, 0.0);
        for &(t, m) in pts {
            st += t;
            sm += m;
            stt += t * t;
            stm += t * m;
        }
        let denom = n * stt - st * st;
        if denom.abs() < 1e-30 {
            return f64::NAN;
        }
        let slope = (n * stm - st * sm) / denom; // Å²/fs
        slope / 6.0 * A2_FS_TO_CM2_S
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TIP4P;
    use crate::system::Molecule;

    #[test]
    fn ideal_gas_pressure() {
        // Zero virial: P = rho kB T.
        let sys = System::lattice(TIP4P, 2, 0.997, 298.0, 1);
        let p = pressure_atm(&sys, 298.0, 0.0);
        let rho = sys.n_molecules() as f64 / sys.volume();
        let expected = rho * KB * 298.0 * KCAL_A3_TO_ATM;
        assert!((p - expected).abs() < 1e-9);
        // Ballpark: ~1350 atm for ideal gas at water density.
        assert!(p > 1000.0 && p < 1700.0, "p = {p}");
    }

    #[test]
    fn rdf_of_random_ideal_gas_is_flat() {
        // Molecules at uniform random positions (ignore overlaps) should
        // give g_OO ≈ 1 away from zero.
        use rand::Rng;
        let mut rng = stoch_eval::rng::rng_from_seed(7);
        let l = 30.0;
        let n = 200;
        let molecules: Vec<Molecule> = (0..n)
            .map(|_| {
                let c = Vec3::new(
                    rng.gen::<f64>() * l,
                    rng.gen::<f64>() * l,
                    rng.gen::<f64>() * l,
                );
                Molecule {
                    r: [c, c, c],
                    v: [Vec3::zero(); 3],
                }
            })
            .collect();
        let sys = System {
            model: TIP4P,
            molecules,
            box_len: l,
        };
        let mut acc = RdfAccumulator::new(RdfKind::OO, l / 2.0, 30);
        acc.sample(&sys);
        let (rs, gs) = acc.normalize(&sys);
        // Average g over r in [5, 15): should be near 1.
        let sel: Vec<f64> = rs
            .iter()
            .zip(&gs)
            .filter(|(r, _)| **r > 5.0 && **r < 15.0)
            .map(|(_, g)| *g)
            .collect();
        let mean = sel.iter().sum::<f64>() / sel.len() as f64;
        assert!((mean - 1.0).abs() < 0.15, "mean g = {mean}");
    }

    #[test]
    fn msd_of_ballistic_motion() {
        // A single molecule moving at constant v: MSD = v² t².
        let (o, h1, h2) = TIP4P.reference_sites();
        let v = Vec3::new(0.01, 0.0, 0.0);
        let mut sys = System {
            model: TIP4P,
            molecules: vec![Molecule {
                r: [o, h1, h2],
                v: [v, v, v],
            }],
            box_len: 100.0,
        };
        let mut msd = MsdTracker::new(&sys);
        for step in 1..=10 {
            for r in &mut sys.molecules[0].r {
                *r += v * 1.0;
            }
            msd.sample(&sys, step as f64);
        }
        let (t, m) = msd.series[4];
        assert!((m - (0.01 * t) * (0.01 * t)).abs() < 1e-12);
    }

    #[test]
    fn diffusion_of_linear_msd() {
        // MSD = 0.6 t  =>  slope 0.6 Å²/fs  =>  D = 0.1 Å²/fs = 0.01 cm²/s.
        let mut tracker = MsdTracker {
            origin: vec![],
            series: (0..100).map(|i| (i as f64, 0.6 * i as f64)).collect(),
        };
        let d = tracker.diffusion_cm2_s();
        assert!((d - 0.01).abs() < 1e-12, "D = {d}");
        tracker.series.truncate(1);
        assert!(tracker.diffusion_cm2_s().is_nan());
    }
}
