//! The fast analytic surrogate for the six fitted water properties.
//!
//! A full MD-backed parameterization costs thousands of CPU-hours (the
//! paper ran it on a 12k-core cluster); the surrogate reproduces the
//! *structure* of that experiment — a smooth, physically-plausible mapping
//! from `θ = (ε, σ, q_H)` to the six properties, calibrated so the
//! published TIP4P parameters sit near the cost optimum — at analytic
//! speed. The optimizers only ever see `(estimate, σ(t))` pairs, so they
//! exercise exactly the same code path as with real MD (see `DESIGN.md`).
//!
//! Sensitivities are local first/second-order responses around TIP4P with
//! physically-motivated signs: more charge (stronger hydrogen bonding) →
//! more cohesive energy, slower diffusion, lower pressure; larger σ at
//! fixed density → higher pressure, weaker binding.

use crate::model::TIP4P;
use crate::reference::{Experiment, Tip4pPublished};

/// Index of each property in the 6-vector (matches Table 3.4's row order).
pub mod prop {
    /// Self-diffusion coefficient, 1e−5 cm²/s.
    pub const D: usize = 0;
    /// gHH RMS residual vs experiment (Eq. 3.5).
    pub const G_HH: usize = 1;
    /// gOH RMS residual.
    pub const G_OH: usize = 2;
    /// gOO RMS residual.
    pub const G_OO: usize = 3;
    /// Pressure, atm.
    pub const P: usize = 4;
    /// Internal energy, kJ/mol.
    pub const U: usize = 5;
}

/// A property engine: maps water-model parameters to the six observables.
pub trait PropertyEngine: Sync {
    /// Evaluate `[D, pgHH, pgOH, pgOO, P, U]` at `(ε, σ, q_H)`.
    fn properties(&self, params: &[f64; 3]) -> [f64; 6];
}

/// The analytic surrogate.
#[derive(Debug, Clone, Copy, Default)]
pub struct SurrogateWater;

impl SurrogateWater {
    /// Reduced coordinates `(x, y, z) = (ε/ε*, σ/σ*, q/q*) − 1` relative to
    /// published TIP4P.
    fn reduced(params: &[f64; 3]) -> (f64, f64, f64) {
        (
            params[0] / TIP4P.epsilon - 1.0,
            params[1] / TIP4P.sigma - 1.0,
            params[2] / TIP4P.q_h - 1.0,
        )
    }

    /// The model gOO(r) curve for arbitrary parameters (Figs 3.19/3.20):
    /// peak positions scale with σ, structure amplitude grows with the
    /// hydrogen-bond strength (charge) and softens with ε imbalance.
    pub fn g_oo_curve(&self, params: &[f64; 3], r: f64) -> f64 {
        let (x, y, z) = Self::reduced(params);
        // Peak positions track the effective molecular diameter.
        let scale = 1.0 / (1.0 + 0.9 * y);
        // Structure amplitude: stronger charges order the liquid.
        let amp = (1.0 + 2.2 * z + 0.35 * x).max(0.1);
        let base = Experiment::g_oo(r * scale);
        ((base - 1.0) * amp + 1.0).max(0.0)
    }
}

impl PropertyEngine for SurrogateWater {
    fn properties(&self, params: &[f64; 3]) -> [f64; 6] {
        let (x, y, z) = Self::reduced(params);
        let mut p = [0.0; 6];

        // Diffusion: slower with stronger hydrogen bonds / deeper wells.
        p[prop::D] = (Tip4pPublished::D - 14.0 * z - 0.6 * x + 4.0 * y + 30.0 * z * z).max(0.05);

        // RDF residuals (vs experiment): TIP4P's small published-scale
        // residuals at the origin, growing quadratically as structure
        // degrades away from it.
        p[prop::G_HH] = hypot3(0.028, 1.6 * z, 0.55 * y) + 0.10 * x.abs();
        p[prop::G_OH] = hypot3(0.100, 2.2 * z, 0.80 * y) + 0.14 * x.abs();
        p[prop::G_OO] = hypot3(0.058, 5.0 * y, 1.0 * z) + 0.18 * x.abs();

        // Pressure: dominated by σ at fixed density (steep), softened by
        // attraction (ε, q).
        p[prop::P] =
            Tip4pPublished::P + 30_000.0 * y - 2_000.0 * x - 4_000.0 * z + 120_000.0 * y * y;

        // Internal energy: electrostatics ∝ q², LJ well ∝ ε, looser packing
        // (σ up) weakens binding.
        p[prop::U] =
            Tip4pPublished::U - 70.0 * z - 6.5 * x + 55.0 * y + 90.0 * z * z + 60.0 * y * y;

        p
    }
}

/// `sqrt(a² + b² + c²)` — smooth residual growth away from the optimum.
fn hypot3(a: f64, b: f64, c: f64) -> f64 {
    (a * a + b * b + c * c).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    const TIP4P_PARAMS: [f64; 3] = [0.1550, 3.1540, 0.5200];

    #[test]
    fn surrogate_reproduces_published_tip4p_values() {
        let p = SurrogateWater.properties(&TIP4P_PARAMS);
        assert!((p[prop::D] - 3.29).abs() < 1e-9);
        assert!((p[prop::P] - 373.0).abs() < 1e-9);
        assert!((p[prop::U] + 41.8).abs() < 1e-9);
        assert!((p[prop::G_OO] - 0.058).abs() < 1e-9);
        assert!((p[prop::G_OH] - 0.100).abs() < 1e-9);
        assert!((p[prop::G_HH] - 0.028).abs() < 1e-9);
    }

    #[test]
    fn physical_response_signs() {
        let base = SurrogateWater.properties(&TIP4P_PARAMS);
        // More charge: more cohesive (U down), slower diffusion, P down.
        let up_q = SurrogateWater.properties(&[0.1550, 3.1540, 0.54]);
        assert!(up_q[prop::U] < base[prop::U]);
        assert!(up_q[prop::D] < base[prop::D]);
        assert!(up_q[prop::P] < base[prop::P]);
        // Larger σ: higher pressure, weaker binding.
        let up_s = SurrogateWater.properties(&[0.1550, 3.25, 0.52]);
        assert!(up_s[prop::P] > base[prop::P]);
        assert!(up_s[prop::U] > base[prop::U]);
        // RDF residuals grow away from TIP4P.
        assert!(up_s[prop::G_OO] > base[prop::G_OO]);
        assert!(up_q[prop::G_OH] > base[prop::G_OH]);
    }

    #[test]
    fn goo_curve_matches_experiment_at_tip4p() {
        // At the published parameters the model curve should track the
        // experimental shape closely.
        let mut max_dev = 0.0f64;
        for i in 0..100 {
            let r = 2.0 + i as f64 * 0.07;
            let dev = (SurrogateWater.g_oo_curve(&TIP4P_PARAMS, r) - Experiment::g_oo(r)).abs();
            max_dev = max_dev.max(dev);
        }
        assert!(max_dev < 0.05, "max deviation {max_dev}");
    }

    #[test]
    fn goo_curve_degrades_for_poor_parameters() {
        // The paper's Fig 3.19a: non-optimal parameters give visibly wrong
        // curves (shifted/over-structured peaks).
        let bad = [0.1625, 2.80, 0.60];
        let mut max_dev = 0.0f64;
        for i in 0..100 {
            let r = 2.0 + i as f64 * 0.07;
            let dev = (SurrogateWater.g_oo_curve(&bad, r) - Experiment::g_oo(r)).abs();
            max_dev = max_dev.max(dev);
        }
        assert!(max_dev > 0.4, "bad parameters too close: {max_dev}");
    }

    #[test]
    fn diffusion_never_negative() {
        let p = SurrogateWater.properties(&[0.2, 3.0, 0.75]);
        assert!(p[prop::D] > 0.0);
    }
}
