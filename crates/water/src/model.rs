//! The 4-site rigid water model (TIP4P functional form, Fig 3.19 of the
//! paper): Lennard-Jones on the oxygen site, partial charges on the two
//! hydrogens (`+q_H` each) and on the massless M site (`−2q_H`) displaced
//! from the oxygen along the HOH bisector.
//!
//! The optimization parameterizes `θ = (ε, σ, q_H)`; the geometry
//! (`r_OH`, `∠HOH`, `r_OM`) is fixed, as in the paper.

use crate::vec3::Vec3;

/// Parameters of a TIP4P-form water model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaterModel {
    /// Lennard-Jones well depth on oxygen, kcal/mol.
    pub epsilon: f64,
    /// Lennard-Jones diameter on oxygen, Å.
    pub sigma: f64,
    /// Partial charge on each hydrogen, e (the M site carries `−2 q_H`).
    pub q_h: f64,
    /// O–H bond length, Å.
    pub r_oh: f64,
    /// H–O–H angle, degrees.
    pub theta_deg: f64,
    /// O–M displacement along the bisector, Å.
    pub r_om: f64,
}

/// The published TIP4P parameters (Jorgensen et al. 1983):
/// `ε = 0.1550 kcal/mol`, `σ = 3.1540 Å`, `q_H = 0.5200 e`.
pub const TIP4P: WaterModel = WaterModel {
    epsilon: 0.1550,
    sigma: 3.1540,
    q_h: 0.5200,
    r_oh: 0.9572,
    theta_deg: 104.52,
    r_om: 0.15,
};

impl WaterModel {
    /// A model with the TIP4P geometry but free `(ε, σ, q_H)` — the
    /// parameter vector the optimizers move.
    pub fn with_params(epsilon: f64, sigma: f64, q_h: f64) -> Self {
        WaterModel {
            epsilon,
            sigma,
            q_h,
            ..TIP4P
        }
    }

    /// Parameter vector `(ε, σ, q_H)` as a slice-compatible array.
    pub fn params(&self) -> [f64; 3] {
        [self.epsilon, self.sigma, self.q_h]
    }

    /// H–H distance implied by the rigid geometry, Å.
    pub fn r_hh(&self) -> f64 {
        2.0 * self.r_oh * (self.theta_deg.to_radians() / 2.0).sin()
    }

    /// Charge on the M site, e.
    pub fn q_m(&self) -> f64 {
        -2.0 * self.q_h
    }

    /// Virtual-site coefficient `a` such that
    /// `r_M = r_O + a (r_H1 − r_O) + a (r_H2 − r_O)`.
    ///
    /// Because the geometry is rigid, `a = r_OM / (2 r_OH cos(θ/2))` is a
    /// constant, and the force on M redistributes linearly:
    /// `F_O += (1−2a) F_M`, `F_Hi += a F_M`.
    pub fn msite_coeff(&self) -> f64 {
        self.r_om / (2.0 * self.r_oh * (self.theta_deg.to_radians() / 2.0).cos())
    }

    /// The M-site position for given atom positions.
    pub fn msite(&self, o: Vec3, h1: Vec3, h2: Vec3) -> Vec3 {
        let a = self.msite_coeff();
        o + a * (h1 - o) + a * (h2 - o)
    }

    /// Reference site positions for a molecule at the origin in the xy
    /// plane: O at origin, hydrogens symmetric about +x.
    pub fn reference_sites(&self) -> (Vec3, Vec3, Vec3) {
        let half = self.theta_deg.to_radians() / 2.0;
        let o = Vec3::zero();
        let h1 = Vec3::new(self.r_oh * half.cos(), self.r_oh * half.sin(), 0.0);
        let h2 = Vec3::new(self.r_oh * half.cos(), -self.r_oh * half.sin(), 0.0);
        (o, h1, h2)
    }

    /// Lennard-Jones `A = 4εσ¹²` coefficient.
    pub fn lj_a(&self) -> f64 {
        4.0 * self.epsilon * self.sigma.powi(12)
    }

    /// Lennard-Jones `B = 4εσ⁶` coefficient.
    pub fn lj_b(&self) -> f64 {
        4.0 * self.epsilon * self.sigma.powi(6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tip4p_published_values() {
        assert_eq!(TIP4P.epsilon, 0.1550);
        assert_eq!(TIP4P.sigma, 3.1540);
        assert_eq!(TIP4P.q_h, 0.5200);
        assert_eq!(TIP4P.q_m(), -1.04);
    }

    #[test]
    fn hh_distance_matches_geometry() {
        // 2 * 0.9572 * sin(52.26°) = 1.5139 Å.
        assert!((TIP4P.r_hh() - 1.5139).abs() < 1e-3);
    }

    #[test]
    fn msite_sits_on_bisector_at_r_om() {
        let (o, h1, h2) = TIP4P.reference_sites();
        let m = TIP4P.msite(o, h1, h2);
        assert!((m.norm() - TIP4P.r_om).abs() < 1e-12, "|m| = {}", m.norm());
        // On the bisector: same y-magnitude symmetry → y = 0.
        assert!(m.y.abs() < 1e-12);
        assert!(m.x > 0.0);
    }

    #[test]
    fn msite_is_translation_invariant() {
        let (o, h1, h2) = TIP4P.reference_sites();
        let t = Vec3::new(3.0, -2.0, 7.0);
        let m0 = TIP4P.msite(o, h1, h2);
        let m1 = TIP4P.msite(o + t, h1 + t, h2 + t);
        assert!((m1 - (m0 + t)).norm() < 1e-12);
    }

    #[test]
    fn reference_geometry_is_rigid_consistent() {
        let (o, h1, h2) = TIP4P.reference_sites();
        assert!(((h1 - o).norm() - TIP4P.r_oh).abs() < 1e-12);
        assert!(((h2 - o).norm() - TIP4P.r_oh).abs() < 1e-12);
        assert!(((h1 - h2).norm() - TIP4P.r_hh()).abs() < 1e-12);
    }

    #[test]
    fn lj_coefficients() {
        let m = WaterModel::with_params(1.0, 2.0, 0.5);
        assert_eq!(m.lj_a(), 4.0 * 4096.0);
        assert_eq!(m.lj_b(), 4.0 * 64.0);
    }
}
