//! Force-kernel selection and the O(n) linked-cell/Verlet evaluation path.
//!
//! [`crate::forces::compute_forces`] is the naive all-pairs O(n²) oracle:
//! simple, obviously correct, and kept unchanged. This module adds the
//! production path — a linked-cell spatial grid over the periodic box plus a
//! Verlet neighbor list with a skin radius — behind the [`ForceKernel`]
//! enum, selectable per engine or process-wide via `NSX_FORCE_KERNEL`
//! (`naive` | `cell` | `simd` | `sharded`, default `cell`).
//!
//! On top of the scalar cell-list path sit two hardware-fast tiers sharing
//! the same neighbor list (exposed to them as a CSR row view):
//!
//! * [`ForceKernel::Simd`] — packs positions into a structure-of-arrays
//!   store ([`crate::soa`]) and runs the lane-batched kernel
//!   ([`crate::simd`]): candidate filtering, 9-site gathering, and packed
//!   4-wide square-root/division stages instead of the scalar per-pair
//!   loop.
//! * [`ForceKernel::Sharded`] — the same lane kernel with the list's rows
//!   partitioned into a fixed number of shards ([`crate::shard`],
//!   `DEFAULT_SHARDS`) evaluated on a private `mw` worker pool and reduced
//!   in shard-index order, so results are bit-identical across worker
//!   counts (1, 2, 4, ...). The pool is spawned lazily on the first
//!   sharded evaluation and sized by [`ForceEngine::with_sharding`] or
//!   `available_parallelism`.
//!
//! # Exactness
//!
//! The naive kernel skips a molecule pair outright only when the O–O
//! minimum-image distance exceeds `rc + 3 Å`; pairs closer than that but
//! farther than `rc + 2δ` (δ = the largest charge-site offset from the
//! oxygen, `max(r_OH, r_OM)`) contribute *exactly zero*: every site–site
//! distance is at least `r_OO − 2δ ≥ rc`, so each site pair fails the strict
//! `r < rc` inclusion test. A neighbor list with interaction reach
//! `rc + 2δ` therefore reproduces the naive pair set's nonzero
//! contributions exactly; the list is built out to `reach + skin` so it
//! stays valid while every molecule has moved less than `skin/2` since the
//! build (two molecules approaching head-on close the gap at `2 × skin/2 =
//! skin`). The O–O displacement for each listed pair uses a precomputed
//! `1/L` (one multiply per component instead of the oracle's divide), with
//! a half-box guard that falls back to the oracle's own [`min_image_vec`]
//! wherever the two roundings could pick different images; the per-site
//! arithmetic is likewise reorganized (squared-distance early-out, one
//! division per site pair instead of three). Agreement is ~1e-14 relative —
//! well inside the 1e-10 equivalence budget enforced by
//! `tests/kernel_equivalence.rs`.
//!
//! # Rebuild policy
//!
//! The cached list is invalidated when (a) any oxygen has drifted `skin/2`
//! or more from its position at build time, (b) the box length changed (an
//! NPT box rescale — see [`crate::npt`]), (c) the cutoff or molecule count
//! changed. When the box is too small for a 3×3×3 cell decomposition at the
//! list radius the build falls back to an O(n²) sweep — still amortized
//! over the many steps the Verlet skin keeps the list valid.

use crate::forces::{compute_forces, Forces};
use crate::shard::{compute_sharded, Csr, Snapshot, DEFAULT_SHARDS};
use crate::simd::{compute_rows, LaneScratch, PairParams};
use crate::soa::{SoaForces, SoaSites};
use crate::system::{min_image_vec, System};
use crate::units::COULOMB;
use crate::vec3::Vec3;
use mw_framework::pool::MwPool;
use obs::{Counter, Gauge, MetricsRegistry};
use std::sync::Arc;
use std::time::Instant;

/// Default Verlet skin radius, Å. Larger skins rebuild less often but carry
/// more out-of-reach pairs per step; ~1 Å is the usual liquid-water sweet
/// spot for sub-10 Å cutoffs.
pub const DEFAULT_SKIN: f64 = 1.0;

/// Which short-range force evaluation path to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ForceKernel {
    /// The all-pairs O(n²) oracle in [`crate::forces`].
    Naive,
    /// Linked-cell grid + Verlet neighbor list (O(n) per step), scalar.
    #[default]
    CellList,
    /// The lane-batched SoA kernel over the same neighbor list
    /// ([`crate::simd`]), serial.
    Simd,
    /// The lane-batched kernel with list rows sharded across a worker pool
    /// and reduced in fixed shard order ([`crate::shard`]).
    Sharded,
}

impl ForceKernel {
    /// Parse a kernel name (`naive`, `cell`/`celllist`/`cell-list`/
    /// `cell_list`, `simd`, or `sharded`/`shard`), case-insensitive.
    pub fn parse(s: &str) -> Option<ForceKernel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "naive" => Some(ForceKernel::Naive),
            "cell" | "celllist" | "cell-list" | "cell_list" => Some(ForceKernel::CellList),
            "simd" => Some(ForceKernel::Simd),
            "sharded" | "shard" => Some(ForceKernel::Sharded),
            _ => None,
        }
    }

    /// Kernel selection from the `NSX_FORCE_KERNEL` environment variable;
    /// unset or unrecognized values fall back to the default
    /// ([`ForceKernel::CellList`]).
    pub fn from_env() -> ForceKernel {
        std::env::var("NSX_FORCE_KERNEL")
            .ok()
            .and_then(|s| Self::parse(&s))
            .unwrap_or_default()
    }

    /// Stable lower-case name (matches what [`ForceKernel::parse`] accepts).
    pub fn name(&self) -> &'static str {
        match self {
            ForceKernel::Naive => "naive",
            ForceKernel::CellList => "cell",
            ForceKernel::Simd => "simd",
            ForceKernel::Sharded => "sharded",
        }
    }

    /// True for the kernels that evaluate through the Verlet neighbor list.
    fn uses_list(&self) -> bool {
        !matches!(self, ForceKernel::Naive)
    }
}

/// Counters accumulated by a [`ForceEngine`] over its lifetime.
#[derive(Debug, Clone, Copy, Default)]
pub struct KernelStats {
    /// Force evaluations performed.
    pub evals: u64,
    /// Neighbor-list (re)builds (list-backed kernels only).
    pub rebuilds: u64,
    /// Total wall-clock spent inside [`ForceEngine::compute`], ns.
    pub force_nanos: u64,
    /// Σ over rebuilds of the pair count of the freshly built list.
    pub pair_sum: u64,
    /// 4-wide lane batches executed (simd/sharded kernels).
    pub lanes: u64,
    /// Shard jobs evaluated (sharded kernel).
    pub shards: u64,
    /// Wall-clock spent packing the SoA position store, ns.
    pub pack_nanos: u64,
}

impl KernelStats {
    /// Mean wall-clock per force evaluation, ns (0.0 before the first
    /// evaluation — never NaN).
    pub fn ns_per_eval(&self) -> f64 {
        if self.evals == 0 {
            0.0
        } else {
            self.force_nanos as f64 / self.evals as f64
        }
    }

    /// Record a freshly built list's pair count. Saturating: a long-lived
    /// engine (the multi-run service keeps engines alive indefinitely)
    /// must pin the lifetime sum at `u64::MAX` rather than wrap.
    pub fn record_pairs(&mut self, pairs: u64) {
        self.pair_sum = self.pair_sum.saturating_add(pairs);
    }
}

/// Registry handles mirrored when a registry is attached
/// ([`ForceEngine::with_metrics`]). Metric names: `water.kernel.evals`,
/// `water.kernel.rebuilds`, `water.kernel.force_nanos`,
/// `water.kernel.neighbor_pairs` (Σ list length over rebuilds),
/// `water.kernel.lanes` (4-wide lane batches), `water.kernel.shards`
/// (shard jobs), `water.kernel.pack_nanos` (SoA pack wall-clock), and the
/// `water.kernel.avg_neighbors` gauge (neighbors per molecule at build).
struct KernelObs {
    evals: Arc<Counter>,
    rebuilds: Arc<Counter>,
    force_nanos: Arc<Counter>,
    neighbor_pairs: Arc<Counter>,
    lanes: Arc<Counter>,
    shards: Arc<Counter>,
    pack_nanos: Arc<Counter>,
    avg_neighbors: Arc<Gauge>,
}

impl KernelObs {
    fn register(registry: &MetricsRegistry) -> Self {
        KernelObs {
            evals: registry.counter("water.kernel.evals"),
            rebuilds: registry.counter("water.kernel.rebuilds"),
            force_nanos: registry.counter("water.kernel.force_nanos"),
            neighbor_pairs: registry.counter("water.kernel.neighbor_pairs"),
            lanes: registry.counter("water.kernel.lanes"),
            shards: registry.counter("water.kernel.shards"),
            pack_nanos: registry.counter("water.kernel.pack_nanos"),
            avg_neighbors: registry.gauge("water.kernel.avg_neighbors"),
        }
    }
}

/// The padding added to `rc` to reach every molecule pair with a possibly
/// interacting site pair: twice the largest charge-site offset from the
/// oxygen, capped at the naive kernel's own 3 Å skip margin so the two
/// kernels always agree on which pairs may contribute.
fn reach_pad(sys: &System) -> f64 {
    (2.0 * sys.model.r_oh.max(sys.model.r_om)).min(3.0)
}

/// A Verlet neighbor list: molecule index pairs within `rc + pad + skin` of
/// each other (O–O minimum image) at build time, plus the reference oxygen
/// positions used for displacement-triggered invalidation.
struct NeighborList {
    /// Canonically ordered (i < j, sorted) so results are independent of
    /// whether the grid or the fallback sweep built the list.
    pairs: Vec<(u32, u32)>,
    /// The same pairs as CSR rows for the lane/sharded kernels; behind an
    /// `Arc` so per-evaluation shard snapshots share it by refcount.
    csr: Arc<Csr>,
    ref_o: Vec<Vec3>,
    box_len: f64,
    rc: f64,
    half_skin_sq: f64,
}

/// Half-space stencil of the 13 forward neighbor cells (plus the cell
/// itself, handled separately) — each unordered cell pair is visited once.
const HALF_STENCIL: [(i64, i64, i64); 13] = [
    (1, 0, 0),
    (-1, 1, 0),
    (0, 1, 0),
    (1, 1, 0),
    (-1, -1, 1),
    (0, -1, 1),
    (1, -1, 1),
    (-1, 0, 1),
    (0, 0, 1),
    (1, 0, 1),
    (-1, 1, 1),
    (0, 1, 1),
    (1, 1, 1),
];

impl NeighborList {
    fn build(sys: &System, rc: f64, skin: f64) -> NeighborList {
        let l = sys.box_len;
        let r_list = rc + reach_pad(sys) + skin;
        let r_list_sq = r_list * r_list;
        // The half stencil only visits each unordered cell pair once if the
        // offsets stay distinct modulo the grid — that needs at least three
        // cells per dimension; otherwise fall back to a full sweep (the
        // Verlet skin still amortizes it over many steps).
        let ncell = (l / r_list).floor() as usize;
        let mut pairs = if ncell >= 3 {
            Self::grid_pairs(sys, r_list_sq, ncell)
        } else {
            Self::sweep_pairs(sys, r_list_sq)
        };
        pairs.sort_unstable();
        let csr = Arc::new(Csr::from_pairs(sys.n_molecules(), &pairs));
        NeighborList {
            pairs,
            csr,
            ref_o: sys.molecules.iter().map(|m| m.r[0]).collect(),
            box_len: l,
            rc,
            half_skin_sq: (skin / 2.0) * (skin / 2.0),
        }
    }

    /// All-pairs list build (small or dense boxes).
    fn sweep_pairs(sys: &System, r_list_sq: f64) -> Vec<(u32, u32)> {
        let n = sys.n_molecules();
        let l = sys.box_len;
        let mut pairs = Vec::new();
        for i in 0..n {
            let ri = sys.molecules[i].r[0];
            for j in i + 1..n {
                let d = min_image_vec(ri - sys.molecules[j].r[0], l);
                if d.norm_sq() <= r_list_sq {
                    pairs.push((i as u32, j as u32));
                }
            }
        }
        pairs
    }

    /// Linked-cell list build: bin oxygens into an `ncell³` grid (cells are
    /// at least `r_list` wide) and test only same-cell and the 13
    /// forward-neighbor cell pairs.
    fn grid_pairs(sys: &System, r_list_sq: f64, ncell: usize) -> Vec<(u32, u32)> {
        let l = sys.box_len;
        let inv_cell = ncell as f64 / l;
        // Positions are unwrapped; wrap into [0, l) before binning. The
        // clamp guards the rounding edge where the wrapped value lands
        // exactly on l.
        let bin = |x: f64| -> usize {
            let wrapped = x - l * (x / l).floor();
            ((wrapped * inv_cell) as usize).min(ncell - 1)
        };
        let mut cells: Vec<Vec<u32>> = vec![Vec::new(); ncell * ncell * ncell];
        for (i, mol) in sys.molecules.iter().enumerate() {
            let (cx, cy, cz) = (bin(mol.r[0].x), bin(mol.r[0].y), bin(mol.r[0].z));
            cells[(cx * ncell + cy) * ncell + cz].push(i as u32);
        }
        let within = |a: u32, b: u32| -> bool {
            let d = min_image_vec(
                sys.molecules[a as usize].r[0] - sys.molecules[b as usize].r[0],
                l,
            );
            d.norm_sq() <= r_list_sq
        };
        let nc = ncell as i64;
        let wrap = |c: i64| -> usize { c.rem_euclid(nc) as usize };
        let mut pairs = Vec::new();
        for cx in 0..ncell {
            for cy in 0..ncell {
                for cz in 0..ncell {
                    let here = &cells[(cx * ncell + cy) * ncell + cz];
                    for (s, &a) in here.iter().enumerate() {
                        for &b in &here[s + 1..] {
                            if within(a, b) {
                                pairs.push((a.min(b), a.max(b)));
                            }
                        }
                    }
                    for &(ox, oy, oz) in &HALF_STENCIL {
                        let nx = wrap(cx as i64 + ox);
                        let ny = wrap(cy as i64 + oy);
                        let nz = wrap(cz as i64 + oz);
                        let there = &cells[(nx * ncell + ny) * ncell + nz];
                        for &a in here {
                            for &b in there {
                                if within(a, b) {
                                    pairs.push((a.min(b), a.max(b)));
                                }
                            }
                        }
                    }
                }
            }
        }
        pairs
    }

    /// True when the cached list still covers every pair that could
    /// interact: same box/cutoff/count, and no oxygen has drifted `skin/2`
    /// or more since the build.
    fn is_current(&self, sys: &System, rc: f64) -> bool {
        if self.rc != rc || self.box_len != sys.box_len || self.ref_o.len() != sys.n_molecules() {
            return false;
        }
        sys.molecules
            .iter()
            .zip(&self.ref_o)
            .all(|(m, &r0)| (m.r[0] - r0).norm_sq() < self.half_skin_sq)
    }
}

/// Reusable buffers for the serial lane-batched path.
#[derive(Debug, Default)]
struct SimdState {
    soa: SoaSites,
    scratch: LaneScratch,
    out: SoaForces,
}

/// A stateful force evaluator: kernel selection plus the cached neighbor
/// list and instrumentation. One engine per simulation; sharing an engine
/// across systems is safe (the cache keys on box/count/cutoff) but wastes
/// rebuilds.
pub struct ForceEngine {
    kernel: ForceKernel,
    skin: f64,
    list: Option<NeighborList>,
    stats: KernelStats,
    obs: Option<KernelObs>,
    simd: SimdState,
    /// Shard count for [`ForceKernel::Sharded`] — fixes the reduction tree,
    /// so it must not track worker availability.
    shards: usize,
    /// Worker threads for the lazily spawned private pool.
    shard_workers: usize,
    pool: Option<MwPool>,
}

impl std::fmt::Debug for ForceEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ForceEngine")
            .field("kernel", &self.kernel)
            .field("skin", &self.skin)
            .field("shards", &self.shards)
            .field("shard_workers", &self.shard_workers)
            .field("stats", &self.stats)
            .finish()
    }
}

impl Default for ForceEngine {
    fn default() -> Self {
        Self::from_env()
    }
}

impl ForceEngine {
    /// An engine running `kernel` with the default skin.
    pub fn new(kernel: ForceKernel) -> Self {
        Self::with_skin(kernel, DEFAULT_SKIN)
    }

    /// An engine with the kernel taken from `NSX_FORCE_KERNEL` (default:
    /// cell-list).
    pub fn from_env() -> Self {
        Self::new(ForceKernel::from_env())
    }

    /// An engine with an explicit Verlet skin (Å, > 0).
    pub fn with_skin(kernel: ForceKernel, skin: f64) -> Self {
        assert!(skin > 0.0, "Verlet skin must be positive, got {skin}");
        let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
        ForceEngine {
            kernel,
            skin,
            list: None,
            stats: KernelStats::default(),
            obs: None,
            simd: SimdState::default(),
            shards: DEFAULT_SHARDS,
            shard_workers: hw.min(DEFAULT_SHARDS),
            pool: None,
        }
    }

    /// A [`ForceKernel::Sharded`] engine with explicit shard and worker
    /// counts. The shard count fixes the partition and reduction order
    /// (results change at rounding level when it changes); the worker
    /// count is pure execution detail (results are bit-identical across
    /// worker counts).
    pub fn with_sharding(skin: f64, shards: usize, workers: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        assert!(workers >= 1, "need at least one worker");
        let mut e = Self::with_skin(ForceKernel::Sharded, skin);
        e.shards = shards;
        e.shard_workers = workers;
        e
    }

    /// An engine mirroring its counters into `registry` (`water.kernel.*`).
    pub fn with_metrics(kernel: ForceKernel, skin: f64, registry: &MetricsRegistry) -> Self {
        let mut e = Self::with_skin(kernel, skin);
        e.obs = Some(KernelObs::register(registry));
        e
    }

    /// The kernel this engine runs.
    pub fn kernel(&self) -> ForceKernel {
        self.kernel
    }

    /// Lifetime counters (evals, rebuilds, wall-clock, pair sums).
    pub fn stats(&self) -> &KernelStats {
        &self.stats
    }

    /// Average neighbors per molecule in the current list (0 when no list
    /// is cached — naive kernel or before the first evaluation).
    pub fn avg_neighbors(&self) -> f64 {
        match &self.list {
            Some(l) if !l.ref_o.is_empty() => 2.0 * l.pairs.len() as f64 / l.ref_o.len() as f64,
            _ => 0.0,
        }
    }

    /// Drop the cached neighbor list. Called after any external change the
    /// displacement check cannot see on its own; box rescales are also
    /// caught by the box-length key, so this is belt and braces for NPT.
    pub fn invalidate(&mut self) {
        self.list = None;
    }

    /// Forces, potential energy, and molecular virial at O–O cutoff `rc`,
    /// via the selected kernel.
    pub fn compute(&mut self, sys: &System, rc: f64) -> Forces {
        let t0 = Instant::now();
        let out = if self.kernel.uses_list() {
            if !self.list.as_ref().is_some_and(|l| l.is_current(sys, rc)) {
                let list = NeighborList::build(sys, rc, self.skin);
                self.stats.rebuilds += 1;
                self.stats.record_pairs(list.pairs.len() as u64);
                if let Some(o) = &self.obs {
                    o.rebuilds.inc();
                    o.neighbor_pairs.add(list.pairs.len() as u64);
                    let n = sys.n_molecules().max(1);
                    o.avg_neighbors.record((2 * list.pairs.len() / n) as u64);
                }
                self.list = Some(list);
            }
            match self.kernel {
                ForceKernel::CellList => {
                    let pairs = self.list.as_ref().map_or(&[][..], |l| l.pairs.as_slice());
                    pair_forces(sys, rc, pairs)
                }
                ForceKernel::Simd => self.simd_eval(sys, rc),
                ForceKernel::Sharded => self.shard_eval(sys, rc),
                // uses_list() is false for Naive.
                ForceKernel::Naive => unreachable!(),
            }
        } else {
            compute_forces(sys, rc)
        };
        let dt = t0.elapsed().as_nanos() as u64;
        self.stats.evals += 1;
        self.stats.force_nanos += dt;
        if let Some(o) = &self.obs {
            o.evals.inc();
            o.force_nanos.add(dt);
        }
        out
    }

    /// Serial lane-batched evaluation: one "shard" spanning every list row.
    fn simd_eval(&mut self, sys: &System, rc: f64) -> Forces {
        let params = PairParams::new(&sys.model, rc, rc + reach_pad(sys));
        let tp = Instant::now();
        self.simd.soa.pack(sys);
        let pack_ns = tp.elapsed().as_nanos() as u64;
        let n = sys.n_molecules();
        self.simd.out.reset(n);
        let csr = match &self.list {
            Some(l) => Arc::clone(&l.csr),
            None => Arc::new(Csr::from_pairs(n, &[])),
        };
        let lanes = compute_rows(
            &self.simd.soa,
            sys.box_len,
            &params,
            &csr.row_start,
            &csr.cols,
            0..n,
            &mut self.simd.scratch,
            &mut self.simd.out,
        );
        self.record_lane_eval(lanes, 0, pack_ns);
        self.simd.out.into_forces(sys.model.msite_coeff())
    }

    /// Sharded evaluation: snapshot the SoA store behind an `Arc`, fan the
    /// fixed row partition out over the private pool, reduce in shard
    /// order.
    fn shard_eval(&mut self, sys: &System, rc: f64) -> Forces {
        let params = PairParams::new(&sys.model, rc, rc + reach_pad(sys));
        let tp = Instant::now();
        let mut soa = SoaSites::default();
        soa.pack(sys);
        let pack_ns = tp.elapsed().as_nanos() as u64;
        let n = sys.n_molecules();
        let csr = match &self.list {
            Some(l) => Arc::clone(&l.csr),
            None => Arc::new(Csr::from_pairs(n, &[])),
        };
        let snap = Arc::new(Snapshot {
            soa,
            box_len: sys.box_len,
            params,
            csr,
        });
        let workers = self.shard_workers;
        let pool = self.pool.get_or_insert_with(|| MwPool::new(workers));
        self.simd.out.reset(n);
        let (lanes, shards_run) = compute_sharded(pool, &snap, self.shards, &mut self.simd.out);
        self.record_lane_eval(lanes, shards_run, pack_ns);
        self.simd.out.into_forces(sys.model.msite_coeff())
    }

    fn record_lane_eval(&mut self, lanes: u64, shards: u64, pack_ns: u64) {
        self.stats.lanes += lanes;
        self.stats.shards += shards;
        self.stats.pack_nanos += pack_ns;
        if let Some(o) = &self.obs {
            o.lanes.add(lanes);
            o.shards.add(shards);
            o.pack_nanos.add(pack_ns);
        }
    }
}

/// Force/energy/virial evaluation over an explicit molecule-pair list.
///
/// Physics identical to [`compute_forces`] (same shifted-force LJ and
/// Wolf-style Coulomb, same strict `r < rc` site inclusion, same molecular
/// virial); the per-site arithmetic is streamlined — squared-distance
/// early-out before the square root, one reciprocal per interacting site
/// pair — so individual floating-point results may differ from the oracle
/// by rounding only.
fn pair_forces(sys: &System, rc: f64, pairs: &[(u32, u32)]) -> Forces {
    let n = sys.n_molecules();
    let l = sys.box_len;
    let model = sys.model;
    let rc2 = rc * rc;
    let a_coef = model.msite_coeff();
    let (lj_a, lj_b) = (model.lj_a(), model.lj_b());
    let (lj_e_rc, lj_f_rc) = {
        let inv_rc2 = 1.0 / rc2;
        let inv_rc6 = inv_rc2 * inv_rc2 * inv_rc2;
        let inv_rc12 = inv_rc6 * inv_rc6;
        (
            lj_a * inv_rc12 - lj_b * inv_rc6,
            (12.0 * lj_a * inv_rc12 - 6.0 * lj_b * inv_rc6) / rc,
        )
    };
    let charges = [model.q_h, model.q_h, model.q_m()];
    let inv_rc = 1.0 / rc;
    let inv_rc2 = inv_rc * inv_rc;
    let reach = rc + reach_pad(sys);
    let reach2 = reach * reach;

    let mut f4: Vec<[Vec3; 4]> = vec![[Vec3::zero(); 4]; n];
    let mut potential = 0.0;
    let mut virial = 0.0;

    let msites: Vec<Vec3> = sys
        .molecules
        .iter()
        .map(|m| model.msite(m.r[0], m.r[1], m.r[2]))
        .collect();

    let inv_l = 1.0 / l;

    for &(pi, pj) in pairs {
        let (i, j) = (pi as usize, pj as usize);
        // Minimum image via a precomputed reciprocal: one multiply per
        // component instead of the oracle's divide. `d*inv_l` and `d/l`
        // can round `.round()` to different images only when a component
        // sits within an ulp of half the box (lattice starts hit exactly
        // L/2 generically) — a wrong image shows up as |component| ≥
        // L/2·(1−ε), so those rare pairs are recomputed with the oracle's
        // own `min_image_vec` and stay bit-identical to it.
        let dr = sys.molecules[i].r[0] - sys.molecules[j].r[0];
        let mut d_oo = Vec3::new(
            dr.x - l * (dr.x * inv_l).round(),
            dr.y - l * (dr.y * inv_l).round(),
            dr.z - l * (dr.z * inv_l).round(),
        );
        let guard = 0.4999 * l;
        if d_oo.x.abs() >= guard || d_oo.y.abs() >= guard || d_oo.z.abs() >= guard {
            d_oo = min_image_vec(dr, l);
        }
        let r2 = d_oo.norm_sq();
        // Beyond rc + 2δ no site pair can pass the strict r < rc test (see
        // module docs) — the naive kernel computes exactly zero here.
        if r2 > reach2 {
            continue;
        }
        let shift = (sys.molecules[i].r[0] - d_oo) - sys.molecules[j].r[0];

        let mut f_pair_on_i = Vec3::zero();
        let mut interacted = false;

        if r2 <= rc2 {
            interacted = true;
            let r = r2.sqrt();
            let inv_r2 = 1.0 / r2;
            let inv_r6 = inv_r2 * inv_r2 * inv_r2;
            let inv_r12 = inv_r6 * inv_r6;
            potential += lj_a * inv_r12 - lj_b * inv_r6 - lj_e_rc + (r - rc) * lj_f_rc;
            let fr = (12.0 * lj_a * inv_r12 - 6.0 * lj_b * inv_r6) / r;
            let fv = d_oo * ((fr - lj_f_rc) / r);
            f4[i][0] += fv;
            f4[j][0] -= fv;
            f_pair_on_i += fv;
        }

        let sites_i = [sys.molecules[i].r[1], sys.molecules[i].r[2], msites[i]];
        let sites_j = [
            sys.molecules[j].r[1] + shift,
            sys.molecules[j].r[2] + shift,
            msites[j] + shift,
        ];
        for (si, &ri) in sites_i.iter().enumerate() {
            for (sj, &rj) in sites_j.iter().enumerate() {
                let d = ri - rj;
                let d2 = d.norm_sq();
                // Squared-distance early-out: r² ≥ rc² ⟺ r ≥ rc up to one
                // rounding ulp at the boundary, where the shifted-force
                // terms vanish to second order anyway.
                if d2 >= rc2 {
                    continue;
                }
                interacted = true;
                let r = d2.sqrt();
                let inv_r = 1.0 / r;
                let qq = COULOMB * charges[si] * charges[sj];
                potential += qq * (inv_r - inv_rc + (r - rc) * inv_rc2);
                let fmag = qq * (inv_r * inv_r - inv_rc2) * inv_r;
                let fv = d * fmag;
                f4[i][si + 1] += fv;
                f4[j][sj + 1] -= fv;
                f_pair_on_i += fv;
            }
        }

        if interacted {
            virial += d_oo.dot(f_pair_on_i);
        }
    }

    let f = f4
        .into_iter()
        .map(|[fo, fh1, fh2, fm]| {
            [
                fo + (1.0 - 2.0 * a_coef) * fm,
                fh1 + a_coef * fm,
                fh2 + a_coef * fm,
            ]
        })
        .collect();

    Forces {
        f,
        potential,
        virial,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TIP4P;

    fn assert_close(a: &Forces, b: &Forces, tol: f64) {
        let scale =
            a.f.iter()
                .flatten()
                .map(|v| v.norm())
                .fold(1.0_f64, f64::max);
        assert!(
            (a.potential - b.potential).abs() <= tol * a.potential.abs().max(1.0),
            "potential {} vs {}",
            a.potential,
            b.potential
        );
        assert!(
            (a.virial - b.virial).abs() <= tol * a.virial.abs().max(1.0),
            "virial {} vs {}",
            a.virial,
            b.virial
        );
        for (fa, fb) in a.f.iter().zip(&b.f) {
            for (va, vb) in fa.iter().zip(fb) {
                assert!(
                    (*va - *vb).norm() <= tol * scale,
                    "force {va:?} vs {vb:?} (scale {scale})"
                );
            }
        }
    }

    #[test]
    fn parse_accepts_all_kernels() {
        assert_eq!(ForceKernel::parse("naive"), Some(ForceKernel::Naive));
        assert_eq!(ForceKernel::parse("NAIVE"), Some(ForceKernel::Naive));
        assert_eq!(ForceKernel::parse("cell"), Some(ForceKernel::CellList));
        assert_eq!(ForceKernel::parse("Cell-List"), Some(ForceKernel::CellList));
        assert_eq!(ForceKernel::parse("cell_list"), Some(ForceKernel::CellList));
        assert_eq!(ForceKernel::parse("simd"), Some(ForceKernel::Simd));
        assert_eq!(ForceKernel::parse("SIMD"), Some(ForceKernel::Simd));
        assert_eq!(ForceKernel::parse("sharded"), Some(ForceKernel::Sharded));
        assert_eq!(ForceKernel::parse("shard"), Some(ForceKernel::Sharded));
        assert_eq!(ForceKernel::parse("ewald"), None);
        assert_eq!(ForceKernel::default(), ForceKernel::CellList);
        assert_eq!(ForceKernel::Simd.name(), "simd");
        assert_eq!(ForceKernel::Sharded.name(), "sharded");
    }

    #[test]
    fn cell_list_matches_naive_on_a_lattice() {
        let sys = System::lattice(TIP4P, 3, 0.997, 298.0, 7);
        for rc in [3.0, 4.0, sys.box_len / 2.0] {
            let naive = compute_forces(&sys, rc);
            let mut engine = ForceEngine::new(ForceKernel::CellList);
            let cell = engine.compute(&sys, rc);
            assert_close(&naive, &cell, 1e-10);
            assert_eq!(engine.stats().rebuilds, 1);
            assert!(engine.avg_neighbors() > 0.0);
        }
    }

    #[test]
    fn grid_and_sweep_builds_agree() {
        // 125 molecules: with a short cutoff the box fits ≥ 3 cells per
        // dimension, so the grid path runs; the sweep must list the same
        // pairs (canonical order makes Vec equality meaningful).
        let sys = System::lattice(TIP4P, 5, 0.997, 298.0, 11);
        let rc = 2.5;
        let skin = 0.5;
        let r_list = rc + reach_pad(&sys) + skin;
        assert!(
            (sys.box_len / r_list).floor() >= 3.0,
            "test needs the grid path"
        );
        let grid = NeighborList::build(&sys, rc, skin);
        let mut sweep = NeighborList::sweep_pairs(&sys, r_list * r_list);
        sweep.sort_unstable();
        assert_eq!(grid.pairs, sweep);
    }

    #[test]
    fn list_survives_small_moves_and_rebuilds_on_large_ones() {
        let mut sys = System::lattice(TIP4P, 3, 0.997, 298.0, 3);
        let rc = 4.0;
        let mut engine = ForceEngine::with_skin(ForceKernel::CellList, 1.0);
        engine.compute(&sys, rc);
        assert_eq!(engine.stats().rebuilds, 1);
        // Move everything well under skin/2: the cached list must be reused
        // and still agree with the oracle.
        for mol in &mut sys.molecules {
            for r in &mut mol.r {
                r.x += 0.1;
            }
        }
        let cell = engine.compute(&sys, rc);
        assert_eq!(engine.stats().rebuilds, 1, "list should be reused");
        assert_close(&compute_forces(&sys, rc), &cell, 1e-10);
        // Move one molecule past skin/2: rebuild.
        for r in &mut sys.molecules[0].r {
            r.y += 0.6;
        }
        let cell = engine.compute(&sys, rc);
        assert_eq!(engine.stats().rebuilds, 2, "drift must trigger a rebuild");
        assert_close(&compute_forces(&sys, rc), &cell, 1e-10);
    }

    #[test]
    fn box_change_invalidates_the_list() {
        let mut sys = System::lattice(TIP4P, 3, 0.997, 298.0, 4);
        let rc = 4.0;
        let mut engine = ForceEngine::new(ForceKernel::CellList);
        engine.compute(&sys, rc);
        crate::npt::scale_box(&mut sys, 1.01);
        let cell = engine.compute(&sys, rc);
        assert_eq!(engine.stats().rebuilds, 2);
        assert_close(&compute_forces(&sys, rc), &cell, 1e-10);
    }

    #[test]
    fn naive_engine_delegates_to_oracle() {
        let sys = System::lattice(TIP4P, 2, 0.997, 298.0, 5);
        let rc = sys.box_len / 2.0;
        let mut engine = ForceEngine::new(ForceKernel::Naive);
        let a = engine.compute(&sys, rc);
        let b = compute_forces(&sys, rc);
        assert_eq!(a.potential, b.potential);
        assert_eq!(a.virial, b.virial);
        assert_eq!(engine.stats().rebuilds, 0);
        assert_eq!(engine.stats().evals, 1);
    }

    #[test]
    fn simd_matches_naive_on_a_lattice() {
        let sys = System::lattice(TIP4P, 3, 0.997, 298.0, 7);
        for rc in [3.0, 4.0, sys.box_len / 2.0] {
            let naive = compute_forces(&sys, rc);
            let mut engine = ForceEngine::new(ForceKernel::Simd);
            let simd = engine.compute(&sys, rc);
            assert_close(&naive, &simd, 1e-10);
            assert_eq!(engine.stats().rebuilds, 1);
            assert!(engine.stats().lanes > 0, "lane batches should be counted");
        }
    }

    #[test]
    fn sharded_matches_simd_bitwise_with_one_shard() {
        let sys = System::lattice(TIP4P, 3, 0.997, 298.0, 9);
        let rc = 4.0;
        let mut serial = ForceEngine::new(ForceKernel::Simd);
        let a = serial.compute(&sys, rc);
        // One shard spans every row: the reduction tree is identical to the
        // serial sweep, so the results must be bit-for-bit equal.
        let mut sharded = ForceEngine::with_sharding(DEFAULT_SKIN, 1, 2);
        let b = sharded.compute(&sys, rc);
        assert_eq!(a.potential, b.potential);
        assert_eq!(a.virial, b.virial);
        assert_eq!(a.f, b.f);
        assert_eq!(sharded.stats().shards, 1);
    }

    #[test]
    fn sharded_is_bit_identical_across_worker_counts() {
        let sys = System::lattice(TIP4P, 3, 0.997, 298.0, 13);
        let rc = 4.0;
        let naive = compute_forces(&sys, rc);
        let mut reference: Option<Forces> = None;
        for workers in [1usize, 2, 4] {
            let mut engine = ForceEngine::with_sharding(DEFAULT_SKIN, DEFAULT_SHARDS, workers);
            let out = engine.compute(&sys, rc);
            assert_close(&naive, &out, 1e-10);
            assert!(engine.stats().shards >= 1);
            match &reference {
                None => reference = Some(out),
                Some(r) => {
                    assert_eq!(r.potential, out.potential, "workers={workers}");
                    assert_eq!(r.virial, out.virial, "workers={workers}");
                    assert_eq!(r.f, out.f, "workers={workers}");
                }
            }
        }
    }

    #[test]
    fn stats_start_clean_and_saturate() {
        let engine = ForceEngine::new(ForceKernel::Simd);
        assert_eq!(engine.stats().ns_per_eval(), 0.0, "no evals yet → 0.0");
        let mut stats = KernelStats {
            pair_sum: u64::MAX - 1,
            ..KernelStats::default()
        };
        stats.record_pairs(100);
        assert_eq!(stats.pair_sum, u64::MAX, "pair_sum must saturate");
    }

    #[test]
    fn metrics_mirror_lane_kernel_activity() {
        let reg = MetricsRegistry::new();
        let sys = System::lattice(TIP4P, 3, 0.997, 298.0, 8);
        let mut engine = ForceEngine::with_metrics(ForceKernel::Simd, 1.0, &reg);
        engine.compute(&sys, 4.0);
        assert_eq!(
            reg.counter("water.kernel.lanes").get(),
            engine.stats().lanes
        );
        assert!(reg.counter("water.kernel.lanes").get() > 0);
        assert_eq!(
            reg.counter("water.kernel.pack_nanos").get(),
            engine.stats().pack_nanos
        );
    }

    #[test]
    fn metrics_mirror_kernel_activity() {
        let reg = MetricsRegistry::new();
        let sys = System::lattice(TIP4P, 3, 0.997, 298.0, 6);
        let mut engine = ForceEngine::with_metrics(ForceKernel::CellList, 1.0, &reg);
        for _ in 0..3 {
            engine.compute(&sys, 4.0);
        }
        assert_eq!(reg.counter("water.kernel.evals").get(), 3);
        assert_eq!(reg.counter("water.kernel.rebuilds").get(), 1);
        assert!(reg.counter("water.kernel.neighbor_pairs").get() > 0);
        assert!(reg.gauge("water.kernel.avg_neighbors").max() > 0);
        assert!(engine.stats().ns_per_eval() > 0.0);
    }
}
