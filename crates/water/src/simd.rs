//! The lane-batched (SIMD-friendly) pair kernel over the SoA site store.
//!
//! Same physics as [`crate::forces::compute_forces`] and the scalar
//! cell-list path in [`crate::kernel`] — shifted-force LJ on oxygens,
//! Wolf-style shifted-force Coulomb per charge-site pair with strict
//! `r < rc` inclusion, molecular virial — reorganized into three stages so
//! the expensive arithmetic runs four lanes wide ([`crate::vec3::F64x4`],
//! stable-Rust autovectorized `[f64; 4]` math):
//!
//! 1. **Filter + pack**, itself two branch-free passes. 1a walks the
//!    Verlet list's CSR rows, minimum-images the O–O displacement
//!    (precomputed `1/L` multiply with the same half-box guard as the
//!    scalar kernel), and cursor-compacts pairs within the interaction
//!    reach `rc + 2δ` into parallel candidate arrays. 1b revisits the
//!    survivors, evaluates the nine charge-site squared distances as three
//!    lane-padded F64x4 rows, and packs each in-cutoff site pair — and
//!    each LJ-active O–O pair — as a *self-contained* entry: displacement,
//!    charge product, and the two flattened force-slot indices. Stage 2
//!    never looks back at pair-level data.
//! 2. **Lane math + scatter** — the only stage with square roots and
//!    divisions, run over the packed entries in 4-wide chunks at full lane
//!    occupancy with contiguous loads; each chunk's forces are scattered to
//!    their slots while still hot. Lane-partial potential and virial
//!    accumulators are folded in fixed order at the end.
//! 3. **Virial correction** — the lanes accumulate the *site-level* virial
//!    `Σₑ dₑ·fₑ = Σₑ d²ₑ·fmagₑ` (free alongside the force math). The
//!    molecular virial the oracle computes follows from
//!    `d_oo = dₑ − off_i(sᵢ) + off_j(sⱼ)` (off = intramolecular site
//!    offset from O, PBC-independent), which telescopes over entries to
//!    one O(n) pass: `Σₑ d_oo·fₑ = Σₑ dₑ·fₑ − Σ_{m,s} off_m(s)·F_{s,m}`
//!    with `F_{s,m}` the slot forces this call accumulated — which is why
//!    `out` must be freshly zeroed (both call sites comply).
//!
//! Every stage visits pairs in CSR order and every reduction has a fixed
//! association order, so the result for a given row range is a pure
//! function of the inputs — the property the sharded kernel
//! ([`crate::shard`]) builds its bit-identical-across-workers guarantee on
//! (the correction term is linear in the slot forces, so per-shard
//! corrections sum to the whole). Agreement with the naive oracle is
//! rounding-level (~1e-13 relative, vs the 1e-10 budget): lane math
//! substitutes `1/√r²·r²` for `√r²`, division orders differ, and the
//! virial is the telescoped rearrangement above, but no term is
//! approximated.

use crate::model::WaterModel;
use crate::soa::{SoaForces, SoaSites};
use crate::system::min_image;
use crate::units::COULOMB;
use crate::vec3::F64x4;
use std::ops::Range;

/// Lane width of the batched stages.
pub(crate) const LANES: usize = 4;

/// Interaction constants precomputed once per evaluation and shared by
/// every lane and every shard.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PairParams {
    pub rc: f64,
    pub rc2: f64,
    /// `(rc + 2δ)²` — beyond this no site pair can pass `r < rc`.
    pub reach2: f64,
    pub lj_a: f64,
    pub lj_b: f64,
    pub lj_e_rc: f64,
    pub lj_f_rc: f64,
    pub inv_rc: f64,
    pub inv_rc2: f64,
    /// `COULOMB · q_si · q_sj` per charge-site combo (H1, H2, M)², laid
    /// out stride-4 (`c = 4·si + sj`, lane 3 of each row a zero pad) to
    /// match the lane-padded site-pair rows in `compute_rows`.
    pub qq: [f64; 12],
}

impl PairParams {
    pub(crate) fn new(model: &WaterModel, rc: f64, reach: f64) -> PairParams {
        let rc2 = rc * rc;
        let (lj_a, lj_b) = (model.lj_a(), model.lj_b());
        let inv_rc2 = 1.0 / rc2;
        let inv_rc6 = inv_rc2 * inv_rc2 * inv_rc2;
        let inv_rc12 = inv_rc6 * inv_rc6;
        let charges = [model.q_h, model.q_h, model.q_m()];
        let mut qq = [0.0; 12];
        for si in 0..3 {
            for sj in 0..3 {
                qq[4 * si + sj] = COULOMB * charges[si] * charges[sj];
            }
        }
        PairParams {
            rc,
            rc2,
            reach2: reach * reach,
            lj_a,
            lj_b,
            lj_e_rc: lj_a * inv_rc12 - lj_b * inv_rc6,
            lj_f_rc: (12.0 * lj_a * inv_rc12 - 6.0 * lj_b * inv_rc6) / rc,
            inv_rc: 1.0 / rc,
            inv_rc2: (1.0 / rc) * (1.0 / rc),
            qq,
        }
    }
}

/// Reusable scratch for the packed stages. Buffer capacity persists across
/// evaluations (and across shards on the serial path), so steady-state
/// evaluations allocate nothing. All staging is cursor-compacted into
/// pre-sized buffers — write unconditionally, advance the cursor on the
/// inclusion mask — so the hot loops carry no data-dependent branches.
#[derive(Debug, Default)]
pub(crate) struct LaneScratch {
    // In-reach candidate pairs (parallel arrays): molecule indices, O–O
    // minimum-image displacement, squared distance.
    pi: Vec<u32>,
    pj: Vec<u32>,
    pdx: Vec<f64>,
    pdy: Vec<f64>,
    pdz: Vec<f64>,
    pr2: Vec<f64>,
    // LJ-active O–O pairs: displacement, squared distance, molecule
    // indices (O sites live in slot 0, so the flattened force index of an
    // O site is the molecule index itself).
    lj_dx: Vec<f64>,
    lj_dy: Vec<f64>,
    lj_dz: Vec<f64>,
    lj_r2: Vec<f64>,
    lj_i: Vec<u32>,
    lj_j: Vec<u32>,
    // Packed in-cutoff charge-site pairs: displacement, charge product,
    // flattened force-slot indices. d² is recomputed in lanes in stage 2
    // (five flops beat an 8-byte store + load per entry).
    s_dx: Vec<f64>,
    s_dy: Vec<f64>,
    s_dz: Vec<f64>,
    s_qq: Vec<f64>,
    s_ii: Vec<u32>,
    s_jj: Vec<u32>,
}

/// Evaluate CSR rows `rows` of the neighbor list, accumulating forces,
/// potential, and virial into `out` (sized for the full system). Returns
/// the number of 4-wide lane batches executed (the `water.kernel.lanes`
/// counter).
///
/// The argument list is the full shard job description — every parameter
/// is either borrowed system state or a per-shard in/out buffer, and the
/// sharded path builds each from a different source, so bundling them into
/// a struct would just move the same eight names one level down.
#[allow(clippy::too_many_arguments)]
pub(crate) fn compute_rows(
    soa: &SoaSites,
    box_len: f64,
    p: &PairParams,
    row_start: &[u32],
    cols: &[u32],
    rows: Range<usize>,
    scratch: &mut LaneScratch,
    out: &mut SoaForces,
) -> u64 {
    let n = soa.n;
    let l = box_len;
    let inv_l = 1.0 / l;
    let guard = 0.4999 * l;
    let sites = &soa.sites[..];

    // Stage 1 scratch sizing: `cap` bounds the candidate count (all CSR
    // entries in range), `site_cap` the packed site pairs (nine per
    // candidate). The `.max(len)` keeps buffers grow-only so steady-state
    // evaluations never reallocate.
    let cap = (row_start[rows.end] - row_start[rows.start]) as usize;
    let site_cap = 9 * cap;
    scratch.pi.resize(cap.max(scratch.pi.len()), 0);
    scratch.pj.resize(cap.max(scratch.pj.len()), 0);
    scratch.pdx.resize(cap.max(scratch.pdx.len()), 0.0);
    scratch.pdy.resize(cap.max(scratch.pdy.len()), 0.0);
    scratch.pdz.resize(cap.max(scratch.pdz.len()), 0.0);
    scratch.pr2.resize(cap.max(scratch.pr2.len()), 0.0);
    scratch.lj_dx.resize(cap.max(scratch.lj_dx.len()), 0.0);
    scratch.lj_dy.resize(cap.max(scratch.lj_dy.len()), 0.0);
    scratch.lj_dz.resize(cap.max(scratch.lj_dz.len()), 0.0);
    scratch.lj_r2.resize(cap.max(scratch.lj_r2.len()), 0.0);
    scratch.lj_i.resize(cap.max(scratch.lj_i.len()), 0);
    scratch.lj_j.resize(cap.max(scratch.lj_j.len()), 0);
    scratch.s_dx.resize(site_cap.max(scratch.s_dx.len()), 0.0);
    scratch.s_dy.resize(site_cap.max(scratch.s_dy.len()), 0.0);
    scratch.s_dz.resize(site_cap.max(scratch.s_dz.len()), 0.0);
    scratch.s_qq.resize(site_cap.max(scratch.s_qq.len()), 0.0);
    scratch.s_ii.resize(site_cap.max(scratch.s_ii.len()), 0);
    scratch.s_jj.resize(site_cap.max(scratch.s_jj.len()), 0);
    // Hoist every hot array into a local slice: indexed stores through the
    // `Vec`s re-read pointer and length from memory on each access (the
    // optimizer cannot prove the stores leave the headers intact), which
    // dominated the pack loops before this.
    let pi = &mut scratch.pi[..];
    let pj = &mut scratch.pj[..];
    let pdx = &mut scratch.pdx[..];
    let pdy = &mut scratch.pdy[..];
    let pdz = &mut scratch.pdz[..];
    let pr2 = &mut scratch.pr2[..];
    let lj_dx = &mut scratch.lj_dx[..];
    let lj_dy = &mut scratch.lj_dy[..];
    let lj_dz = &mut scratch.lj_dz[..];
    let lj_r2 = &mut scratch.lj_r2[..];
    let lj_i = &mut scratch.lj_i[..];
    let lj_j = &mut scratch.lj_j[..];
    let s_dx = &mut scratch.s_dx[..];
    let s_dy = &mut scratch.s_dy[..];
    let s_dz = &mut scratch.s_dz[..];
    let s_qq = &mut scratch.s_qq[..];
    let s_ii = &mut scratch.s_ii[..];
    let s_jj = &mut scratch.s_jj[..];
    let out_fx = &mut out.fx[..];
    let out_fy = &mut out.fy[..];
    let out_fz = &mut out.fz[..];
    let n32 = n as u32;
    let mut nlj = 0usize;
    let mut ns = 0usize;
    // Stage 1a: candidate filter, branch-free via cursor compaction (every
    // slot is written, the cursor advances only on inclusion) so the
    // ~half-rejecting reach test costs no mispredicts. The guard fallback
    // branch stays: it fires ~never and predicts perfectly.
    let mut np = 0usize;
    for i in rows {
        let bi = &sites[i];
        let (xi, yi, zi) = (bi[0], bi[1], bi[2]);
        let i32_ = i as u32;
        for &j32 in &cols[row_start[i] as usize..row_start[i + 1] as usize] {
            let j = j32 as usize;
            let bj = &sites[j];
            let (rx, ry, rz) = (xi - bj[0], yi - bj[1], zi - bj[2]);
            let mut dx = rx - l * (rx * inv_l).round();
            let mut dy = ry - l * (ry * inv_l).round();
            let mut dz = rz - l * (rz * inv_l).round();
            if dx.abs() >= guard || dy.abs() >= guard || dz.abs() >= guard {
                dx = min_image(rx, l);
                dy = min_image(ry, l);
                dz = min_image(rz, l);
            }
            let r2 = dx * dx + dy * dy + dz * dz;
            pi[np] = i32_;
            pj[np] = j32;
            pdx[np] = dx;
            pdy[np] = dy;
            pdz[np] = dz;
            pr2[np] = r2;
            np += (r2 <= p.reach2) as usize;
        }
    }

    // Stage 1b: per-survivor site pack. Every iteration does the full site
    // work with fixed trip counts — no data-dependent control flow at all,
    // so nothing mispredicts. The nine site combos are processed as three
    // lane-padded F64x4 rows (lane 3 a pad the compaction skips) — a width
    // the vector units handle natively, where a `[f64; 9]` loop lowers to
    // scalar shuffle soup.
    let rc2_v = F64x4::splat(p.rc2);
    for k in 0..np {
        let (i32_, j32) = (pi[k], pj[k]);
        let (i, j) = (i32_ as usize, j32 as usize);
        let (dx, dy, dz, r2) = (pdx[k], pdy[k], pdz[k], pr2[k]);
        let bi = &sites[i];
        let bj = &sites[j];
        // Cursor compaction for the LJ subset: write unconditionally,
        // advance on the (inclusive, matching the oracle) cutoff test.
        lj_dx[nlj] = dx;
        lj_dy[nlj] = dy;
        lj_dz[nlj] = dz;
        lj_r2[nlj] = r2;
        lj_i[nlj] = i32_;
        lj_j[nlj] = j32;
        nlj += (r2 <= p.rc2) as usize;
        // Lattice shift bringing molecule j next to molecule i.
        let sx = bi[0] - dx - bj[0];
        let sy = bi[1] - dy - bj[1];
        let sz = bi[2] - dz - bj[2];
        let vx = F64x4([bj[3] + sx, bj[6] + sx, bj[9] + sx, 0.0]);
        let vy = F64x4([bj[4] + sy, bj[7] + sy, bj[10] + sy, 0.0]);
        let vz = F64x4([bj[5] + sz, bj[8] + sz, bj[11] + sz, 0.0]);
        for si in 0..3 {
            let rx = F64x4::splat(bi[3 * si + 3]) - vx;
            let ry = F64x4::splat(bi[3 * si + 4]) - vy;
            let rz = F64x4::splat(bi[3 * si + 5]) - vz;
            let r2row = rx * rx + ry * ry + rz * rz;
            let diff = r2row - rc2_v;
            let ii = (si as u32 + 1) * n32 + i32_;
            // Branchless compaction of the row's three real lanes (lane 3
            // is pad): write unconditionally, advance the cursor on the
            // strict cutoff test. The test uses the sign bit of r² − rc² —
            // the subtraction is correctly rounded, so its sign equals the
            // comparison everywhere except exact equality, where it yields
            // +0 → excluded, exactly the strict `<` the oracle applies. A
            // fixed 3-lane trip count keeps the loop free of the
            // data-dependent exit branch a find-first-set walk over a hit
            // mask would mispredict once per pair.
            for lane in 0..3 {
                s_dx[ns] = rx.0[lane];
                s_dy[ns] = ry.0[lane];
                s_dz[ns] = rz.0[lane];
                s_qq[ns] = p.qq[4 * si + lane];
                s_ii[ns] = ii;
                s_jj[ns] = (lane as u32 + 1) * n32 + j32;
                ns += ((diff.0[lane].to_bits() >> 63) & 1) as usize;
            }
        }
    }

    let mut lane_batches = 0u64;

    // Stage 2a: LJ lane math, scattering each chunk's forces while they
    // are still in registers. Potential and site-virial (d²·s — for O–O
    // pairs the site displacement IS the molecular one) partials
    // accumulate per lane; folded in fixed order at the end.
    let mut lj_pot = F64x4::splat(0.0);
    let mut lj_vir = F64x4::splat(0.0);
    let mut lj_pot_tail = 0.0;
    let mut lj_vir_tail = 0.0;
    {
        // Returns (potential, force scale s): F = d · s.
        let lj_body = |d2: F64x4| -> (F64x4, F64x4) {
            let inv_r2 = d2.recip();
            let inv_r = inv_r2.sqrt();
            let r = d2 * inv_r;
            let inv_r6 = inv_r2 * inv_r2 * inv_r2;
            let inv_r12 = inv_r6 * inv_r6;
            let a = F64x4::splat(p.lj_a);
            let b = F64x4::splat(p.lj_b);
            let pot = a * inv_r12 - b * inv_r6 - F64x4::splat(p.lj_e_rc)
                + (r - F64x4::splat(p.rc)) * F64x4::splat(p.lj_f_rc);
            let fr = (F64x4::splat(12.0) * a * inv_r12 - F64x4::splat(6.0) * b * inv_r6) * inv_r;
            let s = (fr - F64x4::splat(p.lj_f_rc)) * inv_r;
            (pot, s)
        };
        let chunks = nlj / LANES;
        for ch in 0..chunks {
            let base = ch * LANES;
            let d2 = F64x4::load(lj_r2, base);
            let (pot, s) = lj_body(d2);
            lj_pot += pot;
            lj_vir += d2 * s;
            let fx = F64x4::load(lj_dx, base) * s;
            let fy = F64x4::load(lj_dy, base) * s;
            let fz = F64x4::load(lj_dz, base) * s;
            for lane in 0..LANES {
                let i = lj_i[base + lane] as usize;
                let j = lj_j[base + lane] as usize;
                out_fx[i] += fx.0[lane];
                out_fy[i] += fy.0[lane];
                out_fz[i] += fz.0[lane];
                out_fx[j] -= fx.0[lane];
                out_fy[j] -= fy.0[lane];
                out_fz[j] -= fz.0[lane];
            }
        }
        lane_batches += chunks as u64;
        for e in chunks * LANES..nlj {
            let d2 = lj_r2[e];
            let (pot, s) = lj_body(F64x4::splat(d2));
            let s = s.0[0];
            lj_pot_tail += pot.0[0];
            lj_vir_tail += d2 * s;
            let (i, j) = (lj_i[e] as usize, lj_j[e] as usize);
            let (fx, fy, fz) = (lj_dx[e] * s, lj_dy[e] * s, lj_dz[e] * s);
            out_fx[i] += fx;
            out_fy[i] += fy;
            out_fz[i] += fz;
            out_fx[j] -= fx;
            out_fy[j] -= fy;
            out_fz[j] -= fz;
        }
    }

    // Stage 2b: Coulomb lane math over the packed site pairs — contiguous
    // loads throughout, d² recomputed in lanes, the site-virial d²·fmag
    // accumulated alongside, and the forces scattered to their
    // precomputed slots while still in registers.
    let mut c_pot = F64x4::splat(0.0);
    let mut c_vir = F64x4::splat(0.0);
    let mut c_pot_tail = 0.0;
    let mut c_vir_tail = 0.0;
    {
        let coul_body = |d2: F64x4, qq: F64x4| -> (F64x4, F64x4) {
            let inv_d2 = d2.recip();
            let inv_r = inv_d2.sqrt();
            let r = d2 * inv_r;
            let pot = qq
                * (inv_r - F64x4::splat(p.inv_rc)
                    + (r - F64x4::splat(p.rc)) * F64x4::splat(p.inv_rc2));
            let fmag = qq * (inv_d2 - F64x4::splat(p.inv_rc2)) * inv_r;
            (pot, fmag)
        };
        let chunks = ns / LANES;
        for ch in 0..chunks {
            let base = ch * LANES;
            let dx = F64x4::load(s_dx, base);
            let dy = F64x4::load(s_dy, base);
            let dz = F64x4::load(s_dz, base);
            let d2 = dx * dx + dy * dy + dz * dz;
            let qq = F64x4::load(s_qq, base);
            let (pot, fmag) = coul_body(d2, qq);
            c_pot += pot;
            c_vir += d2 * fmag;
            let (fx, fy, fz) = (dx * fmag, dy * fmag, dz * fmag);
            for lane in 0..LANES {
                let ii = s_ii[base + lane] as usize;
                let jj = s_jj[base + lane] as usize;
                out_fx[ii] += fx.0[lane];
                out_fy[ii] += fy.0[lane];
                out_fz[ii] += fz.0[lane];
                out_fx[jj] -= fx.0[lane];
                out_fy[jj] -= fy.0[lane];
                out_fz[jj] -= fz.0[lane];
            }
        }
        lane_batches += chunks as u64;
        for e in chunks * LANES..ns {
            let (dx, dy, dz) = (s_dx[e], s_dy[e], s_dz[e]);
            let d2 = dx * dx + dy * dy + dz * dz;
            let (pot, fmag) = coul_body(F64x4::splat(d2), F64x4::splat(s_qq[e]));
            let fmag = fmag.0[0];
            c_pot_tail += pot.0[0];
            c_vir_tail += d2 * fmag;
            let ii = s_ii[e] as usize;
            let jj = s_jj[e] as usize;
            let (fx, fy, fz) = (dx * fmag, dy * fmag, dz * fmag);
            out_fx[ii] += fx;
            out_fy[ii] += fy;
            out_fz[ii] += fz;
            out_fx[jj] -= fx;
            out_fy[jj] -= fy;
            out_fz[jj] -= fz;
        }
    }

    // Stage 3: telescoped molecular-virial correction (see module docs):
    // Σₑ d_oo·fₑ = Σₑ dₑ·fₑ − Σ_{m,s} off_m(s)·F_{s,m}. Slot 0 is O itself
    // (off = 0), so only the charge slots contribute. Linear in the slot
    // forces, hence it relies on `out` having been zeroed before this call
    // and sums exactly over shards.
    let mut corr = 0.0;
    for s in 1..4 {
        let (fx, fy, fz) = (
            &out_fx[s * n..(s + 1) * n],
            &out_fy[s * n..(s + 1) * n],
            &out_fz[s * n..(s + 1) * n],
        );
        for (b, ((fx, fy), fz)) in sites.iter().zip(fx.iter().zip(fy).zip(fz)) {
            corr +=
                (b[3 * s] - b[0]) * fx + (b[3 * s + 1] - b[1]) * fy + (b[3 * s + 2] - b[2]) * fz;
        }
    }
    out.virial += (lj_vir.fold_sum() + lj_vir_tail) + (c_vir.fold_sum() + c_vir_tail) - corr;
    out.potential += (lj_pot.fold_sum() + lj_pot_tail) + (c_pot.fold_sum() + c_pot_tail);

    lane_batches
}
