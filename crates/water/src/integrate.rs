//! Velocity-Verlet integration with SHAKE/RATTLE rigid-body constraints and
//! a velocity-rescale thermostat.
//!
//! Each water molecule carries three holonomic constraints (two O–H bonds
//! and the H–H distance), keeping the TIP4P geometry exactly rigid. SHAKE
//! corrects positions after the drift step; RATTLE projects constraint-
//! violating components out of the velocities after the second half-kick.

use crate::forces::Forces;
use crate::kernel::ForceEngine;
use crate::system::{System, MASSES};
use crate::units::{KB, KCAL_ACC, KE_TO_KCAL};
use crate::vec3::Vec3;

/// SHAKE/RATTLE convergence tolerance (relative, on squared distances).
const SHAKE_TOL: f64 = 1e-10;
/// Maximum SHAKE/RATTLE sweeps per step.
const SHAKE_MAX_ITERS: usize = 500;

/// The three rigid constraints of a water molecule: site index pairs and
/// target distances.
fn constraints(sys: &System) -> [(usize, usize, f64); 3] {
    let d_oh = sys.model.r_oh;
    let d_hh = sys.model.r_hh();
    [(0, 1, d_oh), (0, 2, d_oh), (1, 2, d_hh)]
}

/// Apply SHAKE to one molecule: `r_new` is corrected onto the constraint
/// manifold using the pre-step geometry `r_old` as the reference direction;
/// velocities receive the matching correction.
fn shake(
    r_old: &[Vec3; 3],
    r_new: &mut [Vec3; 3],
    v: &mut [Vec3; 3],
    cons: &[(usize, usize, f64); 3],
    dt: f64,
) {
    for _ in 0..SHAKE_MAX_ITERS {
        let mut done = true;
        for &(i, j, d) in cons {
            let s = r_new[i] - r_new[j];
            let diff = s.norm_sq() - d * d;
            if diff.abs() > SHAKE_TOL * d * d {
                done = false;
                let ref_ij = r_old[i] - r_old[j];
                let inv_mi = 1.0 / MASSES[i];
                let inv_mj = 1.0 / MASSES[j];
                let denom = 2.0 * (inv_mi + inv_mj) * s.dot(ref_ij);
                let g = diff / denom;
                let corr = ref_ij * g;
                r_new[i] -= corr * inv_mi;
                r_new[j] += corr * inv_mj;
                v[i] -= corr * (inv_mi / dt);
                v[j] += corr * (inv_mj / dt);
            }
        }
        if done {
            return;
        }
    }
    panic!("SHAKE failed to converge — timestep too large?");
}

/// Apply RATTLE velocity constraints to one molecule.
fn rattle(r: &[Vec3; 3], v: &mut [Vec3; 3], cons: &[(usize, usize, f64); 3]) {
    for _ in 0..SHAKE_MAX_ITERS {
        let mut done = true;
        for &(i, j, d) in cons {
            let rij = r[i] - r[j];
            let vij = v[i] - v[j];
            let rv = rij.dot(vij);
            if rv.abs() > SHAKE_TOL * d * d {
                done = false;
                let inv_mi = 1.0 / MASSES[i];
                let inv_mj = 1.0 / MASSES[j];
                let k = rv / (d * d * (inv_mi + inv_mj));
                v[i] -= rij * (k * inv_mi);
                v[j] += rij * (k * inv_mj);
            }
        }
        if done {
            return;
        }
    }
    panic!("RATTLE failed to converge");
}

/// One velocity-Verlet step of length `dt` (fs). Takes the forces at the
/// current positions and returns the forces at the new positions (so force
/// evaluations are never repeated). Force evaluation goes through `engine`,
/// which owns the kernel selection and neighbor-list cache.
pub fn step(
    sys: &mut System,
    forces: &Forces,
    dt: f64,
    rc: f64,
    engine: &mut ForceEngine,
) -> Forces {
    let cons = constraints(sys);

    // First half-kick + drift, then SHAKE.
    for (mol, f) in sys.molecules.iter_mut().zip(&forces.f) {
        let r_old = mol.r;
        for s in 0..3 {
            mol.v[s] += f[s] * (0.5 * dt * KCAL_ACC / MASSES[s]);
            mol.r[s] += mol.v[s] * dt;
        }
        let (mut r_new, mut v) = (mol.r, mol.v);
        shake(&r_old, &mut r_new, &mut v, &cons, dt);
        mol.r = r_new;
        mol.v = v;
    }

    // New forces, second half-kick, then RATTLE.
    let new_forces = engine.compute(sys, rc);
    for (mol, f) in sys.molecules.iter_mut().zip(&new_forces.f) {
        for s in 0..3 {
            mol.v[s] += f[s] * (0.5 * dt * KCAL_ACC / MASSES[s]);
        }
        let (r, mut v) = (mol.r, mol.v);
        rattle(&r, &mut v, &cons);
        mol.v = v;
    }

    new_forces
}

/// Total kinetic energy, kcal/mol.
pub fn kinetic_energy(sys: &System) -> f64 {
    let mut ke = 0.0;
    for mol in &sys.molecules {
        for (v, m) in mol.v.iter().zip(&MASSES) {
            ke += 0.5 * m * v.norm_sq();
        }
    }
    ke * KE_TO_KCAL
}

/// Constrained degrees of freedom: `6N − 3` (each rigid molecule has 6,
/// minus the conserved total momentum).
pub fn degrees_of_freedom(sys: &System) -> usize {
    6 * sys.n_molecules() - 3
}

/// Instantaneous kinetic temperature, K.
pub fn temperature(sys: &System) -> f64 {
    2.0 * kinetic_energy(sys) / (degrees_of_freedom(sys) as f64 * KB)
}

/// Velocity-rescale thermostat: scale all velocities so the kinetic
/// temperature equals `target` exactly.
pub fn rescale_to(sys: &mut System, target: f64) {
    let t = temperature(sys);
    if t <= 0.0 {
        return;
    }
    let s = (target / t).sqrt();
    for mol in &mut sys.molecules {
        for v in &mut mol.v {
            *v = *v * s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TIP4P;

    fn engine() -> ForceEngine {
        // from_env so the CI kernel matrix exercises both paths here.
        ForceEngine::from_env()
    }

    fn small_system(seed: u64) -> System {
        // 27 molecules: rc = L/2 ≈ 4.65 Å, beyond the first coordination
        // shell, so cutoff artefacts stay small.
        System::lattice(TIP4P, 3, 0.997, 298.0, seed)
    }

    #[test]
    fn constraints_hold_over_many_steps() {
        let mut sys = small_system(1);
        let rc = sys.box_len / 2.0;
        let mut eng = engine();
        let mut f = eng.compute(&sys, rc);
        for _ in 0..200 {
            f = step(&mut sys, &f, 1.0, rc, &mut eng);
        }
        assert!(sys.constraints_satisfied(1e-6));
    }

    #[test]
    fn rattle_keeps_bond_velocities_orthogonal() {
        let mut sys = small_system(2);
        let rc = sys.box_len / 2.0;
        let mut eng = engine();
        let mut f = eng.compute(&sys, rc);
        for _ in 0..20 {
            f = step(&mut sys, &f, 1.0, rc, &mut eng);
        }
        for mol in &sys.molecules {
            let rij = mol.r[0] - mol.r[1];
            let vij = mol.v[0] - mol.v[1];
            assert!(rij.dot(vij).abs() < 1e-6);
        }
    }

    #[test]
    fn lane_kernels_integrate_like_the_scalar_path() {
        // Short trajectories under the simd and sharded engines must track
        // the scalar cell-list trajectory: per-step force agreement is
        // ~1e-12 relative, so 25 steps leave no visible divergence.
        let rc = small_system(8).box_len / 2.0;
        let run = |mut eng: crate::kernel::ForceEngine| -> System {
            let mut sys = small_system(8);
            let mut f = eng.compute(&sys, rc);
            for _ in 0..25 {
                f = step(&mut sys, &f, 1.0, rc, &mut eng);
            }
            assert!(sys.constraints_satisfied(1e-6));
            sys
        };
        let cell = run(crate::kernel::ForceEngine::new(
            crate::kernel::ForceKernel::CellList,
        ));
        let simd = run(crate::kernel::ForceEngine::new(
            crate::kernel::ForceKernel::Simd,
        ));
        let sharded = run(crate::kernel::ForceEngine::with_sharding(1.0, 4, 2));
        for (a, b, c) in itertools_zip(&cell.molecules, &simd.molecules, &sharded.molecules) {
            for s in 0..3 {
                assert!((a.r[s] - b.r[s]).norm() < 1e-8, "simd drifted");
                assert!((a.r[s] - c.r[s]).norm() < 1e-8, "sharded drifted");
            }
        }
    }

    fn itertools_zip<'a, T>(
        a: &'a [T],
        b: &'a [T],
        c: &'a [T],
    ) -> impl Iterator<Item = (&'a T, &'a T, &'a T)> {
        a.iter().zip(b).zip(c).map(|((x, y), z)| (x, y, z))
    }

    #[test]
    fn nve_energy_is_approximately_conserved() {
        let mut sys = small_system(3);
        let rc = sys.box_len / 2.0;
        // Short settle so the lattice overlaps relax, then measure drift.
        let mut eng = engine();
        let mut f = eng.compute(&sys, rc);
        for _ in 0..100 {
            f = step(&mut sys, &f, 0.5, rc, &mut eng);
            rescale_to(&mut sys, 298.0);
        }
        let e0 = f.potential + kinetic_energy(&sys);
        let mut e_min = e0;
        let mut e_max = e0;
        for _ in 0..400 {
            f = step(&mut sys, &f, 0.5, rc, &mut eng);
            let e = f.potential + kinetic_energy(&sys);
            e_min = e_min.min(e);
            e_max = e_max.max(e);
        }
        let scale = kinetic_energy(&sys).abs().max(1.0);
        let drift = (e_max - e_min) / scale;
        assert!(drift < 0.05, "energy drift {drift} too large");
    }

    #[test]
    fn momentum_is_conserved() {
        let mut sys = small_system(4);
        let rc = sys.box_len / 2.0;
        let p0 = sys.momentum();
        let mut eng = engine();
        let mut f = eng.compute(&sys, rc);
        for _ in 0..100 {
            f = step(&mut sys, &f, 1.0, rc, &mut eng);
        }
        assert!((sys.momentum() - p0).norm() < 1e-8);
    }

    #[test]
    fn thermostat_hits_target() {
        let mut sys = small_system(5);
        rescale_to(&mut sys, 350.0);
        assert!((temperature(&sys) - 350.0).abs() < 1e-9);
    }

    #[test]
    fn temperature_is_positive_and_sane_after_thermalize() {
        let sys = small_system(6);
        let t = temperature(&sys);
        // COM-only thermalization puts kBT/2 in 3 of 6 dof per molecule:
        // expect roughly half the target before equilibration.
        assert!(t > 50.0 && t < 600.0, "T = {t}");
    }
}
