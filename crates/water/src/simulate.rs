//! The two-phase simulation protocol of §3.5: NVT equilibration at 298 K
//! followed by an NVE production run from which the six fitted properties
//! are measured with error bars.

use crate::blocking::block_analysis;
use crate::integrate::{kinetic_energy, rescale_to, step, temperature};
use crate::kernel::{ForceEngine, ForceKernel};
use crate::model::WaterModel;
use crate::properties::{pressure_atm, MsdTracker, RdfAccumulator, RdfKind};
use crate::system::System;
use crate::units::KCAL_TO_KJ;
use stoch_eval::stats::Welford;

/// Simulation protocol parameters.
#[derive(Debug, Clone, Copy)]
pub struct MdConfig {
    /// Molecules per box edge (total `n_side³`).
    pub n_side: usize,
    /// Mass density, g/cm³.
    pub density: f64,
    /// Target temperature, K.
    pub temperature: f64,
    /// Timestep, fs.
    pub dt: f64,
    /// NVT equilibration steps.
    pub equil_steps: usize,
    /// NVE production steps.
    pub prod_steps: usize,
    /// Sample every this many production steps.
    pub sample_every: usize,
    /// RNG seed.
    pub seed: u64,
    /// Force evaluation path (default: `NSX_FORCE_KERNEL`, else cell-list).
    pub kernel: ForceKernel,
    /// O–O cutoff, Å. `None` uses the half-box convention; explicit values
    /// are clamped to `box_len / 2`.
    pub rc: Option<f64>,
}

impl Default for MdConfig {
    fn default() -> Self {
        MdConfig {
            n_side: 3,
            density: 0.997,
            temperature: 298.0,
            dt: 1.0,
            equil_steps: 500,
            prod_steps: 2_000,
            sample_every: 10,
            seed: 0,
            kernel: ForceKernel::from_env(),
            rc: None,
        }
    }
}

/// A measured property with its standard error of the mean.
#[derive(Debug, Clone, Copy)]
pub struct Measured {
    /// Mean value.
    pub mean: f64,
    /// Standard error of the mean.
    pub std_err: f64,
}

/// Everything measured in one production run.
#[derive(Debug, Clone)]
pub struct MdProperties {
    /// Potential energy per molecule, kJ/mol.
    pub energy_kj_mol: Measured,
    /// Pressure, atm.
    pub pressure_atm: Measured,
    /// Self-diffusion coefficient, cm²/s.
    pub diffusion_cm2_s: f64,
    /// Mean production temperature, K.
    pub temperature_k: f64,
    /// gOO(r): (r centers Å, g values).
    pub g_oo: (Vec<f64>, Vec<f64>),
    /// gOH(r).
    pub g_oh: (Vec<f64>, Vec<f64>),
    /// gHH(r).
    pub g_hh: (Vec<f64>, Vec<f64>),
    /// Total production time simulated, fs.
    pub production_fs: f64,
}

/// Run the full two-phase protocol for `model` under `cfg`.
pub fn run_md(model: WaterModel, cfg: &MdConfig) -> MdProperties {
    let mut sys = System::lattice(model, cfg.n_side, cfg.density, cfg.temperature, cfg.seed);
    let half_box = sys.box_len / 2.0;
    let rc = cfg.rc.map_or(half_box, |r| r.min(half_box));
    let mut engine = ForceEngine::new(cfg.kernel);

    // Phase 1: NVT equilibration with velocity rescaling.
    let mut f = engine.compute(&sys, rc);
    for i in 0..cfg.equil_steps {
        f = step(&mut sys, &f, cfg.dt, rc, &mut engine);
        if i % 5 == 0 {
            rescale_to(&mut sys, cfg.temperature);
        }
    }

    // Phase 2: NVE production with sampling.
    let rdf_max = sys.box_len / 2.0;
    let mut g_oo = RdfAccumulator::new(RdfKind::OO, rdf_max, 60);
    let mut g_oh = RdfAccumulator::new(RdfKind::OH, rdf_max, 60);
    let mut g_hh = RdfAccumulator::new(RdfKind::HH, rdf_max, 60);
    let mut msd = MsdTracker::new(&sys);
    let mut u_series = Vec::with_capacity(cfg.prod_steps / cfg.sample_every + 1);
    let mut p_series = Vec::with_capacity(cfg.prod_steps / cfg.sample_every + 1);
    let mut t_acc = Welford::new();

    for i in 1..=cfg.prod_steps {
        f = step(&mut sys, &f, cfg.dt, rc, &mut engine);
        if i % cfg.sample_every == 0 {
            let t_inst = temperature(&sys);
            u_series.push(f.potential / sys.n_molecules() as f64);
            p_series.push(pressure_atm(&sys, t_inst, f.virial));
            t_acc.push(t_inst);
            g_oo.sample(&sys);
            g_oh.sample(&sys);
            g_hh.sample(&sys);
            msd.sample(&sys, i as f64 * cfg.dt);
        }
    }
    // Keep the borrow checker simple: kinetic_energy is cheap.
    let _ = kinetic_energy(&sys);

    // Honest error bars via block averaging: MD samples are correlated, so
    // the naive sigma/sqrt(n) would understate the noise the optimizers see.
    let measured = |series: &[f64]| -> Measured {
        match block_analysis(series) {
            Some(a) => Measured {
                mean: a.mean,
                std_err: a.std_err,
            },
            None => {
                let mut w = Welford::new();
                for &x in series {
                    w.push(x);
                }
                Measured {
                    mean: w.mean(),
                    std_err: if series.len() > 1 {
                        w.std_err()
                    } else {
                        f64::INFINITY
                    },
                }
            }
        }
    };
    let u_meas = measured(&u_series);
    let p_meas = measured(&p_series);

    MdProperties {
        energy_kj_mol: Measured {
            mean: u_meas.mean * KCAL_TO_KJ,
            std_err: u_meas.std_err * KCAL_TO_KJ,
        },
        pressure_atm: p_meas,
        diffusion_cm2_s: msd.diffusion_cm2_s(),
        temperature_k: t_acc.mean(),
        g_oo: g_oo.normalize(&sys),
        g_oh: g_oh.normalize(&sys),
        g_hh: g_hh.normalize(&sys),
        production_fs: cfg.prod_steps as f64 * cfg.dt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TIP4P;

    /// A deliberately tiny protocol so the test suite stays fast; physical
    /// accuracy is validated by the longer harness runs.
    fn tiny() -> MdConfig {
        MdConfig {
            n_side: 3,
            equil_steps: 300,
            prod_steps: 600,
            sample_every: 10,
            dt: 1.0,
            ..MdConfig::default()
        }
    }

    #[test]
    fn md_run_produces_liquid_like_observables() {
        // The diffusion fit needs the MSD window to clear the cage-rattling
        // regime (~1 ps for water): 600 fs of production gives a slope
        // dominated by in-cage oscillation that can come out negative, so
        // this test runs a longer production than `tiny()`.
        let p = run_md(
            TIP4P,
            &MdConfig {
                prod_steps: 1_500,
                ..tiny()
            },
        );
        // Cohesive energy: negative, within a loose liquid-water band
        // (small box + truncated electrostatics shift it, but the sign and
        // order of magnitude are robust).
        assert!(
            p.energy_kj_mol.mean < -5.0 && p.energy_kj_mol.mean > -80.0,
            "U = {} kJ/mol",
            p.energy_kj_mol.mean
        );
        assert!(p.energy_kj_mol.std_err > 0.0);
        // Temperature near target after equilibration.
        assert!(
            (p.temperature_k - 298.0).abs() < 80.0,
            "T = {}",
            p.temperature_k
        );
        // Diffusion: positive, within two orders of magnitude of 2.3e-5.
        assert!(
            p.diffusion_cm2_s > 1e-7 && p.diffusion_cm2_s < 1e-3,
            "D = {}",
            p.diffusion_cm2_s
        );
    }

    #[test]
    fn goo_shows_first_shell_structure() {
        let p = run_md(TIP4P, &tiny());
        let (rs, gs) = &p.g_oo;
        // Peak location: the first maximum of gOO should fall near 2.8 Å
        // (liquid water's first shell), certainly within [2.4, 3.4].
        let (peak_r, peak_g) = rs
            .iter()
            .zip(gs)
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(r, g)| (*r, *g))
            .unwrap();
        assert!(
            (2.2..=3.6).contains(&peak_r),
            "first gOO peak at {peak_r} Å"
        );
        assert!(peak_g > 1.3, "peak height {peak_g}");
        // Excluded volume: g ≈ 0 below 2.2 Å.
        let low: f64 = rs
            .iter()
            .zip(gs)
            .filter(|(r, _)| **r < 2.2)
            .map(|(_, g)| *g)
            .sum();
        assert!(low < 0.2, "g(r<2.2) = {low}");
    }

    #[test]
    fn md_is_reproducible_for_fixed_seed() {
        let a = run_md(TIP4P, &tiny());
        let b = run_md(TIP4P, &tiny());
        assert_eq!(a.energy_kj_mol.mean, b.energy_kj_mol.mean);
        assert_eq!(a.pressure_atm.mean, b.pressure_atm.mean);
    }
}
