//! The parameterization cost function (Eq. 3.4) and its exposure as a
//! [`StochasticObjective`].
//!
//! ```text
//! g(θ) = Σ_i w_i² (p_i(θ) − p0_i)² / s_i²
//! ```
//!
//! where `s_i = max(|p0_i|, floor_i)` — the floor handles targets that are
//! identically zero (the RDF residuals, whose experimental target is zero
//! by construction, Eq. 3.5) and near-zero (pressure: 1 atm), for which a
//! purely relative error would blow up. The paper chooses weights
//! "subjectively to balance the level of error in each property"; the
//! defaults here are tuned the same way.
//!
//! Each of the six properties is measured with sampling noise
//! `σ_i²(t) = σ0_i²/t`; the cost's standard error follows by first-order
//! error propagation. This gives the realistic structure where noise on the
//! *cost* is parameter-dependent even though per-property noise is not.

use crate::reference::Experiment;
use crate::simulate::{run_md, MdConfig};
use crate::surrogate::{prop, PropertyEngine};
use stoch_eval::objective::{Estimate, SampleStream, StochasticObjective};
use stoch_eval::sampler::NormalSource;
use stoch_eval::stats::Welford;

/// Weights and normalization scales of the six cost terms.
#[derive(Debug, Clone, Copy)]
pub struct CostWeights {
    /// Per-property weights `w_i` (order: D, gHH, gOH, gOO, P, U).
    pub w: [f64; 6],
    /// Normalization floors `floor_i` for targets near zero.
    pub floors: [f64; 6],
}

impl Default for CostWeights {
    fn default() -> Self {
        CostWeights {
            //    D     gHH   gOH   gOO   P     U
            w: [1.0, 1.0, 1.0, 1.0, 1.0, 1.0],
            // Scales: RDF residuals measured against a 0.25 structure
            // scale; pressure against 1000 atm; D and U are relative.
            floors: [0.5, 0.25, 0.25, 0.25, 1500.0, 5.0],
        }
    }
}

/// Experimental targets in property order (D, gHH, gOH, gOO, P, U).
pub const TARGETS: [f64; 6] = [
    Experiment::D,
    Experiment::RDF_RESIDUAL,
    Experiment::RDF_RESIDUAL,
    Experiment::RDF_RESIDUAL,
    Experiment::P,
    Experiment::U,
];

impl CostWeights {
    /// Normalization scale `s_i`.
    #[inline]
    pub fn scale(&self, i: usize) -> f64 {
        TARGETS[i].abs().max(self.floors[i])
    }

    /// Evaluate the cost (Eq. 3.4) from a property vector.
    pub fn cost(&self, props: &[f64; 6]) -> f64 {
        let mut g = 0.0;
        for i in 0..6 {
            let s = self.scale(i);
            let r = (props[i] - TARGETS[i]) / s;
            g += self.w[i] * self.w[i] * r * r;
        }
        g
    }

    /// First-order propagated standard error of the cost given per-property
    /// standard errors.
    pub fn cost_std_err(&self, props: &[f64; 6], prop_errs: &[f64; 6]) -> f64 {
        let mut var = 0.0;
        for i in 0..6 {
            let s = self.scale(i);
            let dgdp = 2.0 * self.w[i] * self.w[i] * (props[i] - TARGETS[i]) / (s * s);
            var += dgdp * dgdp * prop_errs[i] * prop_errs[i];
        }
        var.sqrt()
    }
}

/// Default per-property inherent noise magnitudes `σ0_i` (per unit virtual
/// time), sized relative to each property's typical magnitude — diffusion
/// and pressure converge slowly in real MD, RDF residuals faster.
pub const DEFAULT_PROP_SIGMA0: [f64; 6] = [1.5, 0.15, 0.15, 0.15, 900.0, 6.0];

/// The water-parameterization objective over any [`PropertyEngine`].
///
/// Parameter vector: `θ = (ε kcal/mol, σ Å, q_H e)`.
#[derive(Debug, Clone)]
pub struct WaterObjective<E> {
    engine: E,
    /// Cost weights/scales.
    pub weights: CostWeights,
    /// Per-property `σ0` (noise per unit sampling time).
    pub sigma0: [f64; 6],
    /// Global noise multiplier (0 disables noise).
    pub noise_level: f64,
}

impl<E: PropertyEngine> WaterObjective<E> {
    /// Standard noisy objective.
    pub fn new(engine: E) -> Self {
        WaterObjective {
            engine,
            weights: CostWeights::default(),
            sigma0: DEFAULT_PROP_SIGMA0,
            noise_level: 1.0,
        }
    }

    /// Noise-free variant (for measuring the true cost surface).
    pub fn noiseless(engine: E) -> Self {
        let mut o = Self::new(engine);
        o.noise_level = 0.0;
        o
    }

    /// The underlying property engine.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// True (noise-free) property vector at `params`.
    pub fn true_properties(&self, params: &[f64; 3]) -> [f64; 6] {
        self.engine.properties(params)
    }

    /// True (noise-free) cost at `params`.
    pub fn true_cost(&self, params: &[f64; 3]) -> f64 {
        self.weights.cost(&self.true_properties(params))
    }
}

/// Sampling stream over the six noisy properties.
#[derive(Debug, Clone)]
pub struct WaterCostStream {
    props: [f64; 6],
    sigma0: [f64; 6],
    weights: CostWeights,
    t: f64,
    sums: [f64; 6],
    nonfinite: u64,
    src: NormalSource,
}

impl SampleStream for WaterCostStream {
    fn extend(&mut self, dt: f64) {
        assert!(dt > 0.0);
        // One bulk draw for every *noisy* property (σ0 > 0), so the RNG
        // position does not depend on the data — quarantined extends must
        // consume exactly as many variates as clean ones. `fill` is
        // bit-exact with the per-draw sample() loop it replaces.
        let noisy = self.sigma0.iter().filter(|&&s| s > 0.0).count();
        let mut z6 = [0.0; 6];
        self.src.fill(&mut z6[..noisy]);
        let mut at = 0;
        for i in 0..6 {
            let z = if self.sigma0[i] > 0.0 {
                at += 1;
                z6[at - 1]
            } else {
                0.0
            };
            let incr = self.props[i] * dt + self.sigma0[i] * dt.sqrt() * z;
            if incr.is_finite() {
                self.sums[i] += incr;
            } else {
                // A diverged simulation property (e.g. a NaN RDF residual)
                // is quarantined rather than poisoning the running sums.
                self.nonfinite += 1;
            }
        }
        self.t += dt;
    }

    fn estimate(&self) -> Estimate {
        if self.nonfinite > 0 {
            return Estimate {
                value: f64::INFINITY,
                std_err: 0.0,
                time: self.t,
            };
        }
        if self.t <= 0.0 {
            return Estimate {
                value: self.weights.cost(&self.props),
                std_err: f64::INFINITY,
                time: 0.0,
            };
        }
        let mut est = [0.0; 6];
        let mut errs = [0.0; 6];
        for i in 0..6 {
            est[i] = self.sums[i] / self.t;
            errs[i] = self.sigma0[i] / self.t.sqrt();
        }
        Estimate {
            value: self.weights.cost(&est),
            std_err: self.weights.cost_std_err(&est, &errs),
            time: self.t,
        }
    }

    fn save_state(
        &self,
        w: &mut stoch_eval::codec::Writer,
    ) -> Result<(), stoch_eval::codec::CodecError> {
        w.put_f64_slice(&self.props);
        w.put_f64_slice(&self.sigma0);
        w.put_f64_slice(&self.weights.w);
        w.put_f64_slice(&self.weights.floors);
        w.put_f64(self.t);
        w.put_f64_slice(&self.sums);
        w.put_u64(self.nonfinite);
        self.src.save_state(w);
        Ok(())
    }

    fn load_state(
        r: &mut stoch_eval::codec::Reader<'_>,
    ) -> Result<Self, stoch_eval::codec::CodecError> {
        let take6 = |r: &mut stoch_eval::codec::Reader<'_>| -> Result<[f64; 6], _> {
            let v = r.take_f64_vec()?;
            <[f64; 6]>::try_from(v).map_err(|_| stoch_eval::codec::CodecError::Invalid {
                what: "WaterCostStream property vector",
            })
        };
        let props = take6(r)?;
        let sigma0 = take6(r)?;
        let w = take6(r)?;
        let floors = take6(r)?;
        let t = r.take_f64()?;
        let sums = take6(r)?;
        let nonfinite = r.take_u64()?;
        let src = NormalSource::load_state(r)?;
        Ok(WaterCostStream {
            props,
            sigma0,
            weights: CostWeights { w, floors },
            t,
            sums,
            nonfinite,
            src,
        })
    }

    fn nonfinite_samples(&self) -> u64 {
        self.nonfinite
    }
}

impl<E: PropertyEngine> StochasticObjective for WaterObjective<E> {
    type Stream = WaterCostStream;

    fn dim(&self) -> usize {
        3
    }

    fn open(&self, x: &[f64], seed: u64) -> WaterCostStream {
        let params = [x[0], x[1], x[2]];
        let props = self.engine.properties(&params);
        let mut sigma0 = self.sigma0;
        for s in &mut sigma0 {
            *s *= self.noise_level;
        }
        WaterCostStream {
            props,
            sigma0,
            weights: self.weights,
            t: 0.0,
            sums: [0.0; 6],
            nonfinite: 0,
            src: NormalSource::new(seed),
        }
    }

    fn true_value(&self, x: &[f64]) -> Option<f64> {
        Some(self.true_cost(&[x[0], x[1], x[2]]))
    }
}

/// An MD-backed property engine: every evaluation runs the real simulation
/// protocol (§3.5) at the given parameters. Expensive — used by the
/// integration demo and available for full-fidelity runs.
#[derive(Debug, Clone)]
pub struct MdPropertyEngine {
    /// Simulation protocol.
    pub cfg: MdConfig,
}

impl PropertyEngine for MdPropertyEngine {
    fn properties(&self, params: &[f64; 3]) -> [f64; 6] {
        let model = crate::model::WaterModel::with_params(params[0], params[1], params[2]);
        let out = run_md(model, &self.cfg);
        let mut p = [0.0; 6];
        p[prop::D] = out.diffusion_cm2_s * 1e5;
        p[prop::G_HH] = rdf_residual(&out.g_hh, Experiment::g_hh);
        p[prop::G_OH] = rdf_residual(&out.g_oh, Experiment::g_oh);
        p[prop::G_OO] = rdf_residual(&out.g_oo, Experiment::g_oo);
        p[prop::P] = out.pressure_atm.mean;
        p[prop::U] = out.energy_kj_mol.mean;
        p
    }
}

/// Reduce a measured RDF to its RMS difference from the experimental curve
/// (Eq. 3.5), integrated over `[r_min, r_max] = [2.0, min(r_data_max, 8)]`.
pub fn rdf_residual(curve: &(Vec<f64>, Vec<f64>), reference: fn(f64) -> f64) -> f64 {
    let (rs, gs) = curve;
    let pairs: Vec<(f64, f64)> = rs
        .iter()
        .zip(gs)
        .filter(|(r, _)| **r >= 2.0 && **r <= 8.0)
        .map(|(r, g)| (*r, *g))
        .collect();
    if pairs.is_empty() {
        return f64::NAN;
    }
    let ss: f64 = pairs
        .iter()
        .map(|&(r, g)| {
            let d = g - reference(r);
            d * d
        })
        .sum();
    (ss / pairs.len() as f64).sqrt()
}

/// An empirical stream over repeated *independent MD replicas*: each
/// `extend(dt)` runs one more short simulation (a fresh seed) and folds its
/// cost into a Welford mean. This is the full-fidelity path where the noise
/// is genuine thermal sampling error, not a synthetic Gaussian.
#[derive(Debug, Clone)]
pub struct MdCostStream {
    params: [f64; 3],
    cfg: MdConfig,
    weights: CostWeights,
    acc: Welford,
    replica: u64,
    seed: u64,
}

impl SampleStream for MdCostStream {
    fn extend(&mut self, _dt: f64) {
        let mut cfg = self.cfg;
        cfg.seed = stoch_eval::rng::child_seed(self.seed, self.replica);
        self.replica += 1;
        let engine = MdPropertyEngine { cfg };
        let props = engine.properties(&self.params);
        self.acc.push(self.weights.cost(&props));
    }

    fn estimate(&self) -> Estimate {
        let n = self.acc.count();
        Estimate {
            value: if n > 0 { self.acc.mean() } else { f64::NAN },
            std_err: if n >= 2 {
                self.acc.std_err()
            } else {
                f64::INFINITY
            },
            time: n as f64,
        }
    }
}

/// The full-fidelity MD water objective (each sample = one MD replica).
#[derive(Debug, Clone)]
pub struct MdWaterObjective {
    /// Per-replica simulation protocol.
    pub cfg: MdConfig,
    /// Cost weights/scales.
    pub weights: CostWeights,
}

impl StochasticObjective for MdWaterObjective {
    type Stream = MdCostStream;

    fn dim(&self) -> usize {
        3
    }

    fn open(&self, x: &[f64], seed: u64) -> MdCostStream {
        MdCostStream {
            params: [x[0], x[1], x[2]],
            cfg: self.cfg,
            weights: self.weights,
            acc: Welford::new(),
            replica: 0,
            seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::surrogate::SurrogateWater;

    const TIP4P_PARAMS: [f64; 3] = [0.1550, 3.1540, 0.5200];

    #[test]
    fn cost_is_zero_at_exact_targets() {
        let w = CostWeights::default();
        let mut p = TARGETS;
        assert_eq!(w.cost(&p), 0.0);
        p[prop::U] += 1.0;
        assert!(w.cost(&p) > 0.0);
    }

    #[test]
    fn tip4p_cost_is_order_one_and_balanced() {
        let obj = WaterObjective::noiseless(SurrogateWater);
        let c = obj.true_cost(&TIP4P_PARAMS);
        assert!(c > 0.01 && c < 10.0, "TIP4P cost {c}");
    }

    #[test]
    fn cost_grows_away_from_tip4p() {
        let obj = WaterObjective::noiseless(SurrogateWater);
        let base = obj.true_cost(&TIP4P_PARAMS);
        let off = obj.true_cost(&[0.1625, 2.80, 0.60]);
        assert!(off > 5.0 * base, "off {off} vs base {base}");
    }

    #[test]
    fn noiseless_stream_is_exact() {
        let obj = WaterObjective::noiseless(SurrogateWater);
        let mut s = obj.open(&TIP4P_PARAMS, 1);
        s.extend(1.0);
        let e = s.estimate();
        assert!((e.value - obj.true_cost(&TIP4P_PARAMS)).abs() < 1e-12);
        assert_eq!(e.std_err, 0.0);
    }

    #[test]
    fn noisy_stream_converges_to_true_cost() {
        let obj = WaterObjective::new(SurrogateWater);
        let mut s = obj.open(&TIP4P_PARAMS, 2);
        s.extend(1.0);
        let rough = s.estimate();
        assert!(rough.std_err > 0.0);
        s.extend(1e6);
        let fine = s.estimate();
        let truth = obj.true_cost(&TIP4P_PARAMS);
        assert!(
            (fine.value - truth).abs() < 20.0 * fine.std_err + 1e-6,
            "estimate {} vs truth {truth}",
            fine.value
        );
        assert!(fine.std_err < rough.std_err);
    }

    #[test]
    fn water_stream_state_round_trips_bit_identically() {
        let obj = WaterObjective::new(SurrogateWater);
        let mut s = obj.open(&TIP4P_PARAMS, 7);
        s.extend(2.5);
        s.extend(0.5);

        let mut w = stoch_eval::codec::Writer::new();
        s.save_state(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut r = stoch_eval::codec::Reader::new(&bytes);
        let mut restored = WaterCostStream::load_state(&mut r).unwrap();
        r.finish().unwrap();

        // Same estimate now, and identical future trajectory (RNG position
        // restored exactly).
        for _ in 0..5 {
            let a = s.estimate();
            let b = restored.estimate();
            assert_eq!(a.value.to_bits(), b.value.to_bits());
            assert_eq!(a.std_err.to_bits(), b.std_err.to_bits());
            assert_eq!(a.time.to_bits(), b.time.to_bits());
            s.extend(1.25);
            restored.extend(1.25);
        }
    }

    #[test]
    fn water_stream_quarantines_nonfinite_increments() {
        let obj = WaterObjective::new(SurrogateWater);
        let mut s = obj.open(&[f64::NAN, 3.1540, 0.5200], 3);
        assert_eq!(s.nonfinite_samples(), 0);
        s.extend(1.0);
        assert!(s.nonfinite_samples() > 0, "NaN property not quarantined");
        let e = s.estimate();
        assert!(e.value.is_infinite() && e.value > 0.0);
        assert_eq!(e.std_err, 0.0);
        // The quarantine tally survives a save/load round trip.
        let mut w = stoch_eval::codec::Writer::new();
        s.save_state(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut r = stoch_eval::codec::Reader::new(&bytes);
        let restored = WaterCostStream::load_state(&mut r).unwrap();
        assert_eq!(restored.nonfinite_samples(), s.nonfinite_samples());
    }

    #[test]
    fn error_propagation_is_first_order_consistent() {
        let w = CostWeights::default();
        let props = SurrogateWater.properties(&[0.16, 3.2, 0.55]);
        let errs = [0.01; 6];
        let se = w.cost_std_err(&props, &errs);
        // Compare against a finite-difference estimate of |∇g|·err for a
        // single-coordinate perturbation.
        let mut p2 = props;
        p2[prop::U] += 1e-6;
        let dgdu = (w.cost(&p2) - w.cost(&props)) / 1e-6;
        assert!(se >= (dgdu.abs() * 0.01) * 0.99, "se {se} too small");
    }

    #[test]
    fn rdf_residual_of_perfect_curve_is_zero() {
        let rs: Vec<f64> = (0..60).map(|i| 2.0 + i as f64 * 0.1).collect();
        let gs: Vec<f64> = rs.iter().map(|&r| Experiment::g_oo(r)).collect();
        let res = rdf_residual(&(rs, gs), Experiment::g_oo);
        assert!(res < 1e-12);
    }

    #[test]
    fn rdf_residual_detects_deviation() {
        let rs: Vec<f64> = (0..60).map(|i| 2.0 + i as f64 * 0.1).collect();
        let gs: Vec<f64> = rs.iter().map(|&r| Experiment::g_oo(r) + 0.2).collect();
        let res = rdf_residual(&(rs, gs), Experiment::g_oo);
        assert!((res - 0.2).abs() < 1e-12);
    }

    #[test]
    #[ignore = "runs real MD; expensive — exercised by the harness"]
    fn md_engine_produces_finite_properties() {
        let engine = MdPropertyEngine {
            cfg: MdConfig {
                n_side: 2,
                equil_steps: 100,
                prod_steps: 200,
                ..MdConfig::default()
            },
        };
        let p = engine.properties(&TIP4P_PARAMS);
        assert!(p.iter().all(|v| v.is_finite()));
    }
}
