//! NPT equilibration: a Berendsen barostat on top of the NVT protocol.
//!
//! The paper fits ⟨P⟩ at fixed experimental density and finds every model
//! hundreds of atmospheres off (Table 3.4) — the natural follow-up (and a
//! standard MD capability) is to let the box relax to a target pressure.
//! Rigid molecules are scaled by their centers of mass so constraints are
//! never violated by the box move.

use crate::integrate::{rescale_to, step, temperature};
use crate::kernel::ForceEngine;
use crate::properties::pressure_atm;
use crate::system::{System, MASSES};
use crate::vec3::Vec3;

/// Berendsen barostat parameters.
#[derive(Debug, Clone, Copy)]
pub struct Barostat {
    /// Target pressure, atm.
    pub target_atm: f64,
    /// Coupling time constant, fs (larger = gentler).
    pub tau_fs: f64,
    /// Isothermal compressibility × pressure unit, 1/atm (water ≈ 4.5e−5).
    pub compressibility: f64,
    /// Per-step clamp on the linear scale factor (guards against shocks
    /// from noisy instantaneous pressure).
    pub max_scaling: f64,
}

impl Default for Barostat {
    fn default() -> Self {
        Barostat {
            target_atm: 1.0,
            tau_fs: 500.0,
            compressibility: 4.5e-5,
            max_scaling: 0.02,
        }
    }
}

impl Barostat {
    /// The linear box-scaling factor for one step of length `dt` at
    /// instantaneous pressure `p_atm`.
    pub fn scale_factor(&self, p_atm: f64, dt: f64) -> f64 {
        let mu3 = 1.0 - self.compressibility * dt / self.tau_fs * (self.target_atm - p_atm);
        let mu = mu3.max(0.1).cbrt();
        mu.clamp(1.0 - self.max_scaling, 1.0 + self.max_scaling)
    }
}

/// Center of mass of one molecule.
fn center_of_mass(r: &[Vec3; 3]) -> Vec3 {
    let m_tot: f64 = MASSES.iter().sum();
    (r[0] * MASSES[0] + r[1] * MASSES[1] + r[2] * MASSES[2]) / m_tot
}

/// Apply one barostat box move: scale the box and every molecular center of
/// mass by `mu`, translating molecules rigidly (bond geometry untouched).
pub fn scale_box(sys: &mut System, mu: f64) {
    assert!(mu > 0.0);
    sys.box_len *= mu;
    for mol in &mut sys.molecules {
        let com = center_of_mass(&mol.r);
        let shift = com * (mu - 1.0);
        for r in &mut mol.r {
            *r += shift;
        }
    }
}

/// Result of an NPT equilibration.
#[derive(Debug, Clone)]
pub struct NptResult {
    /// Final box edge, Å.
    pub box_len: f64,
    /// Final mass density, g/cm³.
    pub density_g_cm3: f64,
    /// Mean pressure over the final quarter of the run, atm.
    pub mean_pressure_atm: f64,
    /// (step, box_len) trace.
    pub box_trace: Vec<(usize, f64)>,
}

/// Run `steps` of NPT dynamics (velocity rescale thermostat + Berendsen
/// barostat) at temperature `t_target` K, with the force kernel taken from
/// `NSX_FORCE_KERNEL`.
pub fn equilibrate_npt(
    sys: &mut System,
    barostat: &Barostat,
    t_target: f64,
    dt: f64,
    steps: usize,
) -> NptResult {
    equilibrate_npt_with(
        sys,
        barostat,
        t_target,
        dt,
        steps,
        &mut ForceEngine::from_env(),
    )
}

/// [`equilibrate_npt`] driving a caller-supplied [`ForceEngine`], so a
/// pre-configured kernel (explicit skin, simd, sharded with chosen shard and
/// worker counts) is not silently overridden by the environment default, and
/// the engine's stats/list survive for the caller to inspect or reuse.
pub fn equilibrate_npt_with(
    sys: &mut System,
    barostat: &Barostat,
    t_target: f64,
    dt: f64,
    steps: usize,
    engine: &mut ForceEngine,
) -> NptResult {
    use crate::units::WATER_MOLAR_MASS;
    let mut box_trace = Vec::with_capacity(steps / 10 + 1);
    let mut p_tail = Vec::new();
    let mut f = engine.compute(sys, sys.box_len / 2.0);
    for i in 0..steps {
        let rc = sys.box_len / 2.0;
        f = step(sys, &f, dt, rc, engine);
        if i % 5 == 0 {
            rescale_to(sys, t_target);
        }
        let t_inst = temperature(sys);
        let p_inst = pressure_atm(sys, t_inst, f.virial);
        let mu = barostat.scale_factor(p_inst, dt);
        scale_box(sys, mu);
        // The rescale moved every molecule and changed rc for the next
        // step; the engine's box-length key would catch this, but make the
        // invalidation explicit rather than relying on the cache heuristic.
        engine.invalidate();
        if i % 10 == 0 {
            box_trace.push((i, sys.box_len));
        }
        if i >= steps - steps / 4 {
            p_tail.push(p_inst);
        }
    }
    let n = sys.n_molecules() as f64;
    let density = n * WATER_MOLAR_MASS / 0.602_214_076 / sys.volume();
    NptResult {
        box_len: sys.box_len,
        density_g_cm3: density,
        mean_pressure_atm: p_tail.iter().sum::<f64>() / p_tail.len().max(1) as f64,
        box_trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TIP4P;

    #[test]
    fn scale_factor_direction_and_clamp() {
        let b = Barostat::default();
        // Over-pressurized: box should grow (mu > 1).
        assert!(b.scale_factor(10_000.0, 1.0) > 1.0);
        // Under-pressurized (tension): box should shrink.
        assert!(b.scale_factor(-10_000.0, 1.0) < 1.0);
        // At target: unity.
        assert!((b.scale_factor(1.0, 1.0) - 1.0).abs() < 1e-12);
        // Extreme pressure is clamped.
        assert!(b.scale_factor(1e12, 1.0) <= 1.0 + b.max_scaling);
        assert!(b.scale_factor(-1e12, 1.0) >= 1.0 - b.max_scaling);
    }

    #[test]
    fn box_scaling_preserves_rigid_geometry() {
        let mut sys = System::lattice(TIP4P, 2, 0.997, 298.0, 1);
        let l0 = sys.box_len;
        scale_box(&mut sys, 1.05);
        assert!((sys.box_len - 1.05 * l0).abs() < 1e-12);
        assert!(sys.constraints_satisfied(1e-9), "bond lengths changed");
        scale_box(&mut sys, 1.0 / 1.05);
        assert!((sys.box_len - l0).abs() < 1e-9);
    }

    #[test]
    fn box_scaling_scales_centers_of_mass() {
        let mut sys = System::lattice(TIP4P, 2, 0.997, 298.0, 2);
        let com0 = center_of_mass(&sys.molecules[3].r);
        scale_box(&mut sys, 1.1);
        let com1 = center_of_mass(&sys.molecules[3].r);
        assert!((com1 - com0 * 1.1).norm() < 1e-9);
    }

    #[test]
    fn compressed_box_expands_under_npt() {
        // Start 30% over-dense: the virial pressure is strongly positive,
        // so the barostat must expand the box.
        let mut sys = System::lattice(TIP4P, 2, 1.3, 298.0, 3);
        let l0 = sys.box_len;
        let res = equilibrate_npt(&mut sys, &Barostat::default(), 298.0, 1.0, 300);
        assert!(
            res.box_len > l0,
            "box did not expand: {} -> {}",
            l0,
            res.box_len
        );
        assert!(res.density_g_cm3 < 1.3);
        assert!(sys.constraints_satisfied(1e-5));
        assert!(res.box_trace.len() >= 30);
    }

    #[test]
    fn injected_engine_is_used_and_keeps_its_stats() {
        // equilibrate_npt_with must drive the caller's engine (not a fresh
        // from_env one): its eval/rebuild counters advance, and the
        // repeated box rescales force a rebuild per step.
        let mut sys = System::lattice(TIP4P, 2, 1.1, 298.0, 4);
        let mut engine = crate::kernel::ForceEngine::new(crate::kernel::ForceKernel::Simd);
        let steps = 40;
        let res = equilibrate_npt_with(
            &mut sys,
            &Barostat::default(),
            298.0,
            1.0,
            steps,
            &mut engine,
        );
        assert!(res.box_len > 0.0);
        assert!(engine.stats().evals >= steps as u64);
        assert!(engine.stats().rebuilds >= steps as u64);
        assert!(engine.stats().lanes > 0, "simd path should have run");
        assert!(sys.constraints_satisfied(1e-5));
    }
}
