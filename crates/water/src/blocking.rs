//! Block-averaging error analysis (Flyvbjerg–Petersen) for correlated
//! time-series, as produced by MD sampling.
//!
//! Successive MD samples are correlated, so the naive standard error of the
//! mean (`σ/√n`) underestimates the true uncertainty. Block averaging
//! repeatedly coarsens the series by averaging pairs; the apparent standard
//! error grows until blocks are longer than the correlation time, then
//! plateaus. The plateau value is the honest error bar — exactly the
//! quantity the paper's noise model `σ²(t) = σ0²/t` abstracts.

use stoch_eval::stats::Welford;

/// Result of a block-averaging analysis.
#[derive(Debug, Clone)]
pub struct BlockAnalysis {
    /// Sample mean.
    pub mean: f64,
    /// Naive standard error (assumes independent samples).
    pub naive_std_err: f64,
    /// Plateau (blocked) standard error — the honest error bar.
    pub std_err: f64,
    /// Estimated statistical inefficiency `s = (σ_block/σ_naive)²`
    /// (≈ 2× the correlation time in sample units; 1 for white noise).
    pub statistical_inefficiency: f64,
    /// Apparent standard error at each blocking level.
    pub levels: Vec<f64>,
}

/// Run the blocking analysis on a series. Needs at least 8 samples;
/// returns `None` otherwise.
pub fn block_analysis(series: &[f64]) -> Option<BlockAnalysis> {
    if series.len() < 8 {
        return None;
    }
    let stats = |xs: &[f64]| -> (f64, f64, u64) {
        let mut w = Welford::new();
        for &x in xs {
            w.push(x);
        }
        (w.mean(), w.std_err(), w.count())
    };
    let (mean, naive, _) = stats(series);

    let mut levels = Vec::new();
    let mut trusted = Vec::new();
    let mut current: Vec<f64> = series.to_vec();
    loop {
        let (_, se, n) = stats(&current);
        levels.push(se);
        // Levels with few blocks have enormous variance in their own error
        // estimate (relative error ~ 1/sqrt(2(n-1))); only levels with a
        // healthy block count participate in the plateau estimate.
        if n >= 32 {
            trusted.push(se);
        }
        if n < 8 {
            break;
        }
        // Coarsen: average adjacent pairs.
        current = current
            .chunks_exact(2)
            .map(|p| 0.5 * (p[0] + p[1]))
            .collect();
    }

    // Plateau estimate: the maximum apparent error across trusted levels is
    // a robust choice when the plateau is noisy (standard practice). Short
    // series have no trusted coarse level; fall back to all levels.
    let pool = if trusted.is_empty() {
        &levels
    } else {
        &trusted
    };
    let plateau = pool.iter().cloned().fold(0.0f64, f64::max);
    let ineff = if naive > 0.0 {
        (plateau / naive) * (plateau / naive)
    } else {
        1.0
    };
    Some(BlockAnalysis {
        mean,
        naive_std_err: naive,
        std_err: plateau,
        statistical_inefficiency: ineff.max(1.0),
        levels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use stoch_eval::rng::rng_from_seed;
    use stoch_eval::sampler::standard_normal;

    #[test]
    fn too_short_series_is_rejected() {
        assert!(block_analysis(&[1.0; 7]).is_none());
        assert!(block_analysis(&[1.0; 8]).is_some());
    }

    #[test]
    fn white_noise_has_unit_inefficiency() {
        let mut rng = rng_from_seed(1);
        let xs: Vec<f64> = (0..4096).map(|_| standard_normal(&mut rng)).collect();
        let a = block_analysis(&xs).unwrap();
        assert!(
            a.statistical_inefficiency < 2.0,
            "inefficiency {} for white noise",
            a.statistical_inefficiency
        );
        // Naive error is accurate for independent samples: 1/sqrt(4096).
        assert!((a.naive_std_err - 1.0 / 64.0).abs() < 0.004);
        assert!(a.mean.abs() < 0.1);
    }

    #[test]
    fn correlated_series_inflates_the_error_bar() {
        // AR(1) with strong correlation: x_{t+1} = 0.95 x_t + noise.
        let mut rng = rng_from_seed(2);
        let mut x = 0.0;
        let xs: Vec<f64> = (0..8192)
            .map(|_| {
                x = 0.95 * x + standard_normal(&mut rng);
                x
            })
            .collect();
        let a = block_analysis(&xs).unwrap();
        assert!(
            a.std_err > 3.0 * a.naive_std_err,
            "blocked {} vs naive {}",
            a.std_err,
            a.naive_std_err
        );
        assert!(a.statistical_inefficiency > 9.0);
    }

    #[test]
    fn constant_series_has_zero_error() {
        let a = block_analysis(&[5.0; 64]).unwrap();
        assert_eq!(a.mean, 5.0);
        assert_eq!(a.std_err, 0.0);
    }

    #[test]
    fn levels_start_at_naive_error() {
        let mut rng = rng_from_seed(3);
        let xs: Vec<f64> = (0..128).map(|_| rng.gen::<f64>()).collect();
        let a = block_analysis(&xs).unwrap();
        assert!((a.levels[0] - a.naive_std_err).abs() < 1e-12);
        assert!(a.levels.len() >= 4);
    }
}
