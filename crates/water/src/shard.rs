//! Intra-run force sharding: one simulation's neighbor-list rows split
//! across the `mw` worker pool, with a fixed, index-ordered reduction.
//!
//! The Verlet list's CSR rows (one row of j-neighbors per molecule i) are
//! partitioned into [`DEFAULT_SHARDS`] contiguous row ranges balanced by
//! listed-pair count. The partition is a pure function of the list and the
//! shard count — **never** of the pool's worker count or of scheduling —
//! and each shard is evaluated by the deterministic lane kernel
//! ([`crate::simd::compute_rows`]) into its own dense [`SoaForces`]. The
//! master then reduces the per-shard outputs in ascending shard order, so
//! the floating-point summation tree is fixed: results are bit-identical
//! whether the pool runs 1, 2, or 8 workers, which jobs land where, or
//! whether a shard had to be recomputed inline after a worker loss.
//!
//! Sharded vs serial-SIMD results differ only by the reduction grouping
//! (shard-partial sums vs one global sweep) — rounding-level, inside the
//! 1e-10 naive-oracle budget. A single-shard plan short-circuits the pool
//! and is exactly the serial kernel.

use crate::simd::{compute_rows, LaneScratch, PairParams};
use crate::soa::{SoaForces, SoaSites};
use mw_framework::pool::MwPool;
use std::cell::RefCell;
use std::sync::Arc;

/// Fixed shard count for `NSX_FORCE_KERNEL=sharded`. Constant by design:
/// the shard partition (and with it the reduction tree) must not depend on
/// how many workers happen to be available.
pub const DEFAULT_SHARDS: usize = 8;

/// CSR view of the Verlet list: `cols[row_start[i]..row_start[i+1]]` are
/// molecule i's listed neighbors j (all j > i, ascending).
#[derive(Debug, Clone, Default)]
pub(crate) struct Csr {
    pub row_start: Vec<u32>,
    pub cols: Vec<u32>,
}

impl Csr {
    /// Build from the canonical sorted (i < j) pair list.
    pub(crate) fn from_pairs(n: usize, pairs: &[(u32, u32)]) -> Csr {
        let mut row_start = vec![0u32; n + 1];
        for &(i, _) in pairs {
            row_start[i as usize + 1] += 1;
        }
        for r in 1..=n {
            row_start[r] += row_start[r - 1];
        }
        Csr {
            row_start,
            cols: pairs.iter().map(|&(_, j)| j).collect(),
        }
    }
}

/// Everything a shard job needs, snapshotted behind one `Arc` so the
/// `'static` pool closures share it without copying per shard.
pub(crate) struct Snapshot {
    pub soa: SoaSites,
    pub box_len: f64,
    pub params: PairParams,
    pub csr: Arc<Csr>,
}

/// Shard boundaries: `shards + 1` row indices, ascending, balanced so each
/// shard covers roughly equal listed-pair counts (`row_start` is exactly
/// the prefix sum of per-row pair counts). Depends only on the list and
/// `shards`.
pub(crate) fn shard_bounds(row_start: &[u32], shards: usize) -> Vec<usize> {
    let n = row_start.len() - 1;
    let total = u64::from(*row_start.last().unwrap_or(&0));
    let mut bounds = Vec::with_capacity(shards + 1);
    bounds.push(0usize);
    for s in 1..shards {
        let target = (total * s as u64 / shards as u64) as u32;
        let row = row_start.partition_point(|&p| p < target).min(n);
        bounds.push(row.max(bounds[s - 1]));
    }
    bounds.push(n);
    bounds
}

thread_local! {
    /// Per-worker-thread reusable pack scratch: pool workers are long
    /// lived, so steady-state shard jobs only allocate their result buffer.
    static SHARD_SCRATCH: RefCell<LaneScratch> = RefCell::new(LaneScratch::default());
}

/// Evaluate one shard (rows `[r0, r1)`) into a fresh dense accumulator.
fn shard_job(snap: &Snapshot, r0: usize, r1: usize) -> (SoaForces, u64) {
    SHARD_SCRATCH.with(|s| {
        let scratch = &mut *s.borrow_mut();
        let mut out = SoaForces::zeroed(snap.soa.n);
        let lanes = compute_rows(
            &snap.soa,
            snap.box_len,
            &snap.params,
            &snap.csr.row_start,
            &snap.csr.cols,
            r0..r1,
            scratch,
            &mut out,
        );
        (out, lanes)
    })
}

/// Dispatch `shards` row-range jobs over `pool`, reduce in shard-index
/// order into `out` (which must be reset for `snap.soa.n`). Returns
/// (lane batches, shard jobs run). A lost worker's shard is recomputed
/// inline — same code path, same bits.
pub(crate) fn compute_sharded(
    pool: &MwPool,
    snap: &Arc<Snapshot>,
    shards: usize,
    out: &mut SoaForces,
) -> (u64, u64) {
    let bounds = shard_bounds(&snap.csr.row_start, shards);
    let handles: Vec<_> = (0..shards)
        .map(|s| {
            let (r0, r1) = (bounds[s], bounds[s + 1]);
            if r0 == r1 {
                return None;
            }
            let snap = Arc::clone(snap);
            Some(pool.submit(move |_worker| shard_job(&snap, r0, r1)))
        })
        .collect();
    let mut lanes = 0u64;
    let mut shards_run = 0u64;
    for (s, handle) in handles.into_iter().enumerate() {
        let Some(handle) = handle else { continue };
        let (partial, shard_lanes) = match handle.recv() {
            Ok(r) => r,
            // Worker died mid-shard: recompute inline. compute_rows is a
            // pure function of (snapshot, range), so the retry is
            // bit-identical and the ordered reduction is unaffected.
            Err(_) => shard_job(snap, bounds[s], bounds[s + 1]),
        };
        out.accumulate(&partial);
        lanes += shard_lanes;
        shards_run += 1;
    }
    (lanes, shards_run)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_matches_pair_list() {
        let pairs = [(0u32, 2u32), (0, 3), (2, 3), (4, 5)];
        let csr = Csr::from_pairs(6, &pairs);
        assert_eq!(csr.row_start, vec![0, 2, 2, 3, 3, 4, 4]);
        assert_eq!(csr.cols, vec![2, 3, 3, 5]);
    }

    #[test]
    fn bounds_are_deterministic_and_cover_all_rows() {
        let csr = Csr::from_pairs(5, &[(0, 1), (0, 2), (0, 3), (1, 2), (3, 4)]);
        let b = shard_bounds(&csr.row_start, 3);
        assert_eq!(b.len(), 4);
        assert_eq!(b[0], 0);
        assert_eq!(b[3], 5);
        assert!(b.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(b, shard_bounds(&csr.row_start, 3));
        // One shard spans everything.
        assert_eq!(shard_bounds(&csr.row_start, 1), vec![0, 5]);
        // Degenerate empty list still yields a valid partition.
        let empty = Csr::from_pairs(4, &[]);
        let b = shard_bounds(&empty.row_start, 2);
        assert_eq!(*b.last().unwrap(), 4);
    }
}
