//! XYZ-format trajectory output, so simulations can be inspected in any
//! molecular viewer (VMD, OVITO, ...). The M site is written as a dummy
//! atom optionally.

use crate::system::System;
use std::fmt::Write as _;
use std::io::{self, Write};

/// Writes frames in the (extended) XYZ format.
pub struct XyzWriter<W: Write> {
    sink: W,
    /// Include the virtual M site as a dummy "X" atom.
    pub include_msite: bool,
    frames: usize,
}

impl<W: Write> XyzWriter<W> {
    /// Wrap a sink (file, buffer, ...).
    pub fn new(sink: W) -> Self {
        XyzWriter {
            sink,
            include_msite: false,
            frames: 0,
        }
    }

    /// Number of frames written so far.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Append one frame with a comment line carrying the time and box.
    pub fn write_frame(&mut self, sys: &System, time_fs: f64) -> io::Result<()> {
        let per_mol = if self.include_msite { 4 } else { 3 };
        let mut out = String::new();
        let _ = writeln!(out, "{}", sys.n_molecules() * per_mol);
        let _ = writeln!(
            out,
            "t={time_fs:.1} fs box={:.4} {:.4} {:.4}",
            sys.box_len, sys.box_len, sys.box_len
        );
        for m in &sys.molecules {
            let _ = writeln!(out, "O  {:.6} {:.6} {:.6}", m.r[0].x, m.r[0].y, m.r[0].z);
            let _ = writeln!(out, "H  {:.6} {:.6} {:.6}", m.r[1].x, m.r[1].y, m.r[1].z);
            let _ = writeln!(out, "H  {:.6} {:.6} {:.6}", m.r[2].x, m.r[2].y, m.r[2].z);
            if self.include_msite {
                let ms = sys.model.msite(m.r[0], m.r[1], m.r[2]);
                let _ = writeln!(out, "X  {:.6} {:.6} {:.6}", ms.x, ms.y, ms.z);
            }
        }
        self.sink.write_all(out.as_bytes())?;
        self.frames += 1;
        Ok(())
    }

    /// Flush and recover the sink.
    pub fn finish(mut self) -> io::Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TIP4P;

    #[test]
    fn frame_format_is_valid_xyz() {
        let sys = System::lattice(TIP4P, 2, 0.997, 298.0, 1);
        let mut w = XyzWriter::new(Vec::new());
        w.write_frame(&sys, 0.0).unwrap();
        w.write_frame(&sys, 1.0).unwrap();
        assert_eq!(w.frames(), 2);
        let buf = w.finish().unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines();
        // Frame 1 header: atom count then comment.
        assert_eq!(lines.next().unwrap(), "24"); // 8 molecules * 3 atoms
        assert!(lines.next().unwrap().starts_with("t=0.0 fs box="));
        // First atom line parses.
        let first = lines.next().unwrap();
        assert!(first.starts_with("O  "));
        let coords: Vec<f64> = first
            .split_whitespace()
            .skip(1)
            .map(|s| s.parse().unwrap())
            .collect();
        assert_eq!(coords.len(), 3);
        // Two frames in total: 2 * (2 + 24) lines.
        assert_eq!(text.lines().count(), 2 * 26);
    }

    #[test]
    fn msite_inclusion_adds_a_dummy_atom_per_molecule() {
        let sys = System::lattice(TIP4P, 2, 0.997, 298.0, 2);
        let mut w = XyzWriter::new(Vec::new());
        w.include_msite = true;
        w.write_frame(&sys, 0.0).unwrap();
        let text = String::from_utf8(w.finish().unwrap()).unwrap();
        assert_eq!(text.lines().next().unwrap(), "32"); // 8 * 4
        assert_eq!(text.matches("\nX  ").count(), 8);
    }
}
