//! Reference data: experimental targets, published TIP4P results, and the
//! paper's Table 3.4 parameter sets.
//!
//! The paper fits against experimental data (Soper 2000 RDFs; standard
//! thermodynamic references [73][74]). We encode the scalar targets
//! directly and provide smooth analytic fits of the experimental RDF
//! *shapes* (peak positions/heights of liquid water at 298 K) for the curve
//! figures — see `DESIGN.md`, substitutions.

/// Experimental target values (the `p0_i` of Eq. 3.4).
#[derive(Debug, Clone, Copy)]
pub struct Experiment;

impl Experiment {
    /// Self-diffusion coefficient of water at 298 K, in 1e−5 cm²/s.
    pub const D: f64 = 2.27;
    /// Cohesive (internal) energy, kJ/mol.
    pub const U: f64 = -41.5;
    /// Pressure at the experimental density, atm.
    pub const P: f64 = 1.0;
    /// RDF residual targets are identically zero (Eq. 3.5).
    pub const RDF_RESIDUAL: f64 = 0.0;

    /// Analytic fit of the experimental gOO(r) of liquid water at 298 K:
    /// excluded core, first peak ≈ 2.73 Å (height ≈ 2.8), first minimum
    /// ≈ 3.45 Å, second peak ≈ 4.5 Å.
    pub fn g_oo(r: f64) -> f64 {
        rdf_shape(
            r,
            2.55,
            0.07,
            &[
                (2.73, 1.85, 0.13),
                (3.45, -0.38, 0.40),
                (4.50, 0.18, 0.45),
                (6.7, 0.06, 0.6),
            ],
        )
    }

    /// Analytic fit of the experimental gOH(r) (intermolecular): hydrogen-
    /// bond peak ≈ 1.85 Å, second peak ≈ 3.3 Å.
    pub fn g_oh(r: f64) -> f64 {
        rdf_shape(
            r,
            1.55,
            0.06,
            &[
                (1.85, 0.6, 0.13),
                (2.45, -0.55, 0.30),
                (3.30, 0.5, 0.35),
                (5.0, -0.1, 0.6),
            ],
        )
    }

    /// Analytic fit of the experimental gHH(r): first peak ≈ 2.35 Å.
    pub fn g_hh(r: f64) -> f64 {
        rdf_shape(
            r,
            1.95,
            0.08,
            &[(2.35, 0.35, 0.18), (3.05, -0.25, 0.35), (3.85, 0.12, 0.45)],
        )
    }
}

/// Build a smooth RDF-like curve: a steep excluded-volume sigmoid times
/// `1 + Σ Gaussians(center, amplitude, width)`.
fn rdf_shape(r: f64, core: f64, core_w: f64, peaks: &[(f64, f64, f64)]) -> f64 {
    if r <= 0.0 {
        return 0.0;
    }
    let gate = 1.0 / (1.0 + (-(r - core) / core_w).exp());
    let mut g = 1.0;
    for &(c, a, w) in peaks {
        g += a * (-((r - c) * (r - c)) / (2.0 * w * w)).exp();
    }
    (gate * g).max(0.0)
}

/// Published TIP4P results at 298 K (paper Table 3.4 / §3.5).
#[derive(Debug, Clone, Copy)]
pub struct Tip4pPublished;

impl Tip4pPublished {
    /// Diffusion, 1e−5 cm²/s.
    pub const D: f64 = 3.29;
    /// Internal energy, kJ/mol.
    pub const U: f64 = -41.8;
    /// Pressure, atm.
    pub const P: f64 = 373.0;
}

/// Paper-reported final parameters `(ε kcal/mol, σ Å, q_H e)` per algorithm
/// (Table 3.4), for EXPERIMENTS.md comparison.
pub mod paper_final_params {
    /// MN result.
    pub const MN: [f64; 3] = [0.1514, 3.150, 0.520];
    /// PC result.
    pub const PC: [f64; 3] = [0.1470, 3.160, 0.523];
    /// PC+MN result.
    pub const PCMN: [f64; 3] = [0.1470, 3.162, 0.522];
    /// Published TIP4P.
    pub const TIP4P: [f64; 3] = [0.1550, 3.154, 0.520];
}

/// The paper's initial simplex (Table 3.4a): six poor/unphysical starting
/// vertices `(ε kcal/mol, σ Å, q_H e)`. The paper lists `d + 3 = 6` rows
/// (vertices plus the two trial vertices); a 3-d simplex uses the first
/// four. The ε column is converted from the dissertation's
/// `amu Å²/dfs²` units (1 kcal/mol ≈ 4.184e−6 of those units).
pub const INITIAL_VERTICES: [[f64; 3]; 6] = [
    [0.1697, 3.00, 0.54],
    [0.1552, 3.40, 0.45],
    [0.1312, 3.25, 0.52],
    [0.1625, 2.80, 0.60],
    [0.1312, 3.25, 0.60],
    [0.1625, 2.90, 0.65],
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experimental_goo_shape() {
        // Excluded core.
        assert!(Experiment::g_oo(1.0) < 0.01);
        assert!(Experiment::g_oo(2.0) < 0.05);
        // First peak near 2.73 Å, height between 2.3 and 3.2.
        let peak = Experiment::g_oo(2.73);
        assert!(peak > 2.3 && peak < 3.2, "peak {peak}");
        // First minimum below 1.
        assert!(Experiment::g_oo(3.45) < 1.0);
        // Long range → 1.
        assert!((Experiment::g_oo(9.0) - 1.0).abs() < 0.1);
    }

    #[test]
    fn experimental_goh_and_ghh_shapes() {
        assert!(Experiment::g_oh(1.85) > 1.3);
        assert!(Experiment::g_oh(1.2) < 0.05);
        assert!((Experiment::g_oh(9.0) - 1.0).abs() < 0.1);
        assert!(Experiment::g_hh(2.35) > 1.1);
        assert!(Experiment::g_hh(1.4) < 0.05);
        assert!((Experiment::g_hh(9.0) - 1.0).abs() < 0.1);
    }

    #[test]
    fn initial_vertices_are_poor_but_physical_magnitudes() {
        for v in INITIAL_VERTICES {
            assert!(v[0] > 0.05 && v[0] < 0.3, "epsilon {}", v[0]);
            assert!(v[1] > 2.5 && v[1] < 3.6, "sigma {}", v[1]);
            assert!(v[2] > 0.3 && v[2] < 0.8, "q_H {}", v[2]);
        }
    }

    #[test]
    fn rdf_shape_is_nonnegative_everywhere() {
        for i in 0..200 {
            let r = i as f64 * 0.05;
            assert!(Experiment::g_oo(r) >= 0.0);
            assert!(Experiment::g_oh(r) >= 0.0);
            assert!(Experiment::g_hh(r) >= 0.0);
        }
    }
}
