//! Structure-of-arrays site stores for the hardware-fast force path.
//!
//! The simulation state ([`crate::system::System`]) keeps molecules as an
//! array-of-structures — natural for the integrator, SHAKE/RATTLE, and the
//! property samplers, which all walk one molecule at a time (and carry
//! velocities the force kernel never reads). [`SoaSites`] is the
//! per-evaluation repack for the pair kernel: one dense 12-float block per
//! molecule holding the O, H1, H2, and derived virtual-M coordinates, in a
//! flat `Vec<[f64; 12]>`. The block layout matters: the pair loop's access
//! pattern is a *random* neighbor index per pair, and fetching all four
//! sites of a neighbor touches exactly two cache lines here — planar
//! per-site-per-coordinate arrays (the textbook SoA) scatter the same
//! twelve values across twelve lines and turn the pair loop latency-bound.
//! The pack is O(n) against the O(n·neighbors) force work it feeds; its
//! cost is surfaced as `water.kernel.pack_nanos`.
//!
//! [`SoaForces`] is the matching force accumulator: one flattened
//! `fx/fy/fz` array of length `4·n` (slot-major: slot `s` of molecule `i`
//! lives at index `s·n + i`, slots `[O, H1, H2, M]`), plus the potential
//! and molecular-virial sums. Keeping shard outputs in this dense form
//! makes the sharded kernel's index-ordered reduction a straight
//! elementwise sum; [`SoaForces::into_forces`] performs the final M-site
//! redistribution back to the AoS [`Forces`] the integrator consumes.

use crate::forces::Forces;
use crate::system::System;
use crate::vec3::Vec3;

/// Packed site coordinates: one `[f64; 12]` block per molecule, laid out
/// `[Ox, Oy, Oz, H1x, H1y, H1z, H2x, H2y, H2z, Mx, My, Mz]`.
#[derive(Debug, Clone, Default)]
pub struct SoaSites {
    /// Molecule count.
    pub n: usize,
    /// Per-molecule site blocks, `n` entries.
    pub sites: Vec<[f64; 12]>,
}

impl SoaSites {
    /// Pack `sys` into the dense block layout, reusing this store's buffer.
    /// The M coordinates are derived with the model's own
    /// [`crate::model::WaterModel::msite`] so they are bit-identical to the
    /// oracle's.
    pub fn pack(&mut self, sys: &System) {
        let n = sys.n_molecules();
        self.n = n;
        self.sites.clear();
        self.sites.reserve(n);
        for mol in &sys.molecules {
            let [o, h1, h2] = mol.r;
            let m = sys.model.msite(o, h1, h2);
            self.sites.push([
                o.x, o.y, o.z, h1.x, h1.y, h1.z, h2.x, h2.y, h2.z, m.x, m.y, m.z,
            ]);
        }
    }

    /// Position of site `s` (0=O, 1=H1, 2=H2, 3=M) of molecule `i`.
    #[inline]
    pub fn site(&self, s: usize, i: usize) -> Vec3 {
        let b = &self.sites[i];
        Vec3::new(b[3 * s], b[3 * s + 1], b[3 * s + 2])
    }
}

/// Flattened per-site force accumulator plus energy/virial sums.
///
/// Component arrays have length `4·n`, slot-major: index `s·n + i` is slot
/// `s` (`[O, H1, H2, M]`) of molecule `i`.
#[derive(Debug, Clone, Default)]
pub struct SoaForces {
    /// Molecule count.
    pub n: usize,
    /// Force x components, `4·n` slot-major.
    pub fx: Vec<f64>,
    /// Force y components, `4·n` slot-major.
    pub fy: Vec<f64>,
    /// Force z components, `4·n` slot-major.
    pub fz: Vec<f64>,
    /// Total potential energy, kcal/mol.
    pub potential: f64,
    /// Molecular virial `Σ_pairs R_ij · F_ij`, kcal/mol.
    pub virial: f64,
}

impl SoaForces {
    /// A zeroed accumulator for `n` molecules.
    pub fn zeroed(n: usize) -> SoaForces {
        SoaForces {
            n,
            fx: vec![0.0; 4 * n],
            fy: vec![0.0; 4 * n],
            fz: vec![0.0; 4 * n],
            potential: 0.0,
            virial: 0.0,
        }
    }

    /// Reset to zero for `n` molecules, reusing the buffers.
    pub fn reset(&mut self, n: usize) {
        self.n = n;
        for v in [&mut self.fx, &mut self.fy, &mut self.fz] {
            v.clear();
            v.resize(4 * n, 0.0);
        }
        self.potential = 0.0;
        self.virial = 0.0;
    }

    /// Accumulate `other` into `self` elementwise.
    ///
    /// The sharded kernel calls this once per shard *in shard-index order*;
    /// since each call is a fixed elementwise sweep, the floating-point
    /// reduction order depends only on the shard partition — never on which
    /// worker computed which shard — which is what makes sharded results
    /// bit-identical across worker counts.
    pub fn accumulate(&mut self, other: &SoaForces) {
        assert_eq!(self.n, other.n, "shard output size mismatch");
        for (a, b) in self.fx.iter_mut().zip(&other.fx) {
            *a += b;
        }
        for (a, b) in self.fy.iter_mut().zip(&other.fy) {
            *a += b;
        }
        for (a, b) in self.fz.iter_mut().zip(&other.fz) {
            *a += b;
        }
        self.potential += other.potential;
        self.virial += other.virial;
    }

    /// Fold into the AoS [`Forces`] form, redistributing the virtual-site
    /// forces: `F_O += (1−2a) F_M`, `F_Hi += a F_M`.
    pub fn into_forces(&self, a_coef: f64) -> Forces {
        let n = self.n;
        let at = |s: usize, i: usize| {
            Vec3::new(self.fx[s * n + i], self.fy[s * n + i], self.fz[s * n + i])
        };
        let f = (0..n)
            .map(|i| {
                let fm = at(3, i);
                [
                    at(0, i) + (1.0 - 2.0 * a_coef) * fm,
                    at(1, i) + a_coef * fm,
                    at(2, i) + a_coef * fm,
                ]
            })
            .collect();
        Forces {
            f,
            potential: self.potential,
            virial: self.virial,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TIP4P;

    #[test]
    fn pack_mirrors_system_sites() {
        let sys = System::lattice(TIP4P, 2, 0.997, 298.0, 7);
        let mut soa = SoaSites::default();
        soa.pack(&sys);
        assert_eq!(soa.n, 8);
        for (i, mol) in sys.molecules.iter().enumerate() {
            for s in 0..3 {
                assert_eq!(soa.site(s, i), mol.r[s]);
            }
            let m = sys.model.msite(mol.r[0], mol.r[1], mol.r[2]);
            assert_eq!(soa.site(3, i), m);
        }
        // Repacking reuses buffers and stays correct.
        soa.pack(&sys);
        assert_eq!(soa.site(1, 3), sys.molecules[3].r[1]);
    }

    #[test]
    fn accumulate_and_fold_redistribute_msite() {
        let mut a = SoaForces::zeroed(2);
        let mut b = SoaForces::zeroed(2);
        a.fx[0] = 1.0; // O of molecule 0
        a.fx[3 * 2] = 4.0; // M of molecule 0
        b.fx[3] = 2.0; // H1 of molecule 1 (slot 1 · n + 1)
        a.potential = 1.5;
        b.potential = 0.5;
        b.virial = -1.0;
        a.accumulate(&b);
        assert_eq!(a.potential, 2.0);
        assert_eq!(a.virial, -1.0);
        let ac = 0.25;
        let f = a.into_forces(ac);
        assert_eq!(f.f[0][0].x, 1.0 + (1.0 - 2.0 * ac) * 4.0);
        assert_eq!(f.f[0][1].x, ac * 4.0);
        assert_eq!(f.f[1][1].x, 2.0);
        let mut r = SoaForces::default();
        r.reset(2);
        assert_eq!(r.fx.len(), 8);
        assert!(r.fx.iter().all(|&v| v == 0.0));
    }
}
