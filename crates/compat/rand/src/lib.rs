//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the *API subset it actually uses* as a local crate
//! with the same name: `StdRng`, [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — a different stream
//! than upstream `StdRng` (ChaCha12), but every consumer in this workspace
//! relies only on statistical quality and per-seed determinism, never on a
//! specific stream.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random `u64`s (the subset of upstream `RngCore` we need).
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (subset of upstream `SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a `u64` seed, expanded via SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// One round of the SplitMix64 output function (used for seed expansion).
#[inline]
fn splitmix64(z: &mut u64) -> u64 {
    *z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut x = *z;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Types that can be sampled uniformly from the generator's raw output
/// (the stand-in for `Standard: Distribution<T>`).
pub trait Standard: Sized {
    /// Draw one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for u64 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

/// Types that support uniform sampling from a range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from the half-open interval `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from the closed interval `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl SampleUniform for f64 {
    #[inline]
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
        let u = f64::from_rng(rng);
        let v = lo + (hi - lo) * u;
        // Floating rounding can land exactly on `hi`; clamp just inside.
        if v >= hi {
            f64::from_bits(hi.to_bits() - 1)
        } else {
            v
        }
    }
    #[inline]
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
        lo + (hi - lo) * f64::from_rng(rng)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range: empty integer range");
                let span = (hi as i128 - lo as i128) as u128;
                let draw = bounded_u128(rng, span);
                (lo as i128 + draw as i128) as $t
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "gen_range: empty integer range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = bounded_u128(rng, span);
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Draw uniformly from `[0, span)` with rejection to avoid modulo bias.
#[inline]
fn bounded_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // `span` always fits in u64+1 for the integer types above.
    let span64 = span as u64;
    if span64.is_power_of_two() {
        return (rng.next_u64() & (span64 - 1)) as u128;
    }
    let zone = u64::MAX - (u64::MAX % span64);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return (v % span64) as u128;
        }
    }
}

/// Ranges that can be passed to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from this range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Convenience extension methods (subset of upstream `Rng`).
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Sample uniformly from `range`.
    #[inline]
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Self: Sized,
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_one(self)
    }

    /// A biased coin flip: `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        f64::from_rng(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators (subset of upstream `rand::rngs`).
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut z = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut z);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl StdRng {
        /// The raw xoshiro256++ state words (for checkpoint serialization).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from raw state words previously obtained via
        /// [`StdRng::state`]. An all-zero state (a xoshiro fixed point, never
        /// produced by seeding) is mapped to the same guard value
        /// `seed_from_u64` would use.
        pub fn from_state(mut s: [u64; 4]) -> Self {
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ by Blackman & Vigna (public domain reference).
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_uniform_mean_and_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = rng.gen_range(-3.0..7.0);
            assert!((-3.0..7.0).contains(&x));
            let k = rng.gen_range(0usize..5);
            assert!(k < 5);
            let j = rng.gen_range(2u64..=4);
            assert!((2..=4).contains(&j));
        }
    }

    #[test]
    fn integer_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
    }
}
