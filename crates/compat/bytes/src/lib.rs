//! Offline stand-in for the `bytes` crate.
//!
//! [`BytesMut`] is a growable byte buffer; [`Bytes`] is a cheaply-cloneable
//! immutable view backed by a shared `Arc<[u8]>` with a cursor, so
//! `clone`/`split_to` never copy the payload. Only the little-endian
//! accessors this workspace's `comm` layer uses are provided.

#![warn(missing_docs)]

use std::sync::Arc;

/// Read-side cursor operations (subset of upstream `Buf`).
pub trait Buf {
    /// Bytes left between the cursor and the end.
    fn remaining(&self) -> usize;
    /// True when at least one byte remains.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
    /// Move the cursor forward by `cnt` bytes.
    fn advance(&mut self, cnt: usize);
    /// Read one byte.
    fn get_u8(&mut self) -> u8;
    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Write-side append operations (subset of upstream `BufMut`).
pub trait BufMut {
    /// Append a raw byte slice.
    fn put_slice(&mut self, src: &[u8]);
    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// A growable, writable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with preallocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Convert into an immutable, cheaply-cloneable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.buf)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

/// An immutable byte view with a read cursor; clones share the backing
/// allocation.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Wrap an owned byte vector.
    pub fn from_vec(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }

    /// Bytes remaining in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The remaining bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copy the remaining bytes into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Split off and return the first `at` bytes; `self` keeps the rest.
    ///
    /// # Panics
    /// If `at` exceeds the remaining length.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Split off the first `cnt` bytes as a shared view (upstream
    /// `Buf::copy_to_bytes`; no copy here since views share storage).
    pub fn copy_to_bytes(&mut self, cnt: usize) -> Bytes {
        assert!(cnt <= self.len(), "copy_to_bytes out of bounds");
        self.split_to(cnt)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_vec(v)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }

    fn get_u8(&mut self) -> u8 {
        assert!(self.has_remaining(), "get_u8 past end");
        let b = self.data[self.start];
        self.start += 1;
        b
    }

    fn get_u64_le(&mut self) -> u64 {
        assert!(self.remaining() >= 8, "get_u64_le past end");
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.data[self.start..self.start + 8]);
        self.start += 8;
        u64::from_le_bytes(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u64_le(0xDEAD_BEEF);
        b.put_f64_le(-1.25);
        let mut r = b.freeze();
        assert_eq!(r.len(), 17);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u64_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_f64_le(), -1.25);
        assert!(!r.has_remaining());
    }

    #[test]
    fn split_to_shares_storage() {
        let mut whole = Bytes::from_vec(vec![1, 2, 3, 4, 5]);
        let head = whole.split_to(2);
        assert_eq!(head.as_slice(), &[1, 2]);
        assert_eq!(whole.as_slice(), &[3, 4, 5]);
    }

    #[test]
    fn copy_to_bytes_advances_cursor() {
        let mut b = Bytes::from_vec(vec![9, 8, 7, 6]);
        let chunk = b.copy_to_bytes(3);
        assert_eq!(chunk.to_vec(), vec![9, 8, 7]);
        assert_eq!(b.remaining(), 1);
        assert_eq!(b.get_u8(), 6);
    }

    #[test]
    #[should_panic(expected = "split_to out of bounds")]
    fn split_past_end_panics() {
        Bytes::from_vec(vec![1]).split_to(2);
    }
}
