//! Offline stand-in for `crossbeam-channel`.
//!
//! Implements the subset this workspace uses — [`unbounded`], [`bounded`],
//! cloneable [`Sender`]s *and* cloneable [`Receiver`]s (MPMC) — over a
//! `Mutex<VecDeque>` plus two condvars. Throughput is lower than the real
//! crate's lock-free implementation, but the semantics match: FIFO delivery,
//! every message received by exactly one receiver, and disconnection
//! surfaced as `Err` once the opposite side is fully dropped.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

struct State<T> {
    queue: VecDeque<T>,
    cap: Option<usize>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// The sending half of a channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel; cloneable (MPMC).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Error returned by [`Sender::send`] when all receivers are gone; carries
/// the unsent message.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

// Debug regardless of T, matching upstream (the payload is elided).
impl<T> std::fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SendError(..)")
    }
}

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "receiving on an empty, disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with no message available.
    Timeout,
    /// No message is queued and every sender has been dropped.
    Disconnected,
}

impl std::fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
            RecvTimeoutError::Disconnected => write!(f, "channel disconnected"),
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message is currently queued.
    Empty,
    /// No message is queued and every sender has been dropped.
    Disconnected,
}

impl std::fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TryRecvError::Empty => write!(f, "channel empty"),
            TryRecvError::Disconnected => write!(f, "channel disconnected"),
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Create an unbounded FIFO channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Create a bounded FIFO channel holding at most `cap` queued messages.
///
/// `cap = 0` (a rendezvous channel upstream) is approximated with a buffer
/// of one; no caller in this workspace uses zero capacity.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap.max(1)))
}

fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            cap,
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Send `msg`, blocking while a bounded channel is full. Fails only when
    /// every receiver has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut st = self.shared.state.lock().unwrap();
        loop {
            if st.receivers == 0 {
                return Err(SendError(msg));
            }
            match st.cap {
                Some(cap) if st.queue.len() >= cap => {
                    st = self.shared.not_full.wait(st).unwrap();
                }
                _ => break,
            }
        }
        st.queue.push_back(msg);
        drop(st);
        self.shared.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().unwrap().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().unwrap();
        st.senders -= 1;
        if st.senders == 0 {
            drop(st);
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Receive the next message, blocking until one arrives. Fails only when
    /// the channel is empty and every sender has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.shared.state.lock().unwrap();
        loop {
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self.shared.not_empty.wait(st).unwrap();
        }
    }

    /// Receive the next message, blocking for at most `timeout`.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut st = self.shared.state.lock().unwrap();
        loop {
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _res) = self
                .shared
                .not_empty
                .wait_timeout(st, deadline - now)
                .unwrap();
            st = guard;
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.shared.state.lock().unwrap();
        if let Some(msg) = st.queue.pop_front() {
            drop(st);
            self.shared.not_full.notify_one();
            return Ok(msg);
        }
        if st.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }

    /// True when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().unwrap().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().unwrap();
        st.receivers -= 1;
        if st.receivers == 0 {
            drop(st);
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn recv_fails_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(9).unwrap();
        drop(tx2);
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(5), Err(SendError(5)));
    }

    #[test]
    fn mpmc_delivers_each_message_once() {
        let (tx, rx) = unbounded::<u64>();
        let n_consumers = 4;
        let n_msgs = 1000u64;
        let handles: Vec<_> = (0..n_consumers)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut sum = 0u64;
                    while let Ok(v) = rx.recv() {
                        sum += v;
                    }
                    sum
                })
            })
            .collect();
        drop(rx);
        for i in 1..=n_msgs {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, n_msgs * (n_msgs + 1) / 2);
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        use std::time::Duration;
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn bounded_blocks_then_drains() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let producer = std::thread::spawn(move || {
            tx.send(3).unwrap(); // blocks until a slot frees up
            "done"
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(producer.join().unwrap(), "done");
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }
}
