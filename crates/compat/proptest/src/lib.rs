//! Offline stand-in for the `proptest` crate.
//!
//! Provides deterministic random-input property testing with the API subset
//! this workspace's tests use: the [`proptest!`] macro (with an optional
//! `#![proptest_config(...)]` inner attribute), `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!`, range and tuple strategies, and
//! [`collection::vec`]. There is no shrinking: a failing case prints its
//! generated inputs and the case index, which is enough to reproduce since
//! generation is deterministic per test name (override the base seed with
//! the `PROPTEST_SEED` environment variable).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Deterministic generator used to produce test cases (SplitMix64 core).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a generator from a test's fully-qualified name plus the optional
    /// `PROPTEST_SEED` environment override.
    pub fn for_test(name: &str) -> Self {
        let base: u64 = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x5EED_CAFE);
        // FNV-1a over the name, mixed with the base seed.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ base.rotate_left(17),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer draw from `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

/// A recipe for generating random values of an associated type.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 strategy range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + (self.end() - self.start()) * rng.unit_f64()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty integer strategy range");
                let span = (*self.end() as i128 - *self.start() as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (*self.start() as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// A strategy producing a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A permitted size range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with sizes drawn from a [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors whose elements come from `element` and whose length
    /// lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_inclusive - self.size.lo + 1;
            let n = self.size.lo + rng.below(span as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Outcome of one generated case (used by the [`proptest!`] expansion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseOutcome {
    /// The body ran to completion.
    Pass,
    /// A `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

/// Everything the macros need in scope.
pub mod prelude {
    pub use crate::{
        collection, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest,
        CaseOutcome, ProptestConfig, Strategy, TestRng,
    };
}

/// Assert a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return $crate::CaseOutcome::Reject;
        }
    };
}

/// Define property tests over randomly generated inputs.
///
/// Supported grammar (the subset upstream `proptest!` accepts that this
/// workspace uses):
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///     #[test]
///     fn my_property(x in 0.0f64..1.0, v in collection::vec(0u64..10, 1..5)) {
///         prop_assert!(x < 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    // With an inner config attribute.
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    // Without one: default config.
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expand each `fn` in a [`proptest!`] block. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng =
                $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < config.cases && attempts < config.cases.saturating_mul(20) {
                attempts += 1;
                $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)+
                let repr = || {
                    let mut s = String::new();
                    $(
                        s.push_str(concat!(stringify!($arg), " = "));
                        s.push_str(&format!("{:?}; ", &$arg));
                    )+
                    s
                };
                let repr = repr();
                let outcome = match ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| -> $crate::CaseOutcome {
                        $body
                        #[allow(unreachable_code)]
                        $crate::CaseOutcome::Pass
                    }),
                ) {
                    Ok(outcome) => outcome,
                    Err(payload) => {
                        eprintln!(
                            "proptest case {} of {} failed with inputs: {}",
                            accepted + 1,
                            stringify!($name),
                            repr
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                };
                if outcome == $crate::CaseOutcome::Pass {
                    accepted += 1;
                }
            }
            assert!(
                accepted >= config.cases / 2,
                "too many rejected cases: only {accepted} of {} accepted",
                config.cases
            );
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in -2.0f64..3.0, n in 1usize..10) {
            prop_assert!((-2.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_sizes_respect_bounds(v in collection::vec(0.0f64..1.0, 2..=5)) {
            prop_assert!(v.len() >= 2 && v.len() <= 5);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn tuples_generate_componentwise(t in (0.0f64..1.0, 5u64..6, 0usize..3)) {
            prop_assert!((0.0..1.0).contains(&t.0));
            prop_assert_eq!(t.1, 5);
            prop_assert!(t.2 < 3);
        }

        #[test]
        fn assume_rejects_cases(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let strat = 0.0f64..1.0;
        let mut a = TestRng::for_test("fixed-name");
        let mut b = TestRng::for_test("fixed-name");
        for _ in 0..32 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }

    #[test]
    fn nested_vec_strategy_shapes() {
        let strat = collection::vec(collection::vec(-1.0f64..1.0, 3..=3), 4..=4);
        let mut rng = TestRng::for_test("nested");
        let v = strat.generate(&mut rng);
        assert_eq!(v.len(), 4);
        assert!(v.iter().all(|row| row.len() == 3));
    }
}
