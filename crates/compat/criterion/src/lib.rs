//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API subset used by this workspace's `benches/`:
//! `Criterion::default().sample_size(n)`, `bench_function`,
//! `benchmark_group`, `Bencher::iter` / `Bencher::iter_batched`, and the
//! `criterion_group!` / `criterion_main!` macros (both the plain and the
//! `name = ...; config = ...; targets = ...` forms).
//!
//! Each benchmark is warmed up briefly, then timed over `sample_size`
//! samples; the mean, standard deviation, and median per-iteration time are
//! printed to stdout. Set `CRITERION_SAMPLE_MS` to change the per-sample
//! time slice (default 50 ms; the CI smoke job uses a small value).

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost (accepted for API compatibility;
/// the stand-in re-runs setup per iteration and subtracts nothing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
    slice: Duration,
}

impl Bencher {
    fn new(sample_size: usize, slice: Duration) -> Self {
        Bencher {
            samples: Vec::with_capacity(sample_size),
            sample_size,
            slice,
        }
    }

    /// Benchmark `routine` by running it repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: how many iterations fit in one time slice?
        let t0 = Instant::now();
        let mut calib = 0u64;
        while t0.elapsed() < self.slice / 4 || calib == 0 {
            std::hint::black_box(routine());
            calib += 1;
        }
        let per_iter = t0.elapsed().as_secs_f64() / calib as f64;
        let iters_per_sample =
            ((self.slice.as_secs_f64() / per_iter.max(1e-12)) as u64).clamp(1, 1_000_000);
        for _ in 0..self.sample_size {
            let s0 = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples
                .push(s0.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
    }

    /// Benchmark `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // One warm-up execution.
        std::hint::black_box(routine(setup()));
        let mut spent = Duration::ZERO;
        let budget = self.slice * self.sample_size as u32;
        for _ in 0..self.sample_size {
            let input = setup();
            let s0 = Instant::now();
            std::hint::black_box(routine(input));
            let dt = s0.elapsed();
            spent += dt;
            self.samples.push(dt.as_secs_f64());
            if spent > budget {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let n = self.samples.len() as f64;
        let mean = self.samples.iter().sum::<f64>() / n;
        let var = self
            .samples
            .iter()
            .map(|s| (s - mean) * (s - mean))
            .sum::<f64>()
            / n;
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        println!(
            "{name:<40} mean {:>12}  sd {:>12}  median {:>12}  ({} samples)",
            fmt_time(mean),
            fmt_time(var.sqrt()),
            fmt_time(median),
            self.samples.len()
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn sample_slice() -> Duration {
    let ms = std::env::var("CRITERION_SAMPLE_MS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(50);
    Duration::from_millis(ms.max(1))
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size, sample_slice());
        f(&mut b);
        b.report(name);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            _name: name,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    _name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark within the group.
    pub fn bench_function<N: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        let name = name.into();
        let mut b = Bencher::new(self.criterion.sample_size, sample_slice());
        f(&mut b);
        b.report(&format!("  {name}"));
        self
    }

    /// Finish the group (printing is incremental; this is a no-op).
    pub fn finish(self) {}
}

/// Define a group of benchmark functions (both `criterion_group!(name, f...)`
/// and the `name = ...; config = ...; targets = ...` forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate the benchmark binary's `main` from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        std::env::set_var("CRITERION_SAMPLE_MS", "1");
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        std::env::remove_var("CRITERION_SAMPLE_MS");
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        std::env::set_var("CRITERION_SAMPLE_MS", "1");
        let mut setups = 0u32;
        let mut b = Bencher::new(4, Duration::from_millis(1));
        b.iter_batched(
            || {
                setups += 1;
                setups
            },
            |x| x * 2,
            BatchSize::SmallInput,
        );
        assert!(setups >= 4); // warm-up + one per sample (may stop early)
        std::env::remove_var("CRITERION_SAMPLE_MS");
    }

    #[test]
    fn time_formatting_scales() {
        assert!(fmt_time(2e-9).ends_with("ns"));
        assert!(fmt_time(2e-6).ends_with("us"));
        assert!(fmt_time(2e-3).ends_with("ms"));
        assert!(fmt_time(2.0).ends_with('s'));
    }
}
