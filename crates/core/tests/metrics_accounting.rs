//! Integration tests for the run-accounting subsystem: algorithms wired to
//! an `obs::MetricsRegistry` must populate the documented metric names, and
//! the `RunResult::metrics` summary must agree with the registry.

use noisy_simplex::prelude::*;
use obs::{MetricValue, MetricsRegistry};
use stoch_eval::functions::Sphere;
use stoch_eval::noise::ConstantNoise;
use stoch_eval::sampler::Noisy;

fn term() -> Termination {
    Termination {
        tolerance: Some(1e-4),
        max_time: Some(5e4),
        max_iterations: Some(2_000),
    }
}

fn counter(reg: &MetricsRegistry, name: &str) -> u64 {
    reg.counter(name).get()
}

#[test]
fn pc_on_noisy_sphere_exercises_all_seven_sites() {
    let sphere = Sphere::new(3);
    let obj = Noisy::new(sphere, ConstantNoise(5.0));
    let reg = MetricsRegistry::new();
    let init = init::random_uniform(3, -5.0, 5.0, 42);
    let res = PointComparison::new().run_with_metrics(
        &obj,
        init,
        term(),
        TimeMode::Parallel,
        42,
        Some(&reg),
    );

    // Every decision site must have been *visited*: decided one way, the
    // other, or resampled at least once over a full noisy run.
    for c in 1..=7 {
        let activity = counter(&reg, &format!("pc.site.c{c}.decided_true"))
            + counter(&reg, &format!("pc.site.c{c}.decided_false"))
            + counter(&reg, &format!("pc.site.c{c}.undecided_resample"));
        assert!(activity > 0, "site c{c} was never exercised");
    }
    // Under sigma = 5 noise, comparisons cannot all resolve instantly: some
    // resampling must have happened somewhere.
    let total_resamples: u64 = (1..=7)
        .map(|c| counter(&reg, &format!("pc.site.c{c}.undecided_resample")))
        .sum();
    assert!(total_resamples > 0, "no site ever resampled under noise");

    // Engine tallies: steps recorded in the registry must equal the
    // iteration count the result reports.
    let steps: u64 = [
        "engine.steps.reflect",
        "engine.steps.expand",
        "engine.steps.contract",
        "engine.steps.collapse",
    ]
    .iter()
    .map(|n| counter(&reg, n))
    .sum();
    assert_eq!(steps, res.iterations);
    assert!(counter(&reg, "engine.trials.opened") > 0);
    assert!(counter(&reg, "engine.rounds") > 0);

    // The RunResult summary is a faithful snapshot of the registry.
    let m = res.metrics.expect("metrics summary missing");
    assert_eq!(m.total_steps(), res.iterations);
    assert_eq!(m.trials_opened, counter(&reg, "engine.trials.opened"));
    assert_eq!(m.trials_dropped, counter(&reg, "engine.trials.dropped"));
    assert_eq!(m.total_resamples(), total_resamples);
    let reg_sampling = reg
        .snapshot()
        .into_iter()
        .find(|(n, _)| n == "engine.sampling_time")
        .map(|(_, v)| match v {
            MetricValue::Time(t) => t,
            _ => panic!("engine.sampling_time has wrong kind"),
        })
        .unwrap();
    assert!((m.sampling_time - reg_sampling).abs() < 1e-9);
    assert!(m.sampling_time > 0.0);
}

#[test]
fn mn_gate_metrics_track_the_wait_loop() {
    let obj = Noisy::new(Sphere::new(2), ConstantNoise(10.0));
    let reg = MetricsRegistry::new();
    let init = init::random_uniform(2, -5.0, 5.0, 7);
    let res = MaxNoise::with_k(2.0).run_with_metrics(
        &obj,
        init,
        term(),
        TimeMode::Parallel,
        7,
        Some(&reg),
    );
    let checks = counter(&reg, "mn.gate.checks");
    let failures = counter(&reg, "mn.gate.failures");
    let extensions = counter(&reg, "mn.extension_rounds");
    assert!(checks > 0, "gate never checked");
    assert!(failures <= checks);
    // Every failed gate check triggers exactly one extension round, except
    // possibly the last (budget can fire between the check and the round).
    assert!(extensions <= failures);
    assert!(failures.saturating_sub(extensions) <= 1);

    let m = res.metrics.expect("metrics summary missing");
    assert_eq!(m.mn_gate_checks, checks);
    assert_eq!(m.mn_gate_failures, failures);
    assert_eq!(m.mn_extension_rounds, extensions);
    if extensions > 0 {
        assert!(m.mn_equalize_time > 0.0);
    }
}

#[test]
fn pcmn_records_both_gate_and_site_metrics() {
    let obj = Noisy::new(Sphere::new(2), ConstantNoise(5.0));
    let reg = MetricsRegistry::new();
    let init = init::random_uniform(2, -5.0, 5.0, 3);
    let res = PcMn::new().run_with_metrics(&obj, init, term(), TimeMode::Parallel, 3, Some(&reg));
    assert!(counter(&reg, "mn.gate.checks") > 0);
    let site_activity: u64 = (1..=7)
        .map(|c| {
            counter(&reg, &format!("pc.site.c{c}.decided_true"))
                + counter(&reg, &format!("pc.site.c{c}.decided_false"))
        })
        .sum();
    assert!(site_activity > 0, "PC sites never decided anything");
    assert!(res.metrics.is_some());
}

#[test]
fn runs_without_a_registry_report_no_metrics() {
    let obj = Noisy::new(Sphere::new(2), ConstantNoise(1.0));
    let init = init::random_uniform(2, -3.0, 3.0, 1);
    let res = PointComparison::new().run(&obj, init, term(), TimeMode::Parallel, 1);
    assert!(res.metrics.is_none());
}

#[test]
fn metrics_dispatch_through_the_method_enum() {
    let obj = Noisy::new(Sphere::new(2), ConstantNoise(1.0));
    let methods = [
        SimplexMethod::Det(Det::new()),
        SimplexMethod::Mn(MaxNoise::with_k(2.0)),
        SimplexMethod::Pc(PointComparison::new()),
        SimplexMethod::PcMn(PcMn::new()),
        SimplexMethod::Anderson(AndersonNm::with_k1(1024.0)),
    ];
    for (i, m) in methods.iter().enumerate() {
        let reg = MetricsRegistry::new();
        let init = init::random_uniform(2, -3.0, 3.0, 200 + i as u64);
        let res = m.run_with_metrics(&obj, init, term(), TimeMode::Parallel, i as u64, Some(&reg));
        let summary = res
            .metrics
            .unwrap_or_else(|| panic!("{} produced no metrics summary", m.name()));
        assert_eq!(summary.total_steps(), res.iterations, "{}", m.name());
        assert!(summary.rounds > 0, "{} ran no rounds", m.name());
        // The registry export must round-trip through the obs JSON parser.
        let parsed = obs::json::parse(&reg.to_json()).expect("invalid JSON export");
        assert!(parsed.get("engine.rounds").is_some());
    }
}
