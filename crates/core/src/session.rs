//! `RunSession` — one optimization run as an explicit, resumable state
//! machine.
//!
//! Historically each algorithm owned its own driving loop (`classic_loop`,
//! `pc_loop`, …): the run drove the sampling backend until a termination
//! criterion fired, and nothing else could get a word in edgewise. This
//! module inverts that ownership. A session exposes the loop *body* as
//! [`RunSession::step`] — exactly one simplex decision per call, preceded by
//! the due-checkpoint write, the termination check, and the algorithm's gate
//! (MN/Anderson wait loops) in the same order the old loops used — so an
//! external driver (the `nsx-sched` scheduler, a test harness, a REPL) can
//! interleave many runs on one shared backend, suspend a run to bytes
//! between steps via [`RunSession::snapshot`], and resume it later on a
//! different backend.
//!
//! Because `step` performs the same calls in the same order as the old
//! closed loops, [`RunSession::run_to_completion`] is bit-identical to the
//! historical `run()` entry points; the per-method front doors (`Det::run`,
//! `MaxNoise::run`, …) are now thin wrappers over a session.

use crate::anderson::AndersonNm;
use crate::checkpoint::CheckpointError;
use crate::classic::classic_iteration;
use crate::config::{AndersonParams, MnParams, PcParams, SimplexConfig};
use crate::engine::Engine;
use crate::metrics::EngineMetrics;
use crate::mn::mn_wait;
use crate::pc::pc_iteration;
use crate::result::RunResult;
use crate::termination::{StopReason, Termination};
use std::sync::Arc;
use stoch_eval::backend::SamplingBackend;
use stoch_eval::clock::TimeMode;
use stoch_eval::codec::CodecError;
use stoch_eval::objective::StochasticObjective;

/// Which algorithm's decision procedure a session runs per step.
///
/// `Det` and `Pc` have no pre-iteration gate; `Mn`, `Anderson`, and `PcMn`
/// first wait (extending vertex streams) until their noise criterion is
/// satisfied, then take one simplex step.
#[derive(Debug, Clone, Copy)]
pub enum Driver {
    /// Deterministic Nelder–Mead (Algorithm 1): no gate, classic body.
    Det,
    /// Max-noise (Algorithm 2): MN gate, then the classic body.
    Mn(MnParams),
    /// Anderson criterion (Eq. 2.4) gate, then the classic body.
    Anderson(AndersonParams),
    /// Point-comparison (Algorithm 3): no gate, PC body.
    Pc(PcParams),
    /// PC+MN (Algorithm 4): MN gate, then the PC body.
    PcMn(MnParams, PcParams),
}

/// Outcome of a single [`RunSession::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStatus {
    /// The step completed and the run wants more steps.
    Running,
    /// A termination criterion fired; the session is finished and further
    /// `step` calls are no-ops.
    Finished,
}

/// A single run in yield-per-round form: construct (or resume) it, call
/// [`step`](Self::step) until it reports [`SessionStatus::Finished`], then
/// take the [`RunResult`] with [`finish`](Self::finish).
pub struct RunSession<'a, F: StochasticObjective> {
    eng: Engine<'a, F>,
    driver: Driver,
    done: Option<StopReason>,
}

impl<'a, F: StochasticObjective> RunSession<'a, F> {
    /// Start a fresh session on the backend the config would build.
    ///
    /// # Panics
    /// As [`Engine::new`]: on malformed `init`/coefficients, or when the
    /// objective and backend dispatch on the same worker pool (nested
    /// dispatch — see [`crate::config::check_nested_dispatch`]).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        objective: &'a F,
        init: Vec<Vec<f64>>,
        cfg: SimplexConfig,
        term: Termination,
        mode: TimeMode,
        seed: u64,
        driver: Driver,
    ) -> Self {
        let eng = Engine::new(objective, init, cfg, term, mode, seed);
        RunSession {
            eng,
            driver,
            done: None,
        }
    }

    /// Start a fresh session on an explicit (possibly shared) backend.
    #[allow(clippy::too_many_arguments)]
    pub fn with_backend(
        objective: &'a F,
        init: Vec<Vec<f64>>,
        cfg: SimplexConfig,
        term: Termination,
        mode: TimeMode,
        seed: u64,
        driver: Driver,
        backend: Arc<dyn SamplingBackend<F::Stream>>,
    ) -> Self {
        let eng = Engine::new_with_backend(objective, init, cfg, term, mode, seed, backend);
        RunSession {
            eng,
            driver,
            done: None,
        }
    }

    /// Resume a session from checkpoint bytes (see [`Engine::resume`]).
    pub fn resume(
        objective: &'a F,
        cfg: SimplexConfig,
        payload: &[u8],
        term_override: Option<Termination>,
        driver: Driver,
    ) -> Result<Self, CheckpointError> {
        let eng = Engine::resume(objective, cfg, payload, term_override)?;
        Ok(RunSession {
            eng,
            driver,
            done: None,
        })
    }

    /// Resume a session from checkpoint bytes onto an explicit backend. The
    /// snapshot carries no backend state, so the run may land on a different
    /// backend than it was suspended from — serial to threaded, solo to
    /// shared fleet.
    pub fn resume_with_backend(
        objective: &'a F,
        cfg: SimplexConfig,
        payload: &[u8],
        term_override: Option<Termination>,
        driver: Driver,
        backend: Arc<dyn SamplingBackend<F::Stream>>,
    ) -> Result<Self, CheckpointError> {
        let eng = Engine::resume_with_backend(objective, cfg, payload, term_override, backend)?;
        Ok(RunSession {
            eng,
            driver,
            done: None,
        })
    }

    /// Record engine tallies (and gate/site statistics) into `metrics`.
    pub fn attach_metrics(&mut self, metrics: EngineMetrics) {
        self.eng.attach_metrics(metrics);
    }

    /// Record a [`RunNote`](crate::result::RunNote) against this run from an
    /// external supervisor (checkpoint-fallback on resume, scheduler
    /// quarantine). Deduplicated per kind; survives snapshots.
    pub fn record_note(&mut self, n: crate::result::RunNote) {
        self.eng.record_note(n);
    }

    /// Advance the run by at most one simplex decision: write a due
    /// checkpoint, check termination, run the driver's gate, then one
    /// iteration body. Calling `step` after `Finished` is a no-op.
    pub fn step(&mut self) -> SessionStatus {
        if self.done.is_some() {
            return SessionStatus::Finished;
        }
        self.eng.checkpoint_if_due();
        if let Some(r) = self.eng.should_stop() {
            self.done = Some(r);
            return SessionStatus::Finished;
        }
        let gate_stop = match self.driver {
            Driver::Det | Driver::Pc(_) => None,
            Driver::Mn(p) | Driver::PcMn(p, _) => mn_wait(p.k, &mut self.eng),
            Driver::Anderson(p) => AndersonNm::wait(p, &mut self.eng),
        };
        if let Some(r) = gate_stop {
            self.done = Some(r);
            return SessionStatus::Finished;
        }
        let iter_stop = match self.driver {
            Driver::Pc(p) | Driver::PcMn(_, p) => pc_iteration(&mut self.eng, p),
            Driver::Det | Driver::Mn(_) | Driver::Anderson(_) => {
                classic_iteration(&mut self.eng, |eng, id| eng.extend_round(&[id]))
            }
        };
        if let Some(r) = iter_stop {
            self.done = Some(r);
            return SessionStatus::Finished;
        }
        SessionStatus::Running
    }

    /// Whether a termination criterion already fired.
    pub fn is_finished(&self) -> bool {
        self.done.is_some()
    }

    /// The stop reason, once finished.
    pub fn stop_reason(&self) -> Option<StopReason> {
        self.done
    }

    /// Completed simplex iterations so far.
    pub fn iterations(&self) -> u64 {
        self.eng.iterations()
    }

    /// Virtual sampling time elapsed so far.
    pub fn elapsed(&self) -> f64 {
        self.eng.elapsed()
    }

    /// Serialize the run to resumable bytes (between steps, no streams are
    /// in flight). Fails with [`CodecError::Unsupported`] when the
    /// objective's streams cannot save state — such a run cannot be
    /// preempted, only run to completion.
    pub fn snapshot(&self) -> Result<Vec<u8>, CodecError> {
        self.eng.snapshot()
    }

    /// Consume a finished session and produce its [`RunResult`].
    ///
    /// # Panics
    /// If the session has not finished yet.
    pub fn finish(self) -> RunResult {
        let reason = self
            .done
            .expect("RunSession::finish called before the run finished");
        self.eng.finish(reason)
    }

    /// Drive the session to completion in a closed loop — the historical
    /// `run()` behaviour, bit-identical to the pre-session loops.
    pub fn run_to_completion(mut self) -> RunResult {
        while self.step() == SessionStatus::Running {}
        self.finish()
    }
}
