//! A unified front door over the simplex-family algorithms, used by the
//! experiment harness to sweep methods homogeneously.

use crate::anderson::AndersonNm;
use crate::checkpoint::CheckpointError;
use crate::det::Det;
use crate::mn::MaxNoise;
use crate::pc::PointComparison;
use crate::pcmn::PcMn;
use crate::result::RunResult;
use crate::termination::Termination;
use obs::MetricsRegistry;
use std::path::Path;
use stoch_eval::clock::TimeMode;
use stoch_eval::objective::StochasticObjective;

/// Any of the five simplex-family methods the paper studies.
#[derive(Debug, Clone)]
pub enum SimplexMethod {
    /// Deterministic Nelder–Mead (Algorithm 1).
    Det(Det),
    /// Max-noise (Algorithm 2).
    Mn(MaxNoise),
    /// Point-to-point comparison (Algorithm 3).
    Pc(PointComparison),
    /// Combined PC+MN (Algorithm 4).
    PcMn(PcMn),
    /// Nelder–Mead with the Anderson criterion (Eq. 2.4).
    Anderson(AndersonNm),
}

impl SimplexMethod {
    /// Short method name for reports ("DET", "MN", "PC", "PC+MN",
    /// "Anderson").
    pub fn name(&self) -> String {
        match self {
            SimplexMethod::Det(_) => "DET".into(),
            SimplexMethod::Mn(m) => format!("MN(k={})", m.params.k),
            SimplexMethod::Pc(p) => {
                format!("PC(k={},{})", p.params.k, p.params.conditions.label())
            }
            SimplexMethod::PcMn(_) => "PC+MN".into(),
            SimplexMethod::Anderson(a) => format!("Anderson(k1=2^{:.0})", a.params.k1.log2()),
        }
    }

    /// Run the method on `objective` from the initial simplex `init`.
    pub fn run<F: StochasticObjective>(
        &self,
        objective: &F,
        init: Vec<Vec<f64>>,
        term: Termination,
        mode: TimeMode,
        seed: u64,
    ) -> RunResult {
        self.run_with_metrics(objective, init, term, mode, seed, None)
    }

    /// [`run`](Self::run) with optional run accounting: when `registry` is
    /// given, the method records its decision/gate/engine tallies into it
    /// and summarizes them in [`RunResult::metrics`].
    pub fn run_with_metrics<F: StochasticObjective>(
        &self,
        objective: &F,
        init: Vec<Vec<f64>>,
        term: Termination,
        mode: TimeMode,
        seed: u64,
        registry: Option<&MetricsRegistry>,
    ) -> RunResult {
        match self {
            SimplexMethod::Det(m) => {
                m.run_with_metrics(objective, init, term, mode, seed, registry)
            }
            SimplexMethod::Mn(m) => m.run_with_metrics(objective, init, term, mode, seed, registry),
            SimplexMethod::Pc(m) => m.run_with_metrics(objective, init, term, mode, seed, registry),
            SimplexMethod::PcMn(m) => {
                m.run_with_metrics(objective, init, term, mode, seed, registry)
            }
            SimplexMethod::Anderson(m) => {
                m.run_with_metrics(objective, init, term, mode, seed, registry)
            }
        }
    }

    /// Resume a checkpointed run of this method from `path` (with `.1`
    /// retention fallback) and continue it to termination.
    ///
    /// The restored run is bit-identical to one that never stopped: same
    /// best point, values, iteration counts, trace, and accounting.
    /// `term_override` replaces the persisted termination criteria (pass the
    /// full-run criteria when resuming a deliberately truncated run);
    /// `None` keeps what was persisted.
    pub fn resume<F: StochasticObjective>(
        &self,
        objective: &F,
        path: &Path,
        term_override: Option<Termination>,
    ) -> Result<RunResult, CheckpointError> {
        self.resume_with_metrics(objective, path, term_override, None)
    }

    /// [`resume`](Self::resume) with optional run accounting. Persisted
    /// accounting is replayed into `registry` first, so the final summary
    /// matches an uninterrupted run's.
    pub fn resume_with_metrics<F: StochasticObjective>(
        &self,
        objective: &F,
        path: &Path,
        term_override: Option<Termination>,
        registry: Option<&MetricsRegistry>,
    ) -> Result<RunResult, CheckpointError> {
        match self {
            SimplexMethod::Det(m) => {
                m.resume_with_metrics(objective, path, term_override, registry)
            }
            SimplexMethod::Mn(m) => m.resume_with_metrics(objective, path, term_override, registry),
            SimplexMethod::Pc(m) => m.resume_with_metrics(objective, path, term_override, registry),
            SimplexMethod::PcMn(m) => {
                m.resume_with_metrics(objective, path, term_override, registry)
            }
            SimplexMethod::Anderson(m) => {
                m.resume_with_metrics(objective, path, term_override, registry)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::random_uniform;
    use stoch_eval::functions::Sphere;
    use stoch_eval::noise::ConstantNoise;
    use stoch_eval::sampler::Noisy;

    #[test]
    fn all_methods_run_through_the_enum() {
        let obj = Noisy::new(Sphere::new(2), ConstantNoise(1.0));
        let term = Termination {
            tolerance: Some(1e-2),
            max_time: Some(1e4),
            max_iterations: Some(200),
        };
        let methods = [
            SimplexMethod::Det(Det::new()),
            SimplexMethod::Mn(MaxNoise::with_k(2.0)),
            SimplexMethod::Pc(PointComparison::new()),
            SimplexMethod::PcMn(PcMn::new()),
            SimplexMethod::Anderson(AndersonNm::with_k1(1024.0)),
        ];
        for (i, m) in methods.iter().enumerate() {
            let init = random_uniform(2, -3.0, 3.0, 100 + i as u64);
            let res = m.run(&obj, init, term, TimeMode::Parallel, i as u64);
            assert!(res.iterations > 0, "{} made no iterations", m.name());
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<String> = [
            SimplexMethod::Det(Det::new()),
            SimplexMethod::Mn(MaxNoise::with_k(2.0)),
            SimplexMethod::Pc(PointComparison::new()),
            SimplexMethod::PcMn(PcMn::new()),
            SimplexMethod::Anderson(AndersonNm::with_k1(1024.0)),
        ]
        .iter()
        .map(|m| m.name())
        .collect();
        let mut uniq = names.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), names.len());
    }
}
