//! Run traces: the (virtual time, best value) series behind Figs 3.4 and
//! 3.18, plus step-kind accounting.

/// The kind of simplex move accepted at an iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepKind {
    /// Worst vertex replaced by its reflection.
    Reflect,
    /// Worst vertex replaced by the expansion point.
    Expand,
    /// Worst vertex replaced by the contraction point.
    Contract,
    /// Whole simplex collapsed towards the best vertex.
    Collapse,
}

/// One record per completed simplex iteration.
#[derive(Debug, Clone, Copy)]
pub struct TracePoint {
    /// Elapsed virtual sampling time when the iteration completed.
    pub time: f64,
    /// 1-based iteration number.
    pub iteration: u64,
    /// Observed objective value at the current best vertex.
    pub best_observed: f64,
    /// Noise-free value at the best vertex, when the substrate knows it.
    pub best_true: Option<f64>,
    /// Simplex diameter (Eq. 2.2).
    pub diameter: f64,
    /// Which move was accepted.
    pub step: StepKind,
}

/// A full optimization trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    points: Vec<TracePoint>,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a record.
    pub fn push(&mut self, p: TracePoint) {
        self.points.push(p);
    }

    /// All records, in iteration order.
    pub fn points(&self) -> &[TracePoint] {
        &self.points
    }

    /// Number of recorded iterations.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no iterations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Count accepted steps of a given kind.
    pub fn count(&self, kind: StepKind) -> usize {
        self.points.iter().filter(|p| p.step == kind).count()
    }

    /// Time per step between consecutive records (used by Fig 3.18c).
    pub fn mean_time_per_step(&self) -> f64 {
        if self.points.is_empty() {
            return f64::NAN;
        }
        self.points.last().unwrap().time / self.points.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tp(i: u64, t: f64, step: StepKind) -> TracePoint {
        TracePoint {
            time: t,
            iteration: i,
            best_observed: 0.0,
            best_true: None,
            diameter: 1.0,
            step,
        }
    }

    #[test]
    fn counts_by_kind() {
        let mut tr = Trace::new();
        tr.push(tp(1, 1.0, StepKind::Reflect));
        tr.push(tp(2, 2.0, StepKind::Reflect));
        tr.push(tp(3, 3.0, StepKind::Contract));
        assert_eq!(tr.count(StepKind::Reflect), 2);
        assert_eq!(tr.count(StepKind::Contract), 1);
        assert_eq!(tr.count(StepKind::Expand), 0);
        assert_eq!(tr.len(), 3);
    }

    #[test]
    fn mean_time_per_step() {
        let mut tr = Trace::new();
        tr.push(tp(1, 2.0, StepKind::Reflect));
        tr.push(tp(2, 6.0, StepKind::Expand));
        assert_eq!(tr.mean_time_per_step(), 3.0);
        assert!(Trace::new().mean_time_per_step().is_nan());
    }
}
