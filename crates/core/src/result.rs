//! Optimization results and the paper's three performance measures
//! (N, R, D — §3.2).

use crate::termination::StopReason;
use crate::trace::Trace;
use stoch_eval::backend::SamplingBackend;
use stoch_eval::objective::StochasticObjective;

/// A notable, non-fatal event recorded during a run.
///
/// Notes report conditions the run survived — they never change results
/// (the backend determinism contract holds through every note), only how
/// the run executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunNote {
    /// The parallel sampling backend permanently lost its worker pool
    /// (respawn budget exhausted with no live workers) and the run finished
    /// with inline serial execution. Results are identical to a fault-free
    /// run; only wall-clock parallelism was lost. See DESIGN.md §9.
    DegradedToSerial,
    /// At least one sampling stream ingested a non-finite value (NaN/±inf).
    /// Under the default quarantine policy the affected vertex's estimate is
    /// pinned to `+inf` (it loses every comparison) and the run continues.
    NonFiniteSample,
    /// A scheduled checkpoint write failed (I/O error). The run continued —
    /// checkpointing is best-effort — but crash recovery would resume from
    /// an older snapshot. Reported once per run.
    CheckpointFailed,
    /// The process transport (`NSX_TRANSPORT=process`) permanently lost its
    /// worker processes (respawn budget exhausted, or none could be
    /// spawned) and the run finished with in-process execution. Results are
    /// identical to a fault-free distributed run; only process-level
    /// parallelism was lost. See DESIGN.md §12.
    TransportDegraded,
    /// At least one stream's online tail diagnostic crossed the configured
    /// [`BreakdownPolicy`](crate::config::BreakdownPolicy) thresholds: the
    /// sampling noise is not plausibly the Gaussian the Welford gates were
    /// calibrated for (heavy tails or contamination detected). Under
    /// `BreakdownAction::SwitchRobust` the run's streams were switched to
    /// the robust estimator from that round on. See DESIGN.md §14.
    NoiseSuspect,
    /// The scheduler quarantined this run: its dedicated backend repeatedly
    /// exhausted retry/respawn budgets, so the run was checkpointed and
    /// evicted from the shared fleet rather than allowed to drag other
    /// runs into degraded execution. The run later resumed (possibly with a
    /// sanitized configuration) and finished; results are bit-identical to
    /// an uneventful solo run. See DESIGN.md §16.
    Quarantined,
    /// Resume could not read the primary checkpoint (CRC mismatch or
    /// truncation) and fell back to the retained previous-generation
    /// snapshot (`<path>.1`). The run re-executed the iterations since that
    /// older snapshot bit-identically; only wall-clock work was repeated.
    /// See DESIGN.md §11.
    CheckpointFellBack,
}

/// Collect the [`RunNote`]s a backend reports after a run. A degraded
/// process-transport backend reports [`RunNote::TransportDegraded`] (the
/// wire was lost); any other degraded backend reports
/// [`RunNote::DegradedToSerial`].
pub fn notes_from_backend<S>(backend: &dyn SamplingBackend<S>) -> Vec<RunNote> {
    if !backend.degraded() {
        Vec::new()
    } else if backend.name() == "process" {
        vec![RunNote::TransportDegraded]
    } else {
        vec![RunNote::DegradedToSerial]
    }
}

/// The outcome of one optimization run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Best point found (the final `θ_min`).
    pub best_point: Vec<f64>,
    /// Observed objective value at `best_point` when the run stopped.
    pub best_observed: f64,
    /// Number of completed simplex iterations (the paper's `N`).
    pub iterations: u64,
    /// Total elapsed virtual sampling time.
    pub elapsed: f64,
    /// Total virtual sampling time summed over all streams (CPU-time
    /// analogue; equals `elapsed` in serial mode).
    pub total_sampling: f64,
    /// Why the run stopped.
    pub stop: StopReason,
    /// Per-iteration trace.
    pub trace: Trace,
    /// Run-accounting summary, present when a metrics registry was attached
    /// (see [`crate::metrics::EngineMetrics`]).
    pub metrics: Option<RunMetrics>,
    /// Non-fatal events the run survived (e.g. degradation to serial
    /// execution after worker loss). Empty for an uneventful run.
    pub notes: Vec<RunNote>,
}

/// Plain-value snapshot of a run's accounting, taken when the engine
/// finishes. Field meanings mirror the registry metrics documented in
/// [`crate::metrics`]; arrays are indexed `0 ↦ c1` … `6 ↦ c7`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunMetrics {
    /// Accepted reflection steps.
    pub steps_reflect: u64,
    /// Accepted expansion steps.
    pub steps_expand: u64,
    /// Accepted contraction steps.
    pub steps_contract: u64,
    /// Collapse (total-contraction) steps.
    pub steps_collapse: u64,
    /// Trial slots opened.
    pub trials_opened: u64,
    /// Trial slots discarded.
    pub trials_dropped: u64,
    /// Concurrent sampling rounds executed.
    pub rounds: u64,
    /// Total virtual sampling time charged across all streams.
    pub sampling_time: f64,
    /// Per-site count of confident affirmative decisions.
    pub site_decided_true: [u64; 7],
    /// Per-site count of confident negative decisions.
    pub site_decided_false: [u64; 7],
    /// Per-site count of undecided rounds that forced a resample.
    pub site_undecided_resample: [u64; 7],
    /// Per-site virtual time spent resampling while undecided.
    pub site_resample_time: [f64; 7],
    /// MN gate evaluations.
    pub mn_gate_checks: u64,
    /// MN gate evaluations that failed.
    pub mn_gate_failures: u64,
    /// Extension rounds run by the MN wait loop.
    pub mn_extension_rounds: u64,
    /// Virtual time spent equalizing noise in the MN wait loop.
    pub mn_equalize_time: f64,
    /// Non-finite samples quarantined at stream ingestion (`eval.nonfinite`).
    pub nonfinite: u64,
    /// Rounds in which at least one stream's tail diagnostic crossed the
    /// breakdown thresholds (`eval.tail.flag_rounds`).
    pub tail_flag_rounds: u64,
    /// Estimator auto-switches performed by the breakdown policy
    /// (`eval.tail.switches`; 0 or 1 per run).
    pub tail_switches: u64,
}

impl RunMetrics {
    /// Total accepted moves of any kind.
    pub fn total_steps(&self) -> u64 {
        self.steps_reflect + self.steps_expand + self.steps_contract + self.steps_collapse
    }

    /// Total undecided-resample rounds over all seven PC sites.
    pub fn total_resamples(&self) -> u64 {
        self.site_undecided_resample.iter().sum()
    }
}

/// The paper's three success measures for a run against a known optimum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measures {
    /// `N`: iterations to convergence.
    pub n: u64,
    /// `R`: error in the (noise-free) function value at convergence.
    pub r: f64,
    /// `D`: Euclidean distance of the final best point to the solution.
    pub d: f64,
}

impl RunResult {
    /// Compute `(N, R, D)` against an objective with a known optimum.
    ///
    /// `R` uses the substrate's noise-free value when available, falling
    /// back to the observed value otherwise.
    pub fn measures<F: StochasticObjective>(
        &self,
        objective: &F,
        minimizer: &[f64],
        minimum: f64,
    ) -> Measures {
        let f_best = objective
            .true_value(&self.best_point)
            .unwrap_or(self.best_observed);
        let d = self
            .best_point
            .iter()
            .zip(minimizer)
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        Measures {
            n: self.iterations,
            r: (f_best - minimum).abs(),
            d,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stoch_eval::functions::Rosenbrock;
    use stoch_eval::noise::ConstantNoise;
    use stoch_eval::sampler::Noisy;

    #[test]
    fn measures_against_known_optimum() {
        let obj = Noisy::new(Rosenbrock::new(3), ConstantNoise(1.0));
        let res = RunResult {
            best_point: vec![1.0, 1.0, 2.0],
            best_observed: 123.0,
            iterations: 17,
            elapsed: 10.0,
            total_sampling: 40.0,
            stop: StopReason::Tolerance,
            trace: Trace::new(),
            metrics: None,
            notes: Vec::new(),
        };
        let m = res.measures(&obj, &[1.0, 1.0, 1.0], 0.0);
        assert_eq!(m.n, 17);
        assert_eq!(m.d, 1.0);
        // True Rosenbrock value at (1,1,2) = 100*(2-1)^2 = 100, not the
        // noisy observed 123.
        assert_eq!(m.r, 100.0);
    }
}
