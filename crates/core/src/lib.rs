//! `noisy-simplex` — stochastic variants of the Nelder–Mead downhill simplex
//! for objective functions observed through sampling noise.
//!
//! This crate is the primary contribution of the reproduced paper (Chahal,
//! *Automated, Parallel Optimization Algorithms for Stochastic Functions*,
//! 2011): three simplex-family algorithms for noisy objectives plus the
//! baselines they are evaluated against.
//!
//! # Algorithms
//!
//! * [`Det`](det::Det) — deterministic Nelder–Mead (Algorithm 1), the straw
//!   baseline that treats noisy observations as truth.
//! * [`MaxNoise`](mn::MaxNoise) — MN (Algorithm 2): gate every simplex move
//!   until the noisiest vertex is quiet relative to the simplex's internal
//!   value spread (Eq. 2.3).
//! * [`PointComparison`](pc::PointComparison) — PC (Algorithm 3):
//!   confidence-interval comparisons at seven decision sites with targeted
//!   resampling of only the points involved.
//! * [`PcMn`](pcmn::PcMn) — PC+MN (Algorithm 4): both gates combined.
//! * [`AndersonNm`](anderson::AndersonNm) — the Anderson et al. (2000)
//!   convergence criterion (Eq. 2.4) inside Nelder–Mead; plus
//!   [`AndersonSearch`](anderson::AndersonSearch), the structure-based
//!   direct search, as an extension.
//! * [`baselines`] — SPSA, simulated annealing, and random search on the
//!   same sampling substrate (extensions).
//! * [`pso`] — particle swarm optimization and the PSO + stochastic-simplex
//!   hybrid the paper proposes as future work (§5.2).
//! * [`restart`] — multistart wrapper turning any local method into a
//!   global one (§1.3.5.1).
//!
//! # Quick start
//!
//! ```
//! use noisy_simplex::prelude::*;
//! use stoch_eval::{ConstantNoise, Noisy, Rosenbrock};
//!
//! // Rosenbrock in 3-d observed through noise with sigma0 = 10.
//! let objective = Noisy::new(Rosenbrock::new(3), ConstantNoise(10.0));
//! let init = init::random_uniform(3, -6.0, 3.0, 42);
//! let term = Termination { tolerance: Some(1e-3), max_time: Some(1e5), max_iterations: Some(10_000) };
//! let result = PointComparison::new().run(&objective, init, term, TimeMode::Parallel, 7);
//! assert!(result.iterations > 0);
//! ```

#![warn(missing_docs)]

pub mod algorithm;
pub mod anderson;
pub mod baselines;
pub mod checkpoint;
pub(crate) mod classic;
pub mod compare;
pub mod config;
pub mod det;
pub mod engine;
pub mod geometry;
pub mod init;
pub mod metrics;
pub mod mn;
pub mod pc;
pub mod pcmn;
pub mod pso;
pub mod restart;
pub mod result;
pub mod session;
pub mod termination;
pub mod trace;

/// Convenient glob import for typical use.
pub mod prelude {
    pub use crate::algorithm::SimplexMethod;
    pub use crate::anderson::{AndersonNm, AndersonSearch};
    pub use crate::baselines::{RandomSearch, SimulatedAnnealing, Spsa};
    pub use crate::checkpoint::{CheckpointConfig, CheckpointError, SnapshotInfo};
    pub use crate::config::{
        check_nested_dispatch, AndersonParams, BackendChoice, BreakdownAction, BreakdownPolicy,
        ConfigError, MnParams, NonFinitePolicy, PcConditions, PcParams, SamplingPolicy,
        SimplexConfig, TransportChoice,
    };
    pub use crate::det::Det;
    pub use crate::geometry::Coefficients;
    pub use crate::init;
    pub use crate::metrics::EngineMetrics;
    pub use crate::mn::MaxNoise;
    pub use crate::pc::PointComparison;
    pub use crate::pcmn::PcMn;
    pub use crate::pso::{Pso, PsoSimplex};
    pub use crate::restart::RestartedSimplex;
    pub use crate::result::{Measures, RunMetrics, RunNote, RunResult};
    pub use crate::session::{Driver, RunSession, SessionStatus};
    pub use crate::termination::{StopReason, Termination};
    pub use crate::trace::{StepKind, Trace, TracePoint};
    pub use mw_framework::{FaultPlan, RetryPolicy};
    pub use stoch_eval::clock::TimeMode;
}

pub use prelude::*;
