//! DET — the deterministic downhill simplex (Algorithm 1), applied as-is to
//! noisy observations.
//!
//! Every evaluation (vertex or trial) receives exactly one sample of
//! duration `sampling.initial_dt`; the algorithm never resamples and treats
//! the observed values as truth. On a noisy objective this is the paper's
//! straw baseline: it converges, but often to a point far from the true
//! minimum because noise corrupts the vertex ordering.

use crate::checkpoint::{self, CheckpointError};
use crate::config::SimplexConfig;
use crate::metrics::EngineMetrics;
use crate::result::RunResult;
use crate::session::{Driver, RunSession};
use crate::termination::Termination;
use obs::MetricsRegistry;
use std::path::Path;
use stoch_eval::clock::TimeMode;
use stoch_eval::objective::StochasticObjective;

/// The deterministic Nelder–Mead simplex (paper Algorithm 1).
#[derive(Debug, Clone)]
pub struct Det {
    /// Coefficients and sampling policy.
    pub cfg: SimplexConfig,
}

impl Default for Det {
    fn default() -> Self {
        // DET is the classic algorithm: one evaluation per point, no
        // background refinement of vertices while it deliberates.
        Det {
            cfg: SimplexConfig {
                continuous: false,
                ..SimplexConfig::default()
            },
        }
    }
}

impl Det {
    /// DET with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Optimize `objective` from the initial simplex `init`.
    pub fn run<F: StochasticObjective>(
        &self,
        objective: &F,
        init: Vec<Vec<f64>>,
        term: Termination,
        mode: TimeMode,
        seed: u64,
    ) -> RunResult {
        self.run_with_metrics(objective, init, term, mode, seed, None)
    }

    /// [`run`](Self::run) with optional run accounting: when `registry` is
    /// given, engine step/trial/round tallies are recorded into it and
    /// summarized in [`RunResult::metrics`].
    pub fn run_with_metrics<F: StochasticObjective>(
        &self,
        objective: &F,
        init: Vec<Vec<f64>>,
        term: Termination,
        mode: TimeMode,
        seed: u64,
        registry: Option<&MetricsRegistry>,
    ) -> RunResult {
        let mut session = RunSession::new(
            objective,
            init,
            self.cfg.clone(),
            term,
            mode,
            seed,
            Driver::Det,
        );
        if let Some(reg) = registry {
            session.attach_metrics(EngineMetrics::register(reg));
        }
        session.run_to_completion()
    }

    /// Resume a checkpointed DET run (see
    /// [`SimplexMethod::resume`](crate::algorithm::SimplexMethod::resume)).
    pub fn resume<F: StochasticObjective>(
        &self,
        objective: &F,
        path: &Path,
        term_override: Option<Termination>,
    ) -> Result<RunResult, CheckpointError> {
        self.resume_with_metrics(objective, path, term_override, None)
    }

    /// [`resume`](Self::resume) with optional run accounting.
    pub fn resume_with_metrics<F: StochasticObjective>(
        &self,
        objective: &F,
        path: &Path,
        term_override: Option<Termination>,
        registry: Option<&MetricsRegistry>,
    ) -> Result<RunResult, CheckpointError> {
        let (payload, from) = checkpoint::load_with_fallback(path)?;
        let mut session = RunSession::resume(
            objective,
            self.cfg.clone(),
            &payload,
            term_override,
            Driver::Det,
        )?;
        if from != path {
            session.record_note(crate::result::RunNote::CheckpointFellBack);
        }
        if let Some(reg) = registry {
            session.attach_metrics(EngineMetrics::register(reg));
        }
        Ok(session.run_to_completion())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::random_uniform;
    use crate::termination::StopReason;
    use stoch_eval::functions::{Rosenbrock, Sphere};
    use stoch_eval::noise::{ConstantNoise, ZeroNoise};
    use stoch_eval::objective::Objective;
    use stoch_eval::sampler::Noisy;

    #[test]
    fn det_solves_noise_free_sphere() {
        let obj = Noisy::new(Sphere::new(3), ZeroNoise);
        let init = random_uniform(3, -5.0, 5.0, 11);
        let res = Det::new().run(
            &obj,
            init,
            Termination::tolerance(1e-12),
            TimeMode::Parallel,
            1,
        );
        assert_eq!(res.stop, StopReason::Tolerance);
        let f = Sphere::new(3).value(&res.best_point);
        assert!(f < 1e-8, "final value {f}");
    }

    #[test]
    fn det_solves_noise_free_rosenbrock_2d() {
        let obj = Noisy::new(Rosenbrock::new(2), ZeroNoise);
        let init = random_uniform(2, -2.0, 2.0, 5);
        let res = Det::new().run(
            &obj,
            init,
            Termination::tolerance(1e-14),
            TimeMode::Parallel,
            2,
        );
        let f = Rosenbrock::new(2).value(&res.best_point);
        assert!(f < 1e-6, "final value {f}");
        assert!((res.best_point[0] - 1.0).abs() < 1e-2);
    }

    #[test]
    fn det_converges_prematurely_under_heavy_noise() {
        // The whole point of the paper: DET terminates on a noisy function,
        // but far from the optimum.
        let obj = Noisy::new(Rosenbrock::new(3), ConstantNoise(1000.0));
        let init = random_uniform(3, -6.0, 3.0, 3);
        let res = Det::new().run(
            &obj,
            init,
            Termination {
                tolerance: Some(1e-3),
                max_time: Some(1e5),
                max_iterations: Some(20_000),
            },
            TimeMode::Parallel,
            3,
        );
        let f = Rosenbrock::new(3).value(&res.best_point);
        assert!(f > 1e-3, "DET should not reach the optimum, got {f}");
    }

    #[test]
    fn det_respects_iteration_cap() {
        let obj = Noisy::new(Sphere::new(2), ConstantNoise(10.0));
        let init = random_uniform(2, -5.0, 5.0, 7);
        let res = Det::new().run(
            &obj,
            init,
            Termination {
                tolerance: None,
                max_time: None,
                max_iterations: Some(25),
            },
            TimeMode::Parallel,
            4,
        );
        assert_eq!(res.stop, StopReason::MaxIterations);
        assert_eq!(res.iterations, 25);
        assert_eq!(res.trace.len(), 25);
    }

    #[test]
    fn det_trace_is_monotone_in_time() {
        let obj = Noisy::new(Sphere::new(2), ConstantNoise(1.0));
        let init = random_uniform(2, -5.0, 5.0, 9);
        let res = Det::new().run(
            &obj,
            init,
            Termination {
                tolerance: None,
                max_time: None,
                max_iterations: Some(50),
            },
            TimeMode::Parallel,
            5,
        );
        let pts = res.trace.points();
        for w in pts.windows(2) {
            assert!(w[1].time >= w[0].time);
            assert_eq!(w[1].iteration, w[0].iteration + 1);
        }
    }
}
