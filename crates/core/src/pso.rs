//! Particle swarm optimization (§1.3.3.3) on the noisy-sampling substrate,
//! and the PSO + stochastic-simplex hybrid the paper proposes as future
//! work (§5.2):
//!
//! > "particle swarm optimization suffers from the disadvantage of slow
//! > convergence in the refined search stages ... while the maxnoise,
//! > point-to-point and simplex in general lack the ability to converge to
//! > a global minimum but converge quickly to a local minimum. An ability
//! > to use PSO with maxnoise and point-to-point may prove to be another
//! > step forward."
//!
//! [`Pso`] runs a standard global-best swarm over noisy estimates;
//! [`PsoSimplex`] runs a PSO exploration phase, builds a simplex from the
//! best particles, and refines it with any [`SimplexMethod`].

use crate::algorithm::SimplexMethod;
use crate::config::BackendChoice;
use crate::result::RunResult;
use crate::termination::{StopReason, Termination};
use crate::trace::{StepKind, Trace, TracePoint};
use rand::rngs::StdRng;
use rand::Rng;
use stoch_eval::backend::eval_round;
use stoch_eval::clock::{TimeMode, VirtualClock};
use stoch_eval::objective::StochasticObjective;
use stoch_eval::rng::{rng_from_seed, SeedSequence};

/// Standard global-best particle swarm over noisy estimates.
#[derive(Debug, Clone)]
pub struct Pso {
    /// Number of particles.
    pub swarm: usize,
    /// Inertia weight `w`.
    pub inertia: f64,
    /// Cognitive acceleration `c1` (pull towards the particle's own best).
    pub cognitive: f64,
    /// Social acceleration `c2` (pull towards the global best).
    pub social: f64,
    /// Sampling time per evaluation.
    pub eval_dt: f64,
    /// Search box lower bound per coordinate.
    pub lo: f64,
    /// Search box upper bound per coordinate.
    pub hi: f64,
    /// Which backend executes each swarm evaluation round.
    pub backend: BackendChoice,
}

impl Default for Pso {
    fn default() -> Self {
        Pso {
            swarm: 20,
            inertia: 0.72,
            cognitive: 1.49,
            social: 1.49,
            eval_dt: 1.0,
            lo: -5.0,
            hi: 5.0,
            backend: BackendChoice::default(),
        }
    }
}

impl Pso {
    /// PSO over the box `[lo, hi)^d`.
    pub fn in_box(lo: f64, hi: f64) -> Self {
        Pso {
            lo,
            hi,
            ..Pso::default()
        }
    }

    /// Run the swarm. One iteration = one concurrent evaluation round of
    /// every particle (the particles are independent, so in parallel mode
    /// the round costs one `eval_dt`).
    pub fn run<F: StochasticObjective>(
        &self,
        objective: &F,
        term: Termination,
        mode: TimeMode,
        seed: u64,
    ) -> RunResult {
        let d = objective.dim();
        let mut seeds = SeedSequence::new(seed);
        let mut rng: StdRng = rng_from_seed(seeds.next_seed());
        let mut clock = VirtualClock::new(mode);
        let mut total = 0.0;
        let mut trace = Trace::new();

        let mut pos: Vec<Vec<f64>> = (0..self.swarm)
            .map(|_| (0..d).map(|_| rng.gen_range(self.lo..self.hi)).collect())
            .collect();
        let vmax = (self.hi - self.lo) * 0.2;
        let mut vel: Vec<Vec<f64>> = (0..self.swarm)
            .map(|_| (0..d).map(|_| rng.gen_range(-vmax..vmax)).collect())
            .collect();

        // Concurrent evaluation of the whole swarm: one backend round.
        let backend = self.backend.build::<F::Stream>();
        let eval_all = |pos: &[Vec<f64>],
                        seeds: &mut SeedSequence,
                        clock: &mut VirtualClock,
                        total: &mut f64|
         -> Vec<f64> {
            eval_round(
                backend.as_ref(),
                objective,
                pos,
                self.eval_dt,
                seeds,
                clock,
                total,
            )
        };

        let mut vals = eval_all(&pos, &mut seeds, &mut clock, &mut total);
        let mut pbest = pos.clone();
        let mut pbest_val = vals.clone();
        let mut gbest_idx = argmin(&vals);
        let mut gbest = pos[gbest_idx].clone();
        let mut gbest_val = vals[gbest_idx];
        let mut k: u64 = 0;

        let stop = loop {
            if let Some(r) = term.budget_exceeded(clock.elapsed(), k) {
                break r;
            }
            if term.spread_met(&pbest_val) {
                break StopReason::Tolerance;
            }
            for i in 0..self.swarm {
                for j in 0..d {
                    let r1: f64 = rng.gen();
                    let r2: f64 = rng.gen();
                    vel[i][j] = self.inertia * vel[i][j]
                        + self.cognitive * r1 * (pbest[i][j] - pos[i][j])
                        + self.social * r2 * (gbest[j] - pos[i][j]);
                    vel[i][j] = vel[i][j].clamp(-vmax, vmax);
                    pos[i][j] += vel[i][j];
                }
            }
            vals = eval_all(&pos, &mut seeds, &mut clock, &mut total);
            for i in 0..self.swarm {
                if vals[i] < pbest_val[i] {
                    pbest_val[i] = vals[i];
                    pbest[i] = pos[i].clone();
                }
            }
            gbest_idx = argmin(&pbest_val);
            if pbest_val[gbest_idx] < gbest_val {
                gbest_val = pbest_val[gbest_idx];
                gbest = pbest[gbest_idx].clone();
            }
            k += 1;
            trace.push(TracePoint {
                time: clock.elapsed(),
                iteration: k,
                best_observed: gbest_val,
                best_true: objective.true_value(&gbest),
                diameter: swarm_diameter(&pos),
                step: StepKind::Reflect,
            });
        };

        RunResult {
            best_point: gbest,
            best_observed: gbest_val,
            iterations: k,
            elapsed: clock.elapsed(),
            total_sampling: total,
            stop,
            trace,
            metrics: None,
            notes: crate::result::notes_from_backend(backend.as_ref()),
        }
    }
}

fn argmin(vals: &[f64]) -> usize {
    vals.iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap_or(0)
}

fn swarm_diameter(pos: &[Vec<f64>]) -> f64 {
    let mut d = 0.0f64;
    for i in 0..pos.len() {
        for j in i + 1..pos.len() {
            d = d.max(crate::geometry::distance(&pos[i], &pos[j]));
        }
    }
    d
}

/// The hybrid the paper recommends (§5.2): a PSO exploration phase followed
/// by a stochastic-simplex refinement phase started from the best swarm
/// positions.
#[derive(Debug, Clone)]
pub struct PsoSimplex {
    /// The exploration swarm.
    pub pso: Pso,
    /// Fraction of the time budget given to exploration (rest refines).
    pub explore_fraction: f64,
    /// The local refiner (MN, PC, PC+MN, ...).
    pub refiner: SimplexMethod,
}

impl PsoSimplex {
    /// Hybrid with the given refiner, splitting the budget 30/70.
    pub fn new(pso: Pso, refiner: SimplexMethod) -> Self {
        PsoSimplex {
            pso,
            explore_fraction: 0.3,
            refiner,
        }
    }

    /// Run exploration then refinement under a shared budget.
    pub fn run<F: StochasticObjective>(
        &self,
        objective: &F,
        term: Termination,
        mode: TimeMode,
        seed: u64,
    ) -> RunResult {
        let budget = term.max_time.unwrap_or(1e5);
        let explore_term = Termination {
            tolerance: None,
            max_time: Some(budget * self.explore_fraction),
            max_iterations: term.max_iterations,
        };
        // Phase 1: exploration. Re-run PSO internals to extract the ranked
        // personal bests (the public result only carries gbest).
        let pso_res = self.pso.run(objective, explore_term, mode, seed);

        // Seed the simplex: gbest plus d axis-perturbed copies scaled by the
        // final swarm spread (a compact simplex around the promising basin).
        let scale = pso_res
            .trace
            .points()
            .last()
            .map(|p| (p.diameter * 0.25).max(1e-3))
            .unwrap_or(0.5);
        let init = crate::init::axis_aligned(&pso_res.best_point, scale);

        let refine_term = Termination {
            tolerance: term.tolerance,
            max_time: Some(budget * (1.0 - self.explore_fraction)),
            max_iterations: term.max_iterations,
        };
        let mut refined =
            self.refiner
                .run(objective, init, refine_term, mode, seed.wrapping_add(1));

        // Merge accounting so the result reflects the whole hybrid run; keep
        // the better of the two phase outcomes.
        refined.elapsed += pso_res.elapsed;
        refined.total_sampling += pso_res.total_sampling;
        refined.iterations += pso_res.iterations;
        if pso_res.best_observed < refined.best_observed {
            refined.best_point = pso_res.best_point;
            refined.best_observed = pso_res.best_observed;
        }
        refined.trace = {
            let mut t = pso_res.trace;
            for p in refined.trace.points() {
                t.push(TracePoint {
                    time: p.time + pso_res.elapsed.min(budget * self.explore_fraction),
                    ..*p
                });
            }
            t
        };
        refined
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mn::MaxNoise;
    use stoch_eval::functions::{Rastrigin, Rosenbrock, Sphere};
    use stoch_eval::noise::ConstantNoise;
    use stoch_eval::objective::Objective;
    use stoch_eval::sampler::Noisy;

    fn budget(t: f64) -> Termination {
        Termination {
            tolerance: None,
            max_time: Some(t),
            max_iterations: Some(5_000),
        }
    }

    #[test]
    fn pso_descends_on_noisy_sphere() {
        let sphere = Sphere::new(4);
        // Pinned Gaussian: the descent threshold is calibrated for Gaussian
        // noise and need not hold under an NSX_NOISE chaos run.
        let obj = Noisy::gaussian(sphere, ConstantNoise(1.0));
        let res = Pso::in_box(-5.0, 5.0).run(&obj, budget(3e3), TimeMode::Parallel, 1);
        assert!(
            sphere.value(&res.best_point) < 1.0,
            "PSO final {}",
            sphere.value(&res.best_point)
        );
        assert!(res.iterations > 10);
    }

    #[test]
    fn pso_escapes_rastrigin_local_minima_better_than_pure_simplex() {
        // Multimodal stress: PSO's global phase should reach a deeper basin
        // than a single local simplex started in the same box, on average.
        let rast = Rastrigin::new(2);
        let obj = Noisy::new(rast, ConstantNoise(0.5));
        let mut pso_sum = 0.0;
        let mut nm_sum = 0.0;
        for s in 0..4u64 {
            let pso = Pso::in_box(-5.0, 5.0).run(&obj, budget(4e3), TimeMode::Parallel, s);
            let init = crate::init::random_uniform(2, -5.0, 5.0, 77 + s);
            let nm = MaxNoise::with_k(2.0).run(&obj, init, budget(4e3), TimeMode::Parallel, s);
            pso_sum += rast.value(&pso.best_point);
            nm_sum += rast.value(&nm.best_point);
        }
        assert!(
            pso_sum <= nm_sum + 4.0,
            "PSO {pso_sum} should be competitive with local simplex {nm_sum}"
        );
    }

    #[test]
    fn hybrid_refines_beyond_pso_alone() {
        // On a unimodal function the simplex refinement phase should reach
        // values at least as good as exploration alone under the same
        // budget, on (geometric) average over seeds.
        let rosen = Rosenbrock::new(2);
        let obj = Noisy::new(rosen, ConstantNoise(0.5));
        let t = budget(6e3);
        let mut log_sum = 0.0;
        for s in 0..4u64 {
            let pso_only = Pso::in_box(-5.0, 5.0).run(&obj, t, TimeMode::Parallel, s);
            let hybrid = PsoSimplex::new(
                Pso::in_box(-5.0, 5.0),
                SimplexMethod::Mn(MaxNoise::with_k(2.0)),
            )
            .run(&obj, t, TimeMode::Parallel, s);
            let fh = rosen.value(&hybrid.best_point).max(1e-12);
            let fp = rosen.value(&pso_only.best_point).max(1e-12);
            log_sum += (fh / fp).log10();
        }
        assert!(
            log_sum < 1.0,
            "hybrid should not lose on average: {log_sum}"
        );
    }

    #[test]
    fn hybrid_accounts_both_phases() {
        let obj = Noisy::new(Sphere::new(2), ConstantNoise(1.0));
        let hybrid = PsoSimplex::new(
            Pso::in_box(-3.0, 3.0),
            SimplexMethod::Mn(MaxNoise::with_k(2.0)),
        );
        let res = hybrid.run(&obj, budget(4e3), TimeMode::Parallel, 5);
        // Elapsed covers exploration + refinement but respects the budget
        // within a round's slack.
        assert!(res.elapsed > 4e3 * 0.3);
        assert!(res.elapsed < 4e3 * 1.5);
        assert!(res.iterations > 0);
    }
}
