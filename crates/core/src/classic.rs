//! The classic Nelder–Mead iteration body (Algorithm 1), parameterized by a
//! *gate* (sampling performed before each decision) and a *trial
//! preparation* policy (sampling performed on prospective points before they
//! are compared).
//!
//! DET, MN, and the Anderson-criterion variant share this body exactly — the
//! paper's Algorithms 1 and 2 differ only in the MN wait loop (line 4) — so
//! we implement it once. The PC family has different comparison structure
//! and lives in [`crate::pc`].

use crate::checkpoint::{self, CheckpointError};
use crate::config::SimplexConfig;
use crate::engine::{Engine, SlotId};
use crate::geometry::{contract, expand, reflect};
use crate::metrics::EngineMetrics;
use crate::result::RunResult;
use crate::termination::{StopReason, Termination};
use crate::trace::StepKind;
use obs::MetricsRegistry;
use std::path::Path;
use stoch_eval::clock::TimeMode;
use stoch_eval::objective::StochasticObjective;

/// Safety cap on gate/resample rounds within a single decision.
pub(crate) const MAX_WAIT_ROUNDS: u32 = 10_000;

/// Run the classic iteration body until termination.
///
/// * `gate` runs before each iteration's comparisons; it may sample and may
///   demand a stop (budget exhausted mid-wait).
/// * `prepare` samples a freshly-opened trial slot before it is compared.
/// * `registry`, when given, attaches run accounting to the engine.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_classic<F, G, P>(
    objective: &F,
    init: Vec<Vec<f64>>,
    cfg: SimplexConfig,
    term: Termination,
    mode: TimeMode,
    seed: u64,
    registry: Option<&MetricsRegistry>,
    gate: G,
    prepare: P,
) -> RunResult
where
    F: StochasticObjective,
    G: FnMut(&mut Engine<F>) -> Option<StopReason>,
    P: FnMut(&mut Engine<F>, SlotId),
{
    let mut eng = Engine::new(objective, init, cfg, term, mode, seed);
    if let Some(reg) = registry {
        eng.attach_metrics(EngineMetrics::register(reg));
    }
    classic_loop(eng, gate, prepare)
}

/// Resume a classic-body run from a checkpoint file (with retention
/// fallback), then continue it to termination. `term_override` replaces the
/// persisted termination criteria when given.
pub(crate) fn resume_classic<F, G, P>(
    objective: &F,
    cfg: SimplexConfig,
    path: &Path,
    term_override: Option<Termination>,
    registry: Option<&MetricsRegistry>,
    gate: G,
    prepare: P,
) -> Result<RunResult, CheckpointError>
where
    F: StochasticObjective,
    G: FnMut(&mut Engine<F>) -> Option<StopReason>,
    P: FnMut(&mut Engine<F>, SlotId),
{
    let (payload, _from) = checkpoint::load_with_fallback(path)?;
    let mut eng = Engine::resume(objective, cfg, &payload, term_override)?;
    if let Some(reg) = registry {
        eng.attach_metrics(EngineMetrics::register(reg));
    }
    Ok(classic_loop(eng, gate, prepare))
}

/// The classic iteration loop over an already-built engine (fresh or
/// resumed). Checkpoints, when configured, are written at the loop top —
/// between iterations, where no streams are in flight.
pub(crate) fn classic_loop<F, G, P>(mut eng: Engine<F>, mut gate: G, mut prepare: P) -> RunResult
where
    F: StochasticObjective,
    G: FnMut(&mut Engine<F>) -> Option<StopReason>,
    P: FnMut(&mut Engine<F>, SlotId),
{
    let coeff = eng.config().coefficients;
    loop {
        eng.checkpoint_if_due();
        if let Some(r) = eng.should_stop() {
            return eng.finish(r);
        }
        if let Some(r) = gate(&mut eng) {
            return eng.finish(r);
        }

        let ord = eng.ordering();
        let cent = eng.centroid_excluding(ord.max);

        // Reflection (Algorithm 1 line 3).
        let refl_x = reflect(&cent, eng.point(ord.max), coeff.alpha);
        let refl = eng.open_trial(refl_x);
        prepare(&mut eng, refl);
        if let Some(r) = eng.budget_stop() {
            return eng.finish(r);
        }

        let g_ref = eng.estimate(refl).value;
        if g_ref < eng.estimate(ord.min).value {
            // Expansion branch (lines 4–10).
            let exp_x = expand(&cent, eng.point(refl), coeff.gamma);
            let exp = eng.open_trial(exp_x);
            prepare(&mut eng, exp);
            if eng.estimate(exp).value < eng.estimate(refl).value {
                eng.replace_vertex(ord.max, exp);
                eng.level_mut().on_expand();
                eng.drop_trials();
                eng.record(StepKind::Expand);
            } else {
                eng.replace_vertex(ord.max, refl);
                eng.drop_trials();
                eng.record(StepKind::Reflect);
            }
        } else if g_ref < eng.estimate(ord.max).value {
            // Plain reflection (lines 12–13; note the paper compares against
            // g(max), not the canonical g(smax)).
            eng.replace_vertex(ord.max, refl);
            eng.drop_trials();
            eng.record(StepKind::Reflect);
        } else {
            // Contraction branch (lines 15–23).
            let con_x = contract(&cent, eng.point(ord.max), coeff.beta);
            let con = eng.open_trial(con_x);
            prepare(&mut eng, con);
            if eng.estimate(con).value < eng.estimate(ord.max).value {
                eng.replace_vertex(ord.max, con);
                eng.level_mut().on_contract();
                eng.drop_trials();
                eng.record(StepKind::Contract);
            } else {
                eng.drop_trials();
                eng.collapse(ord.min);
                eng.record(StepKind::Collapse);
            }
        }
    }
}

/// Internal variance of the vertex values: `mean_i (g_i − ḡ)²` — the
/// right-hand side of the MN gate (Eq. 2.3).
pub(crate) fn internal_variance(values: &[f64]) -> f64 {
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    values.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / n
}

/// Largest per-vertex noise variance `max_i σ_i²(t_i)` — the left-hand side
/// of the MN gate.
pub(crate) fn max_noise_variance<F: StochasticObjective>(eng: &Engine<F>) -> f64 {
    eng.vertex_estimates()
        .iter()
        .map(|e| e.std_err * e.std_err)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn internal_variance_matches_population_variance() {
        // values 1,2,3: mean 2, mean square dev = 2/3.
        assert!((internal_variance(&[1.0, 2.0, 3.0]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(internal_variance(&[5.0, 5.0, 5.0]), 0.0);
    }
}
