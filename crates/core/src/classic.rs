//! The classic Nelder–Mead iteration body (Algorithm 1), parameterized by a
//! *trial preparation* policy (sampling performed on prospective points
//! before they are compared).
//!
//! DET, MN, and the Anderson-criterion variant share this body exactly — the
//! paper's Algorithms 1 and 2 differ only in the MN wait loop (line 4) — so
//! we implement it once. The PC family has different comparison structure
//! and lives in [`crate::pc`]. The loop driving this body (checkpoint →
//! stop check → gate → iteration) is [`crate::session::RunSession`].

use crate::engine::{Engine, SlotId};
use crate::geometry::{contract, expand, reflect};
use crate::termination::StopReason;
use crate::trace::StepKind;
use stoch_eval::objective::StochasticObjective;

/// Safety cap on gate/resample rounds within a single decision.
pub(crate) const MAX_WAIT_ROUNDS: u32 = 10_000;

/// One classic Nelder–Mead iteration: reflect, then expand / accept /
/// contract / collapse. `prepare` samples a freshly-opened trial slot before
/// it is compared. Returns `Some(stop)` when the sampling budget ran out
/// mid-iteration, `None` after a completed (recorded) step.
///
/// The pre-iteration work — due checkpoints, termination checks, and the
/// algorithm's gate (MN/Anderson wait loops) — belongs to the caller; see
/// [`RunSession::step`](crate::session::RunSession::step).
pub(crate) fn classic_iteration<F, P>(eng: &mut Engine<F>, mut prepare: P) -> Option<StopReason>
where
    F: StochasticObjective,
    P: FnMut(&mut Engine<F>, SlotId),
{
    let coeff = eng.config().coefficients;
    let ord = eng.ordering();
    let cent = eng.centroid_excluding(ord.max);

    // Reflection (Algorithm 1 line 3).
    let refl_x = reflect(&cent, eng.point(ord.max), coeff.alpha);
    let refl = eng.open_trial(refl_x);
    prepare(eng, refl);
    if let Some(r) = eng.budget_stop() {
        return Some(r);
    }

    let g_ref = eng.estimate(refl).value;
    if g_ref < eng.estimate(ord.min).value {
        // Expansion branch (lines 4–10).
        let exp_x = expand(&cent, eng.point(refl), coeff.gamma);
        let exp = eng.open_trial(exp_x);
        prepare(eng, exp);
        if eng.estimate(exp).value < eng.estimate(refl).value {
            eng.replace_vertex(ord.max, exp);
            eng.level_mut().on_expand();
            eng.drop_trials();
            eng.record(StepKind::Expand);
        } else {
            eng.replace_vertex(ord.max, refl);
            eng.drop_trials();
            eng.record(StepKind::Reflect);
        }
    } else if g_ref < eng.estimate(ord.max).value {
        // Plain reflection (lines 12–13; note the paper compares against
        // g(max), not the canonical g(smax)).
        eng.replace_vertex(ord.max, refl);
        eng.drop_trials();
        eng.record(StepKind::Reflect);
    } else {
        // Contraction branch (lines 15–23).
        let con_x = contract(&cent, eng.point(ord.max), coeff.beta);
        let con = eng.open_trial(con_x);
        prepare(eng, con);
        if eng.estimate(con).value < eng.estimate(ord.max).value {
            eng.replace_vertex(ord.max, con);
            eng.level_mut().on_contract();
            eng.drop_trials();
            eng.record(StepKind::Contract);
        } else {
            eng.drop_trials();
            eng.collapse(ord.min);
            eng.record(StepKind::Collapse);
        }
    }
    None
}

/// Internal variance of the vertex values: `mean_i (g_i − ḡ)²` — the
/// right-hand side of the MN gate (Eq. 2.3).
pub(crate) fn internal_variance(values: &[f64]) -> f64 {
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    values.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / n
}

/// Largest per-vertex noise variance `max_i σ_i²(t_i)` — the left-hand side
/// of the MN gate.
pub(crate) fn max_noise_variance<F: StochasticObjective>(eng: &Engine<F>) -> f64 {
    eng.vertex_estimates()
        .iter()
        .map(|e| e.std_err * e.std_err)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn internal_variance_matches_population_variance() {
        // values 1,2,3: mean 2, mean square dev = 2/3.
        assert!((internal_variance(&[1.0, 2.0, 3.0]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(internal_variance(&[5.0, 5.0, 5.0]), 0.0);
    }
}
