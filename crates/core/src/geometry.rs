//! Pure simplex geometry: the transformation operations of §2.1 and the
//! size/contraction-level bookkeeping of §2.2.
//!
//! All functions here are deterministic and allocation-explicit; the
//! stochastic decision logic lives in the per-algorithm modules.

/// Nelder–Mead transformation coefficients (§2.1). The paper's optimal
/// settings are `α = 1` (reflection), `β = 0.5` (contraction), `γ = 2`
/// (expansion).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Coefficients {
    /// Reflection coefficient `α`.
    pub alpha: f64,
    /// Contraction coefficient `β ∈ (0, 1)`.
    pub beta: f64,
    /// Expansion coefficient `γ > 1`.
    pub gamma: f64,
}

impl Default for Coefficients {
    fn default() -> Self {
        Coefficients {
            alpha: 1.0,
            beta: 0.5,
            gamma: 2.0,
        }
    }
}

impl Coefficients {
    /// Dimension-adaptive coefficients (Gao & Han 2012): in high dimensions
    /// the classical expansion/contraction factors make the simplex degrade
    /// — relevant to the paper's d = 20/50/100 scale-up runs. `α = 1`,
    /// `γ = 1 + 2/d`, `β = (3/4) − 1/(2d)` (their shrink factor is handled
    /// by the collapse path).
    pub fn adaptive(d: usize) -> Self {
        assert!(d >= 2, "adaptive coefficients need d >= 2");
        let df = d as f64;
        Coefficients {
            alpha: 1.0,
            beta: 0.75 - 1.0 / (2.0 * df),
            gamma: 1.0 + 2.0 / df,
        }
    }

    /// Validate the classical constraints (`α > 0`, `0 < β < 1`, `γ > 1`).
    pub fn validate(&self) -> Result<(), String> {
        if self.alpha <= 0.0 || self.alpha.is_nan() {
            return Err(format!("alpha must be > 0, got {}", self.alpha));
        }
        if !(self.beta > 0.0 && self.beta < 1.0) || self.beta.is_nan() {
            return Err(format!("beta must be in (0,1), got {}", self.beta));
        }
        if self.gamma <= 1.0 || self.gamma.is_nan() {
            return Err(format!("gamma must be > 1, got {}", self.gamma));
        }
        Ok(())
    }
}

/// Centroid of `points`, excluding index `exclude`.
pub fn centroid_excluding(points: &[Vec<f64>], exclude: usize) -> Vec<f64> {
    let d = points[0].len();
    let n = points.len() - 1;
    assert!(n >= 1, "need at least two points");
    let mut c = vec![0.0; d];
    for (i, p) in points.iter().enumerate() {
        if i == exclude {
            continue;
        }
        for (cj, pj) in c.iter_mut().zip(p) {
            *cj += pj;
        }
    }
    for cj in &mut c {
        *cj /= n as f64;
    }
    c
}

/// Reflection: `θ_ref = (1 + α)·θ_cent − α·θ_max` (with `α = 1`:
/// `2·θ_cent − θ_max`).
pub fn reflect(centroid: &[f64], worst: &[f64], alpha: f64) -> Vec<f64> {
    centroid
        .iter()
        .zip(worst)
        .map(|(&c, &w)| (1.0 + alpha) * c - alpha * w)
        .collect()
}

/// Expansion: `θ_exp = γ·θ_ref − (γ − 1)·θ_cent` (with `γ = 2`:
/// `2·θ_ref − θ_cent`).
pub fn expand(centroid: &[f64], reflected: &[f64], gamma: f64) -> Vec<f64> {
    centroid
        .iter()
        .zip(reflected)
        .map(|(&c, &r)| gamma * r - (gamma - 1.0) * c)
        .collect()
}

/// Contraction: `θ_con = β·θ_max + (1 − β)·θ_cent` (with `β = 0.5`: the
/// midpoint of worst and centroid).
pub fn contract(centroid: &[f64], worst: &[f64], beta: f64) -> Vec<f64> {
    centroid
        .iter()
        .zip(worst)
        .map(|(&c, &w)| beta * w + (1.0 - beta) * c)
        .collect()
}

/// Collapse every point (except `keep`) halfway towards point `keep`:
/// `θ_i ← β·θ_i + (1 − β)·θ_min`.
pub fn collapse_towards(points: &mut [Vec<f64>], keep: usize, beta: f64) {
    let towards = points[keep].clone();
    for (i, p) in points.iter_mut().enumerate() {
        if i == keep {
            continue;
        }
        for (pj, tj) in p.iter_mut().zip(&towards) {
            *pj = beta * *pj + (1.0 - beta) * tj;
        }
    }
}

/// Euclidean distance between two points.
pub fn distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Simplex "diameter" per Eq. 2.2: the maximum pairwise vertex distance.
pub fn diameter(points: &[Vec<f64>]) -> f64 {
    let mut d = 0.0f64;
    for i in 0..points.len() {
        for j in i + 1..points.len() {
            d = d.max(distance(&points[i], &points[j]));
        }
    }
    d
}

/// Contraction-level bookkeeping (§2.2): the simplex size is always
/// `2^{-l}` times the initial size. Contraction increments `l`, expansion
/// decrements it, reflection leaves it unchanged, collapse adds `d`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ContractionLevel(pub i64);

impl ContractionLevel {
    /// Record a contraction step (size halves).
    pub fn on_contract(&mut self) {
        self.0 += 1;
    }
    /// Record an expansion step (size doubles).
    pub fn on_expand(&mut self) {
        self.0 -= 1;
    }
    /// Record a collapse in a `d`-dimensional space (paper: `l += d`).
    pub fn on_collapse(&mut self, d: usize) {
        self.0 += d as i64;
    }
    /// The size multiplier `2^{-l}` relative to the initial simplex.
    pub fn size_factor(&self) -> f64 {
        2f64.powi(-(self.0.clamp(i64::from(i32::MIN), i64::from(i32::MAX)) as i32))
    }
}

/// Rank the vertices by observed value: indices of the highest (`max`),
/// second-highest (`smax`), and lowest (`min`) objective values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ordering {
    /// Index of the worst (highest) vertex.
    pub max: usize,
    /// Index of the second-worst vertex.
    pub smax: usize,
    /// Index of the best (lowest) vertex.
    pub min: usize,
}

/// Compute the [`Ordering`] from per-vertex observed values.
///
/// Ties are broken by index for determinism. Requires at least two values.
pub fn order(values: &[f64]) -> Ordering {
    assert!(values.len() >= 2, "simplex needs >= 2 vertices");
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| {
        values[a]
            .partial_cmp(&values[b])
            .expect("NaN objective value")
            .then(a.cmp(&b))
    });
    Ordering {
        min: idx[0],
        smax: idx[idx.len() - 2],
        max: idx[idx.len() - 1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_coefficients_are_the_papers() {
        let c = Coefficients::default();
        assert_eq!((c.alpha, c.beta, c.gamma), (1.0, 0.5, 2.0));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn adaptive_coefficients_shrink_with_dimension() {
        let c2 = Coefficients::adaptive(2);
        assert!(c2.validate().is_ok());
        assert_eq!(c2.gamma, 2.0);
        assert_eq!(c2.beta, 0.5);
        let c100 = Coefficients::adaptive(100);
        assert!(c100.validate().is_ok());
        assert!(c100.gamma < c2.gamma && c100.gamma > 1.0);
        assert!(c100.beta > c2.beta && c100.beta < 1.0);
    }

    #[test]
    fn coefficient_validation_rejects_bad_values() {
        assert!(Coefficients {
            alpha: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(Coefficients {
            beta: 1.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(Coefficients {
            gamma: 1.0,
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn centroid_excludes_worst() {
        let pts = vec![vec![0.0, 0.0], vec![2.0, 0.0], vec![0.0, 2.0]];
        assert_eq!(centroid_excluding(&pts, 0), vec![1.0, 1.0]);
        assert_eq!(centroid_excluding(&pts, 2), vec![1.0, 0.0]);
    }

    #[test]
    fn reflect_matches_algorithm_1_line_3() {
        // ref = 2*cent - max for alpha = 1.
        let r = reflect(&[1.0, 1.0], &[3.0, 0.0], 1.0);
        assert_eq!(r, vec![-1.0, 2.0]);
    }

    #[test]
    fn expand_matches_algorithm_1_line_5() {
        // exp = 2*ref - cent for gamma = 2.
        let e = expand(&[1.0, 1.0], &[-1.0, 2.0], 2.0);
        assert_eq!(e, vec![-3.0, 3.0]);
    }

    #[test]
    fn contract_is_midpoint_for_beta_half() {
        let c = contract(&[1.0, 1.0], &[3.0, 0.0], 0.5);
        assert_eq!(c, vec![2.0, 0.5]);
    }

    #[test]
    fn collapse_halves_towards_min() {
        let mut pts = vec![vec![0.0, 0.0], vec![4.0, 0.0], vec![0.0, 4.0]];
        collapse_towards(&mut pts, 0, 0.5);
        assert_eq!(pts[0], vec![0.0, 0.0]);
        assert_eq!(pts[1], vec![2.0, 0.0]);
        assert_eq!(pts[2], vec![0.0, 2.0]);
    }

    #[test]
    fn reflection_preserves_diameter_scale() {
        // A reflection replaces the worst vertex with its mirror image, so
        // distances to the centroid are preserved for that vertex.
        let pts = vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 1.0]];
        let cent = centroid_excluding(&pts, 2);
        let r = reflect(&cent, &pts[2], 1.0);
        assert!((distance(&cent, &r) - distance(&cent, &pts[2])).abs() < 1e-12);
    }

    #[test]
    fn diameter_of_unit_right_triangle() {
        let pts = vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 1.0]];
        assert!((diameter(&pts) - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn contraction_level_tracks_size() {
        let mut l = ContractionLevel::default();
        assert_eq!(l.size_factor(), 1.0);
        l.on_contract();
        assert_eq!(l.size_factor(), 0.5);
        l.on_expand();
        l.on_expand();
        assert_eq!(l.size_factor(), 2.0);
        l.on_collapse(3);
        assert_eq!(l.0, 2);
        assert_eq!(l.size_factor(), 0.25);
    }

    #[test]
    fn ordering_identifies_max_smax_min() {
        let o = order(&[3.0, 1.0, 7.0, 5.0]);
        assert_eq!(o.max, 2);
        assert_eq!(o.smax, 3);
        assert_eq!(o.min, 1);
    }

    #[test]
    fn ordering_breaks_ties_by_index() {
        let o = order(&[1.0, 1.0, 1.0]);
        assert_eq!(o.min, 0);
        assert_eq!(o.smax, 1);
        assert_eq!(o.max, 2);
    }

    #[test]
    fn collapse_then_diameter_halves() {
        let mut pts = vec![vec![0.0, 0.0], vec![2.0, 0.0], vec![0.0, 2.0]];
        let d0 = diameter(&pts);
        collapse_towards(&mut pts, 0, 0.5);
        assert!((diameter(&pts) - d0 / 2.0).abs() < 1e-12);
    }
}
