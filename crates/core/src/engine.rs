//! The shared execution engine for all simplex-family algorithms.
//!
//! The engine owns the simplex vertices, their sampling streams, the virtual
//! clock, the trace, and termination checking. Algorithms (DET/MN/PC/PC+MN/
//! Anderson) are thin decision layers over this engine: they open *trial*
//! slots for prospective points (reflection, expansion, contraction), ask the
//! engine to extend sampling, and accept moves.
//!
//! This mirrors the paper's MW deployment (§3.1): the master holds the
//! simplex logic; each slot corresponds to a worker/vertex whose sampling
//! runs concurrently, so a "round" that extends several slots costs the
//! maximum of the individual extensions in parallel time.

use crate::checkpoint::{self, CheckpointError};
use crate::config::{BreakdownAction, NonFinitePolicy, SamplingPolicy, SimplexConfig};
use crate::geometry::{self, centroid_excluding, diameter, ContractionLevel, Ordering};
use crate::metrics::EngineMetrics;
use crate::result::{RunMetrics, RunNote, RunResult};
use crate::termination::{StopReason, Termination};
use crate::trace::{StepKind, Trace, TracePoint};
use std::sync::Arc;
use stoch_eval::backend::{SamplingBackend, StreamJob};
use stoch_eval::clock::{TimeMode, VirtualClock};
use stoch_eval::codec::{CodecError, Reader, Writer};
use stoch_eval::objective::{Estimate, SampleStream, StochasticObjective};
use stoch_eval::rng::SeedSequence;
use stoch_eval::stats::EstimatorChoice;

/// Identifier of a slot (vertex or trial) inside the engine.
pub type SlotId = usize;

/// A vertex or trial slot. The stream is `None` only while a round is in
/// flight on the backend (the jobs own the streams in transit).
struct Slot<S> {
    x: Vec<f64>,
    stream: Option<S>,
}

impl<S> Slot<S> {
    fn stream(&self) -> &S {
        self.stream.as_ref().expect("stream in flight")
    }
}

/// Execution engine: simplex state + sampling + accounting.
pub struct Engine<'a, F: StochasticObjective> {
    objective: &'a F,
    cfg: SimplexConfig,
    term: Termination,
    slots: Vec<Slot<F::Stream>>,
    n_vertices: usize,
    backend: Arc<dyn SamplingBackend<F::Stream>>,
    clock: VirtualClock,
    seeds: SeedSequence,
    trace: Trace,
    iterations: u64,
    total_sampling: f64,
    level: ContractionLevel,
    metrics: Option<EngineMetrics>,
    /// Iteration at which the last checkpoint was written (0 = never).
    last_ckpt: u64,
    /// Notes accumulated so far (including those carried over a resume).
    notes: Vec<RunNote>,
    /// Non-finite samples observed across all dispatches so far.
    nonfinite_seen: u64,
    /// Set under [`NonFinitePolicy::FailFast`] once a non-finite sample is
    /// seen; surfaces as [`StopReason::NonFinite`] at the next budget check.
    poisoned: bool,
    /// Set once the breakdown policy ([`BreakdownAction::SwitchRobust`]) has
    /// switched the run's streams to the robust estimator. Persisted in
    /// snapshots so streams opened after a resume get the same estimator a
    /// solo run would give them.
    forced_robust: bool,
    /// Metrics summary carried over a resume, replayed into the registry
    /// handles by [`Engine::attach_metrics`].
    restored_metrics: Option<RunMetrics>,
}

impl<'a, F: StochasticObjective> Engine<'a, F> {
    /// Build an engine over `objective` from an initial simplex.
    ///
    /// Every vertex is opened and given one initial sample of duration
    /// `cfg.sampling.initial_dt`, concurrently (one parallel round).
    pub fn new(
        objective: &'a F,
        init: Vec<Vec<f64>>,
        cfg: SimplexConfig,
        term: Termination,
        mode: TimeMode,
        seed: u64,
    ) -> Self {
        let backend = cfg.build_backend();
        Self::new_with_backend(objective, init, cfg, term, mode, seed, backend)
    }

    /// Like [`Engine::new`], but dispatching rounds on an injected backend
    /// instead of the one `cfg` would build. This is the seam a multi-run
    /// scheduler uses to multiplex many engines over one shared (or
    /// batch-gated) backend.
    ///
    /// # Panics
    /// If `backend` and `objective` dispatch on the same worker pool (see
    /// [`SimplexConfig::validate_dispatch`](crate::config::SimplexConfig::validate_dispatch)
    /// for the fallible form of the check): that configuration deadlocks once
    /// every worker is occupied by a batch job, so it is refused up front.
    pub fn new_with_backend(
        objective: &'a F,
        init: Vec<Vec<f64>>,
        cfg: SimplexConfig,
        term: Termination,
        mode: TimeMode,
        seed: u64,
        backend: Arc<dyn SamplingBackend<F::Stream>>,
    ) -> Self {
        let d = objective.dim();
        assert_eq!(
            init.len(),
            d + 1,
            "initial simplex must have d+1 = {} vertices",
            d + 1
        );
        assert!(init.iter().all(|v| v.len() == d));
        cfg.coefficients.validate().expect("invalid coefficients");
        cfg.sampling.validate().expect("invalid sampling policy");
        crate::config::check_nested_dispatch(backend.as_ref(), objective)
            .expect("invalid dispatch configuration");

        let mut seeds = SeedSequence::new(seed);
        let mut slots = Vec::with_capacity(d + 3);
        for x in init {
            let stream = Some(objective.open(&x, seeds.next_seed()));
            slots.push(Slot { x, stream });
        }
        let mut eng = Engine {
            objective,
            cfg,
            term,
            slots,
            n_vertices: d + 1,
            backend,
            clock: VirtualClock::new(mode),
            seeds,
            trace: Trace::new(),
            iterations: 0,
            total_sampling: 0.0,
            level: ContractionLevel::default(),
            metrics: None,
            last_ckpt: 0,
            notes: Vec::new(),
            nonfinite_seen: 0,
            poisoned: false,
            forced_robust: false,
            restored_metrics: None,
        };
        for i in 0..eng.n_vertices {
            eng.configure_slot_stream(i);
        }
        let ids: Vec<SlotId> = (0..eng.n_vertices).collect();
        eng.extend_round(&ids);
        eng
    }

    /// The estimator newly-opened streams should report through, when the
    /// engine wants something other than the stream's own default: the
    /// configured [`SimplexConfig::estimator`] when it is non-Welford, or —
    /// once the breakdown policy has tripped — the robust fallback.
    fn stream_estimator(&self) -> Option<EstimatorChoice> {
        if self.forced_robust {
            Some(self.robust_choice())
        } else if self.cfg.estimator != EstimatorChoice::Welford {
            Some(self.cfg.estimator)
        } else {
            None
        }
    }

    /// The robust estimator the breakdown policy degrades to: the configured
    /// estimator when it is already robust, otherwise the crate default
    /// (median-of-means).
    fn robust_choice(&self) -> EstimatorChoice {
        if self.cfg.estimator == EstimatorChoice::Welford {
            EstimatorChoice::ROBUST_DEFAULT
        } else {
            self.cfg.estimator
        }
    }

    /// Apply the engine's estimator preference to a freshly-opened slot
    /// stream (a no-op for streams without per-sample statistics).
    fn configure_slot_stream(&mut self, id: SlotId) {
        if let Some(choice) = self.stream_estimator() {
            if let Some(s) = self.slots[id].stream.as_mut() {
                s.set_estimator(choice);
            }
        }
    }

    /// Attach run-accounting handles. All subsequent engine activity (and
    /// any algorithm-level site accounting) is recorded both into the
    /// originating registry and into the [`RunResult::metrics`] summary.
    ///
    /// [`RunResult::metrics`]: crate::result::RunResult::metrics
    pub fn attach_metrics(&mut self, metrics: EngineMetrics) {
        // A resumed engine replays its persisted accounting first, so the
        // final summary equals an uninterrupted run's.
        if let Some(prior) = self.restored_metrics.take() {
            metrics.absorb(&prior);
        }
        self.metrics = Some(metrics);
    }

    /// The attached run-accounting handles, if any.
    pub fn metrics(&self) -> Option<&EngineMetrics> {
        self.metrics.as_ref()
    }

    /// Dimensionality of the parameter space.
    pub fn dim(&self) -> usize {
        self.n_vertices - 1
    }

    /// Number of simplex vertices (`d + 1`).
    pub fn n_vertices(&self) -> usize {
        self.n_vertices
    }

    /// The configured sampling policy.
    pub fn sampling(&self) -> SamplingPolicy {
        self.cfg.sampling
    }

    /// The simplex configuration.
    pub fn config(&self) -> &SimplexConfig {
        &self.cfg
    }

    /// The point held by a slot.
    pub fn point(&self, id: SlotId) -> &[f64] {
        &self.slots[id].x
    }

    /// Current estimate at a slot.
    pub fn estimate(&self, id: SlotId) -> Estimate {
        self.slots[id].stream().estimate()
    }

    /// The sampling backend executing this engine's rounds.
    pub fn backend(&self) -> &dyn SamplingBackend<F::Stream> {
        self.backend.as_ref()
    }

    /// Estimates at all simplex vertices (ids `0..n_vertices`).
    pub fn vertex_estimates(&self) -> Vec<Estimate> {
        (0..self.n_vertices).map(|i| self.estimate(i)).collect()
    }

    /// Observed values at all simplex vertices.
    pub fn vertex_values(&self) -> Vec<f64> {
        (0..self.n_vertices)
            .map(|i| self.estimate(i).value)
            .collect()
    }

    /// Rank vertices by observed value.
    pub fn ordering(&self) -> Ordering {
        geometry::order(&self.vertex_values())
    }

    /// Centroid of all vertices except `exclude`.
    pub fn centroid_excluding(&self, exclude: usize) -> Vec<f64> {
        let pts: Vec<Vec<f64>> = (0..self.n_vertices)
            .map(|i| self.slots[i].x.clone())
            .collect();
        centroid_excluding(&pts, exclude)
    }

    /// Simplex diameter (Eq. 2.2).
    pub fn diameter(&self) -> f64 {
        let pts: Vec<Vec<f64>> = (0..self.n_vertices)
            .map(|i| self.slots[i].x.clone())
            .collect();
        diameter(&pts)
    }

    /// Open a *trial* slot at `x` (reflection/expansion/contraction point).
    /// The stream starts unsampled; callers extend it before comparing.
    pub fn open_trial(&mut self, x: Vec<f64>) -> SlotId {
        if let Some(m) = &self.metrics {
            m.trials_opened.inc();
        }
        let seed = self.seeds.next_seed();
        let stream = Some(self.objective.open(&x, seed));
        self.slots.push(Slot { x, stream });
        let id = self.slots.len() - 1;
        self.configure_slot_stream(id);
        id
    }

    /// All currently-open trial slot ids.
    pub fn trial_ids(&self) -> Vec<SlotId> {
        (self.n_vertices..self.slots.len()).collect()
    }

    /// Plan one concurrent round driven by the listed slots: which slots
    /// extend, and by how much.
    ///
    /// The listed slots drive the round: its duration is the maximum of
    /// their policy-scheduled increments. In parallel mode with continuous
    /// sampling enabled (the MW deployment), *every* active slot — vertex or
    /// trial — samples for the full round window, because workers never sit
    /// idle while the master deliberates; the parallel-time cost is still
    /// one round. Otherwise only the listed slots extend.
    fn plan_round(&self, ids: &[SlotId]) -> Vec<(SlotId, f64)> {
        if ids.is_empty() {
            return Vec::new();
        }
        let policy = self.cfg.sampling;
        let piggyback = self.cfg.continuous && self.clock.mode() == TimeMode::Parallel;
        if piggyback {
            let dt_round = ids
                .iter()
                .map(|&id| policy.next_dt(self.estimate(id).time))
                .fold(0.0f64, f64::max);
            (0..self.slots.len()).map(|id| (id, dt_round)).collect()
        } else {
            ids.iter()
                .map(|&id| (id, policy.next_dt(self.estimate(id).time)))
                .collect()
        }
    }

    /// Execute a planned round on the backend: streams move into jobs, the
    /// batch runs (possibly on worker threads), and the returned streams are
    /// restored with clock/total-sampling charges applied in submission
    /// order — the fixed order that keeps accounting bit-identical across
    /// backends.
    fn dispatch(&mut self, plan: Vec<(SlotId, f64)>) {
        if plan.is_empty() {
            return;
        }
        let sampled_before = self.total_sampling;
        let nf_before: u64 = plan
            .iter()
            .map(|&(slot, _)| self.slots[slot].stream().nonfinite_samples())
            .sum();
        let slots_in_round: Vec<SlotId> = plan.iter().map(|&(slot, _)| slot).collect();
        let jobs: Vec<StreamJob<F::Stream>> = plan
            .iter()
            .map(|&(slot, dt)| StreamJob {
                slot,
                dt,
                stream: self.slots[slot].stream.take().expect("stream in flight"),
            })
            .collect();
        self.clock.begin_round();
        for job in self.backend.extend_batch(jobs) {
            self.clock.charge(job.dt);
            self.total_sampling += job.dt;
            self.slots[job.slot].stream = Some(job.stream);
        }
        self.clock.end_round();
        if let Some(m) = &self.metrics {
            m.rounds.inc();
            m.sampling_time.add(self.total_sampling - sampled_before);
        }
        let nf_after: u64 = slots_in_round
            .iter()
            .map(|&slot| self.slots[slot].stream().nonfinite_samples())
            .sum();
        let delta = nf_after.saturating_sub(nf_before);
        if delta > 0 {
            self.nonfinite_seen += delta;
            if let Some(m) = &self.metrics {
                m.nonfinite.add(delta);
            }
            self.note(RunNote::NonFiniteSample);
            if self.cfg.nonfinite == NonFinitePolicy::FailFast {
                self.poisoned = true;
            }
        }
        self.check_breakdown(&slots_in_round);
    }

    /// Breakdown-aware gating (DESIGN.md §14): after a round, scan the
    /// extended slots' tail diagnostics against the configured
    /// [`BreakdownPolicy`](crate::config::BreakdownPolicy). A crossing
    /// records [`RunNote::NoiseSuspect`] and, under
    /// [`BreakdownAction::SwitchRobust`], switches every live stream to the
    /// robust estimator (once per run). The diagnostic depends only on
    /// stream state, so the check — like everything downstream of it — is
    /// bit-identical across backends.
    fn check_breakdown(&mut self, slots_in_round: &[SlotId]) {
        if self.cfg.breakdown.action == BreakdownAction::Off {
            return;
        }
        let crossed = slots_in_round.iter().any(|&slot| {
            self.slots[slot]
                .stream()
                .tail_report()
                .is_some_and(|t| self.cfg.breakdown.crossed(&t))
        });
        if !crossed {
            return;
        }
        self.note(RunNote::NoiseSuspect);
        if let Some(m) = &self.metrics {
            m.tail_flag_rounds.inc();
        }
        if self.cfg.breakdown.action == BreakdownAction::SwitchRobust && !self.forced_robust {
            self.forced_robust = true;
            if let Some(m) = &self.metrics {
                m.tail_switches.inc();
            }
            let choice = self.robust_choice();
            for slot in &mut self.slots {
                if let Some(s) = slot.stream.as_mut() {
                    s.set_estimator(choice);
                }
            }
        }
    }

    /// Extend sampling for one concurrent round (see [`Engine::plan_round`]
    /// for which slots extend and by how much).
    pub fn extend_round(&mut self, ids: &[SlotId]) {
        let plan = self.plan_round(ids);
        self.dispatch(plan);
    }

    /// Keep extending slot `id` (alone) until its standard error is at most
    /// `target`.
    ///
    /// Respects the termination budget: each round is clamped to the
    /// remaining wall-time budget, so the clock can never overshoot
    /// `max_time` mid-wait. Returns the final estimate plus the stop reason
    /// if the budget ran out (or the wait stalled) before the target was
    /// reached.
    pub fn extend_until(&mut self, id: SlotId, target: f64) -> (Estimate, Option<StopReason>) {
        let mut guard = 0u32;
        loop {
            if self.estimate(id).std_err <= target {
                return (self.estimate(id), None);
            }
            if let Some(r) = self.budget_stop() {
                return (self.estimate(id), Some(r));
            }
            if guard >= 10_000 {
                return (self.estimate(id), Some(StopReason::Stalled));
            }
            let mut plan = self.plan_round(&[id]);
            if let Some(max_time) = self.term.max_time {
                // budget_stop above guarantees remaining > 0 here.
                let remaining = max_time - self.clock.elapsed();
                for (_, dt) in &mut plan {
                    *dt = dt.min(remaining);
                }
            }
            self.dispatch(plan);
            guard += 1;
        }
    }

    /// Accept a trial into vertex position `v`: the trial's point and its
    /// accumulated sampling move into the vertex slot.
    pub fn replace_vertex(&mut self, v: usize, trial: SlotId) {
        assert!(v < self.n_vertices && trial >= self.n_vertices);
        self.slots.swap(v, trial);
    }

    /// Discard all trial slots (their sampling is abandoned, as when the
    /// master directs "a cessation of work at one point").
    pub fn drop_trials(&mut self) {
        if let Some(m) = &self.metrics {
            let dropped = self.slots.len().saturating_sub(self.n_vertices);
            m.trials_dropped.add(dropped as u64);
        }
        self.slots.truncate(self.n_vertices);
    }

    /// Collapse the simplex towards vertex `keep` (Algorithm 1 lines 19–22):
    /// every other vertex moves halfway towards it and restarts sampling
    /// from scratch at its new location (one concurrent round).
    pub fn collapse(&mut self, keep: usize) {
        let beta = self.cfg.coefficients.beta;
        let keep_x = self.slots[keep].x.clone();
        let mut fresh: Vec<SlotId> = Vec::new();
        for i in 0..self.n_vertices {
            if i == keep {
                continue;
            }
            for (xj, kj) in self.slots[i].x.iter_mut().zip(&keep_x) {
                *xj = beta * *xj + (1.0 - beta) * kj;
            }
            let seed = self.seeds.next_seed();
            let x = self.slots[i].x.clone();
            self.slots[i].stream = Some(self.objective.open(&x, seed));
            self.configure_slot_stream(i);
            fresh.push(i);
        }
        self.extend_round(&fresh);
        self.level.on_collapse(self.dim());
    }

    /// Contraction-level bookkeeping (read).
    pub fn level(&self) -> ContractionLevel {
        self.level
    }

    /// Contraction-level bookkeeping (write).
    pub fn level_mut(&mut self) -> &mut ContractionLevel {
        &mut self.level
    }

    /// Record a completed iteration with the accepted step kind.
    pub fn record(&mut self, step: StepKind) {
        if let Some(m) = &self.metrics {
            m.record_step(step);
        }
        self.iterations += 1;
        let best = self.ordering().min;
        let e = self.estimate(best);
        self.trace.push(TracePoint {
            time: self.clock.elapsed(),
            iteration: self.iterations,
            best_observed: e.value,
            best_true: self.objective.true_value(self.point(best)),
            diameter: self.diameter(),
            step,
        });
    }

    /// Completed iterations so far.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Elapsed virtual time.
    pub fn elapsed(&self) -> f64 {
        self.clock.elapsed()
    }

    /// Check the time/iteration budget (used inside resampling loops).
    /// A poisoned run (FailFast non-finite policy) stops here too, so every
    /// wait loop exits promptly.
    pub fn budget_stop(&self) -> Option<StopReason> {
        if self.poisoned {
            return Some(StopReason::NonFinite);
        }
        self.term
            .budget_exceeded(self.clock.elapsed(), self.iterations)
    }

    /// Full termination check: Eq. 2.9 spread first, then geometric
    /// degeneracy, then budgets.
    pub fn should_stop(&self) -> Option<StopReason> {
        if self.term.spread_met(&self.vertex_values()) {
            return Some(StopReason::Tolerance);
        }
        if self.is_degenerate() {
            return Some(StopReason::Degenerate);
        }
        self.budget_stop()
    }

    /// True when the simplex has collapsed below machine precision: its
    /// diameter is non-finite or at most `ε` times the coordinate scale, so
    /// no reflection/contraction can produce a geometrically distinct point
    /// and further iterations only spin. Surfaced as
    /// [`StopReason::Degenerate`]; under a
    /// [`RestartedSimplex`](crate::restart::RestartedSimplex) this triggers
    /// a fresh start like any other stop.
    pub fn is_degenerate(&self) -> bool {
        let dia = self.diameter();
        if !dia.is_finite() {
            return true;
        }
        let scale = self
            .slots
            .iter()
            .take(self.n_vertices)
            .flat_map(|s| s.x.iter())
            .fold(1.0f64, |m, &c| m.max(c.abs()));
        dia <= f64::EPSILON * scale
    }

    /// Record a note, once per kind per run.
    fn note(&mut self, n: RunNote) {
        if !self.notes.contains(&n) {
            self.notes.push(n);
        }
    }

    /// Record a note from outside the engine (resume fallback, scheduler
    /// quarantine). Deduplicated per kind like internally-raised notes, and
    /// carried through snapshots and the final [`RunResult`] identically.
    pub fn record_note(&mut self, n: RunNote) {
        self.note(n);
    }

    /// Non-finite samples observed so far across all dispatches.
    pub fn nonfinite_seen(&self) -> u64 {
        self.nonfinite_seen
    }

    /// Finish the run, consuming the engine.
    pub fn finish(self, stop: StopReason) -> RunResult {
        let best = self.ordering().min;
        let mut notes = self.notes;
        for n in crate::result::notes_from_backend(&*self.backend) {
            if !notes.contains(&n) {
                notes.push(n);
            }
        }
        RunResult {
            best_point: self.slots[best].x.clone(),
            best_observed: self.slots[best].stream().estimate().value,
            iterations: self.iterations,
            elapsed: self.clock.elapsed(),
            total_sampling: self.total_sampling,
            stop,
            trace: self.trace,
            metrics: self.metrics.as_ref().map(EngineMetrics::summary),
            notes,
        }
    }
}

/// Checkpoint/resume (DESIGN.md §11). The engine's complete run state —
/// simplex geometry, per-slot stream state (RNG words, spare normal,
/// sufficient statistics), virtual clock, counters, seeds, trace, notes,
/// and accounting — round-trips through the `stoch_eval::codec` byte format
/// so a resumed run is bit-identical to one that never stopped.
impl<'a, F: StochasticObjective> Engine<'a, F> {
    /// Serialize the complete run state.
    ///
    /// Must be called between rounds (no streams in flight, which is every
    /// point where algorithm loops run); the first 16 bytes are the
    /// iteration count and elapsed time so [`checkpoint::inspect`] can
    /// summarize a file cheaply. Fails with [`CodecError::Unsupported`] when
    /// the stream type does not implement persistence.
    pub fn snapshot(&self) -> Result<Vec<u8>, CodecError> {
        let mut w = Writer::new();
        w.put_u64(self.iterations);
        w.put_f64(self.clock.elapsed());
        w.put_u8(match self.clock.mode() {
            TimeMode::Parallel => 0,
            TimeMode::Serial => 1,
        });
        w.put_f64(self.total_sampling);
        w.put_i64(self.level.0);
        w.put_u64(self.nonfinite_seen);
        w.put_bool(self.poisoned);
        w.put_bool(self.forced_robust);
        w.put_opt_f64(self.term.tolerance);
        w.put_opt_f64(self.term.max_time);
        w.put_opt_u64(self.term.max_iterations);
        w.put_u64(self.n_vertices as u64);
        w.put_u64(self.slots.len() as u64);
        for slot in &self.slots {
            w.put_f64_slice(&slot.x);
            let mut sw = Writer::new();
            slot.stream().save_state(&mut sw)?;
            w.put_bytes(&sw.into_bytes());
        }
        let (parent, next) = self.seeds.state();
        w.put_u64(parent);
        w.put_u64(next);
        w.put_u64(self.trace.len() as u64);
        for p in self.trace.points() {
            w.put_f64(p.time);
            w.put_u64(p.iteration);
            w.put_f64(p.best_observed);
            w.put_opt_f64(p.best_true);
            w.put_f64(p.diameter);
            w.put_u8(step_tag(p.step));
        }
        // Backend-reported notes merge in so e.g. a pre-checkpoint
        // degradation survives the resume (the fresh backend won't re-report
        // it).
        let mut notes = self.notes.clone();
        for n in crate::result::notes_from_backend(&*self.backend) {
            if !notes.contains(&n) {
                notes.push(n);
            }
        }
        w.put_u64(notes.len() as u64);
        for n in &notes {
            w.put_u8(note_tag(*n));
        }
        match &self.metrics {
            Some(m) => {
                w.put_bool(true);
                write_metrics(&mut w, &m.summary());
            }
            None => w.put_bool(false),
        }
        Ok(w.into_bytes())
    }

    /// Reconstruct an engine from a [`snapshot`](Self::snapshot) payload.
    ///
    /// The restored engine continues exactly where the snapshot was taken:
    /// same vertices, same stream statistics and RNG positions, same clock
    /// and counters — so the remainder of the run is bit-identical to one
    /// that never stopped. `term_override` replaces the persisted
    /// termination criteria (a snapshot from a truncated run would otherwise
    /// stop immediately); `None` keeps them.
    pub fn resume(
        objective: &'a F,
        cfg: SimplexConfig,
        payload: &[u8],
        term_override: Option<Termination>,
    ) -> Result<Self, CheckpointError> {
        let backend = cfg.build_backend();
        Self::resume_with_backend(objective, cfg, payload, term_override, backend)
    }

    /// Like [`Engine::resume`], but dispatching rounds on an injected
    /// backend. The snapshot carries no backend state (streams are restored
    /// master-side), so a suspended run can resume on a *different* backend
    /// — serial to threaded, solo to shared fleet — and the determinism
    /// contract keeps the remainder bit-identical.
    ///
    /// # Panics
    /// As [`Engine::new_with_backend`]: refuses a backend sharing the
    /// objective's own worker pool.
    pub fn resume_with_backend(
        objective: &'a F,
        cfg: SimplexConfig,
        payload: &[u8],
        term_override: Option<Termination>,
        backend: Arc<dyn SamplingBackend<F::Stream>>,
    ) -> Result<Self, CheckpointError> {
        crate::config::check_nested_dispatch(backend.as_ref(), objective)
            .expect("invalid dispatch configuration");
        cfg.coefficients
            .validate()
            .map_err(CheckpointError::Mismatch)?;
        cfg.sampling.validate().map_err(CheckpointError::Mismatch)?;
        let d = objective.dim();
        let mut r = Reader::new(payload);
        let iterations = r.take_u64()?;
        let elapsed = r.take_f64()?;
        let mode = match r.take_u8()? {
            0 => TimeMode::Parallel,
            1 => TimeMode::Serial,
            tag => {
                return Err(CodecError::Tag {
                    what: "TimeMode",
                    tag,
                }
                .into())
            }
        };
        let total_sampling = r.take_f64()?;
        let level = ContractionLevel(r.take_i64()?);
        let nonfinite_seen = r.take_u64()?;
        let poisoned = r.take_bool()?;
        let forced_robust = r.take_bool()?;
        let term = Termination {
            tolerance: r.take_opt_f64()?,
            max_time: r.take_opt_f64()?,
            max_iterations: r.take_opt_u64()?,
        };
        let n_vertices = r.take_u64()? as usize;
        if n_vertices != d + 1 {
            return Err(CheckpointError::Mismatch(format!(
                "snapshot has {n_vertices} vertices but the objective needs {}",
                d + 1
            )));
        }
        let n_slots = r.take_u64()? as usize;
        if n_slots < n_vertices {
            return Err(CheckpointError::Mismatch(format!(
                "snapshot has {n_slots} slots for {n_vertices} vertices"
            )));
        }
        let mut slots = Vec::with_capacity(n_slots);
        for i in 0..n_slots {
            let x = r.take_f64_vec()?;
            if x.len() != d {
                return Err(CheckpointError::Mismatch(format!(
                    "slot {i} has dimension {} but the objective has {d}",
                    x.len()
                )));
            }
            let bytes = r.take_bytes()?;
            let mut sr = Reader::new(bytes);
            let stream = F::Stream::load_state(&mut sr)?;
            sr.finish()?;
            slots.push(Slot {
                x,
                stream: Some(stream),
            });
        }
        let seeds = SeedSequence::from_state(r.take_u64()?, r.take_u64()?);
        let n_trace = r.take_u64()? as usize;
        // Bound preallocation by what the payload could actually hold
        // (>= 26 bytes per point), mirroring the codec's own guards.
        if n_trace > payload.len() / 26 + 1 {
            return Err(CodecError::Invalid {
                what: "trace length",
            }
            .into());
        }
        let mut trace = Trace::new();
        for _ in 0..n_trace {
            trace.push(TracePoint {
                time: r.take_f64()?,
                iteration: r.take_u64()?,
                best_observed: r.take_f64()?,
                best_true: r.take_opt_f64()?,
                diameter: r.take_f64()?,
                step: step_from_tag(r.take_u8()?)?,
            });
        }
        let n_notes = r.take_u64()? as usize;
        if n_notes > 16 {
            return Err(CodecError::Invalid { what: "note count" }.into());
        }
        let mut notes = Vec::with_capacity(n_notes);
        for _ in 0..n_notes {
            notes.push(note_from_tag(r.take_u8()?)?);
        }
        let restored_metrics = if r.take_bool()? {
            Some(read_metrics(&mut r)?)
        } else {
            None
        };
        r.finish()?;

        Ok(Engine {
            objective,
            cfg,
            term: term_override.unwrap_or(term),
            slots,
            n_vertices,
            backend,
            clock: VirtualClock::with_elapsed(mode, elapsed),
            seeds,
            trace,
            iterations,
            total_sampling,
            level,
            metrics: None,
            // Suppress an immediate re-write of the checkpoint we just
            // resumed from.
            last_ckpt: iterations,
            notes,
            nonfinite_seen,
            poisoned,
            forced_robust,
            restored_metrics,
        })
    }

    /// Write a checkpoint if the configured cadence says one is due.
    ///
    /// Called by every algorithm loop between iterations. Failures never
    /// stop the run — checkpointing is best-effort — but are recorded once
    /// as [`RunNote::CheckpointFailed`].
    pub fn checkpoint_if_due(&mut self) {
        let due = match &self.cfg.checkpoint {
            None => false,
            Some(ck) => {
                self.iterations > 0
                    && self.iterations.is_multiple_of(ck.every.max(1))
                    && self.iterations != self.last_ckpt
            }
        };
        if !due {
            return;
        }
        let Some(ck) = self.cfg.checkpoint.clone() else {
            return;
        };
        let written = self
            .snapshot()
            .map_err(CheckpointError::from)
            .and_then(|payload| checkpoint::save(&ck.path, ck.retain, &payload));
        match written {
            Ok(()) => {
                self.last_ckpt = self.iterations;
                if let Some(m) = &self.metrics {
                    m.ckpt_writes.inc();
                }
            }
            Err(_) => self.note(RunNote::CheckpointFailed),
        }
    }
}

fn step_tag(s: StepKind) -> u8 {
    match s {
        StepKind::Reflect => 0,
        StepKind::Expand => 1,
        StepKind::Contract => 2,
        StepKind::Collapse => 3,
    }
}

fn step_from_tag(tag: u8) -> Result<StepKind, CodecError> {
    Ok(match tag {
        0 => StepKind::Reflect,
        1 => StepKind::Expand,
        2 => StepKind::Contract,
        3 => StepKind::Collapse,
        tag => {
            return Err(CodecError::Tag {
                what: "StepKind",
                tag,
            })
        }
    })
}

fn note_tag(n: RunNote) -> u8 {
    match n {
        RunNote::DegradedToSerial => 0,
        RunNote::NonFiniteSample => 1,
        RunNote::CheckpointFailed => 2,
        RunNote::TransportDegraded => 3,
        RunNote::NoiseSuspect => 4,
        RunNote::Quarantined => 5,
        RunNote::CheckpointFellBack => 6,
    }
}

fn note_from_tag(tag: u8) -> Result<RunNote, CodecError> {
    Ok(match tag {
        0 => RunNote::DegradedToSerial,
        1 => RunNote::NonFiniteSample,
        2 => RunNote::CheckpointFailed,
        3 => RunNote::TransportDegraded,
        4 => RunNote::NoiseSuspect,
        5 => RunNote::Quarantined,
        6 => RunNote::CheckpointFellBack,
        tag => {
            return Err(CodecError::Tag {
                what: "RunNote",
                tag,
            })
        }
    })
}

fn write_metrics(w: &mut Writer, m: &RunMetrics) {
    w.put_u64(m.steps_reflect);
    w.put_u64(m.steps_expand);
    w.put_u64(m.steps_contract);
    w.put_u64(m.steps_collapse);
    w.put_u64(m.trials_opened);
    w.put_u64(m.trials_dropped);
    w.put_u64(m.rounds);
    w.put_f64(m.sampling_time);
    for i in 0..7 {
        w.put_u64(m.site_decided_true[i]);
        w.put_u64(m.site_decided_false[i]);
        w.put_u64(m.site_undecided_resample[i]);
        w.put_f64(m.site_resample_time[i]);
    }
    w.put_u64(m.mn_gate_checks);
    w.put_u64(m.mn_gate_failures);
    w.put_u64(m.mn_extension_rounds);
    w.put_f64(m.mn_equalize_time);
    w.put_u64(m.nonfinite);
    w.put_u64(m.tail_flag_rounds);
    w.put_u64(m.tail_switches);
}

fn read_metrics(r: &mut Reader<'_>) -> Result<RunMetrics, CodecError> {
    let mut m = RunMetrics {
        steps_reflect: r.take_u64()?,
        steps_expand: r.take_u64()?,
        steps_contract: r.take_u64()?,
        steps_collapse: r.take_u64()?,
        trials_opened: r.take_u64()?,
        trials_dropped: r.take_u64()?,
        rounds: r.take_u64()?,
        sampling_time: r.take_f64()?,
        ..RunMetrics::default()
    };
    for i in 0..7 {
        m.site_decided_true[i] = r.take_u64()?;
        m.site_decided_false[i] = r.take_u64()?;
        m.site_undecided_resample[i] = r.take_u64()?;
        m.site_resample_time[i] = r.take_f64()?;
    }
    m.mn_gate_checks = r.take_u64()?;
    m.mn_gate_failures = r.take_u64()?;
    m.mn_extension_rounds = r.take_u64()?;
    m.mn_equalize_time = r.take_f64()?;
    m.nonfinite = r.take_u64()?;
    m.tail_flag_rounds = r.take_u64()?;
    m.tail_switches = r.take_u64()?;
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimplexConfig;
    use stoch_eval::functions::Sphere;
    use stoch_eval::noise::{ConstantNoise, ZeroNoise};
    use stoch_eval::sampler::Noisy;

    fn engine_for<'a>(obj: &'a Noisy<Sphere, ZeroNoise>) -> Engine<'a, Noisy<Sphere, ZeroNoise>> {
        let init = vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 1.0]];
        Engine::new(
            obj,
            init,
            SimplexConfig::default(),
            Termination::default(),
            TimeMode::Parallel,
            1,
        )
    }

    #[test]
    fn initial_round_samples_all_vertices() {
        let obj = Noisy::new(Sphere::new(2), ZeroNoise);
        let eng = engine_for(&obj);
        for e in eng.vertex_estimates() {
            assert_eq!(e.time, 1.0);
        }
        // Parallel mode: three concurrent dt=1 samples cost 1 unit.
        assert_eq!(eng.elapsed(), 1.0);
    }

    #[test]
    fn ordering_and_centroid() {
        let obj = Noisy::new(Sphere::new(2), ZeroNoise);
        let eng = engine_for(&obj);
        let o = eng.ordering();
        assert_eq!(o.min, 0); // f(0,0)=0
                              // max is one of the two value-1 vertices (tie broken by index).
        assert_eq!(o.max, 2);
        let c = eng.centroid_excluding(o.max);
        assert_eq!(c, vec![0.5, 0.0]);
    }

    #[test]
    fn trial_accept_moves_sampling() {
        let obj = Noisy::new(Sphere::new(2), ZeroNoise);
        let mut eng = engine_for(&obj);
        let t = eng.open_trial(vec![0.25, 0.25]);
        eng.extend_round(&[t]);
        eng.extend_round(&[t]);
        let before = eng.estimate(t).time;
        eng.replace_vertex(2, t);
        eng.drop_trials();
        assert_eq!(eng.estimate(2).time, before);
        assert_eq!(eng.point(2), &[0.25, 0.25]);
        assert_eq!(eng.trial_ids().len(), 0);
    }

    #[test]
    fn collapse_moves_points_and_resets_streams() {
        let obj = Noisy::new(Sphere::new(2), ZeroNoise);
        let mut eng = engine_for(&obj);
        // Age vertex 1's stream so we can see it reset.
        eng.extend_round(&[1]);
        assert!(eng.estimate(1).time > 1.0);
        eng.collapse(0);
        assert_eq!(eng.point(1), &[0.5, 0.0]);
        assert_eq!(eng.point(2), &[0.0, 0.5]);
        assert_eq!(eng.estimate(1).time, 1.0); // fresh stream, one dt0 sample
        assert_eq!(eng.level().0, 2); // l += d
    }

    #[test]
    fn extend_until_hits_target() {
        // Pinned Gaussian: the `time >= sigma0^2 / target^2` bound assumes
        // the Gaussian oracle stream, not an NSX_NOISE chaos distribution.
        let obj = Noisy::gaussian(Sphere::new(2), ConstantNoise(10.0));
        let init = vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 1.0]];
        let mut eng = Engine::new(
            &obj,
            init,
            SimplexConfig::default(),
            Termination::default(),
            TimeMode::Parallel,
            2,
        );
        let (e, stop) = eng.extend_until(0, 1.0);
        assert!(stop.is_none());
        assert!(e.std_err <= 1.0);
        assert!(e.time >= 100.0); // sigma0^2 / target^2
    }

    #[test]
    fn extend_until_clamps_to_wall_time_budget() {
        // High sigma0 + tiny target: the wait can never reach the target
        // within the budget. The rounds must be clamped so elapsed lands
        // exactly on max_time, and the budget stop must be surfaced.
        let obj = Noisy::new(Sphere::new(2), ConstantNoise(100.0));
        let init = vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 1.0]];
        let mut eng = Engine::new(
            &obj,
            init,
            SimplexConfig::default(),
            Termination {
                tolerance: None,
                max_time: Some(50.0),
                max_iterations: None,
            },
            TimeMode::Parallel,
            4,
        );
        let (e, stop) = eng.extend_until(0, 1e-9);
        assert_eq!(stop, Some(StopReason::WallTime));
        assert!(e.std_err > 1e-9);
        assert_eq!(eng.elapsed(), 50.0, "clock overshot the budget");
    }

    #[test]
    fn spread_termination_on_zero_noise() {
        let obj = Noisy::new(Sphere::new(2), ZeroNoise);
        let init = vec![vec![0.0, 0.0], vec![1e-9, 0.0], vec![0.0, 1e-9]];
        let eng = Engine::new(
            &obj,
            init,
            SimplexConfig::default(),
            Termination::tolerance(1e-6),
            TimeMode::Parallel,
            3,
        );
        assert_eq!(eng.should_stop(), Some(StopReason::Tolerance));
    }

    #[test]
    fn finish_reports_best_vertex() {
        let obj = Noisy::new(Sphere::new(2), ZeroNoise);
        let eng = engine_for(&obj);
        let res = eng.finish(StopReason::MaxIterations);
        assert_eq!(res.best_point, vec![0.0, 0.0]);
        assert_eq!(res.best_observed, 0.0);
    }
}
