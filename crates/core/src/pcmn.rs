//! PC+MN — point-to-point comparison combined with the max-noise gate
//! (Algorithm 4).
//!
//! Both conditions must hold for a move: the simplex first waits until the
//! MN gate (Eq. 2.3) is satisfied across all vertices, then runs the PC
//! comparisons. The paper finds this slightly more accurate than PC with
//! *far* fewer simplex steps (178 vs 900 at `σ0 = 1000`), because each step
//! is taken on better-sampled vertices.

use crate::checkpoint::{self, CheckpointError};
use crate::config::{MnParams, PcParams, SimplexConfig};
use crate::metrics::EngineMetrics;
use crate::result::RunResult;
use crate::session::{Driver, RunSession};
use crate::termination::Termination;
use obs::MetricsRegistry;
use std::path::Path;
use stoch_eval::clock::TimeMode;
use stoch_eval::objective::StochasticObjective;

/// The combined PC+MN algorithm (paper Algorithm 4).
#[derive(Debug, Clone, Default)]
pub struct PcMn {
    /// Coefficients and sampling policy.
    pub cfg: SimplexConfig,
    /// Max-noise gate constant.
    pub mn: MnParams,
    /// PC comparison parameters. Algorithm 4 as printed uses one standard
    /// error (`k = 1`) with bars at all sites; both remain configurable.
    pub pc: PcParams,
}

impl PcMn {
    /// PC+MN with the paper's defaults (`k_mn = 2`, `k_pc = 1`, all bars).
    pub fn new() -> Self {
        Self::default()
    }

    /// Optimize `objective` from the initial simplex `init`.
    pub fn run<F: StochasticObjective>(
        &self,
        objective: &F,
        init: Vec<Vec<f64>>,
        term: Termination,
        mode: TimeMode,
        seed: u64,
    ) -> RunResult {
        self.run_with_metrics(objective, init, term, mode, seed, None)
    }

    /// [`run`](Self::run) with optional run accounting: when `registry` is
    /// given, both MN gate statistics and PC per-site decision counters are
    /// recorded into it and summarized in [`RunResult::metrics`].
    pub fn run_with_metrics<F: StochasticObjective>(
        &self,
        objective: &F,
        init: Vec<Vec<f64>>,
        term: Termination,
        mode: TimeMode,
        seed: u64,
        registry: Option<&MetricsRegistry>,
    ) -> RunResult {
        let mut session = RunSession::new(
            objective,
            init,
            self.cfg.clone(),
            term,
            mode,
            seed,
            Driver::PcMn(self.mn, self.pc),
        );
        if let Some(reg) = registry {
            session.attach_metrics(EngineMetrics::register(reg));
        }
        session.run_to_completion()
    }

    /// Resume a checkpointed PC+MN run (see
    /// [`SimplexMethod::resume`](crate::algorithm::SimplexMethod::resume)).
    pub fn resume<F: StochasticObjective>(
        &self,
        objective: &F,
        path: &Path,
        term_override: Option<Termination>,
    ) -> Result<RunResult, CheckpointError> {
        self.resume_with_metrics(objective, path, term_override, None)
    }

    /// [`resume`](Self::resume) with optional run accounting.
    pub fn resume_with_metrics<F: StochasticObjective>(
        &self,
        objective: &F,
        path: &Path,
        term_override: Option<Termination>,
        registry: Option<&MetricsRegistry>,
    ) -> Result<RunResult, CheckpointError> {
        let (payload, from) = checkpoint::load_with_fallback(path)?;
        let mut session = RunSession::resume(
            objective,
            self.cfg.clone(),
            &payload,
            term_override,
            Driver::PcMn(self.mn, self.pc),
        )?;
        if from != path {
            session.record_note(crate::result::RunNote::CheckpointFellBack);
        }
        if let Some(reg) = registry {
            session.attach_metrics(EngineMetrics::register(reg));
        }
        Ok(session.run_to_completion())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::random_uniform;
    use crate::pc::PointComparison;
    use stoch_eval::functions::Rosenbrock;
    use stoch_eval::noise::{ConstantNoise, ZeroNoise};
    use stoch_eval::objective::Objective;
    use stoch_eval::sampler::Noisy;

    fn term() -> Termination {
        Termination {
            tolerance: Some(1e-3),
            max_time: Some(3e5),
            max_iterations: Some(5_000),
        }
    }

    #[test]
    fn pcmn_solves_noise_free_rosenbrock() {
        let obj = Noisy::new(Rosenbrock::new(2), ZeroNoise);
        let init = random_uniform(2, -2.0, 2.0, 19);
        let res = PcMn::new().run(
            &obj,
            init,
            Termination::tolerance(1e-12),
            TimeMode::Parallel,
            1,
        );
        assert!(Rosenbrock::new(2).value(&res.best_point) < 1e-5);
    }

    #[test]
    fn pcmn_takes_fewer_steps_than_pc() {
        // The paper's headline contrast: PC+MN imposes stricter conditions,
        // spends more time per vertex, and moves the simplex fewer times.
        // At extreme noise (σ0 = 1000) under a finite time budget both
        // algorithms become resampling-bound and their step counts equalize,
        // so the contrast is asserted at moderate noise, aggregated over
        // eight starts to keep it statistically meaningful.
        let obj = Noisy::new(Rosenbrock::new(4), ConstantNoise(10.0));
        let mut pc_steps = 0u64;
        let mut pcmn_steps = 0u64;
        for s in 0..8 {
            let init = random_uniform(4, -5.0, 5.0, 4000 + s);
            let pc = PointComparison::new().run(&obj, init.clone(), term(), TimeMode::Parallel, s);
            let pcmn = PcMn::new().run(&obj, init, term(), TimeMode::Parallel, s);
            pc_steps += pc.iterations;
            pcmn_steps += pcmn.iterations;
        }
        assert!(
            pcmn_steps < pc_steps,
            "PC+MN steps {pcmn_steps} should be fewer than PC steps {pc_steps}"
        );
    }

    #[test]
    fn pcmn_accuracy_comparable_to_pc() {
        let rosen = Rosenbrock::new(3);
        let obj = Noisy::new(rosen, ConstantNoise(100.0));
        let mut log_ratio_sum = 0.0;
        for s in 0..4 {
            let init = random_uniform(3, -6.0, 3.0, 5000 + s);
            let pc = PointComparison::new().run(&obj, init.clone(), term(), TimeMode::Parallel, s);
            let pcmn = PcMn::new().run(&obj, init, term(), TimeMode::Parallel, s);
            let fp = rosen.value(&pc.best_point).max(1e-12);
            let fpm = rosen.value(&pcmn.best_point).max(1e-12);
            log_ratio_sum += (fpm / fp).log10();
        }
        // "Comparable": within two orders of magnitude across 4 replicates.
        assert!(log_ratio_sum.abs() < 8.0, "ratio sum {log_ratio_sum}");
    }
}
