//! Initial-simplex generation.
//!
//! The paper stresses (§1.2) that the total optimization cost depends
//! dramatically on the initial simplex and keeps that step explicit; the
//! experiments draw each vertex coordinate uniformly from a box
//! (`U[−6, 3]` for Tables 3.1–3.2, `U[−5, 5)` for Figs 3.5+).

use rand::rngs::StdRng;
use rand::Rng;
use stoch_eval::rng::rng_from_seed;

/// Draw a `(d+1)`-vertex simplex with every coordinate uniform in
/// `[lo, hi)`.
pub fn random_uniform(d: usize, lo: f64, hi: f64, seed: u64) -> Vec<Vec<f64>> {
    assert!(d >= 1 && hi > lo);
    let mut rng: StdRng = rng_from_seed(seed);
    (0..=d)
        .map(|_| (0..d).map(|_| rng.gen_range(lo..hi)).collect())
        .collect()
}

/// A right-angled simplex anchored at `origin` with edge length `scale`
/// along each axis — the classical "axis-step" initializer.
pub fn axis_aligned(origin: &[f64], scale: f64) -> Vec<Vec<f64>> {
    let d = origin.len();
    assert!(d >= 1 && scale != 0.0);
    let mut pts = Vec::with_capacity(d + 1);
    pts.push(origin.to_vec());
    for i in 0..d {
        let mut p = origin.to_vec();
        p[i] += scale;
        pts.push(p);
    }
    pts
}

/// An explicit list of vertices (e.g. the hand-chosen poor starting
/// parameters of Table 3.4a). Validates shape.
pub fn explicit(vertices: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
    assert!(vertices.len() >= 2, "need at least d+1 = 2 vertices");
    let d = vertices[0].len();
    assert!(
        vertices.iter().all(|v| v.len() == d),
        "all vertices must share a dimension"
    );
    assert_eq!(
        vertices.len(),
        d + 1,
        "a simplex in {d} dimensions needs {} vertices",
        d + 1
    );
    vertices
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_uniform_shape_and_range() {
        let s = random_uniform(3, -6.0, 3.0, 42);
        assert_eq!(s.len(), 4);
        for v in &s {
            assert_eq!(v.len(), 3);
            for &x in v {
                assert!((-6.0..3.0).contains(&x));
            }
        }
    }

    #[test]
    fn random_uniform_is_reproducible() {
        assert_eq!(
            random_uniform(4, -5.0, 5.0, 7),
            random_uniform(4, -5.0, 5.0, 7)
        );
        assert_ne!(
            random_uniform(4, -5.0, 5.0, 7),
            random_uniform(4, -5.0, 5.0, 8)
        );
    }

    #[test]
    fn axis_aligned_shape() {
        let s = axis_aligned(&[1.0, 2.0], 0.5);
        assert_eq!(s, vec![vec![1.0, 2.0], vec![1.5, 2.0], vec![1.0, 2.5]]);
    }

    #[test]
    fn explicit_validates() {
        let s = explicit(vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 1.0]]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    #[should_panic]
    fn explicit_rejects_wrong_count() {
        let _ = explicit(vec![vec![0.0, 0.0], vec![1.0, 0.0]]);
    }
}
