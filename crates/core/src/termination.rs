//! Termination criteria (§2.4.1): function-spread tolerance (Eq. 2.9),
//! virtual-walltime limit, and an iteration-count safety cap.

/// Why an optimization run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// All observed vertex values within `tolerance` of the best (Eq. 2.9).
    Tolerance,
    /// Total virtual sampling time exceeded the limit.
    WallTime,
    /// Iteration cap reached.
    MaxIterations,
    /// The algorithm could not make further progress (e.g. a zero-noise
    /// resampling loop that can never decide a comparison).
    Stalled,
    /// The simplex collapsed below machine precision: its diameter fell
    /// under `ε · scale` (or became non-finite), so no further move can
    /// change the geometry. Under [`crate::restart::RestartedSimplex`] this
    /// triggers a fresh start like any other stop.
    Degenerate,
    /// A stream produced a non-finite sample and the run's
    /// [`crate::config::NonFinitePolicy`] is `FailFast`.
    NonFinite,
}

/// Combined termination criteria. Any satisfied criterion stops the run;
/// at least one bound should be finite or the run may not terminate on a
/// noisy objective.
#[derive(Debug, Clone, Copy)]
pub struct Termination {
    /// Eq. 2.9 spread tolerance `τ` on observed values (`None` disables).
    pub tolerance: Option<f64>,
    /// Virtual-walltime budget (`None` disables).
    pub max_time: Option<f64>,
    /// Maximum number of simplex iterations (`None` disables).
    pub max_iterations: Option<u64>,
}

impl Default for Termination {
    fn default() -> Self {
        Termination {
            tolerance: Some(1e-8),
            max_time: Some(1e6),
            max_iterations: Some(100_000),
        }
    }
}

impl Termination {
    /// A pure tolerance criterion with a generous safety cap.
    pub fn tolerance(tau: f64) -> Self {
        Termination {
            tolerance: Some(tau),
            max_time: None,
            max_iterations: Some(1_000_000),
        }
    }

    /// A pure walltime budget.
    pub fn wall_time(t: f64) -> Self {
        Termination {
            tolerance: None,
            max_time: Some(t),
            max_iterations: None,
        }
    }

    /// Check the Eq. 2.9 spread criterion against observed vertex values.
    pub fn spread_met(&self, values: &[f64]) -> bool {
        match self.tolerance {
            None => false,
            Some(tau) => {
                let min = values.iter().copied().fold(f64::INFINITY, f64::min);
                values.iter().all(|&v| (v - min).abs() <= tau)
            }
        }
    }

    /// Check the non-spread criteria given elapsed virtual time and the
    /// completed iteration count.
    pub fn budget_exceeded(&self, elapsed: f64, iterations: u64) -> Option<StopReason> {
        if let Some(t) = self.max_time {
            if elapsed >= t {
                return Some(StopReason::WallTime);
            }
        }
        if let Some(n) = self.max_iterations {
            if iterations >= n {
                return Some(StopReason::MaxIterations);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_criterion_matches_eq_2_9() {
        let t = Termination::tolerance(0.5);
        assert!(t.spread_met(&[1.0, 1.2, 1.5]));
        assert!(!t.spread_met(&[1.0, 1.2, 1.6]));
    }

    #[test]
    fn disabled_tolerance_never_met() {
        let t = Termination::wall_time(10.0);
        assert!(!t.spread_met(&[1.0, 1.0]));
    }

    #[test]
    fn walltime_budget() {
        let t = Termination::wall_time(10.0);
        assert_eq!(t.budget_exceeded(9.9, 0), None);
        assert_eq!(t.budget_exceeded(10.0, 0), Some(StopReason::WallTime));
    }

    #[test]
    fn iteration_budget() {
        let t = Termination {
            tolerance: None,
            max_time: None,
            max_iterations: Some(5),
        };
        assert_eq!(t.budget_exceeded(1e12, 4), None);
        assert_eq!(t.budget_exceeded(0.0, 5), Some(StopReason::MaxIterations));
    }

    #[test]
    fn walltime_has_priority_over_iterations() {
        let t = Termination {
            tolerance: None,
            max_time: Some(1.0),
            max_iterations: Some(1),
        };
        assert_eq!(t.budget_exceeded(2.0, 2), Some(StopReason::WallTime));
    }
}
