//! PC — the point-to-point comparison algorithm (Algorithm 3).
//!
//! Every comparison that can move the simplex is made at a chosen confidence
//! level: `g(a) < g(b)` is only believed when `g(a) + kσ_a < g(b) − kσ_b`.
//! When neither a condition nor its complement can be decided, *only the two
//! points involved* are resampled until the decision is possible — in
//! contrast to MN, which waits on every vertex. The seven decision sites
//! (c1…c7) can individually use the error-bar comparison or the plain one;
//! Figures 3.8–3.17 ablate exactly this choice via
//! [`PcConditions`](crate::config::PcConditions).

use crate::checkpoint::{self, CheckpointError};
use crate::compare::{confident_greater, confident_less, Decision};
use crate::config::{PcParams, SimplexConfig};
use crate::engine::Engine;
use crate::geometry::{contract, expand, reflect};
use crate::metrics::EngineMetrics;
use crate::result::RunResult;
use crate::session::{Driver, RunSession};
use crate::termination::{StopReason, Termination};
use crate::trace::StepKind;
use obs::MetricsRegistry;
use std::path::Path;
use stoch_eval::clock::TimeMode;
use stoch_eval::objective::StochasticObjective;

/// Safety cap on resampling rounds within one decision.
const MAX_RESAMPLE_ROUNDS: u32 = 20_000;

/// Run one PC iteration (Algorithm 3 body). Returns `Some(reason)` if a
/// termination criterion fired mid-iteration.
///
/// Shared with [`crate::pcmn::PcMn`], which prepends the MN gate.
pub(crate) fn pc_iteration<F: StochasticObjective>(
    eng: &mut Engine<F>,
    params: PcParams,
) -> Option<StopReason> {
    let coeff = eng.config().coefficients;
    let k = params.k;
    let conds = params.conditions;
    // Clone the handles once per iteration (a handful of Arc bumps) so site
    // accounting does not fight the borrow checker across `&mut eng` calls.
    let metrics = eng.metrics().cloned();
    // A site's condition resolved: affirmative for `yes`, negative for the
    // paired site checked in the same loop.
    let decided = |yes: usize, no: usize| {
        if let Some(m) = &metrics {
            m.site(yes).decided_true.inc();
            m.site(no).decided_false.inc();
        }
    };
    // Both sites of a loop stayed undecided for a round costing `dt`.
    let undecided = |a: usize, b: usize, dt: f64| {
        if let Some(m) = &metrics {
            for &s in &[a, b] {
                m.site(s).undecided_resample.inc();
                m.site(s).resample_time.add(dt);
            }
        }
    };

    let ord = eng.ordering();
    let cent = eng.centroid_excluding(ord.max);
    let refl_x = reflect(&cent, eng.point(ord.max), coeff.alpha);
    let refl = eng.open_trial(refl_x);
    eng.extend_round(&[refl]);

    // Stage R: decide condition 1 (reflection confidently below smax) or
    // condition 5 (confidently at/above); resample {ref, smax} otherwise.
    enum RBranch {
        Better,
        Worse,
    }
    let mut rounds = 0u32;
    let branch = loop {
        let er = eng.estimate(refl);
        let es = eng.estimate(ord.smax);
        if confident_less(er, es, k, conds.uses_bars(1)) == Decision::Yes {
            decided(1, 5);
            break RBranch::Better; // condition 1
        }
        if confident_less(er, es, k, conds.uses_bars(5)) == Decision::No {
            decided(5, 1);
            break RBranch::Worse; // condition 5
        }
        if let Some(r) = eng.budget_stop() {
            eng.drop_trials();
            return Some(r);
        }
        if rounds >= MAX_RESAMPLE_ROUNDS {
            eng.drop_trials();
            return Some(StopReason::Stalled);
        }
        let t0 = eng.elapsed();
        eng.extend_round(&[refl, ord.smax]);
        undecided(1, 5, eng.elapsed() - t0);
        rounds += 1;
    };

    match branch {
        RBranch::Better => {
            // Condition 2: reflection confidently worse than the best vertex
            // — accept it without attempting an expansion.
            let er = eng.estimate(refl);
            let emin = eng.estimate(ord.min);
            if confident_greater(er, emin, k, conds.uses_bars(2)) == Decision::Yes {
                if let Some(m) = &metrics {
                    m.site(2).decided_true.inc();
                }
                eng.replace_vertex(ord.max, refl);
                eng.drop_trials();
                eng.record(StepKind::Reflect);
                return None;
            }
            // Site c2 never loops: an undecided comparison falls through to
            // the expansion attempt, so count it as decided-false.
            if let Some(m) = &metrics {
                m.site(2).decided_false.inc();
            }
            // Expansion: decide condition 3 (expansion confidently below the
            // reflection) or condition 4; resample {exp, ref} otherwise.
            let exp_x = expand(&cent, eng.point(refl), coeff.gamma);
            let exp = eng.open_trial(exp_x);
            eng.extend_round(&[exp]);
            let mut rounds = 0u32;
            loop {
                let ee = eng.estimate(exp);
                let er = eng.estimate(refl);
                if confident_less(ee, er, k, conds.uses_bars(3)) == Decision::Yes {
                    decided(3, 4);
                    eng.replace_vertex(ord.max, exp);
                    eng.level_mut().on_expand();
                    eng.drop_trials();
                    eng.record(StepKind::Expand);
                    return None; // condition 3
                }
                if confident_less(ee, er, k, conds.uses_bars(4)) == Decision::No {
                    decided(4, 3);
                    eng.replace_vertex(ord.max, refl);
                    eng.drop_trials();
                    eng.record(StepKind::Reflect);
                    return None; // condition 4
                }
                if let Some(r) = eng.budget_stop() {
                    eng.drop_trials();
                    return Some(r);
                }
                if rounds >= MAX_RESAMPLE_ROUNDS {
                    eng.drop_trials();
                    return Some(StopReason::Stalled);
                }
                let t0 = eng.elapsed();
                eng.extend_round(&[exp, refl]);
                undecided(3, 4, eng.elapsed() - t0);
                rounds += 1;
            }
        }
        RBranch::Worse => {
            // Contraction: decide condition 6 (contraction confidently below
            // the worst vertex) or condition 7 (collapse); resample
            // {con, max} otherwise.
            let con_x = contract(&cent, eng.point(ord.max), coeff.beta);
            let con = eng.open_trial(con_x);
            eng.extend_round(&[con]);
            let mut rounds = 0u32;
            loop {
                let ec = eng.estimate(con);
                let em = eng.estimate(ord.max);
                if confident_less(ec, em, k, conds.uses_bars(6)) == Decision::Yes {
                    decided(6, 7);
                    eng.replace_vertex(ord.max, con);
                    eng.level_mut().on_contract();
                    eng.drop_trials();
                    eng.record(StepKind::Contract);
                    return None; // condition 6
                }
                if confident_less(ec, em, k, conds.uses_bars(7)) == Decision::No {
                    decided(7, 6);
                    eng.drop_trials();
                    eng.collapse(ord.min);
                    eng.record(StepKind::Collapse);
                    return None; // condition 7
                }
                if let Some(r) = eng.budget_stop() {
                    eng.drop_trials();
                    return Some(r);
                }
                if rounds >= MAX_RESAMPLE_ROUNDS {
                    eng.drop_trials();
                    return Some(StopReason::Stalled);
                }
                let t0 = eng.elapsed();
                eng.extend_round(&[con, ord.max]);
                undecided(6, 7, eng.elapsed() - t0);
                rounds += 1;
            }
        }
    }
}

/// The point-to-point comparison algorithm (paper Algorithm 3).
#[derive(Debug, Clone, Default)]
pub struct PointComparison {
    /// Coefficients and sampling policy.
    pub cfg: SimplexConfig,
    /// Confidence multiplier and error-bar condition set.
    pub params: PcParams,
}

impl PointComparison {
    /// PC with default parameters (`k = 1`, bars at all seven sites).
    pub fn new() -> Self {
        Self::default()
    }

    /// PC with a specific parameter block.
    pub fn with_params(params: PcParams) -> Self {
        PointComparison {
            cfg: SimplexConfig::default(),
            params,
        }
    }

    /// Optimize `objective` from the initial simplex `init`.
    pub fn run<F: StochasticObjective>(
        &self,
        objective: &F,
        init: Vec<Vec<f64>>,
        term: Termination,
        mode: TimeMode,
        seed: u64,
    ) -> RunResult {
        self.run_with_metrics(objective, init, term, mode, seed, None)
    }

    /// [`run`](Self::run) with optional run accounting: when `registry` is
    /// given, per-site decision counters (c1…c7) and engine tallies are
    /// recorded into it and summarized in [`RunResult::metrics`].
    pub fn run_with_metrics<F: StochasticObjective>(
        &self,
        objective: &F,
        init: Vec<Vec<f64>>,
        term: Termination,
        mode: TimeMode,
        seed: u64,
        registry: Option<&MetricsRegistry>,
    ) -> RunResult {
        let mut session = RunSession::new(
            objective,
            init,
            self.cfg.clone(),
            term,
            mode,
            seed,
            Driver::Pc(self.params),
        );
        if let Some(reg) = registry {
            session.attach_metrics(EngineMetrics::register(reg));
        }
        session.run_to_completion()
    }

    /// Resume a checkpointed PC run (see
    /// [`SimplexMethod::resume`](crate::algorithm::SimplexMethod::resume)).
    pub fn resume<F: StochasticObjective>(
        &self,
        objective: &F,
        path: &Path,
        term_override: Option<Termination>,
    ) -> Result<RunResult, CheckpointError> {
        self.resume_with_metrics(objective, path, term_override, None)
    }

    /// [`resume`](Self::resume) with optional run accounting.
    pub fn resume_with_metrics<F: StochasticObjective>(
        &self,
        objective: &F,
        path: &Path,
        term_override: Option<Termination>,
        registry: Option<&MetricsRegistry>,
    ) -> Result<RunResult, CheckpointError> {
        let (payload, from) = checkpoint::load_with_fallback(path)?;
        let mut session = RunSession::resume(
            objective,
            self.cfg.clone(),
            &payload,
            term_override,
            Driver::Pc(self.params),
        )?;
        if from != path {
            session.record_note(crate::result::RunNote::CheckpointFellBack);
        }
        if let Some(reg) = registry {
            session.attach_metrics(EngineMetrics::register(reg));
        }
        Ok(session.run_to_completion())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PcConditions;
    use crate::init::random_uniform;
    use crate::mn::MaxNoise;
    use stoch_eval::functions::Rosenbrock;
    use stoch_eval::noise::{ConstantNoise, ZeroNoise};
    use stoch_eval::objective::Objective;
    use stoch_eval::sampler::Noisy;

    fn term() -> Termination {
        Termination {
            tolerance: Some(1e-3),
            max_time: Some(3e5),
            max_iterations: Some(5_000),
        }
    }

    #[test]
    fn pc_solves_noise_free_rosenbrock() {
        let obj = Noisy::new(Rosenbrock::new(2), ZeroNoise);
        let init = random_uniform(2, -2.0, 2.0, 17);
        let res = PointComparison::new().run(
            &obj,
            init,
            Termination::tolerance(1e-12),
            TimeMode::Parallel,
            1,
        );
        assert!(Rosenbrock::new(2).value(&res.best_point) < 1e-5);
    }

    #[test]
    fn pc_beats_or_ties_mn_under_noise() {
        // The Fig 3.5b effect, averaged over a few replicates.
        let rosen = Rosenbrock::new(3);
        // Pinned Gaussian: the Fig 3.5b margin is calibrated for Gaussian
        // noise and need not hold under an NSX_NOISE chaos run.
        let obj = Noisy::gaussian(rosen, ConstantNoise(100.0));
        let mut log_ratio_sum = 0.0;
        for s in 0..5 {
            let init = random_uniform(3, -6.0, 3.0, 2000 + s);
            let mn = MaxNoise::with_k(2.0).run(&obj, init.clone(), term(), TimeMode::Parallel, s);
            let pc = PointComparison::new().run(&obj, init, term(), TimeMode::Parallel, s);
            let fm = rosen.value(&mn.best_point).max(1e-12);
            let fp = rosen.value(&pc.best_point).max(1e-12);
            log_ratio_sum += (fp / fm).log10();
        }
        assert!(
            log_ratio_sum < 1.0,
            "PC should be no worse than MN on average, got {log_ratio_sum}"
        );
    }

    #[test]
    fn pc_single_condition_variants_run() {
        let obj = Noisy::new(Rosenbrock::new(3), ConstantNoise(100.0));
        for c in 1..=7 {
            let init = random_uniform(3, -6.0, 3.0, 3000 + c as u64);
            let pc = PointComparison::with_params(PcParams {
                k: 1.0,
                conditions: PcConditions::only(&[c]),
            });
            let res = pc.run(&obj, init, term(), TimeMode::Parallel, c as u64);
            assert!(res.iterations > 0, "variant c{c} made no progress");
        }
    }

    #[test]
    fn pc_with_no_bars_behaves_like_det_structure() {
        // With every condition un-barred the comparisons are plain, so no
        // resampling loops run and sampling stays shallow.
        let obj = Noisy::new(Rosenbrock::new(3), ConstantNoise(100.0));
        let init = random_uniform(3, -6.0, 3.0, 55);
        let none = PointComparison::with_params(PcParams {
            k: 1.0,
            conditions: PcConditions::none(),
        })
        .run(&obj, init.clone(), term(), TimeMode::Parallel, 8);
        let all = PointComparison::new().run(&obj, init, term(), TimeMode::Parallel, 8);
        assert!(none.total_sampling < all.total_sampling);
    }

    #[test]
    fn pc_k2_is_stricter_than_k1() {
        // Larger confidence multiplier demands more sampling per decision.
        let obj = Noisy::new(Rosenbrock::new(3), ConstantNoise(100.0));
        let init = random_uniform(3, -6.0, 3.0, 66);
        let t = Termination {
            tolerance: Some(1e-3),
            max_time: Some(5e4),
            max_iterations: Some(2_000),
        };
        let k1 = PointComparison::with_params(PcParams {
            k: 1.0,
            conditions: PcConditions::all(),
        })
        .run(&obj, init.clone(), t, TimeMode::Parallel, 9);
        let k2 = PointComparison::with_params(PcParams {
            k: 2.0,
            conditions: PcConditions::all(),
        })
        .run(&obj, init, t, TimeMode::Parallel, 9);
        assert!(
            k2.iterations <= k1.iterations,
            "k=2 took more steps ({}) than k=1 ({})",
            k2.iterations,
            k1.iterations
        );
    }
}
