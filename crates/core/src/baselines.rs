//! Extension baselines beyond the paper's DET/Anderson comparisons.
//!
//! The calibration notes that the paper is light on optimization baselines;
//! these three classical stochastic optimizers run on the *same* sampling
//! substrate, so the benchmark harness can compare them head-to-head with
//! the simplex family under identical noise:
//!
//! * [`Spsa`] — Spall's simultaneous-perturbation stochastic approximation
//!   (the paper cites Spall [25][26] as the stochastic-approximation line).
//! * [`SimulatedAnnealing`] — Metropolis search on noisy estimates (§1.3.3.4).
//! * [`RandomSearch`] — uniform random sampling of the box, the null model.

use crate::config::BackendChoice;
use crate::result::RunResult;
use crate::termination::Termination;
use crate::trace::{StepKind, Trace, TracePoint};
use rand::rngs::StdRng;
use rand::Rng;
use stoch_eval::backend::{eval_round, SamplingBackend};
use stoch_eval::clock::{TimeMode, VirtualClock};
use stoch_eval::objective::StochasticObjective;
use stoch_eval::rng::{rng_from_seed, SeedSequence};
use stoch_eval::sampler::standard_normal;

/// Sample a point for a fixed duration (one single-stream backend round)
/// and return the estimate value.
fn quick_eval<F: StochasticObjective>(
    backend: &dyn SamplingBackend<F::Stream>,
    objective: &F,
    x: &[f64],
    dt: f64,
    seeds: &mut SeedSequence,
    clock: &mut VirtualClock,
    total: &mut f64,
) -> f64 {
    eval_round(backend, objective, &[x.to_vec()], dt, seeds, clock, total)[0]
}

/// Simultaneous-perturbation stochastic approximation (Spall 1992).
///
/// Gain sequences follow the standard guidelines:
/// `a_k = a / (k + 1 + A)^α`, `c_k = c / (k + 1)^γ` with `α = 0.602`,
/// `γ = 0.101`.
#[derive(Debug, Clone)]
pub struct Spsa {
    /// Step-size scale `a`.
    pub a: f64,
    /// Stability offset `A`.
    pub big_a: f64,
    /// Perturbation scale `c`.
    pub c: f64,
    /// Step-size decay exponent `α`.
    pub alpha: f64,
    /// Perturbation decay exponent `γ`.
    pub gamma: f64,
    /// Sampling time per gradient-probe evaluation.
    pub eval_dt: f64,
    /// Per-coordinate cap on one update step (gradient clipping); keeps
    /// untuned gains from diverging on steep valleys like Rosenbrock.
    pub max_step: f64,
    /// Which backend executes the paired probe evaluations.
    pub backend: BackendChoice,
}

impl Default for Spsa {
    fn default() -> Self {
        Spsa {
            a: 0.5,
            big_a: 10.0,
            c: 0.5,
            alpha: 0.602,
            gamma: 0.101,
            eval_dt: 1.0,
            max_step: 0.5,
            backend: BackendChoice::default(),
        }
    }
}

impl Spsa {
    /// Run SPSA from `x0`.
    pub fn run<F: StochasticObjective>(
        &self,
        objective: &F,
        x0: Vec<f64>,
        term: Termination,
        mode: TimeMode,
        seed: u64,
    ) -> RunResult {
        let d = objective.dim();
        assert_eq!(x0.len(), d);
        let mut seeds = SeedSequence::new(seed);
        let mut rng: StdRng = rng_from_seed(seeds.next_seed());
        let mut clock = VirtualClock::new(mode);
        let backend = self.backend.build::<F::Stream>();
        let mut total = 0.0;
        let mut trace = Trace::new();
        let mut x = x0;
        let mut k: u64 = 0;

        let stop = loop {
            if let Some(r) = term.budget_exceeded(clock.elapsed(), k) {
                break r;
            }
            let ak = self.a / ((k as f64 + 1.0 + self.big_a).powf(self.alpha));
            let ck = self.c / ((k as f64 + 1.0).powf(self.gamma));
            // Rademacher perturbation direction.
            let delta: Vec<f64> = (0..d)
                .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
                .collect();
            let xp: Vec<f64> = x
                .iter()
                .zip(&delta)
                .map(|(&xi, &di)| xi + ck * di)
                .collect();
            let xm: Vec<f64> = x
                .iter()
                .zip(&delta)
                .map(|(&xi, &di)| xi - ck * di)
                .collect();
            // The two probes run concurrently: one backend round.
            let probes = eval_round(
                backend.as_ref(),
                objective,
                &[xp, xm],
                self.eval_dt,
                &mut seeds,
                &mut clock,
                &mut total,
            );
            let (gp, gm) = (probes[0], probes[1]);
            let diff = (gp - gm) / (2.0 * ck);
            for (xi, &di) in x.iter_mut().zip(&delta) {
                let step = (ak * diff / di).clamp(-self.max_step, self.max_step);
                *xi -= step;
            }
            k += 1;
            let best_true = objective.true_value(&x);
            trace.push(TracePoint {
                time: clock.elapsed(),
                iteration: k,
                best_observed: best_true.unwrap_or(0.5 * (gp + gm)),
                best_true,
                diameter: 2.0 * ck,
                step: StepKind::Reflect,
            });
        };

        let best_observed = quick_eval(
            backend.as_ref(),
            objective,
            &x,
            self.eval_dt,
            &mut seeds,
            &mut clock,
            &mut total,
        );
        RunResult {
            best_point: x,
            best_observed,
            iterations: k,
            elapsed: clock.elapsed(),
            total_sampling: total,
            stop,
            trace,
            metrics: None,
            notes: crate::result::notes_from_backend(backend.as_ref()),
        }
    }
}

/// Metropolis simulated annealing over noisy estimates (§1.3.3.4).
#[derive(Debug, Clone)]
pub struct SimulatedAnnealing {
    /// Initial temperature.
    pub t0: f64,
    /// Geometric cooling factor per step (`< 1`).
    pub cooling: f64,
    /// Gaussian proposal scale.
    pub step: f64,
    /// Sampling time per evaluation.
    pub eval_dt: f64,
    /// Which backend executes the candidate evaluations.
    pub backend: BackendChoice,
}

impl Default for SimulatedAnnealing {
    fn default() -> Self {
        SimulatedAnnealing {
            t0: 100.0,
            cooling: 0.995,
            step: 0.5,
            eval_dt: 1.0,
            backend: BackendChoice::default(),
        }
    }
}

impl SimulatedAnnealing {
    /// Run annealing from `x0`.
    pub fn run<F: StochasticObjective>(
        &self,
        objective: &F,
        x0: Vec<f64>,
        term: Termination,
        mode: TimeMode,
        seed: u64,
    ) -> RunResult {
        let mut seeds = SeedSequence::new(seed);
        let mut rng: StdRng = rng_from_seed(seeds.next_seed());
        let mut clock = VirtualClock::new(mode);
        let backend = self.backend.build::<F::Stream>();
        let mut total = 0.0;
        let mut trace = Trace::new();

        let mut x = x0;
        let mut gx = quick_eval(
            backend.as_ref(),
            objective,
            &x,
            self.eval_dt,
            &mut seeds,
            &mut clock,
            &mut total,
        );
        let (mut best_x, mut best_g) = (x.clone(), gx);
        let mut temp = self.t0;
        let mut k: u64 = 0;

        let stop = loop {
            if let Some(r) = term.budget_exceeded(clock.elapsed(), k) {
                break r;
            }
            let cand: Vec<f64> = x
                .iter()
                .map(|&xi| xi + self.step * standard_normal(&mut rng))
                .collect();
            let gc = quick_eval(
                backend.as_ref(),
                objective,
                &cand,
                self.eval_dt,
                &mut seeds,
                &mut clock,
                &mut total,
            );
            let accept = gc < gx || rng.gen::<f64>() < ((gx - gc) / temp.max(1e-300)).exp();
            if accept {
                x = cand;
                gx = gc;
                if gx < best_g {
                    best_g = gx;
                    best_x = x.clone();
                }
            }
            temp *= self.cooling;
            k += 1;
            trace.push(TracePoint {
                time: clock.elapsed(),
                iteration: k,
                best_observed: best_g,
                best_true: objective.true_value(&best_x),
                diameter: temp,
                step: if accept {
                    StepKind::Reflect
                } else {
                    StepKind::Contract
                },
            });
        };

        RunResult {
            best_point: best_x,
            best_observed: best_g,
            iterations: k,
            elapsed: clock.elapsed(),
            total_sampling: total,
            stop,
            trace,
            metrics: None,
            notes: crate::result::notes_from_backend(backend.as_ref()),
        }
    }
}

/// Uniform random search over a box — the null model every informed method
/// must beat.
#[derive(Debug, Clone)]
pub struct RandomSearch {
    /// Lower bound of each coordinate.
    pub lo: f64,
    /// Upper bound of each coordinate.
    pub hi: f64,
    /// Sampling time per evaluation.
    pub eval_dt: f64,
    /// Which backend executes the candidate evaluations.
    pub backend: BackendChoice,
}

impl RandomSearch {
    /// Search within `[lo, hi)^d`.
    pub fn new(lo: f64, hi: f64) -> Self {
        RandomSearch {
            lo,
            hi,
            eval_dt: 1.0,
            backend: BackendChoice::default(),
        }
    }

    /// Run the search.
    pub fn run<F: StochasticObjective>(
        &self,
        objective: &F,
        term: Termination,
        mode: TimeMode,
        seed: u64,
    ) -> RunResult {
        let d = objective.dim();
        let mut seeds = SeedSequence::new(seed);
        let mut rng: StdRng = rng_from_seed(seeds.next_seed());
        let mut clock = VirtualClock::new(mode);
        let backend = self.backend.build::<F::Stream>();
        let mut total = 0.0;
        let mut trace = Trace::new();
        let mut best_x: Vec<f64> = (0..d).map(|_| rng.gen_range(self.lo..self.hi)).collect();
        let mut best_g = quick_eval(
            backend.as_ref(),
            objective,
            &best_x,
            self.eval_dt,
            &mut seeds,
            &mut clock,
            &mut total,
        );
        let mut k: u64 = 0;

        let stop = loop {
            if let Some(r) = term.budget_exceeded(clock.elapsed(), k) {
                break r;
            }
            let cand: Vec<f64> = (0..d).map(|_| rng.gen_range(self.lo..self.hi)).collect();
            let gc = quick_eval(
                backend.as_ref(),
                objective,
                &cand,
                self.eval_dt,
                &mut seeds,
                &mut clock,
                &mut total,
            );
            if gc < best_g {
                best_g = gc;
                best_x = cand;
            }
            k += 1;
            trace.push(TracePoint {
                time: clock.elapsed(),
                iteration: k,
                best_observed: best_g,
                best_true: objective.true_value(&best_x),
                diameter: self.hi - self.lo,
                step: StepKind::Reflect,
            });
        };

        RunResult {
            best_point: best_x,
            best_observed: best_g,
            iterations: k,
            elapsed: clock.elapsed(),
            total_sampling: total,
            stop,
            trace,
            metrics: None,
            notes: crate::result::notes_from_backend(backend.as_ref()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stoch_eval::functions::{Rosenbrock, Sphere};
    use stoch_eval::noise::{ConstantNoise, ZeroNoise};
    use stoch_eval::objective::Objective;
    use stoch_eval::sampler::Noisy;

    fn iters(n: u64) -> Termination {
        Termination {
            tolerance: None,
            max_time: None,
            max_iterations: Some(n),
        }
    }

    #[test]
    fn spsa_descends_on_noisy_sphere() {
        let sphere = Sphere::new(4);
        let obj = Noisy::new(sphere, ConstantNoise(0.5));
        let x0 = vec![3.0; 4];
        let res = Spsa::default().run(&obj, x0.clone(), iters(2_000), TimeMode::Parallel, 1);
        assert!(
            sphere.value(&res.best_point) < sphere.value(&x0) / 10.0,
            "SPSA final {}",
            sphere.value(&res.best_point)
        );
    }

    #[test]
    fn annealing_descends_on_rosenbrock() {
        let rosen = Rosenbrock::new(2);
        let obj = Noisy::new(rosen, ZeroNoise);
        let x0 = vec![-1.5, 2.0];
        let res = SimulatedAnnealing::default().run(
            &obj,
            x0.clone(),
            iters(4_000),
            TimeMode::Parallel,
            2,
        );
        assert!(rosen.value(&res.best_point) < rosen.value(&x0));
    }

    #[test]
    fn random_search_improves_on_first_draw() {
        let sphere = Sphere::new(3);
        let obj = Noisy::new(sphere, ConstantNoise(0.1));
        let res = RandomSearch::new(-5.0, 5.0).run(&obj, iters(500), TimeMode::Parallel, 3);
        assert!(sphere.value(&res.best_point) < 25.0);
        assert_eq!(res.iterations, 500);
    }

    #[test]
    fn baselines_account_time() {
        let obj = Noisy::new(Sphere::new(2), ConstantNoise(1.0));
        let res = RandomSearch::new(-1.0, 1.0).run(&obj, iters(10), TimeMode::Serial, 4);
        // 11 evaluations (initial + 10) at dt = 1 in serial mode.
        assert_eq!(res.elapsed, 11.0);
        assert_eq!(res.total_sampling, 11.0);
    }
}
