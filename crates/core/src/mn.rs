//! MN — the max-noise algorithm (Algorithm 2).
//!
//! Before each simplex decision, sampling continues at every vertex until
//! the noisiest vertex's variance is small compared to the internal variance
//! of the vertex values (Eq. 2.3):
//!
//! ```text
//! max_i σ_i²(t_i) ≤ k · mean_i (g(θ_i) − ḡ)²
//! ```
//!
//! Early in the run the simplex is spread out (large internal variance), so
//! almost no extra sampling is needed and poor parameter regions are
//! rejected cheaply; late in the run the vertices cluster and sampling
//! automatically deepens until the ordering is trustworthy.
//!
//! Trial points (reflection/expansion/contraction) are sampled until their
//! standard error is no worse than the noisiest simplex vertex before any
//! comparison, mirroring the MW deployment where the d+3 workers sample
//! concurrently.

use crate::checkpoint::{self, CheckpointError};
use crate::classic::{internal_variance, max_noise_variance, MAX_WAIT_ROUNDS};
use crate::config::{MnParams, SimplexConfig};
use crate::engine::Engine;
use crate::metrics::EngineMetrics;
use crate::result::RunResult;
use crate::session::{Driver, RunSession};
use crate::termination::{StopReason, Termination};
use obs::MetricsRegistry;
use std::path::Path;
use stoch_eval::clock::TimeMode;
use stoch_eval::objective::StochasticObjective;

/// The MN wait loop shared by [`MaxNoise`] and [`crate::pcmn::PcMn`]
/// (Algorithm 2 lines 4–6): extend every vertex until the noisiest one is
/// quiet relative to the simplex's internal spread. Returns a stop reason if
/// a termination criterion fires mid-wait.
pub(crate) fn mn_wait<F: StochasticObjective>(k: f64, eng: &mut Engine<F>) -> Option<StopReason> {
    let metrics = eng.metrics().cloned();
    let mut rounds = 0u32;
    loop {
        let values = eng.vertex_values();
        let gate = k * internal_variance(&values);
        let passed = max_noise_variance(eng) <= gate;
        if let Some(m) = &metrics {
            m.mn_gate_checks.inc();
            if !passed {
                m.mn_gate_failures.inc();
            }
        }
        if passed {
            return None;
        }
        if let Some(r) = eng.should_stop() {
            return Some(r);
        }
        if rounds >= MAX_WAIT_ROUNDS {
            return Some(StopReason::Stalled);
        }
        let ids: Vec<usize> = (0..eng.n_vertices()).collect();
        let t0 = eng.elapsed();
        eng.extend_round(&ids);
        if let Some(m) = &metrics {
            m.mn_extension_rounds.inc();
            m.mn_equalize_time.add(eng.elapsed() - t0);
        }
        rounds += 1;
    }
}

/// The max-noise algorithm (paper Algorithm 2).
#[derive(Debug, Clone, Default)]
pub struct MaxNoise {
    /// Coefficients and sampling policy.
    pub cfg: SimplexConfig,
    /// The gate constant `k` (Eq. 2.3).
    pub params: MnParams,
}

impl MaxNoise {
    /// MN with the given gate constant `k` and default configuration.
    pub fn with_k(k: f64) -> Self {
        MaxNoise {
            cfg: SimplexConfig::default(),
            params: MnParams { k },
        }
    }

    /// Optimize `objective` from the initial simplex `init`.
    pub fn run<F: StochasticObjective>(
        &self,
        objective: &F,
        init: Vec<Vec<f64>>,
        term: Termination,
        mode: TimeMode,
        seed: u64,
    ) -> RunResult {
        self.run_with_metrics(objective, init, term, mode, seed, None)
    }

    /// [`run`](Self::run) with optional run accounting: when `registry` is
    /// given, MN gate statistics and engine tallies are recorded into it and
    /// summarized in [`RunResult::metrics`].
    pub fn run_with_metrics<F: StochasticObjective>(
        &self,
        objective: &F,
        init: Vec<Vec<f64>>,
        term: Termination,
        mode: TimeMode,
        seed: u64,
        registry: Option<&MetricsRegistry>,
    ) -> RunResult {
        let mut session = RunSession::new(
            objective,
            init,
            self.cfg.clone(),
            term,
            mode,
            seed,
            Driver::Mn(self.params),
        );
        if let Some(reg) = registry {
            session.attach_metrics(EngineMetrics::register(reg));
        }
        session.run_to_completion()
    }

    /// Resume a checkpointed MN run (see
    /// [`SimplexMethod::resume`](crate::algorithm::SimplexMethod::resume)).
    pub fn resume<F: StochasticObjective>(
        &self,
        objective: &F,
        path: &Path,
        term_override: Option<Termination>,
    ) -> Result<RunResult, CheckpointError> {
        self.resume_with_metrics(objective, path, term_override, None)
    }

    /// [`resume`](Self::resume) with optional run accounting.
    ///
    /// The MN gate is stateless (Eq. 2.3 is a pure function of the current
    /// vertex estimates), so the resumed run re-enters the loop exactly
    /// where the original would have been.
    pub fn resume_with_metrics<F: StochasticObjective>(
        &self,
        objective: &F,
        path: &Path,
        term_override: Option<Termination>,
        registry: Option<&MetricsRegistry>,
    ) -> Result<RunResult, CheckpointError> {
        let (payload, from) = checkpoint::load_with_fallback(path)?;
        let mut session = RunSession::resume(
            objective,
            self.cfg.clone(),
            &payload,
            term_override,
            Driver::Mn(self.params),
        )?;
        if from != path {
            session.record_note(crate::result::RunNote::CheckpointFellBack);
        }
        if let Some(reg) = registry {
            session.attach_metrics(EngineMetrics::register(reg));
        }
        Ok(session.run_to_completion())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::det::Det;
    use crate::init::random_uniform;
    use stoch_eval::functions::Rosenbrock;
    use stoch_eval::noise::{ConstantNoise, ZeroNoise};
    use stoch_eval::objective::Objective;
    use stoch_eval::sampler::Noisy;

    fn term() -> Termination {
        Termination {
            tolerance: Some(1e-3),
            max_time: Some(3e5),
            max_iterations: Some(5_000),
        }
    }

    #[test]
    fn mn_equals_classical_behaviour_without_noise() {
        let obj = Noisy::new(Rosenbrock::new(2), ZeroNoise);
        let init = random_uniform(2, -2.0, 2.0, 21);
        let res = MaxNoise::with_k(2.0).run(
            &obj,
            init,
            Termination::tolerance(1e-12),
            TimeMode::Parallel,
            1,
        );
        let f = Rosenbrock::new(2).value(&res.best_point);
        assert!(f < 1e-5, "final value {f}");
    }

    #[test]
    fn mn_beats_det_under_heavy_noise() {
        // Paired over several initial simplexes; MN should be closer to the
        // true minimum on (geometric) average — the Fig 3.5a effect.
        let rosen = Rosenbrock::new(3);
        let obj = Noisy::new(rosen, ConstantNoise(100.0));
        let mut log_ratio_sum = 0.0;
        let n = 6;
        for s in 0..n {
            let init = random_uniform(3, -6.0, 3.0, 1000 + s);
            let det = Det::new().run(&obj, init.clone(), term(), TimeMode::Parallel, s);
            let mn = MaxNoise::with_k(2.0).run(&obj, init, term(), TimeMode::Parallel, s);
            let fd = rosen.value(&det.best_point).max(1e-12);
            let fm = rosen.value(&mn.best_point).max(1e-12);
            log_ratio_sum += (fm / fd).log10();
        }
        assert!(
            log_ratio_sum < 0.0,
            "MN should beat DET on average, sum log ratio = {log_ratio_sum}"
        );
    }

    #[test]
    fn mn_samples_deeper_than_det() {
        let obj = Noisy::new(Rosenbrock::new(3), ConstantNoise(100.0));
        let init = random_uniform(3, -6.0, 3.0, 77);
        let det = Det::new().run(&obj, init.clone(), term(), TimeMode::Parallel, 9);
        let mn = MaxNoise::with_k(2.0).run(&obj, init, term(), TimeMode::Parallel, 9);
        assert!(
            mn.total_sampling > det.total_sampling,
            "MN {} vs DET {}",
            mn.total_sampling,
            det.total_sampling
        );
    }

    #[test]
    fn mn_k_affects_speed_not_much_the_outcome() {
        // Larger k = looser gate = fewer wait rounds = less sampling time.
        let obj = Noisy::new(Rosenbrock::new(3), ConstantNoise(100.0));
        let init = random_uniform(3, -6.0, 3.0, 33);
        let strict = MaxNoise::with_k(1.0).run(&obj, init.clone(), term(), TimeMode::Parallel, 5);
        let loose = MaxNoise::with_k(5.0).run(&obj, init, term(), TimeMode::Parallel, 5);
        assert!(loose.total_sampling <= strict.total_sampling * 1.5);
    }
}
