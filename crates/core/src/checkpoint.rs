//! Durable checkpoint files: framing, atomic writes, retention, and typed
//! corruption handling (DESIGN.md §11).
//!
//! A checkpoint file is a fixed 20-byte header followed by an opaque payload
//! produced by [`crate::engine::Engine::snapshot`]:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"NSXC"
//! 4       4     format version (little-endian u32, currently 1)
//! 8       8     payload length (little-endian u64)
//! 16      4     CRC-32 (IEEE) of the payload
//! 20      n     payload (stoch_eval::codec encoding)
//! ```
//!
//! Writes are atomic: the frame goes to a sibling `*.tmp` file which is
//! fsynced and then renamed over the target, so a crash — even SIGKILL
//! mid-write — leaves either the previous checkpoint or the new one, never
//! a torn file. With retention enabled the previous good checkpoint is kept
//! at `<path>.1` and [`load_with_fallback`] falls back to it when the
//! primary is corrupt.
//!
//! Every failure mode is a typed [`CheckpointError`]; this module (like the
//! codec it builds on) never panics on malformed input.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use stoch_eval::codec::{crc32, CodecError, Reader};

/// File magic: "noisy-simplex checkpoint".
const MAGIC: [u8; 4] = *b"NSXC";

/// Current checkpoint format version. Bump on any payload layout change —
/// the loader refuses other versions rather than misinterpreting bytes.
pub const FORMAT_VERSION: u32 = 2;

/// Frame header size in bytes (magic + version + payload length + CRC).
const HEADER_LEN: usize = 20;

/// A checkpoint save/load failure.
#[derive(Debug)]
pub enum CheckpointError {
    /// A filesystem operation failed.
    Io {
        /// The operation that failed (`"open"`, `"write"`, `"rename"`, ...).
        op: &'static str,
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The file is shorter than its header (or its declared payload).
    Truncated {
        /// Bytes the frame required.
        needed: usize,
        /// Bytes actually present.
        have: usize,
    },
    /// The file does not start with the checkpoint magic.
    BadMagic,
    /// The stored CRC-32 does not match the payload.
    BadCrc {
        /// CRC recorded in the header.
        expected: u32,
        /// CRC computed over the payload.
        found: u32,
    },
    /// The file was written by an incompatible format version.
    VersionMismatch {
        /// Version recorded in the header.
        found: u32,
        /// The version this build reads.
        supported: u32,
    },
    /// The payload frame was intact but its contents failed to decode.
    Codec(CodecError),
    /// The decoded state does not fit the run being resumed (wrong
    /// dimensionality, vertex count, ...).
    Mismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { op, path, source } => {
                write!(f, "checkpoint {op} failed for {}: {source}", path.display())
            }
            CheckpointError::Truncated { needed, have } => {
                write!(
                    f,
                    "truncated checkpoint: needed {needed} bytes, have {have}"
                )
            }
            CheckpointError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CheckpointError::BadCrc { expected, found } => write!(
                f,
                "checkpoint CRC mismatch: header {expected:#010x}, payload {found:#010x}"
            ),
            CheckpointError::VersionMismatch { found, supported } => write!(
                f,
                "checkpoint format version {found} not supported (this build reads {supported})"
            ),
            CheckpointError::Codec(e) => write!(f, "checkpoint payload corrupt: {e}"),
            CheckpointError::Mismatch(what) => {
                write!(f, "checkpoint does not match this run: {what}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io { source, .. } => Some(source),
            CheckpointError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for CheckpointError {
    fn from(e: CodecError) -> Self {
        CheckpointError::Codec(e)
    }
}

/// Where and how often a run checkpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Checkpoint file path. The atomic-write temporary and the retention
    /// copy live next to it (`<path>.tmp`, `<path>.1`).
    pub path: PathBuf,
    /// Write a checkpoint every `every` completed iterations (min 1).
    pub every: u64,
    /// Keep the previous good checkpoint at `<path>.1` so a corrupt primary
    /// (e.g. media failure after the atomic rename) still has a fallback.
    pub retain: bool,
}

impl CheckpointConfig {
    /// Checkpoint to `path` every iteration, with retention on.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        CheckpointConfig {
            path: path.into(),
            every: 1,
            retain: true,
        }
    }

    /// Parse the `NSX_CHECKPOINT` grammar: `path[:every=N][:keep=0|1]`.
    ///
    /// Options may appear in either order after the path; an unrecognized
    /// or malformed option rejects the whole string (`None`) rather than
    /// silently checkpointing differently than the operator asked.
    pub fn parse(s: &str) -> Option<Self> {
        let mut segments = s.split(':');
        let path = segments.next().filter(|p| !p.is_empty())?;
        let mut cfg = CheckpointConfig::new(path);
        for opt in segments {
            if let Some(n) = opt.strip_prefix("every=") {
                cfg.every = n.parse().ok().filter(|&n| n >= 1)?;
            } else if let Some(k) = opt.strip_prefix("keep=") {
                cfg.retain = match k {
                    "0" => false,
                    "1" => true,
                    _ => return None,
                };
            } else {
                return None;
            }
        }
        Some(cfg)
    }

    /// Read the `NSX_CHECKPOINT` environment variable (`None` when unset or
    /// malformed).
    pub fn from_env() -> Option<Self> {
        std::env::var("NSX_CHECKPOINT")
            .ok()
            .and_then(|s| Self::parse(&s))
    }

    /// The retention path `<path>.1`.
    pub fn fallback_path(&self) -> PathBuf {
        retention_path(&self.path)
    }

    /// Derive a per-run checkpoint config writing to `<path>.run<run_id>`
    /// (same cadence and retention; the retention copy lands at
    /// `<path>.run<run_id>.1`).
    ///
    /// Concurrent runs pointed at one checkpoint path would otherwise
    /// clobber each other's primary *and* retention files — the `.1` copy
    /// could even pair a run-A primary with a run-B fallback. A scheduler
    /// admits every run with a unique id and rewrites its checkpoint config
    /// through this, so each run's snapshot/retention pair stays private.
    pub fn for_run(&self, run_id: u64) -> Self {
        let mut os = self.path.as_os_str().to_os_string();
        os.push(format!(".run{run_id}"));
        CheckpointConfig {
            path: PathBuf::from(os),
            every: self.every,
            retain: self.retain,
        }
    }
}

/// The retention path `<path>.1` for a checkpoint at `path`.
fn retention_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".1");
    PathBuf::from(os)
}

fn io_err<'a>(
    op: &'static str,
    path: &'a Path,
) -> impl FnOnce(std::io::Error) -> CheckpointError + 'a {
    move |source| CheckpointError::Io {
        op,
        path: path.to_path_buf(),
        source,
    }
}

/// Atomically write `payload` (framed with magic/version/CRC) to `path`.
///
/// The frame is written to `<path>.tmp`, fsynced, and renamed into place;
/// with `retain` the previous checkpoint is first renamed to `<path>.1`.
/// A crash at any point leaves `path` holding either the old complete frame
/// or the new one.
pub fn save(path: &Path, retain: bool, payload: &[u8]) -> Result<(), CheckpointError> {
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    frame.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);

    let tmp = {
        let mut os = path.as_os_str().to_os_string();
        os.push(".tmp");
        PathBuf::from(os)
    };
    let mut f = std::fs::File::create(&tmp).map_err(io_err("create", &tmp))?;
    f.write_all(&frame).map_err(io_err("write", &tmp))?;
    f.sync_all().map_err(io_err("fsync", &tmp))?;
    drop(f);

    if retain {
        match std::fs::rename(path, retention_path(path)) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {} // first write
            Err(e) => return Err(io_err("retain", path)(e)),
        }
    }
    std::fs::rename(&tmp, path).map_err(io_err("rename", path))?;

    // Make the rename itself durable. Failure here is non-fatal for
    // correctness (the file content is already consistent), so best-effort.
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Load and verify the checkpoint at `path`, returning its payload bytes.
pub fn load(path: &Path) -> Result<Vec<u8>, CheckpointError> {
    let bytes = std::fs::read(path).map_err(io_err("read", path))?;
    if bytes.len() < HEADER_LEN {
        return Err(CheckpointError::Truncated {
            needed: HEADER_LEN,
            have: bytes.len(),
        });
    }
    if bytes[0..4] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let mut hdr = Reader::new(&bytes[4..HEADER_LEN]);
    let version = hdr.take_u32()?;
    if version != FORMAT_VERSION {
        return Err(CheckpointError::VersionMismatch {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let payload_len = hdr.take_u64()? as usize;
    let expected = hdr.take_u32()?;
    let have = bytes.len() - HEADER_LEN;
    if have != payload_len {
        return Err(CheckpointError::Truncated {
            needed: HEADER_LEN + payload_len,
            have: bytes.len(),
        });
    }
    let payload = &bytes[HEADER_LEN..];
    let found = crc32(payload);
    if found != expected {
        return Err(CheckpointError::BadCrc { expected, found });
    }
    Ok(payload.to_vec())
}

/// Like [`load`], but on a corrupt (or missing) primary falls back to the
/// retention copy `<path>.1`. Returns the payload together with the path it
/// was actually read from; the primary's error is surfaced when both fail.
pub fn load_with_fallback(path: &Path) -> Result<(Vec<u8>, PathBuf), CheckpointError> {
    let primary = match load(path) {
        Ok(payload) => return Ok((payload, path.to_path_buf())),
        Err(e) => e,
    };
    let fb = retention_path(path);
    match load(&fb) {
        Ok(payload) => Ok((payload, fb)),
        Err(_) => Err(primary),
    }
}

/// Cheap summary of a checkpoint, decodable without reconstructing the run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnapshotInfo {
    /// Completed iterations at snapshot time.
    pub iterations: u64,
    /// Elapsed virtual time at snapshot time.
    pub elapsed: f64,
}

/// Read a checkpoint's [`SnapshotInfo`] (CRC-verified; the payload's first
/// two fields are the iteration count and elapsed time by construction).
pub fn inspect(path: &Path) -> Result<SnapshotInfo, CheckpointError> {
    let payload = load(path)?;
    let mut r = Reader::new(&payload);
    Ok(SnapshotInfo {
        iterations: r.take_u64()?,
        elapsed: r.take_f64()?,
    })
}

/// Size of the on-disk frame for a given payload (header + payload bytes).
pub fn frame_len(payload: &[u8]) -> usize {
    HEADER_LEN + payload.len()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use stoch_eval::codec::Writer;

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("nsx-ckpt-test-{}-{name}", std::process::id()));
        p
    }

    fn payload() -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u64(7); // iterations
        w.put_f64(42.5); // elapsed
        w.put_bytes(b"state");
        w.into_bytes()
    }

    #[test]
    fn per_run_paths_do_not_clobber() {
        let base = CheckpointConfig::new(tmp_path("perrun"));
        let (a, b) = (base.for_run(1), base.for_run(2));
        assert_ne!(a.path, b.path);
        assert_ne!(a.fallback_path(), b.fallback_path());
        assert_ne!(a.fallback_path(), b.path);
        assert!(a.path.to_string_lossy().ends_with(".run1"));
        assert!(a.fallback_path().to_string_lossy().ends_with(".run1.1"));
        // Two runs checkpointing concurrently under one base path keep
        // private primary + retention pairs.
        for (cfg, tag) in [(&a, 1u8), (&b, 2u8)] {
            save(&cfg.path, cfg.retain, &[tag; 8]).unwrap();
            save(&cfg.path, cfg.retain, &[tag + 10; 8]).unwrap();
        }
        assert_eq!(load(&a.path).unwrap(), vec![11u8; 8]);
        assert_eq!(load(&a.fallback_path()).unwrap(), vec![1u8; 8]);
        assert_eq!(load(&b.path).unwrap(), vec![12u8; 8]);
        assert_eq!(load(&b.fallback_path()).unwrap(), vec![2u8; 8]);
        for p in [&a, &b] {
            let _ = std::fs::remove_file(&p.path);
            let _ = std::fs::remove_file(p.fallback_path());
        }
    }

    #[test]
    fn save_load_round_trip() {
        let p = tmp_path("roundtrip");
        save(&p, false, &payload()).unwrap();
        assert_eq!(load(&p).unwrap(), payload());
        let info = inspect(&p).unwrap();
        assert_eq!(info.iterations, 7);
        assert_eq!(info.elapsed, 42.5);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn truncated_file_is_typed_error() {
        let p = tmp_path("trunc");
        save(&p, false, &payload()).unwrap();
        let bytes = std::fs::read(&p).unwrap();
        // Cut mid-payload: header intact, payload short.
        std::fs::write(&p, &bytes[..bytes.len() - 3]).unwrap();
        assert!(matches!(load(&p), Err(CheckpointError::Truncated { .. })));
        // Cut mid-header.
        std::fs::write(&p, &bytes[..10]).unwrap();
        assert!(matches!(load(&p), Err(CheckpointError::Truncated { .. })));
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn flipped_payload_bit_is_bad_crc() {
        let p = tmp_path("crc");
        save(&p, false, &payload()).unwrap();
        let mut bytes = std::fs::read(&p).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&p, &bytes).unwrap();
        assert!(matches!(load(&p), Err(CheckpointError::BadCrc { .. })));
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn version_and_magic_mismatches_are_typed() {
        let p = tmp_path("ver");
        save(&p, false, &payload()).unwrap();
        let good = std::fs::read(&p).unwrap();

        let mut v = good.clone();
        v[4] = 99; // version byte
        std::fs::write(&p, &v).unwrap();
        assert!(matches!(
            load(&p),
            Err(CheckpointError::VersionMismatch {
                found: 99,
                supported: FORMAT_VERSION
            })
        ));

        let mut m = good;
        m[0] = b'X';
        std::fs::write(&p, &m).unwrap();
        assert!(matches!(load(&p), Err(CheckpointError::BadMagic)));
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        let p = tmp_path("missing-never-created");
        assert!(matches!(load(&p), Err(CheckpointError::Io { .. })));
    }

    #[test]
    fn retention_keeps_previous_and_fallback_recovers() {
        let p = tmp_path("retain");
        let old = payload();
        let mut new = payload();
        new[0] ^= 0xFF; // different first byte → distinguishable payloads
        save(&p, true, &old).unwrap();
        save(&p, true, &new).unwrap();
        // Both generations on disk.
        assert_eq!(load(&p).unwrap(), new);
        assert_eq!(load(&retention_path(&p)).unwrap(), old);
        // Corrupt the primary → fallback serves the previous generation.
        let mut bytes = std::fs::read(&p).unwrap();
        bytes[HEADER_LEN] ^= 0xFF;
        std::fs::write(&p, &bytes).unwrap();
        let (payload, from) = load_with_fallback(&p).unwrap();
        assert_eq!(payload, old);
        assert_eq!(from, retention_path(&p));
        // Both corrupt → the primary's error wins.
        std::fs::remove_file(retention_path(&p)).unwrap();
        assert!(matches!(
            load_with_fallback(&p),
            Err(CheckpointError::BadCrc { .. })
        ));
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn no_torn_frame_after_interrupted_write() {
        // Simulate kill-during-write: the tmp file holds a partial frame but
        // the target was never renamed — the previous checkpoint survives.
        let p = tmp_path("atomic");
        save(&p, false, &payload()).unwrap();
        let tmp = {
            let mut os = p.as_os_str().to_os_string();
            os.push(".tmp");
            PathBuf::from(os)
        };
        std::fs::write(&tmp, b"NSXC\x01partial").unwrap();
        assert_eq!(load(&p).unwrap(), payload(), "primary untouched by tmp");
        std::fs::remove_file(&p).unwrap();
        std::fs::remove_file(&tmp).unwrap();
    }

    #[test]
    fn env_grammar_parses() {
        let c = CheckpointConfig::parse("/tmp/run.ckpt").unwrap();
        assert_eq!(c.path, PathBuf::from("/tmp/run.ckpt"));
        assert_eq!(c.every, 1);
        assert!(c.retain);

        let c = CheckpointConfig::parse("/tmp/run.ckpt:every=5").unwrap();
        assert_eq!(c.every, 5);
        let c = CheckpointConfig::parse("/tmp/run.ckpt:keep=0:every=3").unwrap();
        assert_eq!(c.every, 3);
        assert!(!c.retain);

        assert!(CheckpointConfig::parse("").is_none());
        assert!(CheckpointConfig::parse("/tmp/x:every=0").is_none());
        assert!(CheckpointConfig::parse("/tmp/x:every=abc").is_none());
        assert!(CheckpointConfig::parse("/tmp/x:keep=2").is_none());
        assert!(CheckpointConfig::parse("/tmp/x:bogus").is_none());
    }

    #[test]
    fn fallback_path_appends_suffix() {
        let c = CheckpointConfig::new("/a/b/run.ckpt");
        assert_eq!(c.fallback_path(), PathBuf::from("/a/b/run.ckpt.1"));
    }

    #[test]
    fn frame_len_counts_header() {
        assert_eq!(frame_len(&[0u8; 10]), 30);
    }
}
