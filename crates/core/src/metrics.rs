//! Run-accounting instrumentation for the simplex engine and algorithms.
//!
//! An [`EngineMetrics`] block is a set of pre-resolved handles into an
//! [`obs::MetricsRegistry`]: the registry lock is taken once at attach time,
//! after which every hot-path update is a single relaxed atomic op. When no
//! registry is attached the engine skips all accounting (one branch per
//! site), keeping the disabled-path overhead negligible.
//!
//! Naming scheme (all under the shared registry):
//!
//! * `engine.steps.{reflect,expand,contract,collapse}` — accepted moves.
//! * `engine.trials.{opened,dropped}` — trial slot churn.
//! * `engine.rounds` / `engine.sampling_time` — concurrent sampling rounds
//!   and total virtual sampling time charged across streams.
//! * `pc.site.cN.{decided_true,decided_false,undecided_resample}` and
//!   `pc.site.cN.resample_time` — the seven PC decision sites (Algorithm 3).
//!   Sites checked in the same resampling loop (c1/c5, c3/c4, c6/c7) share
//!   rounds, so summing `resample_time` across sites over-counts wall time;
//!   per-site it reads "virtual time during which this site was undecided".
//! * `mn.gate.{checks,failures}`, `mn.extension_rounds`,
//!   `mn.equalize_time` — the MN wait loop (Algorithm 2 / Eq. 2.3).
//! * `eval.tail.{flag_rounds,switches}` — breakdown-aware gating: rounds
//!   whose tail diagnostic crossed the thresholds, and estimator
//!   auto-switches (DESIGN.md §14).

use crate::result::RunMetrics;
use crate::trace::StepKind;
use obs::{Counter, MetricsRegistry, TimeAccumulator};
use std::sync::Arc;

/// Handles for one PC decision site (`c1`…`c7`).
#[derive(Debug, Clone)]
pub struct SiteMetrics {
    /// The site's condition was confidently decided in the affirmative.
    pub decided_true: Arc<Counter>,
    /// The comparison resolved confidently the other way.
    pub decided_false: Arc<Counter>,
    /// Rounds in which the site stayed undecided and forced a resample.
    pub undecided_resample: Arc<Counter>,
    /// Virtual time spent resampling while this site was undecided.
    pub resample_time: Arc<TimeAccumulator>,
}

/// Pre-resolved metric handles threaded through the engine and algorithms.
#[derive(Debug, Clone)]
pub struct EngineMetrics {
    /// Accepted moves, indexed by [`StepKind`] discriminant.
    steps: [Arc<Counter>; 4],
    /// Trial slots opened.
    pub trials_opened: Arc<Counter>,
    /// Trial slots discarded.
    pub trials_dropped: Arc<Counter>,
    /// Concurrent sampling rounds executed.
    pub rounds: Arc<Counter>,
    /// Total virtual sampling time charged across all streams.
    pub sampling_time: Arc<TimeAccumulator>,
    /// The seven PC decision sites, index 0 = `c1`.
    sites: [SiteMetrics; 7],
    /// MN gate evaluations.
    pub mn_gate_checks: Arc<Counter>,
    /// MN gate evaluations that failed (forcing an extension round).
    pub mn_gate_failures: Arc<Counter>,
    /// Extension rounds run by the MN wait loop.
    pub mn_extension_rounds: Arc<Counter>,
    /// Virtual time spent equalizing noise in the MN wait loop.
    pub mn_equalize_time: Arc<TimeAccumulator>,
    /// Non-finite samples quarantined at stream ingestion.
    pub nonfinite: Arc<Counter>,
    /// Rounds in which a stream's tail diagnostic crossed the breakdown
    /// thresholds (DESIGN.md §14).
    pub tail_flag_rounds: Arc<Counter>,
    /// Estimator auto-switches performed by the breakdown policy.
    pub tail_switches: Arc<Counter>,
    /// Checkpoint files written. Registry-only: deliberately excluded from
    /// [`RunMetrics`] so a resumed run's summary stays bit-identical to an
    /// uninterrupted golden run (which writes no checkpoints).
    pub ckpt_writes: Arc<Counter>,
}

impl EngineMetrics {
    /// Resolve (or create) every handle in `registry`.
    pub fn register(registry: &MetricsRegistry) -> Self {
        let site = |n: usize| SiteMetrics {
            decided_true: registry.counter(&format!("pc.site.c{n}.decided_true")),
            decided_false: registry.counter(&format!("pc.site.c{n}.decided_false")),
            undecided_resample: registry.counter(&format!("pc.site.c{n}.undecided_resample")),
            resample_time: registry.time(&format!("pc.site.c{n}.resample_time")),
        };
        EngineMetrics {
            steps: [
                registry.counter("engine.steps.reflect"),
                registry.counter("engine.steps.expand"),
                registry.counter("engine.steps.contract"),
                registry.counter("engine.steps.collapse"),
            ],
            trials_opened: registry.counter("engine.trials.opened"),
            trials_dropped: registry.counter("engine.trials.dropped"),
            rounds: registry.counter("engine.rounds"),
            sampling_time: registry.time("engine.sampling_time"),
            sites: std::array::from_fn(|i| site(i + 1)),
            mn_gate_checks: registry.counter("mn.gate.checks"),
            mn_gate_failures: registry.counter("mn.gate.failures"),
            mn_extension_rounds: registry.counter("mn.extension_rounds"),
            mn_equalize_time: registry.time("mn.equalize_time"),
            nonfinite: registry.counter("eval.nonfinite"),
            tail_flag_rounds: registry.counter("eval.tail.flag_rounds"),
            tail_switches: registry.counter("eval.tail.switches"),
            ckpt_writes: registry.counter("ckpt.writes"),
        }
    }

    /// Replay a restored [`RunMetrics`] snapshot into this block's handles.
    ///
    /// Called once on resume, before any new accounting, so `summary()` at
    /// the end of the resumed run equals the uninterrupted run's summary:
    /// each counter receives the persisted partial sum as a single `add`,
    /// and each time accumulator a single float addition onto `0.0` —
    /// which preserves bit-identity because `(0.0 + s) + x == s + x`.
    pub fn absorb(&self, prior: &RunMetrics) {
        self.steps[0].add(prior.steps_reflect);
        self.steps[1].add(prior.steps_expand);
        self.steps[2].add(prior.steps_contract);
        self.steps[3].add(prior.steps_collapse);
        self.trials_opened.add(prior.trials_opened);
        self.trials_dropped.add(prior.trials_dropped);
        self.rounds.add(prior.rounds);
        self.sampling_time.add(prior.sampling_time);
        for i in 0..7 {
            self.sites[i].decided_true.add(prior.site_decided_true[i]);
            self.sites[i].decided_false.add(prior.site_decided_false[i]);
            self.sites[i]
                .undecided_resample
                .add(prior.site_undecided_resample[i]);
            self.sites[i].resample_time.add(prior.site_resample_time[i]);
        }
        self.mn_gate_checks.add(prior.mn_gate_checks);
        self.mn_gate_failures.add(prior.mn_gate_failures);
        self.mn_extension_rounds.add(prior.mn_extension_rounds);
        self.mn_equalize_time.add(prior.mn_equalize_time);
        self.nonfinite.add(prior.nonfinite);
        self.tail_flag_rounds.add(prior.tail_flag_rounds);
        self.tail_switches.add(prior.tail_switches);
    }

    /// Record an accepted move.
    pub fn record_step(&self, kind: StepKind) {
        let idx = match kind {
            StepKind::Reflect => 0,
            StepKind::Expand => 1,
            StepKind::Contract => 2,
            StepKind::Collapse => 3,
        };
        self.steps[idx].inc();
    }

    /// Handles for decision site `c<n>` (`n` in `1..=7`).
    pub fn site(&self, n: usize) -> &SiteMetrics {
        &self.sites[n - 1]
    }

    /// Snapshot this engine's handles into a plain-value summary.
    pub fn summary(&self) -> RunMetrics {
        RunMetrics {
            steps_reflect: self.steps[0].get(),
            steps_expand: self.steps[1].get(),
            steps_contract: self.steps[2].get(),
            steps_collapse: self.steps[3].get(),
            trials_opened: self.trials_opened.get(),
            trials_dropped: self.trials_dropped.get(),
            rounds: self.rounds.get(),
            sampling_time: self.sampling_time.get(),
            site_decided_true: std::array::from_fn(|i| self.sites[i].decided_true.get()),
            site_decided_false: std::array::from_fn(|i| self.sites[i].decided_false.get()),
            site_undecided_resample: std::array::from_fn(|i| {
                self.sites[i].undecided_resample.get()
            }),
            site_resample_time: std::array::from_fn(|i| self.sites[i].resample_time.get()),
            mn_gate_checks: self.mn_gate_checks.get(),
            mn_gate_failures: self.mn_gate_failures.get(),
            mn_extension_rounds: self.mn_extension_rounds.get(),
            mn_equalize_time: self.mn_equalize_time.get(),
            nonfinite: self.nonfinite.get(),
            tail_flag_rounds: self.tail_flag_rounds.get(),
            tail_switches: self.tail_switches.get(),
        }
    }
}
