//! Shared configuration: sampling policy, sampling-backend selection, and
//! per-algorithm parameter blocks.

use crate::checkpoint::CheckpointConfig;
use crate::geometry::Coefficients;
use mw_framework::backend::{default_workers, ThreadedBackend};
use mw_framework::pool::{default_respawn_budget, RetryPolicy};
use mw_framework::transport::process::{default_process_workers, ProcessBackend};
use mw_framework::FaultPlan;
use std::sync::Arc;
use stoch_eval::backend::{SamplingBackend, SerialBackend};
use stoch_eval::objective::{SampleStream, StochasticObjective};
use stoch_eval::stats::{EstimatorChoice, TailReport};

/// A configuration rejected at validation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// The objective's streams dispatch their sampling onto the same worker
    /// pool the configured backend fans batches over. Batch jobs would then
    /// submit to their own pool from inside workers and deadlock once every
    /// worker is occupied; the combination is refused instead. Use a serial
    /// backend with a pool-dispatching objective, or drive the pool through
    /// the batch backend alone.
    NestedDispatch,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NestedDispatch => write!(
                f,
                "objective and sampling backend dispatch on the same worker pool \
                 (nested dispatch would deadlock); keep the engine on a serial \
                 backend when the objective ships its own sampling to a pool"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Reject the deadlocking combination of a batch backend and an objective
/// dispatching on one shared worker pool (see
/// [`SimplexConfig::validate_dispatch`]). Either side without a pool — or
/// two distinct pools — passes.
pub fn check_nested_dispatch<F: StochasticObjective>(
    backend: &dyn SamplingBackend<F::Stream>,
    objective: &F,
) -> Result<(), ConfigError> {
    match (backend.pool_token(), objective.pool_token()) {
        (Some(b), Some(o)) if b == o => Err(ConfigError::NestedDispatch),
        _ => Ok(()),
    }
}

/// Which [`SamplingBackend`] executes each sampling round (DESIGN.md §8).
///
/// `Serial` (the default) extends streams inline and is bit-identical to a
/// threaded run — backends only change *where* the compute happens, never
/// the results. `Threaded` fans each round over an MW worker pool.
///
/// The environment variable `NSX_BACKEND` overrides the default:
/// `serial`, `threaded` (shared auto-sized pool), or `threaded:<N>`
/// (dedicated pool of `N` workers). `NSX_WORKERS` sizes the shared pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendChoice {
    /// Extend streams inline on the calling thread.
    Serial,
    /// Fan rounds over MW workers; `workers == 0` means the process-wide
    /// shared pool sized by available hardware parallelism.
    Threaded {
        /// Dedicated pool size, or `0` for the shared auto-sized pool.
        workers: usize,
    },
}

impl Default for BackendChoice {
    fn default() -> Self {
        BackendChoice::from_env()
    }
}

impl BackendChoice {
    /// Read the `NSX_BACKEND` selection from the environment (`Serial`
    /// when unset or unparseable).
    pub fn from_env() -> Self {
        std::env::var("NSX_BACKEND")
            .ok()
            .and_then(|s| Self::parse(&s))
            .unwrap_or(BackendChoice::Serial)
    }

    /// Parse a selection string: `serial`, `threaded`, or `threaded:<N>`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "serial" => Some(BackendChoice::Serial),
            "threaded" => Some(BackendChoice::Threaded { workers: 0 }),
            _ => s
                .strip_prefix("threaded:")
                .and_then(|n| n.parse().ok())
                .map(|workers| BackendChoice::Threaded { workers }),
        }
    }

    /// Instantiate the backend for a given stream type.
    pub fn build<S: SampleStream + 'static>(&self) -> Arc<dyn SamplingBackend<S>> {
        match *self {
            BackendChoice::Serial => Arc::new(SerialBackend),
            BackendChoice::Threaded { workers: 0 } => ThreadedBackend::shared(),
            BackendChoice::Threaded { workers } => Arc::new(ThreadedBackend::new(workers)),
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            BackendChoice::Serial => "serial",
            BackendChoice::Threaded { .. } => "threaded",
        }
    }
}

/// Where a parallel sampling round physically executes (DESIGN.md §12).
///
/// `Inproc` (the default) keeps everything in this process — the serial and
/// threaded backends as they have always been. `Process` routes every
/// sampling round over real worker *processes* connected by Unix-domain
/// sockets speaking the versioned frame protocol of `mw::transport`;
/// results are bit-identical either way (that is the point), only the wire
/// changes.
///
/// The environment variable `NSX_TRANSPORT` (`inproc` | `process`) sets the
/// default. Streams whose type has no wire identity
/// (`SampleStream::wire_id() == None`) always execute in-process regardless
/// of this choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportChoice {
    /// In-process execution: threads and channels (the default).
    #[default]
    Inproc,
    /// Worker processes over Unix-domain sockets.
    Process,
}

impl TransportChoice {
    /// Read the `NSX_TRANSPORT` selection from the environment (`Inproc`
    /// when unset or unparseable).
    pub fn from_env() -> Self {
        std::env::var("NSX_TRANSPORT")
            .ok()
            .and_then(|s| Self::parse(&s))
            .unwrap_or(TransportChoice::Inproc)
    }

    /// Parse a selection string: `inproc` or `process`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "inproc" => Some(TransportChoice::Inproc),
            "process" => Some(TransportChoice::Process),
            _ => None,
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            TransportChoice::Inproc => "inproc",
            TransportChoice::Process => "process",
        }
    }
}

/// How much additional virtual time to spend when a stream must be extended.
///
/// Each extension multiplies a stream's accumulated time roughly by `growth`
/// (with a floor of `initial_dt`), so reaching a target precision costs
/// `O(log)` decision rounds while total sampling stays within a constant
/// factor of optimal — the same geometric schedule the paper's MW deployment
/// realises by letting simulations keep running between master decisions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingPolicy {
    /// Virtual duration of the first sample at any fresh point.
    pub initial_dt: f64,
    /// Multiplicative growth factor per extension (`> 1`).
    pub growth: f64,
}

impl Default for SamplingPolicy {
    fn default() -> Self {
        SamplingPolicy {
            initial_dt: 1.0,
            growth: 1.5,
        }
    }
}

impl SamplingPolicy {
    /// The next extension duration for a stream that has been sampled for
    /// total time `t`.
    #[inline]
    pub fn next_dt(&self, t: f64) -> f64 {
        (t * (self.growth - 1.0)).max(self.initial_dt)
    }

    /// Validate (`initial_dt > 0`, `growth > 1`).
    pub fn validate(&self) -> Result<(), String> {
        if self.initial_dt <= 0.0 || self.initial_dt.is_nan() {
            return Err(format!("initial_dt must be > 0, got {}", self.initial_dt));
        }
        if self.growth <= 1.0 || self.growth.is_nan() {
            return Err(format!("growth must be > 1, got {}", self.growth));
        }
        Ok(())
    }
}

/// What the engine does when a sampling stream ingests a non-finite value
/// (NaN or ±inf) — e.g. an objective that diverges, or a simulation that
/// blows up numerically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NonFinitePolicy {
    /// Quarantine (default): the stream pins the affected vertex's estimate
    /// to `+inf` with zero standard error, so it loses every ordering
    /// comparison and is replaced like any bad vertex. The event is recorded
    /// as [`RunNote::NonFiniteSample`](crate::result::RunNote) and counted
    /// under `eval.nonfinite`; the run continues.
    #[default]
    Quarantine,
    /// Stop the run at the next decision point with
    /// [`StopReason::NonFinite`](crate::termination::StopReason).
    FailFast,
}

/// What the engine does when a stream's online tail diagnostic crosses the
/// breakdown thresholds (DESIGN.md §14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BreakdownAction {
    /// No tail monitoring at all.
    Off,
    /// Record [`RunNote::NoiseSuspect`](crate::result::RunNote) and bump the
    /// `eval.tail.*` counters, but keep the configured estimator (default).
    #[default]
    Note,
    /// Additionally switch every stream's reporting estimator to the robust
    /// fallback for the rest of the run — graceful degradation in the same
    /// spirit as `DegradedToSerial` / `TransportDegraded`.
    SwitchRobust,
}

/// Breakdown-aware gating policy: when a stream's tail diagnostic
/// ([`SampleStream::tail_report`]) reports excess kurtosis or an outlier
/// fraction past these thresholds, the noise is no longer plausibly the
/// Gaussian the Welford gates were calibrated for.
///
/// Detection is deterministic: the diagnostic is a pure function of sample
/// values, so every backend and every resumed run flags the same round.
/// Defaults from the `NSX_BREAKDOWN` environment variable
/// (`off` | `note` | `auto`, each optionally with
/// `:kurt=<g2>:outliers=<frac>:min=<n>`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakdownPolicy {
    /// What crossing a threshold triggers.
    pub action: BreakdownAction,
    /// Samples a stream must have before its diagnostic is consulted
    /// (kurtosis estimates are wild below ~dozens of samples).
    pub min_samples: u64,
    /// Excess-kurtosis threshold (Gaussian noise has `g2 = 0`; Student-t
    /// with `ν = 5` already exceeds 4 in expectation... a diverging
    /// estimate is the signature of `ν ≤ 4`).
    pub kurtosis: f64,
    /// Outlier-fraction threshold (samples beyond six running standard
    /// deviations; Gaussian rate is ~2e-9).
    pub outlier_frac: f64,
}

impl Default for BreakdownPolicy {
    fn default() -> Self {
        BreakdownPolicy {
            action: BreakdownAction::Note,
            min_samples: 64,
            kurtosis: 4.0,
            outlier_frac: 0.01,
        }
    }
}

impl BreakdownPolicy {
    /// Whether a stream's tail report crosses the thresholds.
    pub fn crossed(&self, report: &TailReport) -> bool {
        if self.action == BreakdownAction::Off || report.n < self.min_samples {
            return false;
        }
        // NaN kurtosis (not yet estimable / zero variance) never fires.
        report.excess_kurtosis > self.kurtosis || report.outlier_frac > self.outlier_frac
    }

    /// Parse the `NSX_BREAKDOWN` grammar:
    /// `off` | `note` | `auto` `[:kurt=<g2>][:outliers=<frac>][:min=<n>]`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut parts = spec.split(':');
        let action = match parts.next().unwrap_or("").trim() {
            "off" => BreakdownAction::Off,
            "" | "note" => BreakdownAction::Note,
            "auto" | "switch" => BreakdownAction::SwitchRobust,
            other => return Err(format!("unknown breakdown action '{other}'")),
        };
        let mut p = BreakdownPolicy {
            action,
            ..BreakdownPolicy::default()
        };
        for part in parts {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got '{part}'"))?;
            match key.trim() {
                "kurt" => {
                    p.kurtosis = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("invalid kurt '{value}'"))?;
                }
                "outliers" => {
                    let f: f64 = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("invalid outliers '{value}'"))?;
                    if !(0.0..=1.0).contains(&f) {
                        return Err(format!("outliers must be in [0, 1], got {f}"));
                    }
                    p.outlier_frac = f;
                }
                "min" => {
                    p.min_samples = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("invalid min '{value}'"))?;
                }
                other => return Err(format!("unknown breakdown key '{other}'")),
            }
        }
        Ok(p)
    }

    /// Read `NSX_BREAKDOWN`, defaulting to [`BreakdownAction::Note`] with
    /// the default thresholds. Panics on an invalid spec.
    pub fn from_env() -> Self {
        match std::env::var("NSX_BREAKDOWN") {
            Ok(spec) => match Self::parse(&spec) {
                Ok(p) => p,
                Err(e) => panic!("invalid NSX_BREAKDOWN='{spec}': {e}"),
            },
            Err(_) => BreakdownPolicy::default(),
        }
    }
}

/// Configuration shared by every simplex-family algorithm.
#[derive(Debug, Clone)]
pub struct SimplexConfig {
    /// Nelder–Mead transformation coefficients.
    pub coefficients: Coefficients,
    /// Sampling-time schedule.
    pub sampling: SamplingPolicy,
    /// Continuous worker sampling (parallel mode only): while the master
    /// waits on a targeted comparison, every other active vertex/trial keeps
    /// sampling for the same wall-clock window at no extra parallel-time
    /// cost — exactly what the MW deployment's always-busy workers do
    /// (§3.1). DET disables this to stay the classic one-shot-evaluation
    /// algorithm.
    pub continuous: bool,
    /// Which backend executes each sampling round. Defaults from
    /// `NSX_BACKEND` (serial when unset); results are identical either way.
    pub backend: BackendChoice,
    /// Where sampling rounds physically execute: in this process (threads
    /// and channels) or on worker processes over Unix-domain sockets.
    /// Defaults from `NSX_TRANSPORT` (inproc when unset). `Process` takes
    /// precedence over [`backend`](Self::backend): the round fans out over
    /// the process pool (a `Threaded { workers: n > 0 }` choice sizes it).
    /// Results are bit-identical across transports.
    pub transport: TransportChoice,
    /// How a threaded backend re-dispatches work lost to worker failure
    /// (DESIGN.md §9). Ignored by the serial backend.
    pub retry: RetryPolicy,
    /// Programmatic fault injection for the threaded backend's worker pool
    /// (chaos testing). `None` defers to the `NSX_FAULTS` environment
    /// variable; `Some` forces a dedicated (non-shared) pool so the faults
    /// cannot leak into other runs.
    pub faults: Option<FaultPlan>,
    /// Worker-respawn budget override for the threaded backend's pool
    /// (DESIGN.md §9). `None` uses [`default_respawn_budget`]; `Some(0)`
    /// disables respawning, so losing every worker degrades the run to
    /// serial execution instead (recorded as
    /// [`RunNote::DegradedToSerial`](crate::result::RunNote)).
    pub respawn_budget: Option<u64>,
    /// Durable checkpointing: when set, the engine atomically snapshots the
    /// complete run state to [`CheckpointConfig::path`] every
    /// [`CheckpointConfig::every`] iterations, and
    /// [`SimplexMethod::resume`](crate::algorithm::SimplexMethod::resume)
    /// reconstructs the run bit-identically. Defaults from the
    /// `NSX_CHECKPOINT` environment variable (`path[:every=N][:keep=0|1]`),
    /// `None` when unset.
    pub checkpoint: Option<CheckpointConfig>,
    /// What to do when a stream ingests a non-finite sample.
    pub nonfinite: NonFinitePolicy,
    /// Which estimator the run's streams report through (DESIGN.md §14).
    /// Defaults from `NSX_ESTIMATOR` (Welford when unset). A non-Welford
    /// choice is applied to every stream the engine opens via
    /// `SampleStream::set_estimator`; Welford leaves streams exactly as the
    /// objective opened them (the bit-identical legacy path).
    pub estimator: EstimatorChoice,
    /// Breakdown-aware gating: tail monitoring thresholds and what crossing
    /// them does. Defaults from `NSX_BREAKDOWN` (note-only when unset).
    pub breakdown: BreakdownPolicy,
}

impl Default for SimplexConfig {
    fn default() -> Self {
        SimplexConfig {
            coefficients: Coefficients::default(),
            sampling: SamplingPolicy::default(),
            continuous: true,
            backend: BackendChoice::default(),
            transport: TransportChoice::from_env(),
            retry: RetryPolicy::default(),
            faults: None,
            respawn_budget: None,
            checkpoint: CheckpointConfig::from_env(),
            nonfinite: NonFinitePolicy::default(),
            estimator: EstimatorChoice::from_env(),
            breakdown: BreakdownPolicy::from_env(),
        }
    }
}

impl SimplexConfig {
    /// Whether this configuration demands a dedicated (non-shared) worker
    /// pool: an explicit fault plan, a respawn-budget override, or a
    /// non-default retry policy. Customized runs get their own pool so their
    /// chaos and retry behaviour cannot leak into — or starve — other runs
    /// sharing the process-wide pool; a multi-run scheduler uses the same
    /// predicate to keep such runs off the shared batch gate.
    pub fn customized(&self) -> bool {
        self.faults.is_some()
            || self.respawn_budget.is_some()
            || self.retry != RetryPolicy::default()
    }

    /// Validate that driving `objective` with the backend this configuration
    /// builds cannot deadlock on a shared worker pool.
    ///
    /// The failure mode (previously only a documented footgun, DESIGN.md §8):
    /// an objective whose streams dispatch their own `extend` onto a pool —
    /// e.g. `mw-framework`'s `MwObjective` — driven through a batch backend
    /// over the *same* pool submits jobs from inside worker jobs; once every
    /// worker is occupied by a batch job, nobody can make progress. Both
    /// sides now expose an opaque pool token, so the collision is detected
    /// here, at configuration-validation time, and reported as
    /// [`ConfigError::NestedDispatch`] instead of wedging at runtime.
    pub fn validate_dispatch<F: StochasticObjective>(
        &self,
        objective: &F,
    ) -> Result<(), ConfigError> {
        check_nested_dispatch(self.build_backend::<F::Stream>().as_ref(), objective)
    }

    /// Instantiate the sampling backend for this configuration.
    ///
    /// Like [`BackendChoice::build`], but honours the config's
    /// [`retry`](Self::retry) policy and [`faults`](Self::faults) plan: a
    /// non-default policy or an explicit plan forces a dedicated pool (the
    /// shared pool keeps its own defaults and `NSX_FAULTS`-driven
    /// injection).
    pub fn build_backend<S: SampleStream + 'static>(&self) -> Arc<dyn SamplingBackend<S>> {
        let customized = self.customized();
        if self.transport == TransportChoice::Process {
            // Process transport supersedes the in-process backends: the
            // round fans out over worker processes. An explicit
            // `Threaded { workers: n > 0 }` sizes the dedicated pool.
            let workers = match self.backend {
                BackendChoice::Threaded { workers } if workers > 0 => Some(workers),
                _ => None,
            };
            if workers.is_none() && !customized {
                return ProcessBackend::shared();
            }
            let n = workers.unwrap_or_else(default_process_workers);
            let faults = self.faults.clone().unwrap_or_else(FaultPlan::from_env);
            let budget = self
                .respawn_budget
                .unwrap_or_else(|| default_respawn_budget(n));
            return Arc::new(ProcessBackend::with_options(
                n, faults, self.retry, budget, None,
            ));
        }
        let BackendChoice::Threaded { workers } = self.backend else {
            return Arc::new(SerialBackend);
        };
        if workers == 0 && !customized {
            return ThreadedBackend::shared();
        }
        let n = if workers == 0 {
            default_workers()
        } else {
            workers
        };
        let faults = self.faults.clone().unwrap_or_else(FaultPlan::from_env);
        let budget = self
            .respawn_budget
            .unwrap_or_else(|| default_respawn_budget(n));
        Arc::new(ThreadedBackend::with_options(
            n, faults, self.retry, budget, None,
        ))
    }
}

/// Parameters of the max-noise algorithm (Algorithm 2).
#[derive(Debug, Clone, Copy)]
pub struct MnParams {
    /// The constant `k` in Eq. 2.3. The paper finds any small value in
    /// `[1, 5]` appropriate; `k` affects only convergence speed, not the
    /// outcome.
    pub k: f64,
}

impl Default for MnParams {
    fn default() -> Self {
        MnParams { k: 2.0 }
    }
}

/// Which of the seven PC decision sites use the noise-aware (error-bar)
/// comparison. `PcConditions::all()` is the strict "c1-7" variant; the
/// paper's ablations (Figs 3.8–3.17) toggle individual sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcConditions(pub [bool; 7]);

impl PcConditions {
    /// Error bars at every decision site (the strict "c1-7" variant).
    pub fn all() -> Self {
        PcConditions([true; 7])
    }

    /// Error bars at none of the sites (degenerates to DET comparisons).
    pub fn none() -> Self {
        PcConditions([false; 7])
    }

    /// Error bars only at the listed 1-based condition numbers.
    ///
    /// # Panics
    /// If any number is outside `1..=7`.
    pub fn only(conds: &[usize]) -> Self {
        let mut m = [false; 7];
        for &c in conds {
            assert!((1..=7).contains(&c), "condition numbers are 1..=7");
            m[c - 1] = true;
        }
        PcConditions(m)
    }

    /// Whether 1-based condition `c` uses the error-bar comparison.
    #[inline]
    pub fn uses_bars(&self, c: usize) -> bool {
        self.0[c - 1]
    }

    /// Short label like `"c136"` or `"c1-7"` for reports.
    pub fn label(&self) -> String {
        if self.0 == [true; 7] {
            return "c1-7".to_string();
        }
        if self.0 == [false; 7] {
            return "none".to_string();
        }
        let mut s = String::from("c");
        for (i, &b) in self.0.iter().enumerate() {
            if b {
                s.push_str(&(i + 1).to_string());
            }
        }
        s
    }
}

/// Parameters of the point-to-point comparison algorithm (Algorithm 3).
#[derive(Debug, Clone, Copy)]
pub struct PcParams {
    /// Confidence multiplier `k` (1 = one standard error, 2 = two; Fig 3.7).
    pub k: f64,
    /// Which decision sites use error bars.
    pub conditions: PcConditions,
}

impl Default for PcParams {
    fn default() -> Self {
        PcParams {
            k: 1.0,
            conditions: PcConditions::all(),
        }
    }
}

/// Parameters of the Anderson convergence criterion (Eq. 2.4):
/// `σ_i²(t_i) < k1 · 2^{−l(1+k2)} ∀i`.
#[derive(Debug, Clone, Copy)]
pub struct AndersonParams {
    /// Scale constant `k1` (the paper sweeps `2^0 … 2^30`).
    pub k1: f64,
    /// Exponent sharpening constant `k2` (the paper fixes `k2 = 0`).
    pub k2: f64,
}

impl Default for AndersonParams {
    fn default() -> Self {
        AndersonParams {
            k1: 2f64.powi(20),
            k2: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_policy_grows_geometrically() {
        let p = SamplingPolicy {
            initial_dt: 1.0,
            growth: 1.5,
        };
        assert_eq!(p.next_dt(0.0), 1.0);
        assert_eq!(p.next_dt(1.0), 1.0); // 0.5 floored to initial_dt
        assert_eq!(p.next_dt(10.0), 5.0);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn sampling_policy_validation() {
        assert!(SamplingPolicy {
            initial_dt: 0.0,
            growth: 1.5
        }
        .validate()
        .is_err());
        assert!(SamplingPolicy {
            initial_dt: 1.0,
            growth: 1.0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn pc_conditions_subsets_and_labels() {
        let all = PcConditions::all();
        assert!(all.uses_bars(1) && all.uses_bars(7));
        assert_eq!(all.label(), "c1-7");
        let c136 = PcConditions::only(&[1, 3, 6]);
        assert!(c136.uses_bars(1) && c136.uses_bars(3) && c136.uses_bars(6));
        assert!(!c136.uses_bars(2) && !c136.uses_bars(7));
        assert_eq!(c136.label(), "c136");
        assert_eq!(PcConditions::none().label(), "none");
    }

    #[test]
    #[should_panic]
    fn pc_conditions_reject_out_of_range() {
        let _ = PcConditions::only(&[8]);
    }

    #[test]
    fn backend_choice_parses_selections() {
        assert_eq!(BackendChoice::parse("serial"), Some(BackendChoice::Serial));
        assert_eq!(
            BackendChoice::parse("threaded"),
            Some(BackendChoice::Threaded { workers: 0 })
        );
        assert_eq!(
            BackendChoice::parse("threaded:4"),
            Some(BackendChoice::Threaded { workers: 4 })
        );
        assert_eq!(BackendChoice::parse("frobnicate"), None);
        assert_eq!(BackendChoice::parse("threaded:x"), None);
        assert_eq!(BackendChoice::Serial.label(), "serial");
        assert_eq!(BackendChoice::Threaded { workers: 2 }.label(), "threaded");
    }

    #[test]
    fn backend_choice_builds_named_backends() {
        use stoch_eval::sampler::GaussianStream;
        let s = BackendChoice::Serial.build::<GaussianStream>();
        assert_eq!(s.name(), "serial");
        let t = BackendChoice::Threaded { workers: 2 }.build::<GaussianStream>();
        assert_eq!(t.name(), "threaded");
    }

    #[test]
    fn transport_choice_parses_selections() {
        assert_eq!(
            TransportChoice::parse("inproc"),
            Some(TransportChoice::Inproc)
        );
        assert_eq!(
            TransportChoice::parse("process"),
            Some(TransportChoice::Process)
        );
        assert_eq!(TransportChoice::parse("carrier-pigeon"), None);
        assert_eq!(TransportChoice::Inproc.label(), "inproc");
        assert_eq!(TransportChoice::Process.label(), "process");
    }

    #[test]
    fn process_transport_supersedes_backend_choice() {
        use stoch_eval::sampler::GaussianStream;
        let cfg = SimplexConfig {
            transport: TransportChoice::Process,
            backend: BackendChoice::Serial,
            ..SimplexConfig::default()
        };
        assert_eq!(cfg.build_backend::<GaussianStream>().name(), "process");
        let cfg = SimplexConfig {
            transport: TransportChoice::Inproc,
            backend: BackendChoice::Serial,
            ..SimplexConfig::default()
        };
        assert_eq!(cfg.build_backend::<GaussianStream>().name(), "serial");
    }

    #[test]
    fn breakdown_policy_parses_and_detects() {
        let p = BreakdownPolicy::parse("auto:kurt=6:outliers=0.02:min=32").unwrap();
        assert_eq!(p.action, BreakdownAction::SwitchRobust);
        assert_eq!(p.kurtosis, 6.0);
        assert_eq!(p.outlier_frac, 0.02);
        assert_eq!(p.min_samples, 32);
        assert_eq!(
            BreakdownPolicy::parse("off").unwrap().action,
            BreakdownAction::Off
        );
        assert!(BreakdownPolicy::parse("panic").is_err());
        assert!(BreakdownPolicy::parse("auto:outliers=3").is_err());

        let gaussian = TailReport {
            n: 1000,
            excess_kurtosis: 0.1,
            outlier_frac: 0.0,
        };
        let heavy = TailReport {
            n: 1000,
            excess_kurtosis: 25.0,
            outlier_frac: 0.04,
        };
        let young = TailReport {
            n: 10,
            excess_kurtosis: 50.0,
            outlier_frac: 0.5,
        };
        let nan = TailReport {
            n: 1000,
            excess_kurtosis: f64::NAN,
            outlier_frac: 0.0,
        };
        let p = BreakdownPolicy::default();
        assert!(!p.crossed(&gaussian));
        assert!(p.crossed(&heavy));
        assert!(!p.crossed(&young), "below min_samples must never fire");
        assert!(!p.crossed(&nan), "NaN kurtosis must never fire");
        let off = BreakdownPolicy {
            action: BreakdownAction::Off,
            ..p
        };
        assert!(!off.crossed(&heavy));
    }

    #[test]
    fn defaults_match_paper() {
        assert_eq!(MnParams::default().k, 2.0);
        let pc = PcParams::default();
        assert_eq!(pc.k, 1.0);
        assert_eq!(pc.conditions, PcConditions::all());
        assert_eq!(AndersonParams::default().k2, 0.0);
    }
}
