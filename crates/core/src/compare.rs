//! Noise-aware comparisons: the confidence-interval tests at the heart of
//! the PC algorithm (Algorithm 3).
//!
//! A comparison `a < b` at confidence multiplier `k` is *decided true* when
//! the intervals separate as `a + kσ_a < b − kσ_b`, *decided false* when
//! `a − kσ_a ≥ b + kσ_b`, and *undecided* otherwise — undecided comparisons
//! trigger resampling, which shrinks both σ until a decision is possible.
//!
//! Note on the dissertation's condition 5: as printed, c5 is the literal
//! complement of c1 (`g(ref)+kσ ≥ g(smax)−kσ`), which would make the
//! "resample until condition 1 or 5" line unreachable. Conditions 4 and 7
//! show the intended pattern (`x − kσ_x ≥ y + kσ_y`), so we implement c5
//! symmetrically; this is the only reading under which the reflection stage
//! can demand resampling, as Figures 3.8–3.17 require.

use stoch_eval::objective::Estimate;

/// Outcome of a noise-aware comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// The relation holds at the requested confidence.
    Yes,
    /// The negation holds at the requested confidence.
    No,
    /// The confidence intervals overlap; more sampling is needed.
    Unknown,
}

/// Test `a < b`.
///
/// With `bars = false` this is the plain value comparison (always decided),
/// which is how a PC condition behaves when it is excluded from the
/// error-bar set (the ablations of Figs 3.8–3.17).
#[inline]
pub fn confident_less(a: Estimate, b: Estimate, k: f64, bars: bool) -> Decision {
    if !bars {
        return if a.value < b.value {
            Decision::Yes
        } else {
            Decision::No
        };
    }
    if a.hi(k) < b.lo(k) {
        Decision::Yes
    } else if a.lo(k) >= b.hi(k) {
        Decision::No
    } else {
        Decision::Unknown
    }
}

/// Test `a > b` (used by condition 2).
#[inline]
pub fn confident_greater(a: Estimate, b: Estimate, k: f64, bars: bool) -> Decision {
    confident_less(b, a, k, bars)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(v: f64, s: f64) -> Estimate {
        Estimate {
            value: v,
            std_err: s,
            time: 1.0,
        }
    }

    #[test]
    fn separated_intervals_decide() {
        assert_eq!(
            confident_less(est(0.0, 1.0), est(10.0, 1.0), 1.0, true),
            Decision::Yes
        );
        assert_eq!(
            confident_less(est(10.0, 1.0), est(0.0, 1.0), 1.0, true),
            Decision::No
        );
    }

    #[test]
    fn overlapping_intervals_are_unknown() {
        assert_eq!(
            confident_less(est(0.0, 5.0), est(1.0, 5.0), 1.0, true),
            Decision::Unknown
        );
        // Larger k widens the intervals and makes decisions harder.
        assert_eq!(
            confident_less(est(0.0, 1.0), est(3.0, 1.0), 1.0, true),
            Decision::Yes
        );
        assert_eq!(
            confident_less(est(0.0, 1.0), est(3.0, 1.0), 2.0, true),
            Decision::Unknown
        );
    }

    #[test]
    fn no_bars_always_decides() {
        assert_eq!(
            confident_less(est(0.0, 100.0), est(0.1, 100.0), 1.0, false),
            Decision::Yes
        );
        assert_eq!(
            confident_less(est(0.1, 100.0), est(0.0, 100.0), 1.0, false),
            Decision::No
        );
        // Equal values: `a < b` is false (the complement takes `>=`).
        assert_eq!(
            confident_less(est(1.0, 0.0), est(1.0, 0.0), 1.0, false),
            Decision::No
        );
    }

    #[test]
    fn zero_error_behaves_like_plain_comparison() {
        assert_eq!(
            confident_less(est(1.0, 0.0), est(2.0, 0.0), 5.0, true),
            Decision::Yes
        );
        assert_eq!(
            confident_less(est(2.0, 0.0), est(1.0, 0.0), 5.0, true),
            Decision::No
        );
        assert_eq!(
            confident_less(est(1.0, 0.0), est(1.0, 0.0), 5.0, true),
            Decision::No
        );
    }

    #[test]
    fn greater_is_flipped_less() {
        assert_eq!(
            confident_greater(est(10.0, 1.0), est(0.0, 1.0), 1.0, true),
            Decision::Yes
        );
        assert_eq!(
            confident_greater(est(0.0, 1.0), est(10.0, 1.0), 1.0, true),
            Decision::No
        );
    }

    #[test]
    fn infinite_error_is_always_unknown() {
        assert_eq!(
            confident_less(est(0.0, f64::INFINITY), est(100.0, 0.0), 1.0, true),
            Decision::Unknown
        );
    }
}
