//! The Anderson et al. (2000) baseline.
//!
//! Two forms are provided:
//!
//! * [`AndersonNm`] — the Anderson *convergence criterion* (Eq. 2.4)
//!   embedded in the Nelder–Mead loop. This is what the paper evaluates in
//!   Table 3.2 / Fig 3.4: sampling at every vertex continues until
//!   `σ_i²(t_i) < k1·2^{−l(1+k2)} ∀i`, where `l` is the simplex contraction
//!   level, then the classic comparisons run. The paper notes: "here we
//!   evaluate their convergence criterion, but do not adopt the other
//!   features of their method."
//! * [`AndersonSearch`] — a structure-based direct search in the spirit of
//!   the full Anderson–Ferris method (Eqs. 2.5–2.8): the whole `m`-point
//!   structure is reflected/expanded/contracted around its best point. This
//!   is an extension (the paper describes but does not benchmark it); the
//!   acceptance rule is a simplified best-point comparison, documented here
//!   rather than claiming fidelity to the original.

use crate::checkpoint::{self, CheckpointError};
use crate::classic::MAX_WAIT_ROUNDS;
use crate::config::{AndersonParams, SimplexConfig};
use crate::engine::Engine;
use crate::metrics::EngineMetrics;
use crate::result::RunResult;
use crate::session::{Driver, RunSession};
use crate::termination::{StopReason, Termination};
use crate::trace::{StepKind, Trace, TracePoint};
use obs::MetricsRegistry;
use std::path::Path;
use stoch_eval::clock::{TimeMode, VirtualClock};
use stoch_eval::objective::{SampleStream, StochasticObjective};
use stoch_eval::rng::SeedSequence;

/// Nelder–Mead with the Anderson convergence criterion (Eq. 2.4).
#[derive(Debug, Clone, Default)]
pub struct AndersonNm {
    /// Coefficients and sampling policy.
    pub cfg: SimplexConfig,
    /// Criterion constants `k1`, `k2`.
    pub params: AndersonParams,
}

impl AndersonNm {
    /// Criterion with the given `k1` (and `k2 = 0`, as in the paper).
    pub fn with_k1(k1: f64) -> Self {
        AndersonNm {
            cfg: SimplexConfig::default(),
            params: AndersonParams { k1, k2: 0.0 },
        }
    }

    /// The Eq. 2.4 variance ceiling at contraction level `l`.
    fn threshold(params: AndersonParams, l: i64) -> f64 {
        params.k1 * 2f64.powf(-(l as f64) * (1.0 + params.k2))
    }

    /// The Eq. 2.4 wait loop (shared with [`crate::session::RunSession`]):
    /// extend every vertex until the noisiest one is below the level-scaled
    /// ceiling. Trials then receive one sampling round before comparison,
    /// exactly as in MN (Algorithm 2): both criteria gate only the vertex
    /// noise, which keeps the Table 3.2 comparison fair.
    pub(crate) fn wait<F: StochasticObjective>(
        params: AndersonParams,
        eng: &mut Engine<F>,
    ) -> Option<StopReason> {
        let metrics = eng.metrics().cloned();
        let mut rounds = 0u32;
        loop {
            let ceiling = Self::threshold(params, eng.level().0);
            let worst = eng
                .vertex_estimates()
                .iter()
                .map(|e| e.std_err * e.std_err)
                .fold(0.0f64, f64::max);
            let passed = worst < ceiling;
            if let Some(m) = &metrics {
                m.mn_gate_checks.inc();
                if !passed {
                    m.mn_gate_failures.inc();
                }
            }
            if passed {
                return None;
            }
            if let Some(r) = eng.should_stop() {
                return Some(r);
            }
            if rounds >= MAX_WAIT_ROUNDS {
                return Some(StopReason::Stalled);
            }
            let ids: Vec<usize> = (0..eng.n_vertices()).collect();
            let t0 = eng.elapsed();
            eng.extend_round(&ids);
            if let Some(m) = &metrics {
                m.mn_extension_rounds.inc();
                m.mn_equalize_time.add(eng.elapsed() - t0);
            }
            rounds += 1;
        }
    }

    /// Optimize `objective` from the initial simplex `init`.
    pub fn run<F: StochasticObjective>(
        &self,
        objective: &F,
        init: Vec<Vec<f64>>,
        term: Termination,
        mode: TimeMode,
        seed: u64,
    ) -> RunResult {
        self.run_with_metrics(objective, init, term, mode, seed, None)
    }

    /// [`run`](Self::run) with optional run accounting (engine tallies; the
    /// Eq. 2.4 wait loop is recorded under the MN gate metrics since it
    /// plays the same role).
    pub fn run_with_metrics<F: StochasticObjective>(
        &self,
        objective: &F,
        init: Vec<Vec<f64>>,
        term: Termination,
        mode: TimeMode,
        seed: u64,
        registry: Option<&MetricsRegistry>,
    ) -> RunResult {
        let mut session = RunSession::new(
            objective,
            init,
            self.cfg.clone(),
            term,
            mode,
            seed,
            Driver::Anderson(self.params),
        );
        if let Some(reg) = registry {
            session.attach_metrics(EngineMetrics::register(reg));
        }
        session.run_to_completion()
    }

    /// Resume a checkpointed Anderson-criterion run (see
    /// [`SimplexMethod::resume`](crate::algorithm::SimplexMethod::resume)).
    ///
    /// The Eq. 2.4 wait is a pure function of the current vertex estimates
    /// and the persisted contraction level, so state permits an exact
    /// resume.
    pub fn resume<F: StochasticObjective>(
        &self,
        objective: &F,
        path: &Path,
        term_override: Option<Termination>,
    ) -> Result<RunResult, CheckpointError> {
        self.resume_with_metrics(objective, path, term_override, None)
    }

    /// [`resume`](Self::resume) with optional run accounting.
    pub fn resume_with_metrics<F: StochasticObjective>(
        &self,
        objective: &F,
        path: &Path,
        term_override: Option<Termination>,
        registry: Option<&MetricsRegistry>,
    ) -> Result<RunResult, CheckpointError> {
        let (payload, from) = checkpoint::load_with_fallback(path)?;
        let mut session = RunSession::resume(
            objective,
            self.cfg.clone(),
            &payload,
            term_override,
            Driver::Anderson(self.params),
        )?;
        if from != path {
            session.record_note(crate::result::RunNote::CheckpointFellBack);
        }
        if let Some(reg) = registry {
            session.attach_metrics(EngineMetrics::register(reg));
        }
        Ok(session.run_to_completion())
    }
}

/// Full structure-based Anderson direct search (extension; see module docs).
#[derive(Debug, Clone, Default)]
pub struct AndersonSearch {
    /// Coefficients and sampling policy (only the sampling policy is used;
    /// structure moves use the fixed factors of Eqs. 2.6–2.8).
    pub cfg: SimplexConfig,
    /// Criterion constants.
    pub params: AndersonParams,
}

impl AndersonSearch {
    /// Run the structure search from an initial `m`-point structure.
    pub fn run<F: StochasticObjective>(
        &self,
        objective: &F,
        init: Vec<Vec<f64>>,
        term: Termination,
        mode: TimeMode,
        seed: u64,
    ) -> RunResult {
        assert!(init.len() >= 2, "structure needs at least 2 points");
        let mut seeds = SeedSequence::new(seed);
        let mut clock = VirtualClock::new(mode);
        let backend = self.cfg.build_backend::<F::Stream>();
        let policy = self.cfg.sampling;
        let mut level: i64 = 0;
        let mut trace = Trace::new();
        let mut total_sampling = 0.0;
        let mut iterations: u64 = 0;

        let mut points = init;
        let mut streams: Vec<F::Stream> = points
            .iter()
            .map(|x| objective.open(x, seeds.next_seed()))
            .collect();

        // Sample the structure until every point meets the Eq. 2.4 ceiling.
        let sample_to_criterion = |streams: &mut Vec<F::Stream>,
                                   clock: &mut VirtualClock,
                                   total: &mut f64,
                                   level: i64,
                                   elapsed_cap: Option<f64>|
         -> bool {
            let ceiling = AndersonNm::threshold(
                AndersonParams {
                    k1: self.params.k1,
                    k2: self.params.k2,
                },
                level,
            );
            let mut rounds = 0u32;
            loop {
                let worst = streams
                    .iter()
                    .map(|s| {
                        let e = s.estimate();
                        e.std_err * e.std_err
                    })
                    .fold(0.0f64, f64::max);
                if worst < ceiling {
                    return true;
                }
                if let Some(cap) = elapsed_cap {
                    if clock.elapsed() >= cap {
                        return false;
                    }
                }
                if rounds >= MAX_WAIT_ROUNDS {
                    return false;
                }
                let dts: Vec<f64> = streams
                    .iter()
                    .map(|s| policy.next_dt(s.estimate().time))
                    .collect();
                stoch_eval::backend::extend_all_round(
                    backend.as_ref(),
                    streams,
                    &dts,
                    clock,
                    total,
                );
                rounds += 1;
            }
        };

        let stop = loop {
            if let Some(r) = term.budget_exceeded(clock.elapsed(), iterations) {
                break r;
            }
            let values: Vec<f64> = streams.iter().map(|s| s.estimate().value).collect();
            if term.spread_met(&values) {
                break StopReason::Tolerance;
            }
            if !sample_to_criterion(
                &mut streams,
                &mut clock,
                &mut total_sampling,
                level,
                term.max_time,
            ) {
                break StopReason::Stalled;
            }

            let values: Vec<f64> = streams.iter().map(|s| s.estimate().value).collect();
            let best = values
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            let best_x = points[best].clone();
            let best_v = values[best];

            // REFLECT(S, x*) = { 2x* − x_i } (Eq. 2.6).
            let refl: Vec<Vec<f64>> = points
                .iter()
                .map(|p| best_x.iter().zip(p).map(|(&b, &x)| 2.0 * b - x).collect())
                .collect();
            let mut refl_streams: Vec<F::Stream> = refl
                .iter()
                .map(|x| objective.open(x, seeds.next_seed()))
                .collect();
            if !sample_to_criterion(
                &mut refl_streams,
                &mut clock,
                &mut total_sampling,
                level,
                term.max_time,
            ) {
                break StopReason::Stalled;
            }
            let refl_best = refl_streams
                .iter()
                .map(|s| s.estimate().value)
                .fold(f64::INFINITY, f64::min);

            let step = if refl_best < best_v {
                // Accept the reflection; then probe EXPAND(S, x*) = {2x_i − x*}.
                let exp: Vec<Vec<f64>> = points
                    .iter()
                    .map(|p| p.iter().zip(&best_x).map(|(&x, &b)| 2.0 * x - b).collect())
                    .collect();
                let mut exp_streams: Vec<F::Stream> = exp
                    .iter()
                    .map(|x| objective.open(x, seeds.next_seed()))
                    .collect();
                let exp_ok = sample_to_criterion(
                    &mut exp_streams,
                    &mut clock,
                    &mut total_sampling,
                    level,
                    term.max_time,
                );
                let exp_best = exp_streams
                    .iter()
                    .map(|s| s.estimate().value)
                    .fold(f64::INFINITY, f64::min);
                if exp_ok && exp_best < refl_best {
                    points = exp;
                    streams = exp_streams;
                    level -= 1;
                    StepKind::Expand
                } else {
                    points = refl;
                    streams = refl_streams;
                    StepKind::Reflect
                }
            } else {
                // CONTRACT(S, x*) = { (x* + x_i)/2 } (Eq. 2.8).
                points = points
                    .iter()
                    .map(|p| {
                        p.iter()
                            .zip(&best_x)
                            .map(|(&x, &b)| 0.5 * (x + b))
                            .collect()
                    })
                    .collect();
                streams = points
                    .iter()
                    .map(|x| objective.open(x, seeds.next_seed()))
                    .collect();
                level += 1;
                StepKind::Contract
            };

            iterations += 1;
            let values: Vec<f64> = streams.iter().map(|s| s.estimate().value).collect();
            let best_now = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let best_idx = values.iter().position(|&v| v == best_now).unwrap_or(0);
            let mut diam = 0.0f64;
            for i in 0..points.len() {
                for j in i + 1..points.len() {
                    diam = diam.max(crate::geometry::distance(&points[i], &points[j]));
                }
            }
            trace.push(TracePoint {
                time: clock.elapsed(),
                iteration: iterations,
                best_observed: best_now,
                best_true: objective.true_value(&points[best_idx]),
                diameter: diam,
                step,
            });
        };

        let values: Vec<f64> = streams.iter().map(|s| s.estimate().value).collect();
        let best = values
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0);
        RunResult {
            best_point: points[best].clone(),
            best_observed: values[best],
            iterations,
            elapsed: clock.elapsed(),
            total_sampling,
            stop,
            trace,
            metrics: None,
            notes: crate::result::notes_from_backend(backend.as_ref()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::random_uniform;
    use stoch_eval::functions::{Rosenbrock, Sphere};
    use stoch_eval::noise::{ConstantNoise, ZeroNoise};
    use stoch_eval::objective::Objective;
    use stoch_eval::sampler::Noisy;

    fn term() -> Termination {
        Termination {
            tolerance: Some(1e-3),
            max_time: Some(3e5),
            max_iterations: Some(5_000),
        }
    }

    #[test]
    fn threshold_tightens_with_contraction_level() {
        let p = AndersonParams {
            k1: 1024.0,
            k2: 0.0,
        };
        assert_eq!(AndersonNm::threshold(p, 0), 1024.0);
        assert_eq!(AndersonNm::threshold(p, 1), 512.0);
        assert_eq!(AndersonNm::threshold(p, -1), 2048.0);
        let p2 = AndersonParams {
            k1: 1024.0,
            k2: 1.0,
        };
        assert_eq!(AndersonNm::threshold(p2, 1), 256.0);
    }

    #[test]
    fn anderson_nm_solves_noise_free_rosenbrock() {
        let obj = Noisy::new(Rosenbrock::new(2), ZeroNoise);
        let init = random_uniform(2, -2.0, 2.0, 13);
        let res = AndersonNm::with_k1(2f64.powi(10)).run(
            &obj,
            init,
            Termination::tolerance(1e-12),
            TimeMode::Parallel,
            1,
        );
        assert!(Rosenbrock::new(2).value(&res.best_point) < 1e-5);
    }

    #[test]
    fn small_k1_converges_prematurely_relative_to_large_k1() {
        // Table 3.2's headline: overly small k1 yields large errors R with
        // fewer effective iterations' worth of sampling.
        let rosen = Rosenbrock::new(3);
        let obj = Noisy::new(rosen, ConstantNoise(100.0));
        let mut small_err = 0.0;
        let mut large_err = 0.0;
        for s in 0..4 {
            let init = random_uniform(3, -6.0, 3.0, 500 + s);
            let small =
                AndersonNm::with_k1(1.0).run(&obj, init.clone(), term(), TimeMode::Parallel, s);
            let large =
                AndersonNm::with_k1(2f64.powi(20)).run(&obj, init, term(), TimeMode::Parallel, s);
            small_err += rosen.value(&small.best_point).max(1e-12).log10();
            large_err += rosen.value(&large.best_point).max(1e-12).log10();
        }
        assert!(
            small_err >= large_err,
            "small k1 {small_err} should be no more accurate than large k1 {large_err}"
        );
    }

    #[test]
    fn structure_search_descends_on_sphere() {
        let sphere = Sphere::new(2);
        let obj = Noisy::new(sphere, ConstantNoise(0.5));
        let init = random_uniform(2, 2.0, 4.0, 88);
        let res = AndersonSearch {
            cfg: SimplexConfig::default(),
            params: AndersonParams { k1: 16.0, k2: 0.0 },
        }
        .run(&obj, init.clone(), term(), TimeMode::Parallel, 3);
        let start_best = init
            .iter()
            .map(|p| sphere.value(p))
            .fold(f64::INFINITY, f64::min);
        assert!(
            sphere.value(&res.best_point) < start_best,
            "structure search failed to descend"
        );
        assert!(res.iterations > 0);
    }
}
