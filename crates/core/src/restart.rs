//! Restarted simplex for global optimization (§1.3.5.1: the simplex "has
//! also been used for finding the global minima of non-convex functions...
//! by restarting the simplex").
//!
//! [`RestartedSimplex`] wraps any [`SimplexMethod`]: when a run converges,
//! a fresh random simplex is drawn and the search continues until the total
//! budget is exhausted; the best result across restarts wins.

use crate::algorithm::SimplexMethod;
use crate::init::random_uniform;
use crate::result::RunResult;
use crate::termination::{StopReason, Termination};
use crate::trace::TracePoint;
use stoch_eval::clock::TimeMode;
use stoch_eval::objective::StochasticObjective;
use stoch_eval::rng::child_seed;

/// A multistart wrapper around any simplex-family method.
#[derive(Debug, Clone)]
pub struct RestartedSimplex {
    /// The inner local method.
    pub inner: SimplexMethod,
    /// Search box lower bound per coordinate (restart draws).
    pub lo: f64,
    /// Search box upper bound per coordinate.
    pub hi: f64,
    /// Upper bound on the number of restarts.
    pub max_restarts: usize,
    /// Minimum number of restarts the budget is sliced for: each restart
    /// gets at most `budget / min_restarts` of virtual time, so a single
    /// stalled run cannot consume the whole budget and reduce the
    /// multistart to one local search.
    pub min_restarts: usize,
}

impl RestartedSimplex {
    /// Restart `inner` from random simplexes in `[lo, hi)^d`.
    pub fn new(inner: SimplexMethod, lo: f64, hi: f64) -> Self {
        RestartedSimplex {
            inner,
            lo,
            hi,
            max_restarts: 16,
            min_restarts: 4,
        }
    }

    /// Run until the total virtual-time budget in `term` is exhausted.
    pub fn run<F: StochasticObjective>(
        &self,
        objective: &F,
        term: Termination,
        mode: TimeMode,
        seed: u64,
    ) -> RunResult {
        let d = objective.dim();
        let budget = term.max_time.unwrap_or(1e5);
        let mut best: Option<RunResult> = None;
        let mut elapsed_total = 0.0;
        let mut sampling_total = 0.0;
        let mut iterations_total = 0;
        let mut merged_trace = crate::trace::Trace::new();

        for restart in 0..self.max_restarts {
            let remaining = budget - elapsed_total;
            if remaining <= 0.0 {
                break;
            }
            let slice = remaining.min(budget / self.min_restarts.max(1) as f64);
            let run_term = Termination {
                tolerance: term.tolerance,
                max_time: Some(slice),
                max_iterations: term.max_iterations,
            };
            let init = random_uniform(d, self.lo, self.hi, child_seed(seed, restart as u64));
            let res = self.inner.run(
                objective,
                init,
                run_term,
                mode,
                child_seed(seed.wrapping_add(1), restart as u64),
            );
            for p in res.trace.points() {
                merged_trace.push(TracePoint {
                    time: p.time + elapsed_total,
                    iteration: p.iteration + iterations_total,
                    ..*p
                });
            }
            let res_stop = res.stop;
            elapsed_total += res.elapsed;
            sampling_total += res.total_sampling;
            iterations_total += res.iterations;
            let better = best
                .as_ref()
                .map(|b| res.best_observed < b.best_observed)
                .unwrap_or(true);
            if better {
                best = Some(res);
            }
            // The budget ran dry mid-run.
            if res_stop == StopReason::WallTime && elapsed_total >= budget {
                break;
            }
        }

        let mut out = best.expect("at least one restart ran");
        out.elapsed = elapsed_total;
        out.total_sampling = sampling_total;
        out.iterations = iterations_total;
        out.trace = merged_trace;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mn::MaxNoise;
    use stoch_eval::functions::Rastrigin;
    use stoch_eval::noise::ConstantNoise;
    use stoch_eval::objective::Objective;
    use stoch_eval::sampler::Noisy;

    #[test]
    fn restarts_improve_on_multimodal_surfaces() {
        let rast = Rastrigin::new(2);
        let obj = Noisy::new(rast, ConstantNoise(0.2));
        let term = Termination {
            tolerance: Some(1e-6),
            max_time: Some(2e4),
            max_iterations: Some(2_000),
        };
        // Single local run vs multistart under the same total budget.
        let init = random_uniform(2, -5.0, 5.0, 3);
        let single = MaxNoise::with_k(2.0).run(&obj, init, term, TimeMode::Parallel, 3);
        let multi = RestartedSimplex::new(SimplexMethod::Mn(MaxNoise::with_k(2.0)), -5.0, 5.0).run(
            &obj,
            term,
            TimeMode::Parallel,
            3,
        );
        assert!(
            rast.value(&multi.best_point) <= rast.value(&single.best_point) + 1e-9,
            "multistart {} vs single {}",
            rast.value(&multi.best_point),
            rast.value(&single.best_point)
        );
        assert!(multi.iterations >= single.iterations);
    }

    #[test]
    fn restart_respects_total_budget() {
        let obj = Noisy::new(Rastrigin::new(2), ConstantNoise(1.0));
        let term = Termination {
            tolerance: Some(1e-8),
            max_time: Some(5e3),
            max_iterations: Some(10_000),
        };
        let res = RestartedSimplex::new(SimplexMethod::Mn(MaxNoise::with_k(2.0)), -5.0, 5.0).run(
            &obj,
            term,
            TimeMode::Parallel,
            1,
        );
        // Allow one in-flight round of slack.
        assert!(res.elapsed < 5e3 * 1.6, "elapsed {}", res.elapsed);
    }

    #[test]
    fn merged_trace_is_time_monotone() {
        let obj = Noisy::new(Rastrigin::new(2), ConstantNoise(0.5));
        let term = Termination {
            tolerance: Some(1e-6),
            max_time: Some(1e4),
            max_iterations: Some(2_000),
        };
        let res = RestartedSimplex::new(SimplexMethod::Mn(MaxNoise::with_k(2.0)), -5.0, 5.0).run(
            &obj,
            term,
            TimeMode::Parallel,
            2,
        );
        for w in res.trace.points().windows(2) {
            assert!(w[1].time >= w[0].time - 1e-9);
        }
    }
}
