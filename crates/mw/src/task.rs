//! The structured MW layer: `MwTask` / `MwDriver` / worker context — the
//! analogues of the `MWTask`, `MWDriver`, `MWWorker` classes the paper
//! re-implements (§3.1, Fig 3.1), including the vertex-level server→client
//! fan-out (Fig 3.2).

use crate::pool::{JobHandle, MwPool};

/// Context available to a task while it executes on a worker.
///
/// The worker is logically a simplex vertex; its "server" side can fan work
/// out to `ns_clients` client threads, one per simulated system, via
/// [`WorkerCtx::run_clients`].
#[derive(Debug, Clone, Copy)]
pub struct WorkerCtx {
    /// Id of the worker executing the task.
    pub worker_id: usize,
    /// Number of client processes per vertex (`Ns`).
    pub ns_clients: usize,
}

impl WorkerCtx {
    /// Run `self.ns_clients` client shards concurrently on real threads and
    /// collect their results in shard order.
    ///
    /// Clients never communicate with each other, only with their server —
    /// matching §4.3.
    pub fn run_clients<R, F>(&self, shard: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let n = self.ns_clients.max(1);
        if n == 1 {
            return vec![shard(0)];
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|i| {
                    let shard = &shard;
                    scope.spawn(move || shard(i))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|_| panic!("MW client thread panicked"))
                })
                .collect()
        })
    }
}

/// One unit of work: the data describing a task plus the computation that
/// produces its result (the paper's `MWTask` abstraction).
pub trait MwTask: Send + 'static {
    /// The result reported back to the master.
    type Output: Send + 'static;

    /// Execute on a worker.
    fn execute(self, ctx: &WorkerCtx) -> Self::Output;
}

/// The master-side driver managing a set of workers (the paper's
/// `MWDriver`).
pub struct MwDriver {
    pool: MwPool,
    ns_clients: usize,
}

impl MwDriver {
    /// Spawn a driver with `n_workers` workers, each fronting `ns_clients`
    /// client threads.
    pub fn new(n_workers: usize, ns_clients: usize) -> Self {
        MwDriver {
            pool: MwPool::new(n_workers),
            ns_clients,
        }
    }

    /// Like [`new`](Self::new), with the pool recording its activity
    /// (jobs, busy/idle time, queue depth) into `registry`.
    pub fn with_metrics(
        n_workers: usize,
        ns_clients: usize,
        registry: &obs::MetricsRegistry,
    ) -> Self {
        MwDriver {
            pool: MwPool::with_metrics(n_workers, registry),
            ns_clients,
        }
    }

    /// Spawn a driver whose workers fail per the injection plan (see
    /// [`MwPool::with_fault_injection`]); for testing reassignment.
    pub fn with_fault_injection(
        n_workers: usize,
        ns_clients: usize,
        faults: &[Option<u64>],
    ) -> Self {
        MwDriver {
            pool: MwPool::with_fault_injection(n_workers, faults),
            ns_clients,
        }
    }

    /// Number of workers.
    pub fn n_workers(&self) -> usize {
        self.pool.n_workers()
    }

    /// Clients per worker.
    pub fn ns_clients(&self) -> usize {
        self.ns_clients
    }

    /// Dispatch a task to the next free worker; returns immediately.
    pub fn dispatch<T: MwTask>(&self, task: T) -> JobHandle<T::Output> {
        let ns = self.ns_clients;
        self.pool.submit(move |worker_id| {
            let ctx = WorkerCtx {
                worker_id,
                ns_clients: ns,
            };
            task.execute(&ctx)
        })
    }

    /// Dispatch a batch concurrently and wait for every result (in input
    /// order). Any result lost to worker death fails the whole batch; use
    /// [`dispatch_reliable`](Self::dispatch_reliable) for per-task retry.
    pub fn dispatch_all<T: MwTask>(
        &self,
        tasks: Vec<T>,
    ) -> Result<Vec<T::Output>, crate::pool::WorkerLost> {
        let handles: Vec<_> = tasks.into_iter().map(|t| self.dispatch(t)).collect();
        handles.into_iter().map(|h| h.recv()).collect()
    }

    /// Dispatch with master-side reassignment: if the executing worker dies
    /// mid-task (see [`crate::pool::WorkerLost`]), the task is re-dispatched
    /// up to `max_retries` times — the paper's restart-the-worker behaviour
    /// (§4.2), done at the master.
    pub fn dispatch_reliable<T: MwTask + Clone>(
        &self,
        task: T,
        max_retries: usize,
    ) -> Result<T::Output, crate::pool::WorkerLost> {
        let mut attempt = 0;
        loop {
            match self.dispatch(task.clone()).recv() {
                Ok(out) => return Ok(out),
                Err(lost) => {
                    if attempt >= max_retries {
                        return Err(lost);
                    }
                    // Reap the corpse (and respawn if the pool has budget)
                    // so the retry lands on a live worker.
                    self.pool.supervise();
                    attempt += 1;
                }
            }
        }
    }

    /// Per-worker job counts.
    pub fn job_counts(&self) -> Vec<u64> {
        self.pool.job_counts()
    }

    /// Access the underlying pool (for adapter layers).
    pub fn pool(&self) -> &MwPool {
        &self.pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct SquareTask(u64);
    impl MwTask for SquareTask {
        type Output = u64;
        fn execute(self, _ctx: &WorkerCtx) -> u64 {
            self.0 * self.0
        }
    }

    struct ClientSumTask;
    impl MwTask for ClientSumTask {
        type Output = usize;
        fn execute(self, ctx: &WorkerCtx) -> usize {
            ctx.run_clients(|i| i).into_iter().sum()
        }
    }

    #[test]
    fn dispatch_all_preserves_order() {
        let driver = MwDriver::new(4, 1);
        let out = driver
            .dispatch_all((0..10).map(SquareTask).collect())
            .unwrap();
        assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36, 49, 64, 81]);
    }

    #[test]
    fn clients_fan_out_per_worker() {
        let driver = MwDriver::new(2, 6);
        let out = driver
            .dispatch_all(vec![ClientSumTask, ClientSumTask])
            .unwrap();
        // 0+1+..+5 = 15 per task.
        assert_eq!(out, vec![15, 15]);
    }

    #[test]
    fn single_client_runs_inline() {
        let ctx = WorkerCtx {
            worker_id: 0,
            ns_clients: 1,
        };
        assert_eq!(ctx.run_clients(|i| i + 100), vec![100]);
    }

    #[test]
    fn job_counts_cover_all_dispatches() {
        let driver = MwDriver::new(3, 1);
        let _ = driver
            .dispatch_all((0..20).map(SquareTask).collect())
            .unwrap();
        assert_eq!(driver.job_counts().iter().sum::<u64>(), 20);
    }

    #[derive(Clone)]
    struct CloneSquare(u64);
    impl MwTask for CloneSquare {
        type Output = u64;
        fn execute(self, _ctx: &WorkerCtx) -> u64 {
            self.0 * self.0
        }
    }

    #[test]
    fn reliable_dispatch_survives_worker_deaths() {
        // Worker 0 dies on its second job; a healthy worker remains, so
        // every reliable dispatch eventually succeeds.
        let driver = MwDriver::with_fault_injection(2, 1, &[Some(1), None]);
        let mut ok = 0;
        for i in 0..50u64 {
            if driver.dispatch_reliable(CloneSquare(i), 3) == Ok(i * i) {
                ok += 1;
            }
        }
        assert_eq!(ok, 50);
    }

    #[test]
    fn reliable_dispatch_gives_up_after_retries() {
        // Both workers die immediately: every attempt is lost.
        let driver = MwDriver::with_fault_injection(2, 1, &[Some(0), Some(0)]);
        let r = driver.dispatch_reliable(CloneSquare(3), 1);
        assert!(r.is_err());
    }
}
