//! The pool-backed sampling backend: batches of stream extensions fan out
//! over [`MwPool`] workers.
//!
//! This implements the `stoch-eval` [`SamplingBackend`] seam with real
//! threads — the in-process analogue of the paper's master–worker
//! deployment (§3.1): the master (the optimizer engine) hands a round of
//! extensions to the backend, each extension runs on a worker, and the
//! master blocks until the whole round is back. Determinism is inherited
//! from the seam's contract: every stream owns its RNG, so the worker
//! schedule cannot change any result, and results are collected in
//! submission order so floating-point accounting sums identically to the
//! serial backend.
//!
//! Do **not** wrap an [`MwObjective`](crate::objective::MwObjective) in a
//! `ThreadedBackend` over the *same* pool: its streams call back into the
//! pool from inside a worker job, which deadlocks once every worker is
//! occupied by a batch job. Use one or the other — the backend subsumes the
//! adapter for batch workloads.

use crate::pool::{JobHandle, MwPool};
use obs::{Counter, Gauge, MetricsRegistry};
use std::sync::{Arc, OnceLock};
use std::time::Instant;
use stoch_eval::backend::{SamplingBackend, StreamJob};
use stoch_eval::objective::SampleStream;

/// Ship one extension job to the pool: the stream state moves to a worker,
/// extends there, and is handed back through the job handle.
///
/// This is the single stream-shipping primitive shared by the batch backend
/// and the per-stream [`MwStream`](crate::objective::MwStream) adapter.
pub(crate) fn ship_extend<S: SampleStream + 'static>(
    pool: &MwPool,
    mut job: StreamJob<S>,
) -> JobHandle<StreamJob<S>> {
    pool.submit(move |_worker| {
        job.stream.extend(job.dt);
        job
    })
}

/// Registry handles recorded per dispatched batch. Metric names:
/// `mw.backend.batches`, `mw.backend.jobs`, `mw.backend.fanout_nanos`,
/// `mw.backend.batch_size_hwm`, `mw.backend.busy_pct`.
struct BackendObs {
    batches: Arc<Counter>,
    jobs: Arc<Counter>,
    fanout_nanos: Arc<Counter>,
    batch_size_hwm: Arc<Gauge>,
    busy_pct: Arc<Gauge>,
}

impl BackendObs {
    fn register(registry: &MetricsRegistry) -> Self {
        BackendObs {
            batches: registry.counter("mw.backend.batches"),
            jobs: registry.counter("mw.backend.jobs"),
            fanout_nanos: registry.counter("mw.backend.fanout_nanos"),
            batch_size_hwm: registry.gauge("mw.backend.batch_size_hwm"),
            busy_pct: registry.gauge("mw.backend.busy_pct"),
        }
    }
}

/// A [`SamplingBackend`] that runs every job of a batch on an [`MwPool`]
/// worker and blocks until the round completes.
pub struct ThreadedBackend {
    pool: Arc<MwPool>,
    obs: Option<BackendObs>,
}

/// Worker count for the shared pool: `NSX_WORKERS` if set (≥ 1), otherwise
/// the machine's available hardware parallelism.
pub fn default_workers() -> usize {
    std::env::var("NSX_WORKERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

static SHARED: OnceLock<Arc<ThreadedBackend>> = OnceLock::new();

impl ThreadedBackend {
    /// Spawn a dedicated pool of `n_workers` threads for this backend.
    pub fn new(n_workers: usize) -> Self {
        ThreadedBackend {
            pool: Arc::new(MwPool::new(n_workers)),
            obs: None,
        }
    }

    /// Run batches over an existing pool.
    pub fn over(pool: Arc<MwPool>) -> Self {
        ThreadedBackend { pool, obs: None }
    }

    /// Like [`ThreadedBackend::new`], with per-batch run accounting
    /// mirrored into `registry` (`mw.backend.*`: batches, jobs, fan-out
    /// latency, batch-size high-water mark, worker busy fraction).
    pub fn with_metrics(n_workers: usize, registry: &MetricsRegistry) -> Self {
        ThreadedBackend {
            pool: Arc::new(MwPool::with_metrics(n_workers, registry)),
            obs: Some(BackendObs::register(registry)),
        }
    }

    /// The process-wide shared backend, sized by [`default_workers`] on
    /// first use. Engines constructed with an auto-sized threaded backend
    /// all share this pool, so repeated runs do not respawn threads.
    pub fn shared() -> Arc<ThreadedBackend> {
        Arc::clone(SHARED.get_or_init(|| Arc::new(ThreadedBackend::new(default_workers()))))
    }

    /// The underlying worker pool.
    pub fn pool(&self) -> &Arc<MwPool> {
        &self.pool
    }

    fn record_batch(&self, n_jobs: usize, fanout: std::time::Duration) {
        let Some(o) = &self.obs else { return };
        o.batches.inc();
        o.jobs.add(n_jobs as u64);
        o.fanout_nanos.add(fanout.as_nanos() as u64);
        o.batch_size_hwm.record(n_jobs as u64);
        let busy: f64 = self.pool.busy_seconds().iter().sum();
        let idle: f64 = self.pool.idle_seconds().iter().sum();
        if busy + idle > 0.0 {
            o.busy_pct.record((100.0 * busy / (busy + idle)) as u64);
        }
    }
}

impl<S: SampleStream + 'static> SamplingBackend<S> for ThreadedBackend {
    fn extend_batch(&self, jobs: Vec<StreamJob<S>>) -> Vec<StreamJob<S>> {
        let n = jobs.len();
        let t0 = Instant::now();
        // Submit everything before waiting on anything, then collect in
        // submission order (the seam's ordering contract; completion order
        // is whatever the workers make of it).
        let handles: Vec<JobHandle<StreamJob<S>>> = jobs
            .into_iter()
            .map(|job| ship_extend(&self.pool, job))
            .collect();
        let done: Vec<StreamJob<S>> = handles.into_iter().map(JobHandle::wait).collect();
        self.record_batch(n, t0.elapsed());
        done
    }

    fn name(&self) -> &'static str {
        "threaded"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stoch_eval::backend::SerialBackend;
    use stoch_eval::functions::Rosenbrock;
    use stoch_eval::noise::ConstantNoise;
    use stoch_eval::objective::StochasticObjective;
    use stoch_eval::sampler::Noisy;

    fn jobs_at(
        obj: &Noisy<Rosenbrock, ConstantNoise>,
        n: usize,
    ) -> Vec<StreamJob<<Noisy<Rosenbrock, ConstantNoise> as StochasticObjective>::Stream>> {
        (0..n)
            .map(|i| StreamJob {
                slot: i,
                dt: 1.0 + i as f64,
                stream: obj.open(&[i as f64, 0.5], 100 + i as u64),
            })
            .collect()
    }

    #[test]
    fn threaded_matches_serial_bit_for_bit() {
        let obj = Noisy::new(Rosenbrock::new(2), ConstantNoise(5.0));
        let serial = SerialBackend.extend_batch(jobs_at(&obj, 6));
        let threaded = ThreadedBackend::new(3).extend_batch(jobs_at(&obj, 6));
        for (a, b) in serial.iter().zip(&threaded) {
            assert_eq!(a.slot, b.slot);
            assert_eq!(a.dt, b.dt);
            let (ea, eb) = (a.stream.estimate(), b.stream.estimate());
            assert_eq!(ea.value, eb.value);
            assert_eq!(ea.std_err, eb.std_err);
            assert_eq!(ea.time, eb.time);
        }
    }

    #[test]
    fn batch_returns_in_submission_order() {
        let obj = Noisy::new(Rosenbrock::new(2), ConstantNoise(1.0));
        let backend = ThreadedBackend::new(4);
        for _ in 0..20 {
            let done = backend.extend_batch(jobs_at(&obj, 8));
            let slots: Vec<usize> = done.iter().map(|j| j.slot).collect();
            assert_eq!(slots, (0..8).collect::<Vec<_>>());
        }
    }

    #[test]
    fn metrics_record_batches_and_fanout() {
        let reg = MetricsRegistry::new();
        let obj = Noisy::new(Rosenbrock::new(2), ConstantNoise(1.0));
        let backend = ThreadedBackend::with_metrics(2, &reg);
        for _ in 0..3 {
            backend.extend_batch(jobs_at(&obj, 5));
        }
        assert_eq!(reg.counter("mw.backend.batches").get(), 3);
        assert_eq!(reg.counter("mw.backend.jobs").get(), 15);
        assert!(reg.counter("mw.backend.fanout_nanos").get() > 0);
        assert_eq!(reg.gauge("mw.backend.batch_size_hwm").max(), 5);
        // The underlying pool mirrored its own counters too.
        assert_eq!(reg.counter("mw.pool.jobs_submitted").get(), 15);
    }

    #[test]
    fn shared_backend_is_one_pool() {
        let a = ThreadedBackend::shared();
        let b = ThreadedBackend::shared();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(a.pool().n_workers() >= 1);
    }
}
