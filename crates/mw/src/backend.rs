//! The pool-backed sampling backend: batches of stream extensions fan out
//! over [`MwPool`] workers, supervised against worker loss.
//!
//! This implements the `stoch-eval` [`SamplingBackend`] seam with real
//! threads — the in-process analogue of the paper's master–worker
//! deployment (§3.1): the master (the optimizer engine) hands a round of
//! extensions to the backend, each extension runs on a worker, and the
//! master blocks until the whole round is back. Determinism is inherited
//! from the seam's contract: every stream owns its RNG, so the worker
//! schedule cannot change any result, and results are collected in
//! submission order so floating-point accounting sums identically to the
//! serial backend.
//!
//! # Fault tolerance (DESIGN.md §9)
//!
//! The backend keeps a master-side clone of every stream it ships. If a
//! worker dies mid-job (or a per-attempt timeout fires), the extension is
//! re-issued from the clone under the backend's [`RetryPolicy`] while the
//! pool's supervisor respawns workers; because the clone carries the RNG
//! state, a retried extension reproduces the lost one bit for bit. When the
//! pool permanently fails (respawn budget exhausted, no live workers) or a
//! job runs out of attempts, the remaining work executes inline on the
//! calling thread — the run *degrades to serial* instead of erroring, and
//! the backend reports it through [`SamplingBackend::degraded`] and the
//! `mw.backend.degraded` metric.
//!
//! Faults themselves come from the `NSX_FAULTS` environment variable (see
//! [`FaultPlan`]) for chaos testing, or programmatically via
//! [`ThreadedBackend::with_options`].
//!
//! Do **not** wrap an [`MwObjective`](crate::objective::MwObjective) in a
//! `ThreadedBackend` over the *same* pool: its streams call back into the
//! pool from inside a worker job, which deadlocks once every worker is
//! occupied by a batch job. Use one or the other — the backend subsumes the
//! adapter for batch workloads.

use crate::faults::FaultPlan;
use crate::pool::{default_respawn_budget, JobHandle, MwPool, RetryPolicy, WorkerLost};
use obs::{Counter, Gauge, MetricsRegistry};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};
use stoch_eval::backend::{SamplingBackend, StreamJob};
use stoch_eval::objective::SampleStream;

/// Fallback wake-up bound while a batch is in flight. Batch completion is
/// event-driven — the pool's completion notifier wakes the master the
/// moment any job resolves or a worker dies — so this only bounds how long
/// a *silent* stall (a wedged-but-alive worker) can defer a supervision
/// pass. It is not a completion-latency quantum.
const SUPERVISION_FALLBACK: Duration = Duration::from_millis(100);

/// Ship one extension job to the pool: the stream state moves to a worker,
/// extends there, and is handed back through the job handle.
///
/// This is the single stream-shipping primitive shared by the batch backend
/// and the per-stream [`MwStream`](crate::objective::MwStream) adapter.
pub(crate) fn ship_extend<S: SampleStream + 'static>(
    pool: &MwPool,
    mut job: StreamJob<S>,
) -> JobHandle<StreamJob<S>> {
    pool.submit(move |_worker| {
        job.stream.extend(job.dt);
        job
    })
}

/// Registry handles recorded per dispatched batch. Metric names:
/// `mw.backend.batches`, `mw.backend.jobs`, `mw.backend.fanout_nanos`,
/// `mw.backend.batch_size_hwm`, `mw.backend.busy_pct`, plus the
/// fault-tolerance series `mw.retry.attempts`, `mw.retry.timeouts`,
/// `mw.backend.degraded`.
struct BackendObs {
    batches: Arc<Counter>,
    jobs: Arc<Counter>,
    fanout_nanos: Arc<Counter>,
    batch_size_hwm: Arc<Gauge>,
    busy_pct: Arc<Gauge>,
    retry_attempts: Arc<Counter>,
    retry_timeouts: Arc<Counter>,
    degraded: Arc<Counter>,
}

impl BackendObs {
    fn register(registry: &MetricsRegistry) -> Self {
        BackendObs {
            batches: registry.counter("mw.backend.batches"),
            jobs: registry.counter("mw.backend.jobs"),
            fanout_nanos: registry.counter("mw.backend.fanout_nanos"),
            batch_size_hwm: registry.gauge("mw.backend.batch_size_hwm"),
            busy_pct: registry.gauge("mw.backend.busy_pct"),
            retry_attempts: registry.counter("mw.retry.attempts"),
            retry_timeouts: registry.counter("mw.retry.timeouts"),
            degraded: registry.counter("mw.backend.degraded"),
        }
    }
}

/// A [`SamplingBackend`] that runs every job of a batch on an [`MwPool`]
/// worker and blocks until the round completes, surviving worker loss (see
/// the module docs for the fault model).
pub struct ThreadedBackend {
    pool: Arc<MwPool>,
    obs: Option<BackendObs>,
    retry: RetryPolicy,
    degraded: AtomicBool,
}

/// Worker count for the shared pool: `NSX_WORKERS` if set (≥ 1), otherwise
/// the machine's available hardware parallelism.
pub fn default_workers() -> usize {
    std::env::var("NSX_WORKERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

static SHARED: OnceLock<Arc<ThreadedBackend>> = OnceLock::new();

/// One in-flight batch entry: where the result goes, the master-side backup
/// to re-issue from, and the attempt bookkeeping.
struct Pending<S> {
    idx: usize,
    slot: usize,
    dt: f64,
    backup: S,
    handle: JobHandle<StreamJob<S>>,
    attempt: u32,
}

impl ThreadedBackend {
    /// Spawn a dedicated supervised pool of `n_workers` threads for this
    /// backend, with fault injection taken from the `NSX_FAULTS`
    /// environment variable (none when unset).
    pub fn new(n_workers: usize) -> Self {
        Self::with_options(
            n_workers,
            FaultPlan::from_env(),
            RetryPolicy::default(),
            default_respawn_budget(n_workers),
            None,
        )
    }

    /// Run batches over an existing pool (no env fault injection — the pool
    /// was configured by its owner).
    pub fn over(pool: Arc<MwPool>) -> Self {
        ThreadedBackend {
            pool,
            obs: None,
            retry: RetryPolicy::default(),
            degraded: AtomicBool::new(false),
        }
    }

    /// Like [`ThreadedBackend::new`], with per-batch run accounting
    /// mirrored into `registry` (`mw.backend.*`: batches, jobs, fan-out
    /// latency, batch-size high-water mark, worker busy fraction, and the
    /// fault-tolerance counters).
    pub fn with_metrics(n_workers: usize, registry: &MetricsRegistry) -> Self {
        Self::with_options(
            n_workers,
            FaultPlan::from_env(),
            RetryPolicy::default(),
            default_respawn_budget(n_workers),
            Some(registry),
        )
    }

    /// Full-control constructor: worker count, programmatic fault plan,
    /// retry policy, worker-respawn budget, and optional metrics registry.
    pub fn with_options(
        n_workers: usize,
        faults: FaultPlan,
        retry: RetryPolicy,
        respawn_budget: u64,
        registry: Option<&MetricsRegistry>,
    ) -> Self {
        ThreadedBackend {
            pool: Arc::new(MwPool::with_options(
                n_workers,
                faults,
                respawn_budget,
                registry,
            )),
            obs: registry.map(BackendObs::register),
            retry,
            degraded: AtomicBool::new(false),
        }
    }

    /// The process-wide shared backend, sized by [`default_workers`] on
    /// first use. Engines constructed with an auto-sized threaded backend
    /// all share this pool, so repeated runs do not respawn threads.
    pub fn shared() -> Arc<ThreadedBackend> {
        Arc::clone(SHARED.get_or_init(|| Arc::new(ThreadedBackend::new(default_workers()))))
    }

    /// The underlying worker pool.
    pub fn pool(&self) -> &Arc<MwPool> {
        &self.pool
    }

    /// The backend's retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Record the transition into degraded (inline) execution exactly once.
    fn note_degraded(&self) {
        if !self.degraded.swap(true, Ordering::SeqCst) {
            if let Some(o) = &self.obs {
                o.degraded.inc();
            }
        }
    }

    /// Re-issue a lost/expired job if attempts and workers remain;
    /// otherwise run it inline (degradation at single-job granularity —
    /// the batch still completes with correct results).
    fn retry_or_inline<S: SampleStream + 'static>(
        &self,
        p: Pending<S>,
        pending: &mut VecDeque<Pending<S>>,
        out: &mut [Option<StreamJob<S>>],
    ) {
        let next_attempt = p.attempt + 1;
        if next_attempt <= self.retry.max_attempts && !self.pool.is_failed() {
            if let Some(o) = &self.obs {
                o.retry_attempts.inc();
            }
            let backoff = self.retry.backoff_before(next_attempt);
            if !backoff.is_zero() {
                std::thread::sleep(backoff);
            }
            let handle = ship_extend(
                &self.pool,
                StreamJob {
                    slot: p.slot,
                    dt: p.dt,
                    stream: p.backup.clone(),
                },
            );
            // The fresh handle re-anchors the attempt clock at dispatch.
            pending.push_back(Pending {
                handle,
                attempt: next_attempt,
                ..p
            });
        } else {
            let mut stream = p.backup;
            stream.extend(p.dt);
            out[p.idx] = Some(StreamJob {
                slot: p.slot,
                dt: p.dt,
                stream,
            });
        }
    }

    /// Run the whole batch inline (serial fallback).
    fn extend_inline<S: SampleStream>(mut jobs: Vec<StreamJob<S>>) -> Vec<StreamJob<S>> {
        for job in &mut jobs {
            job.stream.extend(job.dt);
        }
        jobs
    }

    fn record_batch(&self, n_jobs: usize, fanout: std::time::Duration) {
        let Some(o) = &self.obs else { return };
        o.batches.inc();
        o.jobs.add(n_jobs as u64);
        o.fanout_nanos.add(fanout.as_nanos() as u64);
        o.batch_size_hwm.record(n_jobs as u64);
        let busy: f64 = self.pool.busy_seconds().iter().sum();
        let idle: f64 = self.pool.idle_seconds().iter().sum();
        if busy + idle > 0.0 {
            o.busy_pct.record((100.0 * busy / (busy + idle)) as u64);
        }
    }
}

impl<S: SampleStream + 'static> SamplingBackend<S> for ThreadedBackend {
    fn extend_batch(&self, jobs: Vec<StreamJob<S>>) -> Vec<StreamJob<S>> {
        let n = jobs.len();
        let t0 = Instant::now();
        if self.degraded.load(Ordering::SeqCst) || self.pool.is_failed() {
            self.note_degraded();
            let done = Self::extend_inline(jobs);
            self.record_batch(n, t0.elapsed());
            return done;
        }
        // Submit everything before waiting on anything, keeping a
        // master-side backup of each stream; collect in submission order
        // (the seam's ordering contract; completion order is whatever the
        // workers make of it).
        let mut out: Vec<Option<StreamJob<S>>> = (0..n).map(|_| None).collect();
        let mut pending: VecDeque<Pending<S>> = jobs
            .into_iter()
            .enumerate()
            .map(|(idx, job)| Pending {
                idx,
                slot: job.slot,
                dt: job.dt,
                backup: job.stream.clone(),
                handle: ship_extend(&self.pool, job),
                attempt: 1,
            })
            .collect();
        while !pending.is_empty() {
            // Snapshot the completion generation BEFORE scanning: a result
            // that lands mid-scan bumps past this snapshot, so the wait at
            // the bottom returns immediately instead of sleeping through
            // the wakeup.
            let seen = self.pool.completion_generation();
            let mut still: VecDeque<Pending<S>> = VecDeque::with_capacity(pending.len());
            while let Some(p) = pending.pop_front() {
                match p.handle.try_recv() {
                    Ok(Some(job)) => {
                        out[p.idx] = Some(job);
                    }
                    Ok(None) => {
                        // Attempt age is measured from dispatch (the
                        // handle's clock), not from when this scan happens
                        // to reach the job.
                        if self
                            .retry
                            .timeout
                            .is_some_and(|limit| p.handle.elapsed() >= limit)
                        {
                            // The attempt overran its budget: abandon the
                            // handle (a straggling result is ignored) and
                            // re-issue from the backup.
                            if let Some(o) = &self.obs {
                                o.retry_timeouts.inc();
                            }
                            self.retry_or_inline(p, &mut still, &mut out);
                        } else {
                            still.push_back(p);
                        }
                    }
                    Err(WorkerLost) => {
                        // Reap/respawn before re-issuing so the retry lands
                        // on a live worker where possible.
                        self.pool.supervise();
                        if self.pool.is_failed() {
                            self.note_degraded();
                        }
                        self.retry_or_inline(p, &mut still, &mut out);
                    }
                }
            }
            pending = still;
            if pending.is_empty() {
                break;
            }
            // A supervision pass each round keeps dead-worker detection
            // bounded even when nothing completes.
            self.pool.supervise();
            if self.pool.is_failed() {
                // Respawn budget exhausted with no live workers: degrade —
                // finish everything still pending inline. Queued handles
                // would error anyway (the failed pool drained them); the
                // backups make the results whole.
                self.note_degraded();
                let mut sink = VecDeque::new();
                while let Some(p) = pending.pop_front() {
                    // is_failed() makes retry_or_inline run inline.
                    self.retry_or_inline(p, &mut sink, &mut out);
                }
                debug_assert!(sink.is_empty(), "failed pool must not re-queue");
                break;
            }
            // Sleep until a completion event, the earliest per-attempt
            // deadline, or the supervision fallback — whichever is first.
            let mut wait = SUPERVISION_FALLBACK;
            if let Some(limit) = self.retry.timeout {
                for p in &pending {
                    wait = wait.min(limit.saturating_sub(p.handle.elapsed()));
                }
            }
            if !wait.is_zero() {
                self.pool.wait_for_completion(seen, wait);
            }
        }
        let done: Vec<StreamJob<S>> = out
            .into_iter()
            .map(|o| o.unwrap_or_else(|| panic!("MW backend dropped a batch slot")))
            .collect();
        self.record_batch(n, t0.elapsed());
        done
    }

    fn name(&self) -> &'static str {
        "threaded"
    }

    fn degraded(&self) -> bool {
        self.degraded.load(Ordering::SeqCst) || self.pool.is_failed()
    }

    fn pool_token(&self) -> Option<usize> {
        Some(Arc::as_ptr(&self.pool) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stoch_eval::backend::SerialBackend;
    use stoch_eval::functions::Rosenbrock;
    use stoch_eval::noise::ConstantNoise;
    use stoch_eval::objective::StochasticObjective;
    use stoch_eval::sampler::Noisy;

    fn jobs_at(
        obj: &Noisy<Rosenbrock, ConstantNoise>,
        n: usize,
    ) -> Vec<StreamJob<<Noisy<Rosenbrock, ConstantNoise> as StochasticObjective>::Stream>> {
        (0..n)
            .map(|i| StreamJob {
                slot: i,
                dt: 1.0 + i as f64,
                stream: obj.open(&[i as f64, 0.5], 100 + i as u64),
            })
            .collect()
    }

    fn assert_batches_identical<S: SampleStream>(a: &[StreamJob<S>], b: &[StreamJob<S>]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.slot, y.slot);
            assert_eq!(x.dt, y.dt);
            let (ea, eb) = (x.stream.estimate(), y.stream.estimate());
            assert_eq!(ea.value, eb.value);
            assert_eq!(ea.std_err, eb.std_err);
            assert_eq!(ea.time, eb.time);
        }
    }

    #[test]
    fn threaded_matches_serial_bit_for_bit() {
        let obj = Noisy::new(Rosenbrock::new(2), ConstantNoise(5.0));
        let serial = SerialBackend.extend_batch(jobs_at(&obj, 6));
        let threaded = ThreadedBackend::new(3).extend_batch(jobs_at(&obj, 6));
        assert_batches_identical(&serial, &threaded);
    }

    #[test]
    fn batch_returns_in_submission_order() {
        let obj = Noisy::new(Rosenbrock::new(2), ConstantNoise(1.0));
        let backend = ThreadedBackend::new(4);
        for _ in 0..20 {
            let done = backend.extend_batch(jobs_at(&obj, 8));
            let slots: Vec<usize> = done.iter().map(|j| j.slot).collect();
            assert_eq!(slots, (0..8).collect::<Vec<_>>());
        }
    }

    #[test]
    fn retry_recovers_from_worker_death_bit_for_bit() {
        let obj = Noisy::new(Rosenbrock::new(2), ConstantNoise(3.0));
        let serial = SerialBackend.extend_batch(jobs_at(&obj, 12));
        // Worker 0 dies after one job; supervision respawns it and the lost
        // extension is retried from the master-side backup.
        let backend = ThreadedBackend::with_options(
            2,
            FaultPlan::none().kill(0, 1),
            RetryPolicy::default(),
            default_respawn_budget(2),
            None,
        );
        let threaded = backend.extend_batch(jobs_at(&obj, 12));
        assert_batches_identical(&serial, &threaded);
        assert!(!SamplingBackend::<
            <Noisy<Rosenbrock, ConstantNoise> as StochasticObjective>::Stream,
        >::degraded(&backend));
    }

    #[test]
    fn drop_result_fault_is_retried_identically() {
        let obj = Noisy::new(Rosenbrock::new(2), ConstantNoise(3.0));
        let serial = SerialBackend.extend_batch(jobs_at(&obj, 8));
        let backend = ThreadedBackend::with_options(
            2,
            FaultPlan::none().drop_result(0, 2),
            RetryPolicy::default(),
            default_respawn_budget(2),
            None,
        );
        let threaded = backend.extend_batch(jobs_at(&obj, 8));
        assert_batches_identical(&serial, &threaded);
    }

    #[test]
    fn exhausted_pool_degrades_to_serial_within_bounded_time() {
        // The sole worker dies immediately and there is no respawn budget:
        // the batch must still complete (inline), promptly, with results
        // identical to the serial backend — and report degradation.
        let reg = MetricsRegistry::new();
        let obj = Noisy::new(Rosenbrock::new(2), ConstantNoise(2.0));
        let serial = SerialBackend.extend_batch(jobs_at(&obj, 6));
        let backend = ThreadedBackend::with_options(
            1,
            FaultPlan::none().kill(0, 0),
            RetryPolicy::default(),
            0,
            Some(&reg),
        );
        let t0 = Instant::now();
        let threaded = backend.extend_batch(jobs_at(&obj, 6));
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "degradation must be bounded, took {:?}",
            t0.elapsed()
        );
        assert_batches_identical(&serial, &threaded);
        assert!(SamplingBackend::<
            <Noisy<Rosenbrock, ConstantNoise> as StochasticObjective>::Stream,
        >::degraded(&backend));
        assert!(reg.counter("mw.backend.degraded").get() >= 1);
        // Later batches keep working, inline.
        let again = backend.extend_batch(jobs_at(&obj, 6));
        assert_batches_identical(&serial, &again);
    }

    #[test]
    fn per_attempt_timeout_fires_and_results_stay_identical() {
        let reg = MetricsRegistry::new();
        let obj = Noisy::new(Rosenbrock::new(2), ConstantNoise(1.0));
        let serial = SerialBackend.extend_batch(jobs_at(&obj, 2));
        // Every job on the sole worker is delayed 60ms but the per-attempt
        // budget is 10ms: the master gives up on the straggler, retries,
        // and eventually falls back inline. Slowness must cost time only,
        // never correctness.
        let backend = ThreadedBackend::with_options(
            1,
            FaultPlan::none().delay(0, 0, 60),
            RetryPolicy {
                max_attempts: 2,
                timeout: Some(Duration::from_millis(10)),
                backoff: Duration::ZERO,
            },
            default_respawn_budget(1),
            Some(&reg),
        );
        let threaded = backend.extend_batch(jobs_at(&obj, 2));
        assert_batches_identical(&serial, &threaded);
        assert!(reg.counter("mw.retry.timeouts").get() >= 1);
    }

    #[test]
    fn attempt_deadlines_do_not_fire_on_healthy_runs() {
        // Contract for `mw.retry.timeouts`: the per-attempt clock starts at
        // dispatch and a healthy worker answering within budget must never
        // trip it — regardless of how the master's scan loop is scheduled.
        let reg = MetricsRegistry::new();
        let obj = Noisy::new(Rosenbrock::new(2), ConstantNoise(1.0));
        let backend = ThreadedBackend::with_options(
            2,
            FaultPlan::none(),
            RetryPolicy {
                max_attempts: 4,
                timeout: Some(Duration::from_secs(30)),
                backoff: Duration::ZERO,
            },
            default_respawn_budget(2),
            Some(&reg),
        );
        for _ in 0..5 {
            backend.extend_batch(jobs_at(&obj, 8));
        }
        assert_eq!(reg.counter("mw.retry.timeouts").get(), 0);
        assert_eq!(reg.counter("mw.retry.attempts").get(), 0);
    }

    #[test]
    fn metrics_record_batches_and_fanout() {
        let reg = MetricsRegistry::new();
        let obj = Noisy::new(Rosenbrock::new(2), ConstantNoise(1.0));
        let backend = ThreadedBackend::with_metrics(2, &reg);
        for _ in 0..3 {
            backend.extend_batch(jobs_at(&obj, 5));
        }
        assert_eq!(reg.counter("mw.backend.batches").get(), 3);
        assert_eq!(reg.counter("mw.backend.jobs").get(), 15);
        assert!(reg.counter("mw.backend.fanout_nanos").get() > 0);
        assert_eq!(reg.gauge("mw.backend.batch_size_hwm").max(), 5);
        // The underlying pool mirrored its own counters too. Under
        // `NSX_FAULTS` chaos runs, retries may add submissions beyond the
        // batch jobs, so this is a floor rather than an exact count.
        assert!(reg.counter("mw.pool.jobs_submitted").get() >= 15);
    }

    #[test]
    fn shared_backend_is_one_pool() {
        let a = ThreadedBackend::shared();
        let b = ThreadedBackend::shared();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(a.pool().n_workers() >= 1);
    }
}
