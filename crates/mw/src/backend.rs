//! The pool-backed sampling backend: batches of stream extensions fan out
//! over [`MwPool`] workers, supervised against worker loss.
//!
//! This implements the `stoch-eval` [`SamplingBackend`] seam with real
//! threads — the in-process analogue of the paper's master–worker
//! deployment (§3.1): the master (the optimizer engine) hands a round of
//! extensions to the backend, each extension runs on a worker, and the
//! master blocks until the whole round is back. Determinism is inherited
//! from the seam's contract: every stream owns its RNG, so the worker
//! schedule cannot change any result, and results are collected in
//! submission order so floating-point accounting sums identically to the
//! serial backend.
//!
//! # Fault tolerance (DESIGN.md §9)
//!
//! The backend keeps a master-side clone of every stream it ships. If a
//! worker dies mid-job (or a per-attempt timeout fires), the extension is
//! re-issued from the clone under the backend's [`RetryPolicy`] while the
//! pool's supervisor respawns workers; because the clone carries the RNG
//! state, a retried extension reproduces the lost one bit for bit. When the
//! pool permanently fails (respawn budget exhausted, no live workers) or a
//! job runs out of attempts, the remaining work executes inline on the
//! calling thread — the run *degrades to serial* instead of erroring, and
//! the backend reports it through [`SamplingBackend::degraded`] and the
//! `mw.backend.degraded` metric.
//!
//! Faults themselves come from the `NSX_FAULTS` environment variable (see
//! [`FaultPlan`]) for chaos testing, or programmatically via
//! [`ThreadedBackend::with_options`].
//!
//! # Straggler hedging (DESIGN.md §16)
//!
//! Dead workers are detected by channel disconnection, but a merely *slow*
//! worker stalls the whole rendezvoused batch. With hedging enabled
//! (`NSX_HEDGE=on`, or [`ThreadedBackend::with_hedge`]), a job whose
//! in-flight latency exceeds a quantile-tracked threshold — a
//! [`P2Quantile`] estimate over completed job latencies, scaled by the
//! policy's factor — is speculatively re-dispatched from its master-side
//! clone and the first answer wins. Both replicas extend identical RNG
//! state, so the race is between bit-identical results: hedging can only
//! ever buy tail latency, never change an answer. `mw.hedge.launched` and
//! `mw.hedge.wins` count launches and races won by the hedge.
//!
//! Do **not** wrap an [`MwObjective`](crate::objective::MwObjective) in a
//! `ThreadedBackend` over the *same* pool: its streams call back into the
//! pool from inside a worker job, which deadlocks once every worker is
//! occupied by a batch job. Use one or the other — the backend subsumes the
//! adapter for batch workloads.

use crate::faults::FaultPlan;
use crate::pool::{default_respawn_budget, JobHandle, MwPool, RetryPolicy, WorkerLost};
use crate::resilience::{HedgePolicy, P2Quantile};
use obs::{Counter, Gauge, MetricsRegistry};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};
use stoch_eval::backend::{SamplingBackend, StreamJob};
use stoch_eval::objective::SampleStream;

/// Fallback wake-up bound while a batch is in flight. Batch completion is
/// event-driven — the pool's completion notifier wakes the master the
/// moment any job resolves or a worker dies — so this only bounds how long
/// a *silent* stall (a wedged-but-alive worker) can defer a supervision
/// pass. It is not a completion-latency quantum.
const SUPERVISION_FALLBACK: Duration = Duration::from_millis(100);

/// Ship one extension job to the pool: the stream state moves to a worker,
/// extends there, and is handed back through the job handle.
///
/// This is the single stream-shipping primitive shared by the batch backend
/// and the per-stream [`MwStream`](crate::objective::MwStream) adapter.
pub(crate) fn ship_extend<S: SampleStream + 'static>(
    pool: &MwPool,
    mut job: StreamJob<S>,
) -> JobHandle<StreamJob<S>> {
    pool.submit(move |_worker| {
        job.stream.extend(job.dt);
        job
    })
}

/// Registry handles recorded per dispatched batch. Metric names:
/// `mw.backend.batches`, `mw.backend.jobs`, `mw.backend.fanout_nanos`,
/// `mw.backend.batch_size_hwm`, `mw.backend.busy_pct`, plus the
/// fault-tolerance series `mw.retry.attempts`, `mw.retry.timeouts`,
/// `mw.backend.degraded`, and the straggler-hedging series
/// `mw.hedge.launched`, `mw.hedge.wins`.
struct BackendObs {
    batches: Arc<Counter>,
    jobs: Arc<Counter>,
    fanout_nanos: Arc<Counter>,
    batch_size_hwm: Arc<Gauge>,
    busy_pct: Arc<Gauge>,
    retry_attempts: Arc<Counter>,
    retry_timeouts: Arc<Counter>,
    degraded: Arc<Counter>,
    hedge_launched: Arc<Counter>,
    hedge_wins: Arc<Counter>,
}

impl BackendObs {
    fn register(registry: &MetricsRegistry) -> Self {
        BackendObs {
            batches: registry.counter("mw.backend.batches"),
            jobs: registry.counter("mw.backend.jobs"),
            fanout_nanos: registry.counter("mw.backend.fanout_nanos"),
            batch_size_hwm: registry.gauge("mw.backend.batch_size_hwm"),
            busy_pct: registry.gauge("mw.backend.busy_pct"),
            retry_attempts: registry.counter("mw.retry.attempts"),
            retry_timeouts: registry.counter("mw.retry.timeouts"),
            degraded: registry.counter("mw.backend.degraded"),
            hedge_launched: registry.counter("mw.hedge.launched"),
            hedge_wins: registry.counter("mw.hedge.wins"),
        }
    }
}

/// A [`SamplingBackend`] that runs every job of a batch on an [`MwPool`]
/// worker and blocks until the round completes, surviving worker loss (see
/// the module docs for the fault model).
pub struct ThreadedBackend {
    pool: Arc<MwPool>,
    obs: Option<BackendObs>,
    retry: RetryPolicy,
    degraded: AtomicBool,
    /// Straggler-hedging policy (`NSX_HEDGE`, DESIGN.md §16). Off by
    /// default: hedging never changes results (first-wins over bit-identical
    /// replicas), only tail latency, so it is a pure opt-in.
    hedge: HedgePolicy,
    /// Online estimate of the hedge quantile over completed job latencies.
    latency: Mutex<P2Quantile>,
}

/// Worker count for the shared pool: `NSX_WORKERS` if set (≥ 1), otherwise
/// the machine's available hardware parallelism.
pub fn default_workers() -> usize {
    std::env::var("NSX_WORKERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

static SHARED: OnceLock<Arc<ThreadedBackend>> = OnceLock::new();

/// One in-flight batch entry: where the result goes, the master-side backup
/// to re-issue from, and the attempt bookkeeping.
struct Pending<S> {
    idx: usize,
    slot: usize,
    dt: f64,
    backup: S,
    handle: JobHandle<StreamJob<S>>,
    attempt: u32,
    /// A speculative second dispatch of the same extension, launched when
    /// the primary overran the hedge threshold. Both replicas extend the
    /// identical RNG state, so whichever answers first is THE result.
    hedge: Option<JobHandle<StreamJob<S>>>,
}

impl ThreadedBackend {
    /// Spawn a dedicated supervised pool of `n_workers` threads for this
    /// backend, with fault injection taken from the `NSX_FAULTS`
    /// environment variable (none when unset).
    pub fn new(n_workers: usize) -> Self {
        Self::with_options(
            n_workers,
            FaultPlan::from_env(),
            RetryPolicy::default(),
            default_respawn_budget(n_workers),
            None,
        )
    }

    /// Run batches over an existing pool (no env fault injection — the pool
    /// was configured by its owner).
    pub fn over(pool: Arc<MwPool>) -> Self {
        let hedge = HedgePolicy::from_env();
        ThreadedBackend {
            pool,
            obs: None,
            retry: RetryPolicy::default(),
            degraded: AtomicBool::new(false),
            hedge,
            latency: Mutex::new(P2Quantile::new(hedge.quantile)),
        }
    }

    /// Like [`ThreadedBackend::new`], with per-batch run accounting
    /// mirrored into `registry` (`mw.backend.*`: batches, jobs, fan-out
    /// latency, batch-size high-water mark, worker busy fraction, and the
    /// fault-tolerance counters).
    pub fn with_metrics(n_workers: usize, registry: &MetricsRegistry) -> Self {
        Self::with_options(
            n_workers,
            FaultPlan::from_env(),
            RetryPolicy::default(),
            default_respawn_budget(n_workers),
            Some(registry),
        )
    }

    /// Full-control constructor: worker count, programmatic fault plan,
    /// retry policy, worker-respawn budget, and optional metrics registry.
    pub fn with_options(
        n_workers: usize,
        faults: FaultPlan,
        retry: RetryPolicy,
        respawn_budget: u64,
        registry: Option<&MetricsRegistry>,
    ) -> Self {
        let hedge = HedgePolicy::from_env();
        ThreadedBackend {
            pool: Arc::new(MwPool::with_options(
                n_workers,
                faults,
                respawn_budget,
                registry,
            )),
            obs: registry.map(BackendObs::register),
            retry,
            degraded: AtomicBool::new(false),
            hedge,
            latency: Mutex::new(P2Quantile::new(hedge.quantile)),
        }
    }

    /// Replace the hedging policy (builder style). The environment default
    /// (`NSX_HEDGE`, off when unset) is read at construction; exhibits and
    /// tests use this to force a specific policy programmatically.
    pub fn with_hedge(mut self, hedge: HedgePolicy) -> Self {
        self.hedge = hedge;
        self.latency = Mutex::new(P2Quantile::new(hedge.quantile));
        self
    }

    /// The active hedging policy.
    pub fn hedge_policy(&self) -> HedgePolicy {
        self.hedge
    }

    /// The process-wide shared backend, sized by [`default_workers`] on
    /// first use. Engines constructed with an auto-sized threaded backend
    /// all share this pool, so repeated runs do not respawn threads.
    pub fn shared() -> Arc<ThreadedBackend> {
        Arc::clone(SHARED.get_or_init(|| Arc::new(ThreadedBackend::new(default_workers()))))
    }

    /// The underlying worker pool.
    pub fn pool(&self) -> &Arc<MwPool> {
        &self.pool
    }

    /// The backend's retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Record the transition into degraded (inline) execution exactly once.
    fn note_degraded(&self) {
        if !self.degraded.swap(true, Ordering::SeqCst) {
            if let Some(o) = &self.obs {
                o.degraded.inc();
            }
        }
    }

    /// Feed a completed job's dispatch-to-result latency to the hedge
    /// quantile estimator (no-op with hedging off).
    fn observe_latency(&self, d: Duration) {
        if !self.hedge.enabled {
            return;
        }
        let mut est = match self.latency.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        est.observe(d.as_secs_f64());
    }

    /// The in-flight age beyond which a job should be hedged *right now*,
    /// from the current quantile estimate; `None` while hedging is off or
    /// the estimator is still warming up.
    fn hedge_after(&self) -> Option<Duration> {
        if !self.hedge.enabled {
            return None;
        }
        let est = match self.latency.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        self.hedge.hedge_after(est.count(), est.estimate())
    }

    /// Re-issue a lost/expired job if attempts and workers remain;
    /// otherwise run it inline (degradation at single-job granularity —
    /// the batch still completes with correct results).
    fn retry_or_inline<S: SampleStream + 'static>(
        &self,
        p: Pending<S>,
        pending: &mut VecDeque<Pending<S>>,
        out: &mut [Option<StreamJob<S>>],
    ) {
        let next_attempt = p.attempt + 1;
        if next_attempt <= self.retry.max_attempts && !self.pool.is_failed() {
            if let Some(o) = &self.obs {
                o.retry_attempts.inc();
            }
            let backoff = self.retry.backoff_before(next_attempt);
            if !backoff.is_zero() {
                std::thread::sleep(backoff);
            }
            let handle = ship_extend(
                &self.pool,
                StreamJob {
                    slot: p.slot,
                    dt: p.dt,
                    stream: p.backup.clone(),
                },
            );
            // The fresh handle re-anchors the attempt clock at dispatch.
            pending.push_back(Pending {
                handle,
                attempt: next_attempt,
                ..p
            });
        } else {
            let mut stream = p.backup;
            stream.extend(p.dt);
            out[p.idx] = Some(StreamJob {
                slot: p.slot,
                dt: p.dt,
                stream,
            });
        }
    }

    /// Run the whole batch inline (serial fallback).
    fn extend_inline<S: SampleStream>(mut jobs: Vec<StreamJob<S>>) -> Vec<StreamJob<S>> {
        for job in &mut jobs {
            job.stream.extend(job.dt);
        }
        jobs
    }

    fn record_batch(&self, n_jobs: usize, fanout: std::time::Duration) {
        let Some(o) = &self.obs else { return };
        o.batches.inc();
        o.jobs.add(n_jobs as u64);
        o.fanout_nanos.add(fanout.as_nanos() as u64);
        o.batch_size_hwm.record(n_jobs as u64);
        let busy: f64 = self.pool.busy_seconds().iter().sum();
        let idle: f64 = self.pool.idle_seconds().iter().sum();
        if busy + idle > 0.0 {
            o.busy_pct.record((100.0 * busy / (busy + idle)) as u64);
        }
    }
}

impl<S: SampleStream + 'static> SamplingBackend<S> for ThreadedBackend {
    fn extend_batch(&self, jobs: Vec<StreamJob<S>>) -> Vec<StreamJob<S>> {
        let n = jobs.len();
        let t0 = Instant::now();
        if self.degraded.load(Ordering::SeqCst) || self.pool.is_failed() {
            self.note_degraded();
            let done = Self::extend_inline(jobs);
            self.record_batch(n, t0.elapsed());
            return done;
        }
        // Submit everything before waiting on anything, keeping a
        // master-side backup of each stream; collect in submission order
        // (the seam's ordering contract; completion order is whatever the
        // workers make of it).
        let mut out: Vec<Option<StreamJob<S>>> = (0..n).map(|_| None).collect();
        let mut pending: VecDeque<Pending<S>> = jobs
            .into_iter()
            .enumerate()
            .map(|(idx, job)| Pending {
                idx,
                slot: job.slot,
                dt: job.dt,
                backup: job.stream.clone(),
                handle: ship_extend(&self.pool, job),
                attempt: 1,
                hedge: None,
            })
            .collect();
        while !pending.is_empty() {
            // Snapshot the completion generation BEFORE scanning: a result
            // that lands mid-scan bumps past this snapshot, so the wait at
            // the bottom returns immediately instead of sleeping through
            // the wakeup.
            let seen = self.pool.completion_generation();
            // One hedge-threshold read per scan pass: the estimate moves
            // with completions, not mid-scan.
            let hedge_after = self.hedge_after();
            let mut still: VecDeque<Pending<S>> = VecDeque::with_capacity(pending.len());
            while let Some(mut p) = pending.pop_front() {
                match p.handle.try_recv() {
                    Ok(Some(job)) => {
                        // Primary answered (possibly beating its hedge: the
                        // straggling replica is simply dropped — both carry
                        // identical bits, so first-wins loses nothing).
                        self.observe_latency(p.handle.elapsed());
                        out[p.idx] = Some(job);
                    }
                    Ok(None) => {
                        // A hedge launched earlier may have won the race.
                        if let Some(h) = &p.hedge {
                            match h.try_recv() {
                                Ok(Some(job)) => {
                                    self.observe_latency(h.elapsed());
                                    if let Some(o) = &self.obs {
                                        o.hedge_wins.inc();
                                    }
                                    out[p.idx] = Some(job);
                                    continue;
                                }
                                Ok(None) => {}
                                // A dead hedge is no worse than no hedge.
                                Err(WorkerLost) => p.hedge = None,
                            }
                        }
                        // Attempt age is measured from dispatch (the
                        // handle's clock), not from when this scan happens
                        // to reach the job.
                        if self
                            .retry
                            .timeout
                            .is_some_and(|limit| p.handle.elapsed() >= limit)
                        {
                            // The attempt overran its budget: abandon the
                            // handle (a straggling result is ignored) and
                            // re-issue from the backup.
                            if let Some(o) = &self.obs {
                                o.retry_timeouts.inc();
                            }
                            self.retry_or_inline(p, &mut still, &mut out);
                        } else {
                            // Straggler past the quantile-tracked threshold:
                            // speculatively re-dispatch the identical stream
                            // clone to a second worker (DESIGN.md §16).
                            if p.hedge.is_none()
                                && hedge_after.is_some_and(|after| p.handle.elapsed() >= after)
                            {
                                if let Some(o) = &self.obs {
                                    o.hedge_launched.inc();
                                }
                                p.hedge = Some(ship_extend(
                                    &self.pool,
                                    StreamJob {
                                        slot: p.slot,
                                        dt: p.dt,
                                        stream: p.backup.clone(),
                                    },
                                ));
                            }
                            still.push_back(p);
                        }
                    }
                    Err(WorkerLost) => {
                        // Reap/respawn before re-issuing so the retry lands
                        // on a live worker where possible.
                        self.pool.supervise();
                        if self.pool.is_failed() {
                            self.note_degraded();
                        }
                        if let Some(h) = p.hedge.take() {
                            // The in-flight hedge replica already carries
                            // this extension: promote it to primary instead
                            // of burning a retry attempt.
                            p.handle = h;
                            still.push_back(p);
                        } else {
                            self.retry_or_inline(p, &mut still, &mut out);
                        }
                    }
                }
            }
            pending = still;
            if pending.is_empty() {
                break;
            }
            // A supervision pass each round keeps dead-worker detection
            // bounded even when nothing completes.
            self.pool.supervise();
            if self.pool.is_failed() {
                // Respawn budget exhausted with no live workers: degrade —
                // finish everything still pending inline. Queued handles
                // would error anyway (the failed pool drained them); the
                // backups make the results whole.
                self.note_degraded();
                let mut sink = VecDeque::new();
                while let Some(p) = pending.pop_front() {
                    // is_failed() makes retry_or_inline run inline.
                    self.retry_or_inline(p, &mut sink, &mut out);
                }
                debug_assert!(sink.is_empty(), "failed pool must not re-queue");
                break;
            }
            // Sleep until a completion event, the earliest per-attempt or
            // hedge-launch deadline, or the supervision fallback —
            // whichever is first.
            let mut wait = SUPERVISION_FALLBACK;
            if let Some(limit) = self.retry.timeout {
                for p in &pending {
                    wait = wait.min(limit.saturating_sub(p.handle.elapsed()));
                }
            }
            if let Some(after) = self.hedge_after() {
                for p in pending.iter().filter(|p| p.hedge.is_none()) {
                    wait = wait.min(after.saturating_sub(p.handle.elapsed()));
                }
            }
            if !wait.is_zero() {
                self.pool.wait_for_completion(seen, wait);
            }
        }
        let done: Vec<StreamJob<S>> = out
            .into_iter()
            .map(|o| o.unwrap_or_else(|| panic!("MW backend dropped a batch slot")))
            .collect();
        self.record_batch(n, t0.elapsed());
        done
    }

    fn name(&self) -> &'static str {
        "threaded"
    }

    fn degraded(&self) -> bool {
        self.degraded.load(Ordering::SeqCst) || self.pool.is_failed()
    }

    fn pool_token(&self) -> Option<usize> {
        Some(Arc::as_ptr(&self.pool) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stoch_eval::backend::SerialBackend;
    use stoch_eval::functions::Rosenbrock;
    use stoch_eval::noise::ConstantNoise;
    use stoch_eval::objective::StochasticObjective;
    use stoch_eval::sampler::Noisy;

    fn jobs_at(
        obj: &Noisy<Rosenbrock, ConstantNoise>,
        n: usize,
    ) -> Vec<StreamJob<<Noisy<Rosenbrock, ConstantNoise> as StochasticObjective>::Stream>> {
        (0..n)
            .map(|i| StreamJob {
                slot: i,
                dt: 1.0 + i as f64,
                stream: obj.open(&[i as f64, 0.5], 100 + i as u64),
            })
            .collect()
    }

    fn assert_batches_identical<S: SampleStream>(a: &[StreamJob<S>], b: &[StreamJob<S>]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.slot, y.slot);
            assert_eq!(x.dt, y.dt);
            let (ea, eb) = (x.stream.estimate(), y.stream.estimate());
            assert_eq!(ea.value, eb.value);
            assert_eq!(ea.std_err, eb.std_err);
            assert_eq!(ea.time, eb.time);
        }
    }

    #[test]
    fn threaded_matches_serial_bit_for_bit() {
        let obj = Noisy::new(Rosenbrock::new(2), ConstantNoise(5.0));
        let serial = SerialBackend.extend_batch(jobs_at(&obj, 6));
        let threaded = ThreadedBackend::new(3).extend_batch(jobs_at(&obj, 6));
        assert_batches_identical(&serial, &threaded);
    }

    #[test]
    fn batch_returns_in_submission_order() {
        let obj = Noisy::new(Rosenbrock::new(2), ConstantNoise(1.0));
        let backend = ThreadedBackend::new(4);
        for _ in 0..20 {
            let done = backend.extend_batch(jobs_at(&obj, 8));
            let slots: Vec<usize> = done.iter().map(|j| j.slot).collect();
            assert_eq!(slots, (0..8).collect::<Vec<_>>());
        }
    }

    #[test]
    fn retry_recovers_from_worker_death_bit_for_bit() {
        let obj = Noisy::new(Rosenbrock::new(2), ConstantNoise(3.0));
        let serial = SerialBackend.extend_batch(jobs_at(&obj, 12));
        // Worker 0 dies after one job; supervision respawns it and the lost
        // extension is retried from the master-side backup.
        let backend = ThreadedBackend::with_options(
            2,
            FaultPlan::none().kill(0, 1),
            RetryPolicy::default(),
            default_respawn_budget(2),
            None,
        );
        let threaded = backend.extend_batch(jobs_at(&obj, 12));
        assert_batches_identical(&serial, &threaded);
        assert!(!SamplingBackend::<
            <Noisy<Rosenbrock, ConstantNoise> as StochasticObjective>::Stream,
        >::degraded(&backend));
    }

    #[test]
    fn drop_result_fault_is_retried_identically() {
        let obj = Noisy::new(Rosenbrock::new(2), ConstantNoise(3.0));
        let serial = SerialBackend.extend_batch(jobs_at(&obj, 8));
        let backend = ThreadedBackend::with_options(
            2,
            FaultPlan::none().drop_result(0, 2),
            RetryPolicy::default(),
            default_respawn_budget(2),
            None,
        );
        let threaded = backend.extend_batch(jobs_at(&obj, 8));
        assert_batches_identical(&serial, &threaded);
    }

    #[test]
    fn exhausted_pool_degrades_to_serial_within_bounded_time() {
        // The sole worker dies immediately and there is no respawn budget:
        // the batch must still complete (inline), promptly, with results
        // identical to the serial backend — and report degradation.
        let reg = MetricsRegistry::new();
        let obj = Noisy::new(Rosenbrock::new(2), ConstantNoise(2.0));
        let serial = SerialBackend.extend_batch(jobs_at(&obj, 6));
        let backend = ThreadedBackend::with_options(
            1,
            FaultPlan::none().kill(0, 0),
            RetryPolicy::default(),
            0,
            Some(&reg),
        );
        let t0 = Instant::now();
        let threaded = backend.extend_batch(jobs_at(&obj, 6));
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "degradation must be bounded, took {:?}",
            t0.elapsed()
        );
        assert_batches_identical(&serial, &threaded);
        assert!(SamplingBackend::<
            <Noisy<Rosenbrock, ConstantNoise> as StochasticObjective>::Stream,
        >::degraded(&backend));
        assert!(reg.counter("mw.backend.degraded").get() >= 1);
        // Later batches keep working, inline.
        let again = backend.extend_batch(jobs_at(&obj, 6));
        assert_batches_identical(&serial, &again);
    }

    #[test]
    fn per_attempt_timeout_fires_and_results_stay_identical() {
        let reg = MetricsRegistry::new();
        let obj = Noisy::new(Rosenbrock::new(2), ConstantNoise(1.0));
        let serial = SerialBackend.extend_batch(jobs_at(&obj, 2));
        // Every job on the sole worker is delayed 60ms but the per-attempt
        // budget is 10ms: the master gives up on the straggler, retries,
        // and eventually falls back inline. Slowness must cost time only,
        // never correctness.
        let backend = ThreadedBackend::with_options(
            1,
            FaultPlan::none().delay(0, 0, 60),
            RetryPolicy {
                max_attempts: 2,
                timeout: Some(Duration::from_millis(10)),
                backoff: Duration::ZERO,
            },
            default_respawn_budget(1),
            Some(&reg),
        );
        let threaded = backend.extend_batch(jobs_at(&obj, 2));
        assert_batches_identical(&serial, &threaded);
        assert!(reg.counter("mw.retry.timeouts").get() >= 1);
    }

    #[test]
    fn attempt_deadlines_do_not_fire_on_healthy_runs() {
        // Contract for `mw.retry.timeouts`: the per-attempt clock starts at
        // dispatch and a healthy worker answering within budget must never
        // trip it — regardless of how the master's scan loop is scheduled.
        let reg = MetricsRegistry::new();
        let obj = Noisy::new(Rosenbrock::new(2), ConstantNoise(1.0));
        let backend = ThreadedBackend::with_options(
            2,
            FaultPlan::none(),
            RetryPolicy {
                max_attempts: 4,
                timeout: Some(Duration::from_secs(30)),
                backoff: Duration::ZERO,
            },
            default_respawn_budget(2),
            Some(&reg),
        );
        for _ in 0..5 {
            backend.extend_batch(jobs_at(&obj, 8));
        }
        assert_eq!(reg.counter("mw.retry.timeouts").get(), 0);
        assert_eq!(reg.counter("mw.retry.attempts").get(), 0);
    }

    #[test]
    fn hedged_dispatch_stays_bit_identical_and_records_wins() {
        let reg = MetricsRegistry::new();
        let obj = Noisy::new(Rosenbrock::new(2), ConstantNoise(2.0));
        // Worker 0 sleeps 50ms on every job — a permanent straggler. An
        // aggressive hedge policy re-dispatches its jobs to the healthy
        // worker 1, and every batch must stay bit-identical to serial.
        let backend = ThreadedBackend::with_options(
            2,
            FaultPlan::none().delay(0, 0, 50),
            RetryPolicy::default(),
            default_respawn_budget(2),
            Some(&reg),
        )
        .with_hedge(HedgePolicy::parse("on:q=0.5:factor=1:min_ms=5:warmup=5").unwrap());
        for _ in 0..5 {
            let serial = SerialBackend.extend_batch(jobs_at(&obj, 8));
            let hedged = backend.extend_batch(jobs_at(&obj, 8));
            assert_batches_identical(&serial, &hedged);
        }
        assert!(
            reg.counter("mw.hedge.launched").get() >= 1,
            "straggler never triggered a hedge"
        );
        assert!(
            reg.counter("mw.hedge.wins").get() >= 1,
            "no hedge ever won its race"
        );
        // Hedging is not retrying: a healthy-but-slow worker must not burn
        // retry attempts or timeouts.
        assert_eq!(reg.counter("mw.retry.attempts").get(), 0);
        assert_eq!(reg.counter("mw.retry.timeouts").get(), 0);
    }

    #[test]
    fn metrics_record_batches_and_fanout() {
        let reg = MetricsRegistry::new();
        let obj = Noisy::new(Rosenbrock::new(2), ConstantNoise(1.0));
        let backend = ThreadedBackend::with_metrics(2, &reg);
        for _ in 0..3 {
            backend.extend_batch(jobs_at(&obj, 5));
        }
        assert_eq!(reg.counter("mw.backend.batches").get(), 3);
        assert_eq!(reg.counter("mw.backend.jobs").get(), 15);
        assert!(reg.counter("mw.backend.fanout_nanos").get() > 0);
        assert_eq!(reg.gauge("mw.backend.batch_size_hwm").max(), 5);
        // The underlying pool mirrored its own counters too. Under
        // `NSX_FAULTS` chaos runs, retries may add submissions beyond the
        // batch jobs, so this is a floor rather than an exact count.
        assert!(reg.counter("mw.pool.jobs_submitted").get() >= 15);
    }

    #[test]
    fn shared_backend_is_one_pool() {
        let a = ThreadedBackend::shared();
        let b = ThreadedBackend::shared();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(a.pool().n_workers() >= 1);
    }
}
