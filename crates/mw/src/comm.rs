//! The `MWRMComm`-style message layer (§3.1): explicit `pack`/`unpack` of
//! task data into byte buffers and tagged `send`/`recv` between master and
//! workers.
//!
//! The original MW exposes virtual functions
//! `pack(array, size)` / `unpack(array, size)` /
//! `send(to_whom, message_tag)` / `recv(from_whom, message_tag)` over
//! sockets, file I/O, Condor/PVM, or MPI. Here the wire is an in-process
//! channel, but the programming model is preserved: values cross the
//! master/worker boundary only as packed byte messages with (peer, tag)
//! addressing. This is what "shipping a vertex to a worker" costs in the
//! real system, and the `bench_mw` benchmarks measure it.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use crossbeam_channel::{unbounded, Receiver, Sender};
use obs::{Counter, MetricsRegistry};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;

/// Errors raised by the message layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// The buffer ended before the value was fully decoded.
    Truncated,
    /// The peer hung up.
    Disconnected,
    /// A value failed validation while unpacking.
    Malformed(&'static str),
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Truncated => write!(f, "message truncated"),
            CommError::Disconnected => write!(f, "peer disconnected"),
            CommError::Malformed(what) => write!(f, "malformed message: {what}"),
        }
    }
}

impl std::error::Error for CommError {}

/// A value that can cross the master/worker boundary as bytes.
pub trait Packable: Sized {
    /// Append this value's encoding to `buf`.
    fn pack(&self, buf: &mut BytesMut);
    /// Decode a value from the front of `buf`.
    fn unpack(buf: &mut Bytes) -> Result<Self, CommError>;
}

impl Packable for u64 {
    fn pack(&self, buf: &mut BytesMut) {
        buf.put_u64_le(*self);
    }
    fn unpack(buf: &mut Bytes) -> Result<Self, CommError> {
        if buf.remaining() < 8 {
            return Err(CommError::Truncated);
        }
        Ok(buf.get_u64_le())
    }
}

impl Packable for f64 {
    fn pack(&self, buf: &mut BytesMut) {
        buf.put_f64_le(*self);
    }
    fn unpack(buf: &mut Bytes) -> Result<Self, CommError> {
        if buf.remaining() < 8 {
            return Err(CommError::Truncated);
        }
        Ok(buf.get_f64_le())
    }
}

impl Packable for bool {
    fn pack(&self, buf: &mut BytesMut) {
        buf.put_u8(u8::from(*self));
    }
    fn unpack(buf: &mut Bytes) -> Result<Self, CommError> {
        if buf.remaining() < 1 {
            return Err(CommError::Truncated);
        }
        match buf.get_u8() {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CommError::Malformed("bool")),
        }
    }
}

impl<T: Packable> Packable for Vec<T> {
    fn pack(&self, buf: &mut BytesMut) {
        (self.len() as u64).pack(buf);
        for x in self {
            x.pack(buf);
        }
    }
    fn unpack(buf: &mut Bytes) -> Result<Self, CommError> {
        let n = u64::unpack(buf)? as usize;
        // Cheap sanity bound so a corrupt length cannot OOM us.
        if n > buf.remaining() {
            return Err(CommError::Malformed("vec length"));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::unpack(buf)?);
        }
        Ok(out)
    }
}

impl Packable for String {
    fn pack(&self, buf: &mut BytesMut) {
        let b = self.as_bytes();
        (b.len() as u64).pack(buf);
        buf.put_slice(b);
    }
    fn unpack(buf: &mut Bytes) -> Result<Self, CommError> {
        let n = u64::unpack(buf)? as usize;
        if buf.remaining() < n {
            return Err(CommError::Truncated);
        }
        let raw = buf.copy_to_bytes(n);
        String::from_utf8(raw.to_vec()).map_err(|_| CommError::Malformed("utf8"))
    }
}

/// Pack a value into a fresh message buffer.
pub fn pack_message<T: Packable>(value: &T) -> Bytes {
    let mut buf = BytesMut::new();
    value.pack(&mut buf);
    buf.freeze()
}

/// Unpack a full message into a value.
pub fn unpack_message<T: Packable>(mut msg: Bytes) -> Result<T, CommError> {
    let v = T::unpack(&mut msg)?;
    if msg.has_remaining() {
        return Err(CommError::Malformed("trailing bytes"));
    }
    Ok(v)
}

/// One tagged message on the wire.
#[derive(Debug, Clone)]
pub struct Message {
    /// Sender rank.
    pub from: usize,
    /// Application tag (the MW `message_tag`).
    pub tag: u32,
    /// Packed payload.
    pub payload: Bytes,
}

/// Registry handles for the wire accounting of one endpoint. Shared metric
/// names (all endpoints of a network accumulate into the same counters):
/// `mw.comm.bytes_packed`, `mw.comm.bytes_unpacked`,
/// `mw.comm.messages_sent`, `mw.comm.messages_received`, and per tag `t`
/// `mw.comm.tag{t}.sent` / `mw.comm.tag{t}.received`.
struct CommObs {
    registry: MetricsRegistry,
    bytes_packed: Arc<Counter>,
    bytes_unpacked: Arc<Counter>,
    messages_sent: Arc<Counter>,
    messages_received: Arc<Counter>,
}

impl CommObs {
    fn register(registry: &MetricsRegistry) -> Self {
        CommObs {
            registry: registry.clone(),
            bytes_packed: registry.counter("mw.comm.bytes_packed"),
            bytes_unpacked: registry.counter("mw.comm.bytes_unpacked"),
            messages_sent: registry.counter("mw.comm.messages_sent"),
            messages_received: registry.counter("mw.comm.messages_received"),
        }
    }

    fn on_send(&self, tag: u32, payload_len: usize) {
        self.messages_sent.inc();
        self.bytes_packed.add(payload_len as u64);
        // Tag cardinality is tiny (MW protocols use a handful of tags), so
        // the registry lookup per message is acceptable here.
        self.registry
            .counter(&format!("mw.comm.tag{tag}.sent"))
            .inc();
    }

    fn on_recv(&self, tag: u32, payload_len: usize) {
        self.messages_received.inc();
        self.bytes_unpacked.add(payload_len as u64);
        self.registry
            .counter(&format!("mw.comm.tag{tag}.received"))
            .inc();
    }
}

/// One endpoint of a fully-connected rank topology (rank 0 = master).
pub struct Endpoint {
    rank: usize,
    peers: HashMap<usize, Sender<Message>>,
    inbox: Receiver<Message>,
    /// Messages received but not yet matched by a selective `recv`.
    stash: VecDeque<Message>,
    obs: Option<CommObs>,
}

impl Endpoint {
    /// This endpoint's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Mirror this endpoint's wire accounting (messages and payload bytes,
    /// total and per tag) into `registry`.
    pub fn attach_metrics(&mut self, registry: &MetricsRegistry) {
        self.obs = Some(CommObs::register(registry));
    }

    /// Pack `value` and send it to `to_whom` with `message_tag`.
    pub fn send<T: Packable>(
        &self,
        to_whom: usize,
        message_tag: u32,
        value: &T,
    ) -> Result<(), CommError> {
        let tx = self
            .peers
            .get(&to_whom)
            .ok_or(CommError::Malformed("unknown peer"))?;
        let payload = pack_message(value);
        if let Some(o) = &self.obs {
            o.on_send(message_tag, payload.len());
        }
        tx.send(Message {
            from: self.rank,
            tag: message_tag,
            payload,
        })
        .map_err(|_| CommError::Disconnected)
    }

    /// Receive the next message matching `(from_whom, message_tag)`
    /// (`None` matches anything), blocking. Non-matching messages are
    /// stashed and delivered to later matching `recv`s in order.
    pub fn recv<T: Packable>(
        &mut self,
        from_whom: Option<usize>,
        message_tag: Option<u32>,
    ) -> Result<(usize, T), CommError> {
        let matches = |m: &Message| {
            from_whom.map(|f| m.from == f).unwrap_or(true)
                && message_tag.map(|t| m.tag == t).unwrap_or(true)
        };
        if let Some(idx) = self.stash.iter().position(matches) {
            let Some(m) = self.stash.remove(idx) else {
                unreachable!("stash index came from position()")
            };
            if let Some(o) = &self.obs {
                o.on_recv(m.tag, m.payload.len());
            }
            return Ok((m.from, unpack_message(m.payload)?));
        }
        loop {
            let m = self.inbox.recv().map_err(|_| CommError::Disconnected)?;
            if matches(&m) {
                if let Some(o) = &self.obs {
                    o.on_recv(m.tag, m.payload.len());
                }
                return Ok((m.from, unpack_message(m.payload)?));
            }
            self.stash.push_back(m);
        }
    }
}

/// Build a fully-connected set of `n` endpoints (rank 0 is the master).
pub fn network(n: usize) -> Vec<Endpoint> {
    assert!(n >= 2);
    let channels: Vec<(Sender<Message>, Receiver<Message>)> = (0..n).map(|_| unbounded()).collect();
    (0..n)
        .map(|rank| Endpoint {
            rank,
            peers: channels
                .iter()
                .enumerate()
                .map(|(r, (tx, _))| (r, tx.clone()))
                .collect(),
            inbox: channels[rank].1.clone(),
            stash: VecDeque::new(),
            obs: None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for v in [0u64, 1, u64::MAX] {
            assert_eq!(unpack_message::<u64>(pack_message(&v)).unwrap(), v);
        }
        for v in [0.0f64, -1.5, f64::MAX, f64::MIN_POSITIVE] {
            assert_eq!(unpack_message::<f64>(pack_message(&v)).unwrap(), v);
        }
        assert!(unpack_message::<bool>(pack_message(&true)).unwrap());
    }

    #[test]
    fn vec_and_string_roundtrip() {
        let v = vec![1.0f64, -2.5, 3.25];
        assert_eq!(unpack_message::<Vec<f64>>(pack_message(&v)).unwrap(), v);
        let s = "θ = (ε, σ, q_H)".to_string();
        assert_eq!(unpack_message::<String>(pack_message(&s)).unwrap(), s);
        let nested = vec![vec![1u64, 2], vec![], vec![3]];
        assert_eq!(
            unpack_message::<Vec<Vec<u64>>>(pack_message(&nested)).unwrap(),
            nested
        );
    }

    #[test]
    fn truncated_and_trailing_are_rejected() {
        let mut whole = pack_message(&vec![1.0f64, 2.0]);
        let short = whole.split_to(whole.len() - 4);
        assert!(unpack_message::<Vec<f64>>(short).is_err());
        let mut buf = BytesMut::new();
        1.0f64.pack(&mut buf);
        2.0f64.pack(&mut buf);
        assert_eq!(
            unpack_message::<f64>(buf.freeze()),
            Err(CommError::Malformed("trailing bytes"))
        );
    }

    #[test]
    fn corrupt_length_does_not_allocate() {
        let mut buf = BytesMut::new();
        u64::MAX.pack(&mut buf);
        assert!(matches!(
            unpack_message::<Vec<f64>>(buf.freeze()),
            Err(CommError::Malformed(_))
        ));
    }

    #[test]
    fn master_worker_echo_over_the_network() {
        let mut eps = network(3);
        let mut w2 = eps.pop().unwrap();
        let mut w1 = eps.pop().unwrap();
        let mut master = eps.pop().unwrap();

        let h1 = std::thread::spawn(move || {
            let (from, x): (usize, Vec<f64>) = w1.recv(Some(0), Some(7)).unwrap();
            assert_eq!(from, 0);
            let sum: f64 = x.iter().sum();
            w1.send(0, 8, &sum).unwrap();
        });
        let h2 = std::thread::spawn(move || {
            let (_, x): (usize, Vec<f64>) = w2.recv(Some(0), Some(7)).unwrap();
            let sum: f64 = x.iter().sum();
            w2.send(0, 8, &sum).unwrap();
        });

        master.send(1, 7, &vec![1.0f64, 2.0, 3.0]).unwrap();
        master.send(2, 7, &vec![10.0f64, 20.0]).unwrap();
        let (_, a): (usize, f64) = master.recv(Some(1), Some(8)).unwrap();
        let (_, b): (usize, f64) = master.recv(Some(2), Some(8)).unwrap();
        assert_eq!(a, 6.0);
        assert_eq!(b, 30.0);
        h1.join().unwrap();
        h2.join().unwrap();
    }

    #[test]
    fn wire_metrics_count_messages_and_bytes_by_tag() {
        let reg = obs::MetricsRegistry::new();
        let mut eps = network(2);
        let mut w = eps.pop().unwrap();
        let mut master = eps.pop().unwrap();
        master.attach_metrics(&reg);
        w.attach_metrics(&reg);

        let payload = vec![1.0f64, 2.0, 3.0]; // 8 (len) + 3*8 = 32 bytes
        master.send(1, 7, &payload).unwrap();
        let (_, got): (usize, Vec<f64>) = w.recv(Some(0), Some(7)).unwrap();
        assert_eq!(got, payload);
        w.send(0, 8, &6.0f64).unwrap();
        let (_, _sum): (usize, f64) = master.recv(Some(1), Some(8)).unwrap();

        assert_eq!(reg.counter("mw.comm.messages_sent").get(), 2);
        assert_eq!(reg.counter("mw.comm.messages_received").get(), 2);
        assert_eq!(reg.counter("mw.comm.bytes_packed").get(), 32 + 8);
        assert_eq!(reg.counter("mw.comm.bytes_unpacked").get(), 32 + 8);
        assert_eq!(reg.counter("mw.comm.tag7.sent").get(), 1);
        assert_eq!(reg.counter("mw.comm.tag7.received").get(), 1);
        assert_eq!(reg.counter("mw.comm.tag8.sent").get(), 1);
        assert_eq!(reg.counter("mw.comm.tag8.received").get(), 1);
    }

    #[test]
    fn selective_recv_stashes_non_matching_messages() {
        let mut eps = network(2);
        let w = eps.pop().unwrap();
        let mut master = eps.pop().unwrap();
        w.send(0, 1, &10u64).unwrap();
        w.send(0, 2, &20u64).unwrap();
        w.send(0, 1, &30u64).unwrap();
        // Ask for tag 2 first: the two tag-1 messages get stashed.
        let (_, twenty): (usize, u64) = master.recv(None, Some(2)).unwrap();
        assert_eq!(twenty, 20);
        let (_, ten): (usize, u64) = master.recv(None, Some(1)).unwrap();
        let (_, thirty): (usize, u64) = master.recv(None, Some(1)).unwrap();
        assert_eq!((ten, thirty), (10, 30));
    }
}
