//! `mw-framework` — an in-process reproduction of the MW master–worker
//! framework the paper builds on (Linderoth et al., Univ. of Wisconsin),
//! including the extra hierarchy level the paper adds: each worker fronts a
//! *server* that fans out to `Ns` *client* simulations (Figs 3.1–3.2, 4.3).
//!
//! The paper's deployment uses MPI ranks on a cluster; here workers are OS
//! threads fed over `crossbeam` channels (see `DESIGN.md` — substitutions).
//! The communication topology is preserved: tasks and workers never talk to
//! each other, only to the master; clients only to their server.
//!
//! * [`alloc`] — the processor-allocation arithmetic of Table 3.3.
//! * [`pool`] — the raw worker pool (spawn/submit/call/stats).
//! * [`task`] — the structured `MwTask`/`MwDriver`/`WorkerCtx` layer with
//!   the server→clients fan-out.
//! * [`objective`] — an adapter that runs any `StochasticObjective`'s
//!   sampling on MW workers, so the optimizers in `noisy-simplex` can be
//!   deployed on the pool unchanged.
//! * [`scaleup`] — the §3.4 scale-up experiment (Rosenbrock in 20/50/100
//!   dimensions, wall-clock time per simplex step).

#![warn(missing_docs)]

pub mod alloc;
pub mod comm;
pub mod objective;
pub mod pool;
pub mod scaleup;
pub mod task;

pub use alloc::Allocation;
pub use comm::{network, CommError, Endpoint, Message, Packable};
pub use objective::{MwObjective, MwStream};
pub use pool::{JobHandle, MwPool, WorkerStats};
pub use scaleup::{scaleup_rosenbrock, ScaleupPoint, ScaleupResult, VertexEvalTask};
pub use task::{MwDriver, MwTask, WorkerCtx};
