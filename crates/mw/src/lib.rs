//! `mw-framework` — an in-process reproduction of the MW master–worker
//! framework the paper builds on (Linderoth et al., Univ. of Wisconsin),
//! including the extra hierarchy level the paper adds: each worker fronts a
//! *server* that fans out to `Ns` *client* simulations (Figs 3.1–3.2, 4.3).
//!
//! The paper's deployment uses MPI ranks on a cluster; here workers are OS
//! threads fed over `crossbeam` channels (see `DESIGN.md` — substitutions).
//! The communication topology is preserved: tasks and workers never talk to
//! each other, only to the master; clients only to their server.
//!
//! * [`alloc`] — the processor-allocation arithmetic of Table 3.3.
//! * [`pool`] — the supervised worker pool (spawn/submit/call/stats,
//!   liveness detection, respawn, graceful failure).
//! * [`faults`] — deterministic fault injection ([`faults::FaultPlan`],
//!   `NSX_FAULTS`) for chaos-testing the supervision layer.
//! * [`task`] — the structured `MwTask`/`MwDriver`/`WorkerCtx` layer with
//!   the server→clients fan-out.
//! * [`backend`] — the pool-backed [`backend::ThreadedBackend`]
//!   implementation of `stoch-eval`'s `SamplingBackend` seam: whole
//!   sampling rounds fan out over the workers, with retry/timeout recovery
//!   and serial degradation when the pool is lost (DESIGN.md §9).
//! * [`objective`] — an adapter that runs any `StochasticObjective`'s
//!   sampling on MW workers, so the optimizers in `noisy-simplex` can be
//!   deployed on the pool unchanged.
//! * [`resilience`] — straggler hedging ([`resilience::HedgePolicy`],
//!   `NSX_HEDGE`), heartbeat liveness, and jittered respawn backoff
//!   (DESIGN.md §16), shared by the pool, backend, and transport layers.
//! * [`transport`] — the process-level distribution seam (DESIGN.md §12): a
//!   versioned, CRC-guarded frame protocol over Unix-domain sockets to real
//!   worker *processes* ([`transport::ProcessBackend`]), with in-process
//!   channels as the second [`transport::Transport`] implementation and
//!   master-side network-fault injection.
//!
//! (The §3.4 scale-up experiment lives in the `repro-bench` crate.)
//!
//! Losing a worker must never take down or wedge a run, so production code
//! in this crate is forbidden from `unwrap`/`expect` on recoverable paths
//! (the lints below); worker loss is a value ([`pool::WorkerLost`]), not a
//! panic.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod alloc;
pub mod backend;
pub mod comm;
pub mod faults;
pub mod objective;
pub mod pool;
pub mod resilience;
pub mod task;
pub mod transport;

pub use alloc::Allocation;
pub use backend::ThreadedBackend;
pub use comm::{network, CommError, Endpoint, Message, Packable};
pub use faults::{Delay, FaultPlan, WorkerFault};
pub use objective::{MwObjective, MwStream};
pub use pool::{
    default_respawn_budget, JobHandle, MwPool, RetryPolicy, ShutdownError, WorkerLost, WorkerStats,
};
pub use resilience::{BackoffPolicy, HeartbeatPolicy, HedgePolicy, P2Quantile};
pub use task::{MwDriver, MwTask, WorkerCtx};
pub use transport::{ProcessBackend, ProcessPool, Transport, TransportError};
