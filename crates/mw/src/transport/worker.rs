//! The worker-process entry point.
//!
//! [`ProcessPool`](super::ProcessPool) spawns workers by re-executing the
//! *current binary* (`std::env::current_exe`) with [`WORKER_SOCKET_ENV`] set.
//! A pre-main constructor registered in `.init_array` checks for that
//! variable: when present, the process connects to the master's socket,
//! runs [`serve`] until told to stop, and exits without ever reaching
//! `main`. When absent (every normal invocation), the constructor is a
//! no-op costing one `getenv`.
//!
//! Re-exec keeps the worker's registry (see [`super::wire`]) exactly in sync
//! with the master's — they are the same binary — and needs no separate
//! worker executable shipped next to every test and bench bin.
//!
//! Injected chaos reaches the worker through [`WORKER_FAULTS_ENV`], carrying
//! the worker-side directives (`kill`/`delay`/`drop`) of the master's
//! [`FaultPlan`](crate::faults::FaultPlan) re-rendered for slot 0; network
//! faults stay master-side in
//! [`FaultedTransport`](super::FaultedTransport).

use super::{wire, Frame, FrameKind, SocketTransport, Transport, TransportError};
use crate::faults::{FaultPlan, WorkerFault};
use std::time::Duration;

/// Env var holding the socket path a worker process must connect to.
pub const WORKER_SOCKET_ENV: &str = "NSX_WORKER_SOCKET";

/// Env var holding fault directives for a worker process (slot-0 grammar of
/// `NSX_FAULTS`, produced by `WorkerFault::to_worker_directives`).
pub const WORKER_FAULTS_ENV: &str = "NSX_WORKER_FAULTS";

/// Worker exit codes — distinct so the master's reaper can log *why* a
/// worker died, and the chaos tests can assert the death mode they injected.
pub mod exit {
    /// Clean shutdown: `Shutdown` frame received or master hung up.
    pub const OK: i32 = 0;
    /// Could not connect to the socket in [`super::WORKER_SOCKET_ENV`].
    pub const CONNECT: i32 = 10;
    /// The inbound byte stream failed frame validation.
    pub const CORRUPT: i32 = 11;
    /// A socket I/O error other than disconnection.
    pub const IO: i32 = 12;
    /// An injected `kill` fault fired (simulated crash).
    pub const KILLED: i32 = 13;
    /// The serve loop panicked (a bug, not a protocol event).
    pub const PANIC: i32 = 14;
}

/// Pre-main constructor: hijacks the process as a worker when
/// [`WORKER_SOCKET_ENV`] is set. `extern "C"` and registered in
/// `.init_array`, so it runs before `main` in every binary linking this
/// crate.
extern "C" fn worker_ctor() {
    if std::env::var_os(WORKER_SOCKET_ENV).is_none() {
        return;
    }
    // Never unwind across the C boundary; a panic in the serve loop becomes
    // a distinct exit code (the master sees EOF either way and respawns).
    let code = std::panic::catch_unwind(worker_main).unwrap_or(exit::PANIC);
    std::process::exit(code);
}

#[used]
#[link_section = ".init_array"]
static WORKER_CTOR: extern "C" fn() = worker_ctor;

/// Force the object file holding [`WORKER_CTOR`] into the final link.
/// `#[used]` keeps the symbol within its object file, but an unreferenced
/// object in an rlib archive can still be skipped by the linker; the process
/// pool calls this before spawning anything.
pub fn ensure_linked() {
    std::hint::black_box(WORKER_CTOR);
}

fn worker_main() -> i32 {
    let Some(path) = std::env::var_os(WORKER_SOCKET_ENV) else {
        return exit::OK;
    };
    let fault = std::env::var(WORKER_FAULTS_ENV)
        .ok()
        .and_then(|s| FaultPlan::parse(&s).ok())
        .map(|plan| plan.fault_for(0, 0))
        .unwrap_or_default();
    let Ok(transport) = SocketTransport::connect(std::path::Path::new(&path)) else {
        return exit::CONNECT;
    };
    serve(transport, fault)
}

/// The worker protocol loop: announce with `Hello(pid)`, then execute `Job`
/// frames until a `Shutdown` frame or peer hangup. Returns the process exit
/// code. Generic over [`Transport`] so the protocol is testable in-process
/// over [`channel_pair`](super::channel_pair) without spawning anything.
pub fn serve<T: Transport>(mut t: T, fault: WorkerFault) -> i32 {
    let mut hello = stoch_eval::codec::Writer::new();
    hello.put_u64(std::process::id() as u64);
    if t.send(&Frame::new(FrameKind::Hello, 0, hello.into_bytes()))
        .is_err()
    {
        return exit::IO;
    }

    let mut executed: u64 = 0;
    loop {
        let frame = match t.recv_timeout(Duration::from_millis(200)) {
            Ok(Some(f)) => f,
            Ok(None) => continue,
            Err(TransportError::Closed) => return exit::OK,
            Err(TransportError::Corrupt(_)) => return exit::CORRUPT,
            Err(TransportError::Io(_)) => return exit::IO,
        };
        match frame.kind {
            FrameKind::Shutdown => return exit::OK,
            FrameKind::Job => {
                if fault.kill_after.is_some_and(|k| executed >= k) {
                    // Simulated crash with the job in hand: no reply, no
                    // shutdown handshake. The master sees EOF.
                    return exit::KILLED;
                }
                if let Some(d) = fault.delay_for(executed) {
                    std::thread::sleep(d);
                }
                let job_idx = executed;
                executed += 1;
                let reply = match wire::execute_job(&frame.payload) {
                    Ok(result) => Frame::new(FrameKind::Result, frame.seq, result),
                    Err(e) => Frame::new(FrameKind::Error, frame.seq, e.to_string().into_bytes()),
                };
                if fault.drop_at == Some(job_idx) {
                    continue; // executed, result discarded
                }
                match t.send(&reply) {
                    Ok(()) => {}
                    Err(TransportError::Closed) => return exit::OK,
                    Err(_) => return exit::IO,
                }
            }
            // Heartbeat probe: echo the seq so the master can match the
            // reply to its outstanding Ping (DESIGN.md §16). Injected delay
            // faults intentionally do NOT apply here — they model slow
            // *jobs*, and a delayed worker is alive, not dead.
            FrameKind::Ping => match t.send(&Frame::new(FrameKind::Pong, frame.seq, vec![])) {
                Ok(()) => {}
                Err(TransportError::Closed) => return exit::OK,
                Err(_) => return exit::IO,
            },
            // Hello/Result/Error/Pong are master-bound; receiving one here
            // means the peer is confused. Ignore rather than die — the
            // master's per-attempt timeout owns recovery policy.
            FrameKind::Hello | FrameKind::Result | FrameKind::Error | FrameKind::Pong => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{channel_pair, wire};
    use stoch_eval::codec::{Reader, Writer};
    use stoch_eval::objective::SampleStream;
    use stoch_eval::sampler::GaussianStream;

    fn state_of(s: &GaussianStream) -> Vec<u8> {
        let mut w = Writer::new();
        s.save_state(&mut w).unwrap();
        w.into_bytes()
    }

    /// Run `serve` on the far end of an in-process pair.
    fn spawn_serve(
        fault: WorkerFault,
    ) -> (
        crate::transport::ChannelTransport,
        std::thread::JoinHandle<i32>,
    ) {
        let (master, worker) = channel_pair();
        let handle = std::thread::spawn(move || serve(worker, fault));
        (master, handle)
    }

    fn expect_hello(master: &mut crate::transport::ChannelTransport) {
        let f = master
            .recv_timeout(Duration::from_secs(1))
            .unwrap()
            .unwrap();
        assert_eq!(f.kind, FrameKind::Hello);
        let mut r = Reader::new(&f.payload);
        assert_eq!(r.take_u64().unwrap(), std::process::id() as u64);
    }

    #[test]
    fn serve_executes_jobs_and_shuts_down() {
        let (mut master, handle) = spawn_serve(WorkerFault::default());
        expect_hello(&mut master);

        let mut local = GaussianStream::new(2.0, 1.0, 5);
        let payload = wire::encode_job("gaussian.v1", 0, 3.0, &state_of(&local));
        master
            .send(&Frame::new(FrameKind::Job, 42, payload))
            .unwrap();
        let reply = master
            .recv_timeout(Duration::from_secs(1))
            .unwrap()
            .unwrap();
        assert_eq!(reply.kind, FrameKind::Result);
        assert_eq!(reply.seq, 42);
        local.extend(3.0);
        let res = wire::decode_result(&reply.payload).unwrap();
        assert_eq!(res.state, state_of(&local));

        master
            .send(&Frame::new(FrameKind::Shutdown, 0, vec![]))
            .unwrap();
        assert_eq!(handle.join().unwrap(), exit::OK);
    }

    #[test]
    fn serve_reports_unknown_wire_id_as_error_frame() {
        let (mut master, handle) = spawn_serve(WorkerFault::default());
        expect_hello(&mut master);
        let payload = wire::encode_job("martian.v9", 0, 1.0, b"");
        master
            .send(&Frame::new(FrameKind::Job, 7, payload))
            .unwrap();
        let reply = master
            .recv_timeout(Duration::from_secs(1))
            .unwrap()
            .unwrap();
        assert_eq!(reply.kind, FrameKind::Error);
        assert_eq!(reply.seq, 7);
        assert!(String::from_utf8(reply.payload)
            .unwrap()
            .contains("martian"));
        drop(master); // hangup => clean exit
        assert_eq!(handle.join().unwrap(), exit::OK);
    }

    #[test]
    fn ping_is_answered_with_pong_echoing_seq() {
        let (mut master, handle) = spawn_serve(WorkerFault::default());
        expect_hello(&mut master);
        master
            .send(&Frame::new(FrameKind::Ping, 99, vec![]))
            .unwrap();
        let reply = master
            .recv_timeout(Duration::from_secs(1))
            .unwrap()
            .unwrap();
        assert_eq!(reply.kind, FrameKind::Pong);
        assert_eq!(reply.seq, 99);
        assert!(reply.payload.is_empty());
        master
            .send(&Frame::new(FrameKind::Shutdown, 0, vec![]))
            .unwrap();
        assert_eq!(handle.join().unwrap(), exit::OK);
    }

    #[test]
    fn kill_fault_dies_with_job_in_hand() {
        let fault = WorkerFault {
            kill_after: Some(1),
            ..WorkerFault::default()
        };
        let (mut master, handle) = spawn_serve(fault);
        expect_hello(&mut master);
        let local = GaussianStream::new(1.0, 1.0, 1);
        for seq in 0..2u64 {
            let payload = wire::encode_job("gaussian.v1", seq, 1.0, &state_of(&local));
            master
                .send(&Frame::new(FrameKind::Job, seq, payload))
                .unwrap();
        }
        // First job answered, second lost to the crash.
        let reply = master
            .recv_timeout(Duration::from_secs(1))
            .unwrap()
            .unwrap();
        assert_eq!(reply.seq, 0);
        assert_eq!(handle.join().unwrap(), exit::KILLED);
        assert_eq!(
            master.recv_timeout(Duration::from_millis(10)),
            Err(TransportError::Closed)
        );
    }

    #[test]
    fn drop_fault_executes_but_stays_silent() {
        let fault = WorkerFault {
            drop_at: Some(0),
            ..WorkerFault::default()
        };
        let (mut master, handle) = spawn_serve(fault);
        expect_hello(&mut master);
        let local = GaussianStream::new(1.0, 1.0, 9);
        for seq in 0..2u64 {
            let payload = wire::encode_job("gaussian.v1", seq, 1.0, &state_of(&local));
            master
                .send(&Frame::new(FrameKind::Job, seq, payload))
                .unwrap();
        }
        // Only the second job replies.
        let reply = master
            .recv_timeout(Duration::from_secs(1))
            .unwrap()
            .unwrap();
        assert_eq!(reply.seq, 1);
        master
            .send(&Frame::new(FrameKind::Shutdown, 0, vec![]))
            .unwrap();
        assert_eq!(handle.join().unwrap(), exit::OK);
    }
}
