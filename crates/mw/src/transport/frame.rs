//! The wire frame: a versioned, CRC-guarded envelope around every message
//! (DESIGN.md §12).
//!
//! Layout (all integers little-endian, built with `stoch-eval::codec`):
//!
//! ```text
//! magic   u32   0x4658_534E ("NSXF")
//! version u32   WIRE_VERSION (1)
//! kind    u8    FrameKind discriminant
//! seq     u64   job sequence number (0 for unsolicited frames)
//! len     u64   payload length in bytes
//! payload [u8; len]
//! crc     u32   CRC-32 (IEEE) of every preceding byte of the frame
//! ```
//!
//! Decoding is *streaming*: [`FrameBuffer`] accumulates bytes from partial
//! socket reads and yields complete frames, reporting every malformation as
//! a typed [`FrameError`] — corruption can sever a link but can never
//! surface as a silently wrong payload (the CRC covers header and payload
//! alike, and payload length is bounded before any allocation).

use stoch_eval::codec::{crc32, Writer};

/// Frame magic: `"NSXF"` read as a little-endian `u32`.
pub const FRAME_MAGIC: u32 = u32::from_le_bytes(*b"NSXF");

/// Wire protocol version. Bump on any incompatible change to the frame
/// layout or the payload schemas in [`super::wire`]; a master and worker
/// disagreeing on the version refuse to talk (typed
/// [`FrameError::BadVersion`]) instead of mis-decoding each other.
pub const WIRE_VERSION: u32 = 1;

/// Fixed-size prefix before the payload: magic + version + kind + seq + len.
const HEADER_LEN: usize = 4 + 4 + 1 + 8 + 8;

/// Trailing CRC-32 size.
const CRC_LEN: usize = 4;

/// Upper bound on a payload, checked before buffering or allocating. Stream
/// states are a few hundred bytes; this bound exists so a corrupt length
/// field cannot make the decoder buffer gigabytes waiting for a frame that
/// never completes.
pub const MAX_PAYLOAD: u64 = 16 * 1024 * 1024;

/// What a frame means. The discriminants are the on-wire `kind` byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Worker → master, once per connection: the worker is alive and speaks
    /// this protocol version (payload: worker pid as `u64`).
    Hello = 0,
    /// Master → worker: execute one stream extension (payload: see
    /// [`super::wire::encode_job`]).
    Job = 1,
    /// Worker → master: a completed extension (payload: see
    /// [`super::wire::encode_result`]).
    Result = 2,
    /// Worker → master: the job could not be executed (unknown wire id,
    /// undecodable state). Payload: UTF-8 error message. The master falls
    /// back to executing that job inline — a typed refusal, never a guess.
    Error = 3,
    /// Master → worker: drain and exit cleanly.
    Shutdown = 4,
    /// Master → worker: liveness probe (empty payload). A healthy worker
    /// answers with a [`Pong`](FrameKind::Pong) echoing the seq; silence
    /// past the heartbeat deadline buries the link (DESIGN.md §16).
    Ping = 5,
    /// Worker → master: heartbeat reply echoing the Ping's seq.
    Pong = 6,
}

impl FrameKind {
    fn from_tag(tag: u8) -> Result<Self, FrameError> {
        Ok(match tag {
            0 => FrameKind::Hello,
            1 => FrameKind::Job,
            2 => FrameKind::Result,
            3 => FrameKind::Error,
            4 => FrameKind::Shutdown,
            5 => FrameKind::Ping,
            6 => FrameKind::Pong,
            _ => return Err(FrameError::BadKind { tag }),
        })
    }
}

/// A typed frame-validation failure. Every variant is a hard link error:
/// the byte stream can no longer be trusted to be aligned on frame
/// boundaries, so the owning transport reports
/// [`Corrupt`](super::TransportError::Corrupt) and the link is torn down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The next four bytes are not the frame magic (stream desync).
    BadMagic {
        /// The bytes found where the magic belonged.
        got: u32,
    },
    /// The peer speaks a different protocol version.
    BadVersion {
        /// The version the peer declared.
        got: u32,
    },
    /// The kind byte names no known frame kind.
    BadKind {
        /// The offending kind byte.
        tag: u8,
    },
    /// The declared payload length exceeds [`MAX_PAYLOAD`].
    TooLarge {
        /// The declared length.
        len: u64,
    },
    /// The frame's CRC-32 does not match its bytes.
    BadCrc {
        /// CRC computed over the received bytes.
        computed: u32,
        /// CRC stored in the frame.
        stored: u32,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic { got } => write!(f, "bad frame magic {got:#010x}"),
            FrameError::BadVersion { got } => {
                write!(
                    f,
                    "unsupported wire version {got} (expected {WIRE_VERSION})"
                )
            }
            FrameError::BadKind { tag } => write!(f, "unknown frame kind {tag}"),
            FrameError::TooLarge { len } => {
                write!(
                    f,
                    "frame payload of {len} bytes exceeds the {MAX_PAYLOAD} cap"
                )
            }
            FrameError::BadCrc { computed, stored } => {
                write!(
                    f,
                    "frame CRC mismatch: computed {computed:#010x}, stored {stored:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// One message on the wire. See [`FrameKind`] for the payload schemas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the frame means.
    pub kind: FrameKind,
    /// Job sequence number: results and errors echo the seq of the job they
    /// answer, which is how the master matches replies to pending work (and
    /// discards stale replies from abandoned attempts).
    pub seq: u64,
    /// Kind-specific payload bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// A frame with the given kind, sequence number, and payload.
    pub fn new(kind: FrameKind, seq: u64, payload: Vec<u8>) -> Self {
        Frame { kind, seq, payload }
    }

    /// Encoded size in bytes (header + payload + CRC).
    pub fn encoded_len(&self) -> usize {
        HEADER_LEN + self.payload.len() + CRC_LEN
    }

    /// Serialize to wire bytes (see the module docs for the layout).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u32(FRAME_MAGIC);
        w.put_u32(WIRE_VERSION);
        w.put_u8(self.kind as u8);
        w.put_u64(self.seq);
        w.put_u64(self.payload.len() as u64);
        let mut bytes = w.into_bytes();
        bytes.extend_from_slice(&self.payload);
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        bytes
    }
}

fn read_u32(buf: &[u8], at: usize) -> u32 {
    let mut a = [0u8; 4];
    a.copy_from_slice(&buf[at..at + 4]);
    u32::from_le_bytes(a)
}

fn read_u64(buf: &[u8], at: usize) -> u64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(&buf[at..at + 8]);
    u64::from_le_bytes(a)
}

/// Streaming frame decoder: feed it byte chunks as they arrive (partial
/// reads included) and take complete frames out. All validation lives here,
/// so every transport shares the same corruption behaviour.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        FrameBuffer::default()
    }

    /// Append received bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a decoded frame.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Decode the next complete frame, if the buffer holds one.
    ///
    /// `Ok(None)` means "need more bytes"; `Err` means the stream is
    /// corrupt at the current position and the link must be abandoned
    /// (there is no reliable way to re-synchronize a byte stream whose
    /// framing has been violated).
    pub fn try_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let magic = read_u32(&self.buf, 0);
        if magic != FRAME_MAGIC {
            return Err(FrameError::BadMagic { got: magic });
        }
        let version = read_u32(&self.buf, 4);
        if version != WIRE_VERSION {
            return Err(FrameError::BadVersion { got: version });
        }
        let payload_len = read_u64(&self.buf, 17);
        if payload_len > MAX_PAYLOAD {
            return Err(FrameError::TooLarge { len: payload_len });
        }
        let total = HEADER_LEN + payload_len as usize + CRC_LEN;
        if self.buf.len() < total {
            return Ok(None);
        }
        let stored = read_u32(&self.buf, total - CRC_LEN);
        let computed = crc32(&self.buf[..total - CRC_LEN]);
        if computed != stored {
            return Err(FrameError::BadCrc { computed, stored });
        }
        // Kind is validated after the CRC: a flipped kind bit reports as
        // corruption (which it is) rather than an unknown-kind protocol
        // error from a peer that never sent one.
        let kind = FrameKind::from_tag(self.buf[8])?;
        let seq = read_u64(&self.buf, 9);
        let payload = self.buf[HEADER_LEN..HEADER_LEN + payload_len as usize].to_vec();
        self.buf.drain(..total);
        Ok(Some(Frame { kind, seq, payload }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(seq: u64, payload: &[u8]) -> Frame {
        Frame::new(FrameKind::Job, seq, payload.to_vec())
    }

    #[test]
    fn encode_decode_round_trip() {
        let f = frame(42, b"state bytes");
        let bytes = f.encode();
        assert_eq!(bytes.len(), f.encoded_len());
        let mut fb = FrameBuffer::new();
        fb.extend(&bytes);
        assert_eq!(fb.try_frame().unwrap(), Some(f));
        assert_eq!(fb.try_frame().unwrap(), None);
        assert_eq!(fb.pending_bytes(), 0);
    }

    #[test]
    fn partial_reads_reassemble() {
        let f = frame(7, &[9u8; 100]);
        let bytes = f.encode();
        let mut fb = FrameBuffer::new();
        // Dribble one byte at a time: no chunk boundary may confuse it.
        for (i, b) in bytes.iter().enumerate() {
            fb.extend(std::slice::from_ref(b));
            let got = fb.try_frame().unwrap();
            if i + 1 < bytes.len() {
                assert_eq!(got, None, "frame complete too early at byte {i}");
            } else {
                assert_eq!(got, Some(f.clone()));
            }
        }
    }

    #[test]
    fn back_to_back_frames_both_decode() {
        let a = frame(1, b"a");
        let b = Frame::new(FrameKind::Result, 2, b"bb".to_vec());
        let mut bytes = a.encode();
        bytes.extend(b.encode());
        let mut fb = FrameBuffer::new();
        fb.extend(&bytes);
        assert_eq!(fb.try_frame().unwrap(), Some(a));
        assert_eq!(fb.try_frame().unwrap(), Some(b));
        assert_eq!(fb.try_frame().unwrap(), None);
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = frame(1, b"x").encode();
        bytes[0] ^= 0xFF;
        let mut fb = FrameBuffer::new();
        fb.extend(&bytes);
        assert!(matches!(fb.try_frame(), Err(FrameError::BadMagic { .. })));
    }

    #[test]
    fn bad_version_is_typed() {
        let mut bytes = frame(1, b"x").encode();
        bytes[4] = 99;
        let mut fb = FrameBuffer::new();
        fb.extend(&bytes);
        assert!(matches!(
            fb.try_frame(),
            Err(FrameError::BadVersion { got: 99 })
        ));
    }

    #[test]
    fn oversize_payload_rejected_before_allocation() {
        let mut bytes = frame(1, b"x").encode();
        bytes[17..25].copy_from_slice(&u64::MAX.to_le_bytes());
        let mut fb = FrameBuffer::new();
        fb.extend(&bytes);
        assert!(matches!(fb.try_frame(), Err(FrameError::TooLarge { .. })));
    }

    #[test]
    fn payload_corruption_fails_crc() {
        let mut bytes = frame(1, &[5u8; 32]).encode();
        let payload_byte = HEADER_LEN + 3;
        bytes[payload_byte] ^= 0x01;
        let mut fb = FrameBuffer::new();
        fb.extend(&bytes);
        assert!(matches!(fb.try_frame(), Err(FrameError::BadCrc { .. })));
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        // Exhaustive single-bit-flip sweep over a whole frame: every flip
        // must produce a typed error (or, for flips that enlarge the
        // declared length, "need more bytes" — never a wrong payload).
        let f = frame(3, b"abcdef");
        let clean = f.encode();
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut dirty = clean.clone();
                dirty[byte] ^= 1 << bit;
                let mut fb = FrameBuffer::new();
                fb.extend(&dirty);
                match fb.try_frame() {
                    Err(_) => {}
                    Ok(None) => {
                        // A length-field flip can claim more payload than
                        // sent; the decoder waits for bytes that never come
                        // (bounded by MAX_PAYLOAD). Acceptable: no frame was
                        // delivered.
                        assert!(
                            (17..25).contains(&byte),
                            "byte {byte} bit {bit}: silently incomplete"
                        );
                    }
                    Ok(Some(got)) => {
                        panic!("byte {byte} bit {bit}: corrupt frame decoded as {got:?}")
                    }
                }
            }
        }
    }
}
