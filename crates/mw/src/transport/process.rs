//! Multi-process master–worker execution: a pool of real worker *processes*
//! connected over Unix-domain sockets, and a [`SamplingBackend`] that ships
//! stream extensions to them over the wire format of [`super::frame`].
//!
//! # Supervision (DESIGN.md §9, over a wire)
//!
//! Worker death shows up as socket EOF or a broken pipe; the pool reaps the
//! child, respawns a fresh incarnation while the respawn budget lasts, and
//! reports every job that was riding the dead link as lost so the backend
//! can re-dispatch from its master-side backups — bit-identically, because
//! the backups carry the RNG state. When the budget is exhausted and no
//! worker is alive the pool is *failed* and the backend degrades to inline
//! execution, exactly like the threaded backend, surfacing through
//! [`SamplingBackend::degraded`] and `mw.backend.degraded`.
//!
//! Unlike threads, a wire cannot distinguish a lost frame from a slow
//! worker, so the process backend always enforces a per-attempt timeout:
//! [`RetryPolicy::timeout`] when set, [`DEFAULT_ATTEMPT_TIMEOUT`] otherwise.
//!
//! # Service-level resilience (DESIGN.md §16)
//!
//! Three policies from [`crate::resilience`] harden the transport beyond
//! crash recovery:
//!
//! * **Heartbeat liveness** (`NSX_HEARTBEAT`, on by default): the pool
//!   sends a `Ping` frame on any link silent past the interval; a link
//!   whose ping goes unanswered past the timeout is buried and its jobs
//!   re-dispatched, so a wedged worker or half-dead socket is detected in
//!   bounded time instead of wedging a rendezvous until the attempt
//!   timeout.
//! * **Reconnect backoff** (`NSX_RESPAWN_BACKOFF`, on by default): repeated
//!   respawns of one slot are deferred by a jittered exponential delay —
//!   skipped, not slept, so no caller blocks — with dispatch allowed to
//!   force past the deferral as a last resort rather than degrade inline.
//! * **Straggler hedging** (`NSX_HEDGE`, off by default): a job in flight
//!   past a P²-tracked latency quantile is speculatively re-dispatched from
//!   its master-side backup to another worker; first answer wins, the loser
//!   is forgotten. Because both legs run the identical stream clone, the
//!   result bits cannot differ — hedging trims tail latency only.
//!
//! # Determinism
//!
//! Streams cross the wire via `save_state`/`load_state`, which are
//! bit-exact; workers run the same `extend` the master would. Submission
//! order is preserved by slot bookkeeping on the master. Therefore
//! `NSX_TRANSPORT=process` results are `f64::to_bits`-identical to inproc
//! and serial runs — the property `dist_scaleup` and the distributed CI
//! legs assert.
//!
//! Streams whose type has no [`SampleStream::wire_id`] cannot be expressed
//! on the wire; the backend runs those batches in-process (counted in
//! `mw.transport.inline_jobs`). That is a capability limit, not a fault, so
//! it does **not** set the degraded flag.

use super::worker::{ensure_linked, WORKER_FAULTS_ENV, WORKER_SOCKET_ENV};
use super::{wire, FaultedTransport, Frame, FrameKind, SocketTransport, Transport, TransportError};
use crate::faults::FaultPlan;
use crate::pool::{default_respawn_budget, RetryPolicy};
use crate::resilience::{BackoffPolicy, HeartbeatPolicy, HedgePolicy, P2Quantile};
use obs::{Counter, MetricsRegistry};
use std::collections::HashMap;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};
use stoch_eval::backend::{SamplingBackend, StreamJob};
use stoch_eval::codec::{Reader, Writer};
use stoch_eval::objective::SampleStream;

/// Per-attempt timeout when [`RetryPolicy::timeout`] is `None`. A dropped
/// frame produces no disconnect — only silence — so the process transport
/// cannot run without an attempt deadline.
pub const DEFAULT_ATTEMPT_TIMEOUT: Duration = Duration::from_secs(5);

/// How long to wait for a spawned worker to connect and say `Hello`.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);

/// How long `Drop` waits for workers to exit after `Shutdown` before
/// killing them.
const SHUTDOWN_GRACE: Duration = Duration::from_millis(500);

/// Cap on one blocking wait inside [`ProcessPool::collect`]. The wait
/// targets a single link, so this bounds how long a frame arriving on a
/// *different* link can sit in the kernel before the next nonblocking sweep
/// picks it up.
const WAIT_SLICE: Duration = Duration::from_millis(5);

/// Uniquifies socket paths across pools within one master process.
static SOCKET_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Wire/transport metric handles. Names: `mw.transport.frames_sent`,
/// `frames_received`, `bytes_sent`, `bytes_received`, `corrupt`,
/// `reconnects`, `stale`, `unsupported`, `inline_jobs`,
/// `heartbeat_deaths`, plus the shared fault-tolerance series
/// `mw.retry.attempts`, `mw.retry.timeouts`, `mw.backend.degraded`,
/// `mw.hedge.launched`, `mw.hedge.wins`.
struct TransportObs {
    frames_sent: Arc<Counter>,
    frames_received: Arc<Counter>,
    bytes_sent: Arc<Counter>,
    bytes_received: Arc<Counter>,
    corrupt: Arc<Counter>,
    reconnects: Arc<Counter>,
    stale: Arc<Counter>,
    unsupported: Arc<Counter>,
    inline_jobs: Arc<Counter>,
    heartbeat_deaths: Arc<Counter>,
    retry_attempts: Arc<Counter>,
    retry_timeouts: Arc<Counter>,
    degraded: Arc<Counter>,
    hedge_launched: Arc<Counter>,
    hedge_wins: Arc<Counter>,
}

impl TransportObs {
    fn register(registry: &MetricsRegistry) -> Self {
        TransportObs {
            frames_sent: registry.counter("mw.transport.frames_sent"),
            frames_received: registry.counter("mw.transport.frames_received"),
            bytes_sent: registry.counter("mw.transport.bytes_sent"),
            bytes_received: registry.counter("mw.transport.bytes_received"),
            corrupt: registry.counter("mw.transport.corrupt"),
            reconnects: registry.counter("mw.transport.reconnects"),
            stale: registry.counter("mw.transport.stale"),
            unsupported: registry.counter("mw.transport.unsupported"),
            inline_jobs: registry.counter("mw.transport.inline_jobs"),
            heartbeat_deaths: registry.counter("mw.transport.heartbeat_deaths"),
            retry_attempts: registry.counter("mw.retry.attempts"),
            retry_timeouts: registry.counter("mw.retry.timeouts"),
            degraded: registry.counter("mw.backend.degraded"),
            hedge_launched: registry.counter("mw.hedge.launched"),
            hedge_wins: registry.counter("mw.hedge.wins"),
        }
    }
}

/// What the pool knows about one job seq it accepted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PollOutcome {
    /// The worker answered with a result payload (see `wire::decode_result`).
    Result(Vec<u8>),
    /// The worker refused the job with a typed error message (unknown wire
    /// id, undecodable state). The job itself is intact master-side.
    Refused(String),
    /// The link carrying the job died before answering. Re-dispatch.
    Lost,
}

/// One master⇄worker-process link.
struct WorkerLink {
    transport: Option<FaultedTransport<SocketTransport>>,
    child: Option<Child>,
    incarnation: u32,
    /// Seqs dispatched on this link and not yet resolved or forgotten.
    pending: Vec<u64>,
    /// When the last frame arrived on this link (liveness evidence).
    last_heard: Instant,
    /// An unanswered heartbeat probe: `(ping seq, when it was sent)`.
    outstanding_ping: Option<(u64, Instant)>,
    /// Respawn deferral gate ([`BackoffPolicy`]); `None` when the slot is
    /// not waiting out a backoff.
    not_before: Option<Instant>,
}

impl WorkerLink {
    fn vacant() -> Self {
        WorkerLink {
            transport: None,
            child: None,
            incarnation: 0,
            pending: Vec::new(),
            last_heard: Instant::now(),
            outstanding_ping: None,
            not_before: None,
        }
    }
}

struct Inner {
    workers: Vec<WorkerLink>,
    respawn_budget: u64,
    next_seq: u64,
    rr: usize,
    failed: bool,
    /// Outcomes drained off the sockets (or synthesized on link death) that
    /// no caller has claimed yet, keyed by seq.
    completed: HashMap<u64, PollOutcome>,
}

/// A supervised pool of worker processes. Jobs are opaque payload byte
/// vectors (the [`wire`] job schema); results come back keyed by the seq
/// assigned at submission.
pub struct ProcessPool {
    inner: Mutex<Inner>,
    faults: FaultPlan,
    obs: Option<Arc<TransportObs>>,
    /// Ping/Pong liveness schedule (`NSX_HEARTBEAT`, DESIGN.md §16).
    heartbeat: HeartbeatPolicy,
    /// Respawn deferral schedule (`NSX_RESPAWN_BACKOFF`, DESIGN.md §16).
    backoff: BackoffPolicy,
}

impl ProcessPool {
    /// Spawn `n_workers` worker processes (re-executions of the current
    /// binary — see [`super::worker`]). Workers that fail to spawn consume
    /// respawn budget; a pool that cannot field a single worker is *failed*
    /// from birth and the backend above it degrades to inline execution
    /// rather than erroring.
    pub fn with_options(
        n_workers: usize,
        faults: FaultPlan,
        respawn_budget: u64,
        registry: Option<&MetricsRegistry>,
    ) -> Self {
        ensure_linked();
        let obs = registry.map(|r| Arc::new(TransportObs::register(r)));
        let mut inner = Inner {
            workers: Vec::with_capacity(n_workers),
            respawn_budget,
            next_seq: 0,
            rr: 0,
            failed: false,
            completed: HashMap::new(),
        };
        for idx in 0..n_workers.max(1) {
            let mut link = WorkerLink::vacant();
            match spawn_worker(idx, 0, &faults) {
                Ok((transport, child)) => {
                    link.transport = Some(transport);
                    link.child = Some(child);
                }
                Err(_) => {
                    // Count the failed spawn against the budget like any
                    // other worker loss; revival is attempted at dispatch.
                    inner.respawn_budget = inner.respawn_budget.saturating_sub(1);
                }
            }
            inner.workers.push(link);
        }
        update_failed(&mut inner);
        ProcessPool {
            inner: Mutex::new(inner),
            faults,
            obs,
            heartbeat: HeartbeatPolicy::from_env(),
            backoff: BackoffPolicy::from_env(),
        }
    }

    /// Override the heartbeat schedule (tests and exhibits; production uses
    /// `NSX_HEARTBEAT`).
    pub fn with_heartbeat(mut self, heartbeat: HeartbeatPolicy) -> Self {
        self.heartbeat = heartbeat;
        self
    }

    /// Override the respawn backoff schedule (tests and exhibits; production
    /// uses `NSX_RESPAWN_BACKOFF`).
    pub fn with_backoff(mut self, backoff: BackoffPolicy) -> Self {
        self.backoff = backoff;
        self
    }

    /// Spawn with faults from `NSX_FAULTS` and the default respawn budget.
    pub fn new(n_workers: usize) -> Self {
        Self::with_options(
            n_workers,
            FaultPlan::from_env(),
            default_respawn_budget(n_workers),
            None,
        )
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Number of worker slots (not all necessarily alive).
    pub fn n_workers(&self) -> usize {
        self.lock().workers.len()
    }

    /// Worker slots with a live link right now.
    pub fn alive_workers(&self) -> usize {
        self.lock()
            .workers
            .iter()
            .filter(|w| w.transport.is_some())
            .count()
    }

    /// OS pids of the currently live worker processes.
    pub fn worker_pids(&self) -> Vec<u32> {
        self.lock()
            .workers
            .iter()
            .filter(|w| w.transport.is_some())
            .filter_map(|w| w.child.as_ref().map(Child::id))
            .collect()
    }

    /// True when no worker is alive and the respawn budget is exhausted.
    pub fn is_failed(&self) -> bool {
        self.lock().failed
    }

    /// Dispatch one job payload to a worker (round-robin over live links,
    /// reviving dead ones while budget lasts). Returns the seq to collect
    /// on, or `None` when no worker could take the job — the caller should
    /// run it inline.
    pub fn submit(&self, payload: Vec<u8>) -> Option<u64> {
        let mut inner = self.lock();
        let n = inner.workers.len();
        // Pass 0 respects respawn backoff deferrals; pass 1 forces revival
        // past them — a pool that still has budget must field a worker
        // rather than let the backend degrade to inline forever.
        for pass in 0..2 {
            let force = pass == 1;
            for _ in 0..n {
                let idx = inner.rr % n;
                inner.rr = inner.rr.wrapping_add(1);
                if inner.workers[idx].transport.is_none() {
                    self.revive_opts(&mut inner, idx, force);
                }
                if inner.workers[idx].transport.is_none() {
                    continue;
                }
                let seq = inner.next_seq;
                let frame = Frame::new(FrameKind::Job, seq, payload.clone());
                let link = &mut inner.workers[idx];
                let sent = match &mut link.transport {
                    Some(t) => t.send(&frame),
                    None => continue,
                };
                match sent {
                    Ok(()) => {
                        inner.next_seq += 1;
                        inner.workers[idx].pending.push(seq);
                        if let Some(o) = &self.obs {
                            o.frames_sent.inc();
                            o.bytes_sent.add(frame.encoded_len() as u64);
                        }
                        return Some(seq);
                    }
                    Err(_) => {
                        self.bury(&mut inner, idx);
                        self.revive_opts(&mut inner, idx, force);
                    }
                }
            }
        }
        update_failed(&mut inner);
        None
    }

    /// Wait up to `max_wait` for outcomes for any of `interested`, draining
    /// sockets as results arrive. Outcomes for seqs outside `interested`
    /// (other callers sharing the pool) stay parked in the pool; outcomes
    /// for seqs nobody tracks any more are counted as stale and dropped by
    /// the caller.
    ///
    /// The wait is event-driven, not polled: after a nonblocking sweep of
    /// every link with outstanding work, the pool blocks directly on the
    /// link carrying the oldest in-flight seq (jobs complete roughly in
    /// dispatch order), so a healthy round trip costs the worker's compute
    /// time plus syscall overhead — not a timer tick.
    pub fn collect(&self, interested: &[u64], max_wait: Duration) -> Vec<(u64, PollOutcome)> {
        let deadline = Instant::now() + max_wait;
        loop {
            let mut inner = self.lock();
            // Nonblocking sweep: pick up everything already buffered.
            for idx in 0..inner.workers.len() {
                if !inner.workers[idx].pending.is_empty() {
                    self.service_link(&mut inner, idx, Duration::ZERO);
                }
            }
            self.check_heartbeats(&mut inner);
            let mut got = Vec::new();
            for seq in interested {
                if let Some(outcome) = inner.completed.remove(seq) {
                    got.push((*seq, outcome));
                }
            }
            let now = Instant::now();
            if !got.is_empty() || now >= deadline {
                return got;
            }
            let target = inner
                .workers
                .iter()
                .enumerate()
                .filter(|(_, w)| w.transport.is_some())
                .filter_map(|(i, w)| w.pending.first().map(|&s| (i, s)))
                .min_by_key(|&(_, s)| s)
                .map(|(i, _)| i);
            match target {
                Some(idx) => {
                    // WAIT_SLICE caps the wait so frames landing on other
                    // links are swept up promptly on the next pass.
                    let slice = deadline.saturating_duration_since(now).min(WAIT_SLICE);
                    self.service_link(&mut inner, idx, slice);
                }
                None => {
                    // Nothing in flight on any live link; an outcome can
                    // only appear through another caller's dispatch.
                    drop(inner);
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
        }
    }

    /// Abandon a seq: the caller stopped waiting for it (per-attempt
    /// timeout). A straggling result arriving later is counted as stale.
    pub fn forget(&self, seq: u64) {
        let mut inner = self.lock();
        inner.completed.remove(&seq);
        for link in &mut inner.workers {
            link.pending.retain(|&s| s != seq);
        }
    }

    /// Heartbeat liveness sweep (DESIGN.md §16): bury links whose Ping has
    /// gone unanswered past the timeout, and probe links that have been
    /// silent past the interval. Any received frame refreshes `last_heard`,
    /// so links with steady result traffic are never probed. Runs on every
    /// `collect` pass — a pool nobody is collecting from is not monitored,
    /// which is fine: dispatch revives dead links on demand anyway.
    fn check_heartbeats(&self, inner: &mut Inner) {
        if !self.heartbeat.enabled {
            return;
        }
        let now = Instant::now();
        for idx in 0..inner.workers.len() {
            if inner.workers[idx].transport.is_none() {
                continue;
            }
            if let Some((_, sent)) = inner.workers[idx].outstanding_ping {
                if now.duration_since(sent) >= self.heartbeat.timeout {
                    // Unanswered probe: the worker is wedged or the link is
                    // half-dead. Bury it so pending jobs re-dispatch.
                    if let Some(o) = &self.obs {
                        o.heartbeat_deaths.inc();
                    }
                    self.bury(inner, idx);
                    self.revive(inner, idx);
                    update_failed(inner);
                }
                continue;
            }
            if now.duration_since(inner.workers[idx].last_heard) < self.heartbeat.interval {
                continue;
            }
            let seq = inner.next_seq;
            let frame = Frame::new(FrameKind::Ping, seq, Vec::new());
            let link = &mut inner.workers[idx];
            let sent = match &mut link.transport {
                Some(t) => t.send(&frame),
                None => continue,
            };
            match sent {
                Ok(()) => {
                    inner.next_seq += 1;
                    inner.workers[idx].outstanding_ping = Some((seq, now));
                    if let Some(o) = &self.obs {
                        o.frames_sent.inc();
                        o.bytes_sent.add(frame.encoded_len() as u64);
                    }
                }
                Err(_) => {
                    self.bury(inner, idx);
                    self.revive(inner, idx);
                    update_failed(inner);
                }
            }
        }
    }

    /// Receive from link `idx`: one wait of up to `first_wait`, then drain
    /// whatever else is already buffered without blocking. A link error
    /// buries the worker and attempts a revival.
    fn service_link(&self, inner: &mut Inner, idx: usize, first_wait: Duration) {
        let mut wait = first_wait;
        loop {
            let link = &mut inner.workers[idx];
            let Some(t) = &mut link.transport else { return };
            match t.recv_timeout(wait) {
                Ok(Some(frame)) => {
                    self.accept_frame(inner, idx, frame);
                    wait = Duration::ZERO;
                }
                Ok(None) => return,
                Err(e) => {
                    if matches!(e, TransportError::Corrupt(_)) {
                        if let Some(o) = &self.obs {
                            o.corrupt.inc();
                        }
                    }
                    self.bury(inner, idx);
                    self.revive(inner, idx);
                    update_failed(inner);
                    return;
                }
            }
        }
    }

    /// Route one frame received on link `idx` into `completed`.
    fn accept_frame(&self, inner: &mut Inner, idx: usize, frame: Frame) {
        if let Some(o) = &self.obs {
            o.frames_received.inc();
            o.bytes_received.add(frame.encoded_len() as u64);
        }
        let link = &mut inner.workers[idx];
        // Any frame is proof of life, whatever its kind.
        link.last_heard = Instant::now();
        let claimed = {
            let before = link.pending.len();
            link.pending.retain(|&s| s != frame.seq);
            link.pending.len() != before
        };
        match frame.kind {
            FrameKind::Result if claimed => {
                inner
                    .completed
                    .insert(frame.seq, PollOutcome::Result(frame.payload));
            }
            FrameKind::Error if claimed => {
                let msg = String::from_utf8_lossy(&frame.payload).into_owned();
                inner.completed.insert(frame.seq, PollOutcome::Refused(msg));
            }
            FrameKind::Pong => {
                // A pong (even a stale one) clears the outstanding probe;
                // `last_heard` above already restarts the quiet-time clock.
                link.outstanding_ping = None;
            }
            FrameKind::Hello => {} // late duplicate hello; ignore
            _ => {
                // Stale (forgotten seq) or nonsensical kind.
                if let Some(o) = &self.obs {
                    o.stale.inc();
                }
            }
        }
    }

    /// Tear down a dead link: reap the child and surface every pending seq
    /// as [`PollOutcome::Lost`].
    fn bury(&self, inner: &mut Inner, idx: usize) {
        let link = &mut inner.workers[idx];
        link.transport = None;
        link.outstanding_ping = None;
        if let Some(mut child) = link.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
        let lost = std::mem::take(&mut link.pending);
        for seq in lost {
            inner.completed.insert(seq, PollOutcome::Lost);
        }
    }

    /// Respawn worker slot `idx` (next incarnation) while budget remains,
    /// honoring the jittered reconnect backoff (DESIGN.md §16).
    fn revive(&self, inner: &mut Inner, idx: usize) {
        self.revive_opts(inner, idx, false);
    }

    /// [`revive`](Self::revive) with backoff control: `force` ignores an
    /// active deferral (used as dispatch's last resort). A deferred revival
    /// does **not** consume respawn budget — the slot is skipped this pass
    /// and tried again later, so waiting costs nothing.
    fn revive_opts(&self, inner: &mut Inner, idx: usize, force: bool) {
        if inner.respawn_budget == 0 || inner.workers[idx].transport.is_some() {
            return;
        }
        let incarnation = inner.workers[idx].incarnation + 1;
        let now = Instant::now();
        let delay = self.backoff.delay_for(idx, incarnation);
        let not_before = *inner.workers[idx].not_before.get_or_insert(now + delay);
        if !force && now < not_before {
            return;
        }
        inner.respawn_budget -= 1;
        if let Ok((transport, child)) = spawn_worker(idx, incarnation, &self.faults) {
            let link = &mut inner.workers[idx];
            link.transport = Some(transport);
            link.child = Some(child);
            link.incarnation = incarnation;
            link.last_heard = Instant::now();
            link.outstanding_ping = None;
            link.not_before = None;
            if let Some(o) = &self.obs {
                o.reconnects.inc();
            }
        } else if self.backoff.enabled {
            // Spawn failed (budget already charged): re-arm the deferral so
            // a dying host is not hammered in a tight loop.
            inner.workers[idx].not_before = Some(now + delay.max(self.backoff.base));
        } else {
            inner.workers[idx].not_before = None;
        }
    }
}

fn update_failed(inner: &mut Inner) {
    if inner.respawn_budget == 0 && inner.workers.iter().all(|w| w.transport.is_none()) {
        inner.failed = true;
    }
}

impl Drop for ProcessPool {
    fn drop(&mut self) {
        let mut inner = self.lock();
        for link in &mut inner.workers {
            if let Some(t) = &mut link.transport {
                let _ = t.send(&Frame::new(FrameKind::Shutdown, 0, Vec::new()));
            }
        }
        let deadline = Instant::now() + SHUTDOWN_GRACE;
        for link in &mut inner.workers {
            let Some(mut child) = link.child.take() else {
                continue;
            };
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    _ => {
                        let _ = child.kill();
                        let _ = child.wait();
                        break;
                    }
                }
            }
        }
    }
}

/// Spawn one worker process and complete the connect + `Hello` handshake.
fn spawn_worker(
    idx: usize,
    incarnation: u32,
    faults: &FaultPlan,
) -> std::io::Result<(FaultedTransport<SocketTransport>, Child)> {
    let fault = faults.fault_for(idx, incarnation);
    let path = socket_path(idx, incarnation);
    let _ = std::fs::remove_file(&path);
    let listener = UnixListener::bind(&path)?;
    listener.set_nonblocking(true)?;

    let exe = std::env::current_exe()?;
    let mut cmd = Command::new(exe);
    cmd.env(WORKER_SOCKET_ENV, &path)
        // Env hygiene: the worker must not re-enter process transport,
        // re-apply plan-level chaos, or write checkpoints of its own.
        .env_remove("NSX_TRANSPORT")
        .env_remove("NSX_FAULTS")
        .env_remove("NSX_BACKEND")
        .env_remove("NSX_CHECKPOINT")
        .env_remove(WORKER_FAULTS_ENV)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    let directives = fault.to_worker_directives();
    if !directives.is_empty() {
        cmd.env(WORKER_FAULTS_ENV, directives);
    }
    let mut child = cmd.spawn().inspect_err(|_| {
        let _ = std::fs::remove_file(&path);
    })?;

    let mut accept = || -> std::io::Result<std::os::unix::net::UnixStream> {
        let deadline = Instant::now() + HANDSHAKE_TIMEOUT;
        loop {
            match listener.accept() {
                Ok((stream, _)) => return Ok(stream),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if child.try_wait()?.is_some() {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::BrokenPipe,
                            "worker exited before connecting",
                        ));
                    }
                    if Instant::now() >= deadline {
                        return Err(std::io::ErrorKind::TimedOut.into());
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => return Err(e),
            }
        }
    };
    let stream = match accept() {
        Ok(s) => s,
        Err(e) => {
            let _ = child.kill();
            let _ = child.wait();
            let _ = std::fs::remove_file(&path);
            return Err(e);
        }
    };
    // The rendezvous point is single-use; unlink it now so nothing can
    // connect to a stale path and no cleanup is owed at shutdown.
    drop(listener);
    let _ = std::fs::remove_file(&path);

    let mut transport = SocketTransport::new(stream)?;
    match transport.recv_timeout(HANDSHAKE_TIMEOUT) {
        Ok(Some(f)) if f.kind == FrameKind::Hello => {}
        _ => {
            let _ = child.kill();
            let _ = child.wait();
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "worker did not say hello",
            ));
        }
    }
    Ok((FaultedTransport::new(transport, fault.net), child))
}

fn socket_path(idx: usize, incarnation: u32) -> PathBuf {
    let unique = SOCKET_COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "nsx-{}-{}-w{}i{}.sock",
        std::process::id(),
        unique,
        idx,
        incarnation
    ))
}

/// Worker-process count for the shared pool: `NSX_WORKERS` verbatim when
/// set, otherwise hardware parallelism capped at 8 (processes are heavier
/// than threads; tests sharing the global pool don't need more).
pub fn default_process_workers() -> usize {
    if std::env::var("NSX_WORKERS").is_ok() {
        crate::backend::default_workers()
    } else {
        crate::backend::default_workers().min(8)
    }
}

static SHARED: OnceLock<Arc<ProcessBackend>> = OnceLock::new();

/// One in-flight extension riding the wire.
struct PendingJob<S> {
    idx: usize,
    slot: usize,
    dt: f64,
    backup: S,
    seq: u64,
    attempt: u32,
    dispatched: Instant,
    /// A speculative duplicate dispatched when the primary straggled past
    /// the hedge threshold: `(its seq, when it shipped)`. First answer
    /// wins; the loser is forgotten (DESIGN.md §16).
    hedge: Option<(u64, Instant)>,
}

/// A [`SamplingBackend`] that runs batches on [`ProcessPool`] workers over
/// the frame protocol, surviving worker-process loss and network faults
/// (see module docs).
pub struct ProcessBackend {
    pool: ProcessPool,
    retry: RetryPolicy,
    degraded: AtomicBool,
    /// Straggler hedging policy (`NSX_HEDGE`, DESIGN.md §16).
    hedge: HedgePolicy,
    /// P² estimator over completed round-trip latencies (seconds), feeding
    /// the hedge threshold.
    latency: Mutex<P2Quantile>,
}

impl ProcessBackend {
    /// Spawn a dedicated pool of `n_workers` processes, faults from
    /// `NSX_FAULTS`.
    pub fn new(n_workers: usize) -> Self {
        Self::with_options(
            n_workers,
            FaultPlan::from_env(),
            RetryPolicy::default(),
            default_respawn_budget(n_workers),
            None,
        )
    }

    /// Full-control constructor mirroring `ThreadedBackend::with_options`.
    pub fn with_options(
        n_workers: usize,
        faults: FaultPlan,
        retry: RetryPolicy,
        respawn_budget: u64,
        registry: Option<&MetricsRegistry>,
    ) -> Self {
        let hedge = HedgePolicy::from_env();
        ProcessBackend {
            pool: ProcessPool::with_options(n_workers, faults, respawn_budget, registry),
            retry,
            degraded: AtomicBool::new(false),
            hedge,
            latency: Mutex::new(P2Quantile::new(hedge.quantile)),
        }
    }

    /// Override the hedging policy (tests and exhibits; production uses
    /// `NSX_HEDGE`). Resets the latency estimator to the new quantile.
    pub fn with_hedge(mut self, hedge: HedgePolicy) -> Self {
        self.hedge = hedge;
        self.latency = Mutex::new(P2Quantile::new(hedge.quantile));
        self
    }

    /// The backend's hedging policy.
    pub fn hedge_policy(&self) -> HedgePolicy {
        self.hedge
    }

    /// Override the pool's heartbeat schedule (tests and exhibits;
    /// production uses `NSX_HEARTBEAT`).
    pub fn with_heartbeat(mut self, heartbeat: HeartbeatPolicy) -> Self {
        self.pool.heartbeat = heartbeat;
        self
    }

    /// Override the pool's respawn backoff schedule (tests and exhibits;
    /// production uses `NSX_RESPAWN_BACKOFF`).
    pub fn with_backoff(mut self, backoff: BackoffPolicy) -> Self {
        self.pool.backoff = backoff;
        self
    }

    /// The process-wide shared backend, sized by [`default_process_workers`]
    /// on first use — engines selecting `NSX_TRANSPORT=process` without
    /// custom options all share these worker processes.
    pub fn shared() -> Arc<ProcessBackend> {
        Arc::clone(SHARED.get_or_init(|| Arc::new(ProcessBackend::new(default_process_workers()))))
    }

    /// The underlying process pool.
    pub fn pool(&self) -> &ProcessPool {
        &self.pool
    }

    /// The backend's retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    fn obs(&self) -> Option<&Arc<TransportObs>> {
        self.pool.obs.as_ref()
    }

    fn note_degraded(&self) {
        if !self.degraded.swap(true, Ordering::SeqCst) {
            if let Some(o) = self.obs() {
                o.degraded.inc();
            }
        }
    }

    /// Feed one completed round-trip latency to the hedge estimator.
    fn observe_latency(&self, d: Duration) {
        if !self.hedge.enabled {
            return;
        }
        let mut est = self.latency.lock().unwrap_or_else(|e| e.into_inner());
        est.observe(d.as_secs_f64());
    }

    /// Current in-flight latency beyond which a job should be hedged, if
    /// hedging is active and warmed up.
    fn hedge_after(&self) -> Option<Duration> {
        if !self.hedge.enabled {
            return None;
        }
        let est = self.latency.lock().unwrap_or_else(|e| e.into_inner());
        self.hedge.hedge_after(est.count(), est.estimate())
    }

    fn extend_inline<S: SampleStream>(mut jobs: Vec<StreamJob<S>>) -> Vec<StreamJob<S>> {
        for job in &mut jobs {
            job.stream.extend(job.dt);
        }
        jobs
    }

    /// Serialize and dispatch one job; `None` (with the degraded flag set)
    /// when the pool cannot take it.
    fn dispatch<S: SampleStream>(
        &self,
        wire_id: &str,
        slot: usize,
        dt: f64,
        stream: &S,
    ) -> Option<u64> {
        let mut w = Writer::new();
        if stream.save_state(&mut w).is_err() {
            return None;
        }
        let payload = wire::encode_job(wire_id, slot as u64, dt, &w.into_bytes());
        self.pool.submit(payload)
    }

    /// Complete `p` inline from its backup.
    fn finish_inline<S: SampleStream>(p: PendingJob<S>, out: &mut [Option<StreamJob<S>>]) {
        let mut stream = p.backup;
        stream.extend(p.dt);
        out[p.idx] = Some(StreamJob {
            slot: p.slot,
            dt: p.dt,
            stream,
        });
    }

    /// One leg of a (possibly hedged) job died or returned garbage. While
    /// the other leg is still in flight, keep waiting on it alone: a dead
    /// hedge costs nothing, and a dead primary *promotes* the hedge to
    /// primary without burning a retry attempt (the hedge carries the same
    /// stream clone, so the answer is the same bits either way). With no
    /// live leg left, the normal retry path applies.
    fn settle_lost_leg<S: SampleStream>(
        &self,
        wire_id: &str,
        mut p: PendingJob<S>,
        from_hedge: bool,
        pending: &mut HashMap<u64, PendingJob<S>>,
        out: &mut [Option<StreamJob<S>>],
    ) {
        if from_hedge {
            p.hedge = None;
            pending.insert(p.seq, p);
        } else if let Some((h, shipped)) = p.hedge.take() {
            p.seq = h;
            p.dispatched = shipped;
            pending.insert(h, p);
        } else {
            self.retry_or_inline(wire_id, p, pending, out);
        }
    }

    /// Re-dispatch a lost/expired job if attempts and workers remain,
    /// otherwise finish it inline.
    fn retry_or_inline<S: SampleStream>(
        &self,
        wire_id: &str,
        p: PendingJob<S>,
        pending: &mut HashMap<u64, PendingJob<S>>,
        out: &mut [Option<StreamJob<S>>],
    ) {
        let next_attempt = p.attempt + 1;
        if next_attempt <= self.retry.max_attempts && !self.pool.is_failed() {
            if let Some(o) = self.obs() {
                o.retry_attempts.inc();
            }
            let backoff = self.retry.backoff_before(next_attempt);
            if !backoff.is_zero() {
                std::thread::sleep(backoff);
            }
            if let Some(seq) = self.dispatch(wire_id, p.slot, p.dt, &p.backup) {
                pending.insert(
                    seq,
                    PendingJob {
                        seq,
                        attempt: next_attempt,
                        dispatched: Instant::now(),
                        hedge: None,
                        ..p
                    },
                );
                return;
            }
            self.note_degraded();
        }
        Self::finish_inline(p, out);
    }
}

impl<S: SampleStream + 'static> SamplingBackend<S> for ProcessBackend {
    fn extend_batch(&self, jobs: Vec<StreamJob<S>>) -> Vec<StreamJob<S>> {
        // Streams without a wire identity cannot be shipped: execute
        // in-process. This is a capability limit of the stream type, not a
        // transport failure — no degradation note.
        let Some(wire_id) = S::wire_id() else {
            if let Some(o) = self.obs() {
                o.inline_jobs.add(jobs.len() as u64);
            }
            return Self::extend_inline(jobs);
        };
        if self.degraded.load(Ordering::SeqCst) || self.pool.is_failed() {
            self.note_degraded();
            return Self::extend_inline(jobs);
        }
        let n = jobs.len();
        let mut out: Vec<Option<StreamJob<S>>> = (0..n).map(|_| None).collect();
        let mut pending: HashMap<u64, PendingJob<S>> = HashMap::with_capacity(n);
        for (idx, job) in jobs.into_iter().enumerate() {
            match self.dispatch(wire_id, job.slot, job.dt, &job.stream) {
                Some(seq) => {
                    pending.insert(
                        seq,
                        PendingJob {
                            idx,
                            slot: job.slot,
                            dt: job.dt,
                            backup: job.stream,
                            seq,
                            attempt: 1,
                            dispatched: Instant::now(),
                            hedge: None,
                        },
                    );
                }
                None => {
                    self.note_degraded();
                    let mut stream = job.stream;
                    stream.extend(job.dt);
                    out[idx] = Some(StreamJob {
                        slot: job.slot,
                        dt: job.dt,
                        stream,
                    });
                }
            }
        }
        let limit = self.retry.timeout.unwrap_or(DEFAULT_ATTEMPT_TIMEOUT);
        while !pending.is_empty() {
            let interested: Vec<u64> = pending
                .keys()
                .copied()
                .chain(pending.values().filter_map(|p| p.hedge.map(|(s, _)| s)))
                .collect();
            for (seq, outcome) in self.pool.collect(&interested, Duration::from_millis(20)) {
                // Resolve the seq to its pending entry: primary seqs are the
                // map keys; hedge seqs need a scan (batches are small).
                let key = if pending.contains_key(&seq) {
                    seq
                } else {
                    match pending
                        .iter()
                        .find(|(_, p)| p.hedge.is_some_and(|(s, _)| s == seq))
                        .map(|(k, _)| *k)
                    {
                        Some(k) => k,
                        None => continue,
                    }
                };
                let Some(p) = pending.remove(&key) else {
                    continue;
                };
                let from_hedge = seq != p.seq;
                match outcome {
                    PollOutcome::Result(payload) => {
                        match decode_stream::<S>(&payload, p.slot) {
                            Some(stream) => {
                                // First answer wins; the loser's eventual
                                // reply is forgotten and counted stale.
                                // Either way the stream bits are those the
                                // backup would have produced — hedging can
                                // only change *when*, never *what*.
                                if from_hedge {
                                    if let Some(o) = self.obs() {
                                        o.hedge_wins.inc();
                                    }
                                    self.pool.forget(p.seq);
                                    if let Some((_, shipped)) = p.hedge {
                                        self.observe_latency(shipped.elapsed());
                                    }
                                } else {
                                    if let Some((h, _)) = p.hedge {
                                        self.pool.forget(h);
                                    }
                                    self.observe_latency(p.dispatched.elapsed());
                                }
                                out[p.idx] = Some(StreamJob {
                                    slot: p.slot,
                                    dt: p.dt,
                                    stream,
                                });
                            }
                            // An undecodable or misrouted result is treated
                            // as a lost attempt, never a guessed sample.
                            None => {
                                self.settle_lost_leg(wire_id, p, from_hedge, &mut pending, &mut out)
                            }
                        }
                    }
                    PollOutcome::Refused(_) => {
                        // The worker's registry refused the job; running it
                        // on this pool will never work. Finish inline.
                        if let Some(o) = self.obs() {
                            o.unsupported.inc();
                        }
                        if from_hedge {
                            self.pool.forget(p.seq);
                        } else if let Some((h, _)) = p.hedge {
                            self.pool.forget(h);
                        }
                        Self::finish_inline(p, &mut out);
                    }
                    PollOutcome::Lost => {
                        self.settle_lost_leg(wire_id, p, from_hedge, &mut pending, &mut out)
                    }
                }
            }
            // Per-attempt deadlines: abandon expired seqs and re-dispatch.
            // A hedged job's clock is its primary dispatch; expiry abandons
            // both legs (the hedge shipped even later).
            let expired: Vec<u64> = pending
                .values()
                .filter(|p| p.dispatched.elapsed() >= limit)
                .map(|p| p.seq)
                .collect();
            for seq in expired {
                let Some(p) = pending.remove(&seq) else {
                    continue;
                };
                if let Some(o) = self.obs() {
                    o.retry_timeouts.inc();
                }
                self.pool.forget(seq);
                if let Some((h, _)) = p.hedge {
                    self.pool.forget(h);
                }
                self.retry_or_inline(wire_id, p, &mut pending, &mut out);
            }
            // Straggler hedging (DESIGN.md §16): primaries in flight past
            // the quantile-tracked threshold get a speculative duplicate of
            // the same stream clone on another worker.
            if let Some(after) = self.hedge_after() {
                let candidates: Vec<u64> = pending
                    .values()
                    .filter(|p| p.hedge.is_none() && p.dispatched.elapsed() >= after)
                    .map(|p| p.seq)
                    .collect();
                for seq in candidates {
                    let Some((slot, dt)) = pending.get(&seq).map(|p| (p.slot, p.dt)) else {
                        continue;
                    };
                    let hseq = {
                        let p = &pending[&seq];
                        self.dispatch(wire_id, slot, dt, &p.backup)
                    };
                    if let Some(hseq) = hseq {
                        if let Some(o) = self.obs() {
                            o.hedge_launched.inc();
                        }
                        if let Some(p) = pending.get_mut(&seq) {
                            p.hedge = Some((hseq, Instant::now()));
                        }
                    }
                }
            }
        }
        out.into_iter()
            .map(|o| {
                o.unwrap_or_else(|| {
                    // Unreachable: every branch above fills its slot.
                    panic!("process backend dropped a batch slot")
                })
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "process"
    }

    fn degraded(&self) -> bool {
        self.degraded.load(Ordering::SeqCst) || self.pool.is_failed()
    }
}

/// Decode a result payload back into a stream, checking the slot echo.
fn decode_stream<S: SampleStream>(payload: &[u8], slot: usize) -> Option<S> {
    let res = wire::decode_result(payload).ok()?;
    if res.slot != slot as u64 {
        return None;
    }
    let mut r = Reader::new(&res.state);
    let stream = S::load_state(&mut r).ok()?;
    r.finish().ok()?;
    Some(stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stoch_eval::backend::SerialBackend;
    use stoch_eval::functions::Rosenbrock;
    use stoch_eval::noise::ConstantNoise;
    use stoch_eval::objective::StochasticObjective;
    use stoch_eval::sampler::Noisy;

    type Stream = <Noisy<Rosenbrock, ConstantNoise> as StochasticObjective>::Stream;

    fn jobs_at(obj: &Noisy<Rosenbrock, ConstantNoise>, n: usize) -> Vec<StreamJob<Stream>> {
        (0..n)
            .map(|i| StreamJob {
                slot: i,
                dt: 1.0 + i as f64,
                stream: obj.open(&[i as f64, 0.5], 100 + i as u64),
            })
            .collect()
    }

    fn assert_batches_identical(a: &[StreamJob<Stream>], b: &[StreamJob<Stream>]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.slot, y.slot);
            assert_eq!(x.dt, y.dt);
            let (ea, eb) = (x.stream.estimate(), y.stream.estimate());
            assert_eq!(ea.value.to_bits(), eb.value.to_bits());
            assert_eq!(ea.std_err.to_bits(), eb.std_err.to_bits());
            assert_eq!(ea.time.to_bits(), eb.time.to_bits());
        }
    }

    #[test]
    fn process_backend_matches_serial_bit_for_bit() {
        let obj = Noisy::new(Rosenbrock::new(2), ConstantNoise(5.0));
        let serial = SerialBackend.extend_batch(jobs_at(&obj, 6));
        let backend = ProcessBackend::with_options(
            2,
            FaultPlan::none(),
            RetryPolicy::default(),
            default_respawn_budget(2),
            None,
        );
        let procd = backend.extend_batch(jobs_at(&obj, 6));
        assert_batches_identical(&serial, &procd);
        assert!(!SamplingBackend::<Stream>::degraded(&backend));
    }

    #[test]
    fn worker_process_death_is_survived_bit_for_bit() {
        let reg = MetricsRegistry::new();
        let obj = Noisy::new(Rosenbrock::new(2), ConstantNoise(3.0));
        let serial = SerialBackend.extend_batch(jobs_at(&obj, 10));
        let backend = ProcessBackend::with_options(
            2,
            FaultPlan::none().kill(0, 1),
            RetryPolicy::default(),
            default_respawn_budget(2),
            Some(&reg),
        );
        let procd = backend.extend_batch(jobs_at(&obj, 10));
        assert_batches_identical(&serial, &procd);
        assert!(!SamplingBackend::<Stream>::degraded(&backend));
        assert!(reg.counter("mw.transport.reconnects").get() >= 1);
    }

    #[test]
    fn dropped_frames_are_retried_bit_for_bit() {
        let reg = MetricsRegistry::new();
        let obj = Noisy::new(Rosenbrock::new(2), ConstantNoise(2.0));
        let serial = SerialBackend.extend_batch(jobs_at(&obj, 6));
        // Outbound job frame 1 to worker 0 vanishes; the per-attempt
        // timeout recovers it from the master-side backup.
        let backend = ProcessBackend::with_options(
            2,
            FaultPlan::none().net_drop(0, 1),
            RetryPolicy {
                timeout: Some(Duration::from_millis(300)),
                ..RetryPolicy::default()
            },
            default_respawn_budget(2),
            Some(&reg),
        );
        let procd = backend.extend_batch(jobs_at(&obj, 6));
        assert_batches_identical(&serial, &procd);
        assert!(reg.counter("mw.retry.timeouts").get() >= 1);
        assert!(!SamplingBackend::<Stream>::degraded(&backend));
    }

    #[test]
    fn no_spawnable_workers_degrades_to_inline() {
        let obj = Noisy::new(Rosenbrock::new(2), ConstantNoise(1.0));
        let serial = SerialBackend.extend_batch(jobs_at(&obj, 4));
        // Kill the only worker before any job with no respawn budget: the
        // pool fails and the batch must complete inline, identically.
        let backend = ProcessBackend::with_options(
            1,
            FaultPlan::none().kill(0, 0),
            RetryPolicy::default(),
            0,
            None,
        );
        let procd = backend.extend_batch(jobs_at(&obj, 4));
        assert_batches_identical(&serial, &procd);
        assert!(SamplingBackend::<Stream>::degraded(&backend));
    }

    #[test]
    fn hedged_dispatch_beats_a_straggler_bit_for_bit() {
        let reg = MetricsRegistry::new();
        let obj = Noisy::new(Rosenbrock::new(2), ConstantNoise(4.0));
        let serial = SerialBackend.extend_batch(jobs_at(&obj, 8));
        // Worker 0 sleeps 150 ms before every job (a permanent straggler);
        // with an aggressive hedge policy its jobs are speculatively
        // re-dispatched and the batch still matches serial bit-for-bit.
        let backend = ProcessBackend::with_options(
            2,
            FaultPlan::none().delay(0, 0, 150),
            RetryPolicy::default(),
            default_respawn_budget(2),
            Some(&reg),
        )
        .with_hedge(HedgePolicy::parse("on:q=0.5:factor=1:min_ms=10:warmup=3").unwrap());
        for _ in 0..3 {
            let procd = backend.extend_batch(jobs_at(&obj, 8));
            assert_batches_identical(&SerialBackend.extend_batch(jobs_at(&obj, 8)), &procd);
        }
        let procd = backend.extend_batch(jobs_at(&obj, 8));
        assert_batches_identical(&serial, &procd);
        assert!(!SamplingBackend::<Stream>::degraded(&backend));
        assert!(reg.counter("mw.hedge.launched").get() >= 1);
        assert!(reg.counter("mw.hedge.wins").get() >= 1);
    }

    #[test]
    fn heartbeat_buries_a_wedged_worker_and_recovers() {
        let reg = MetricsRegistry::new();
        let obj = Noisy::new(Rosenbrock::new(2), ConstantNoise(2.0));
        let serial = SerialBackend.extend_batch(jobs_at(&obj, 3));
        // The sole worker's first incarnation wedges for 30 s on every job;
        // the heartbeat declares it dead in ~interval+timeout, well before
        // the 5 s attempt deadline, and the healthy respawn answers the
        // re-dispatch bit-identically.
        let backend = ProcessBackend::with_options(
            1,
            FaultPlan::none().delay(0, 0, 30_000),
            RetryPolicy::default(),
            default_respawn_budget(1),
            Some(&reg),
        )
        .with_heartbeat(HeartbeatPolicy::parse("on:interval_ms=100:timeout_ms=300").unwrap());
        let start = Instant::now();
        let procd = backend.extend_batch(jobs_at(&obj, 3));
        assert_batches_identical(&serial, &procd);
        assert!(!SamplingBackend::<Stream>::degraded(&backend));
        assert!(reg.counter("mw.transport.heartbeat_deaths").get() >= 1);
        assert!(reg.counter("mw.transport.reconnects").get() >= 1);
        // Recovery must beat the 5 s attempt timeout by a wide margin.
        assert!(start.elapsed() < Duration::from_secs(4));
    }

    #[test]
    fn repeated_revivals_defer_with_backoff_but_dispatch_forces_through() {
        // Unit-level check of the deferral bookkeeping: a slot on its second
        // respawn is deferred by revive() but submit()'s forced pass still
        // fields a worker instead of letting the backend degrade.
        let pool = ProcessPool::with_options(1, FaultPlan::none(), 8, None)
            .with_backoff(BackoffPolicy::parse("on:base_ms=60000:cap_ms=60000").unwrap());
        {
            let mut inner = pool.lock();
            // Simulate two prior deaths: incarnation 1 already used.
            inner.workers[0].incarnation = 1;
            pool.bury(&mut inner, 0);
            pool.revive(&mut inner, 0);
            // Deferred: no transport, budget untouched by the deferral.
            assert!(inner.workers[0].transport.is_none());
            assert_eq!(inner.respawn_budget, 8);
            assert!(inner.workers[0].not_before.is_some());
        }
        // Dispatch forces past the deferral rather than failing.
        let mut w = Writer::new();
        let local = stoch_eval::sampler::GaussianStream::new(1.0, 1.0, 3);
        local.save_state(&mut w).unwrap();
        let payload = wire::encode_job("gaussian.v1", 0, 1.0, &w.into_bytes());
        assert!(pool.submit(payload).is_some());
        assert_eq!(pool.alive_workers(), 1);
    }

    #[test]
    fn shared_backend_is_one_pool() {
        let a = ProcessBackend::shared();
        let b = ProcessBackend::shared();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(a.pool().n_workers() >= 1);
    }
}
