//! In-process [`Transport`]: frames travel as *encoded bytes* over a
//! `crossbeam` channel pair and are re-parsed by [`FrameBuffer`] on the
//! receiving side.
//!
//! Running the codec even when both endpoints share an address space is
//! deliberate: the in-process transport exercises exactly the byte format
//! the socket transport ships, so `NSX_TRANSPORT=inproc` and
//! `NSX_TRANSPORT=process` differ only in the OS plumbing — which is the
//! point of the determinism comparison in `dist_scaleup`.

use super::{Frame, FrameBuffer, Transport, TransportError};
use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::time::Duration;

/// One endpoint of an in-process byte-stream link.
pub struct ChannelTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    buf: FrameBuffer,
}

/// Create a connected pair of in-process transports. Frames sent on one
/// endpoint arrive on the other, in order, after a full encode/decode round
/// trip through the wire format.
pub fn channel_pair() -> (ChannelTransport, ChannelTransport) {
    let (a_tx, b_rx) = unbounded();
    let (b_tx, a_rx) = unbounded();
    (
        ChannelTransport {
            tx: a_tx,
            rx: a_rx,
            buf: FrameBuffer::new(),
        },
        ChannelTransport {
            tx: b_tx,
            rx: b_rx,
            buf: FrameBuffer::new(),
        },
    )
}

impl Transport for ChannelTransport {
    fn send(&mut self, frame: &Frame) -> Result<(), TransportError> {
        self.tx
            .send(frame.encode())
            .map_err(|_| TransportError::Closed)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Frame>, TransportError> {
        // A frame may already be buffered from a previous chunk.
        if let Some(frame) = self.buf.try_frame()? {
            return Ok(Some(frame));
        }
        if timeout.is_zero() {
            // Nonblocking poll: drain whatever is queued, no waiting.
            loop {
                match self.rx.try_recv() {
                    Ok(bytes) => {
                        self.buf.extend(&bytes);
                        if let Some(frame) = self.buf.try_frame()? {
                            return Ok(Some(frame));
                        }
                    }
                    Err(TryRecvError::Empty) => return Ok(None),
                    Err(TryRecvError::Disconnected) => return Err(TransportError::Closed),
                }
            }
        }
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            match self.rx.recv_timeout(left) {
                Ok(bytes) => {
                    self.buf.extend(&bytes);
                    if let Some(frame) = self.buf.try_frame()? {
                        return Ok(Some(frame));
                    }
                    // Partial frame: keep waiting for the rest of the bytes
                    // within the same deadline.
                }
                Err(RecvTimeoutError::Timeout) => return Ok(None),
                // Any complete frame was already returned after the last
                // extend; leftover buffered bytes are a truncated tail from a
                // peer that died mid-write.
                Err(RecvTimeoutError::Disconnected) => return Err(TransportError::Closed),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::FrameKind;

    #[test]
    fn frames_round_trip_in_order() {
        let (mut a, mut b) = channel_pair();
        for seq in 0..5u64 {
            a.send(&Frame::new(FrameKind::Job, seq, vec![seq as u8; 3]))
                .unwrap();
        }
        for seq in 0..5u64 {
            let f = b.recv_timeout(Duration::from_millis(100)).unwrap().unwrap();
            assert_eq!(f.seq, seq);
            assert_eq!(f.payload, vec![seq as u8; 3]);
        }
        assert_eq!(b.recv_timeout(Duration::from_millis(1)).unwrap(), None);
    }

    #[test]
    fn both_directions_work() {
        let (mut a, mut b) = channel_pair();
        a.send(&Frame::new(FrameKind::Job, 1, vec![1])).unwrap();
        b.send(&Frame::new(FrameKind::Result, 2, vec![2])).unwrap();
        assert_eq!(
            b.recv_timeout(Duration::from_millis(100))
                .unwrap()
                .unwrap()
                .seq,
            1
        );
        assert_eq!(
            a.recv_timeout(Duration::from_millis(100))
                .unwrap()
                .unwrap()
                .seq,
            2
        );
    }

    #[test]
    fn dropped_peer_reports_closed() {
        let (mut a, b) = channel_pair();
        drop(b);
        assert_eq!(
            a.recv_timeout(Duration::from_millis(1)),
            Err(TransportError::Closed)
        );
        assert_eq!(
            a.send(&Frame::new(FrameKind::Shutdown, 0, vec![])),
            Err(TransportError::Closed)
        );
    }
}
