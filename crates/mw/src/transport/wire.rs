//! Payload schemas for job dispatch and result frames, plus the worker-side
//! registry that maps wire identifiers back to concrete stream types
//! (DESIGN.md §12).
//!
//! A job crosses the wire as `(wire_id, slot, dt, save_state bytes)`; the
//! worker reconstructs the stream with the registered `load_state`, runs the
//! exact same `extend` the master would have run, and returns
//! `(slot, dt, save_state bytes)`. Because `save_state`/`load_state` are
//! bit-exact (they carry the RNG words and the cached Marsaglia spare), the
//! returned state is bit-identical to an in-process extension — the
//! determinism contract survives the process boundary by construction.
//!
//! The registry is a closed set: worker processes can only run stream types
//! compiled into this crate's dependency closure. A stream type without a
//! `wire_id` (e.g. the water-simulation stream, whose objective cannot be
//! serialized) never reaches a worker — the backend runs it inline instead.

use stoch_eval::codec::{CodecError, Reader, Writer};
use stoch_eval::objective::SampleStream;
use stoch_eval::sampler::{EmpiricalStream, GaussianStream, HostileStream, NoisyStream};

/// A worker-side job execution failure, reported back to the master in an
/// [`Error`](super::FrameKind::Error) frame. Always a typed refusal: the
/// master re-runs the job inline from its backup, so an unsupported or
/// damaged job costs a round-trip, never correctness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The job named a wire id this worker's registry does not know.
    UnknownWireId(String),
    /// The job or state payload failed to decode.
    Codec(CodecError),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::UnknownWireId(id) => write!(f, "unknown stream wire id {id:?}"),
            WireError::Codec(e) => write!(f, "wire payload decode failed: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<CodecError> for WireError {
    fn from(e: CodecError) -> Self {
        WireError::Codec(e)
    }
}

/// A decoded job payload.
#[derive(Debug, Clone, PartialEq)]
pub struct WireJob {
    /// Stream-type identifier (see `SampleStream::wire_id`).
    pub wire_id: String,
    /// Caller-side slot index, echoed back unchanged.
    pub slot: u64,
    /// Virtual duration to extend by.
    pub dt: f64,
    /// `save_state` bytes of the stream to extend.
    pub state: Vec<u8>,
}

/// A decoded result payload.
#[derive(Debug, Clone, PartialEq)]
pub struct WireResult {
    /// Slot echoed from the job.
    pub slot: u64,
    /// Duration echoed from the job.
    pub dt: f64,
    /// `save_state` bytes of the extended stream.
    pub state: Vec<u8>,
}

/// Encode a job payload.
pub fn encode_job(wire_id: &str, slot: u64, dt: f64, state: &[u8]) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_bytes(wire_id.as_bytes());
    w.put_u64(slot);
    w.put_f64(dt);
    w.put_bytes(state);
    w.into_bytes()
}

/// Decode a job payload.
pub fn decode_job(payload: &[u8]) -> Result<WireJob, CodecError> {
    let mut r = Reader::new(payload);
    let id_bytes = r.take_bytes()?;
    let wire_id = std::str::from_utf8(id_bytes)
        .map_err(|_| CodecError::Invalid { what: "wire id" })?
        .to_string();
    let job = WireJob {
        wire_id,
        slot: r.take_u64()?,
        dt: r.take_f64()?,
        state: r.take_bytes()?.to_vec(),
    };
    r.finish()?;
    Ok(job)
}

/// Encode a result payload.
pub fn encode_result(slot: u64, dt: f64, state: &[u8]) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(slot);
    w.put_f64(dt);
    w.put_bytes(state);
    w.into_bytes()
}

/// Decode a result payload.
pub fn decode_result(payload: &[u8]) -> Result<WireResult, CodecError> {
    let mut r = Reader::new(payload);
    let res = WireResult {
        slot: r.take_u64()?,
        dt: r.take_f64()?,
        state: r.take_bytes()?.to_vec(),
    };
    r.finish()?;
    Ok(res)
}

/// Load a stream of type `S` from `state`, extend it by `dt`, and return its
/// re-serialized state — the generic kernel behind every registry entry.
fn extend_as<S: SampleStream>(dt: f64, state: &[u8]) -> Result<Vec<u8>, WireError> {
    let mut r = Reader::new(state);
    let mut stream = S::load_state(&mut r)?;
    r.finish()?;
    stream.extend(dt);
    let mut w = Writer::new();
    stream.save_state(&mut w)?;
    Ok(w.into_bytes())
}

/// Execute one job payload against the registry: decode, dispatch on the
/// wire id, and return the encoded result payload.
pub fn execute_job(payload: &[u8]) -> Result<Vec<u8>, WireError> {
    let job = decode_job(payload)?;
    let state = match job.wire_id.as_str() {
        "gaussian.v1" => extend_as::<GaussianStream>(job.dt, &job.state)?,
        "empirical.v1" => extend_as::<EmpiricalStream>(job.dt, &job.state)?,
        "noisy.v1" => extend_as::<NoisyStream>(job.dt, &job.state)?,
        "hostile.v1" => extend_as::<HostileStream>(job.dt, &job.state)?,
        _ => return Err(WireError::UnknownWireId(job.wire_id)),
    };
    Ok(encode_result(job.slot, job.dt, &state))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state_of<S: SampleStream>(s: &S) -> Vec<u8> {
        let mut w = Writer::new();
        s.save_state(&mut w).unwrap();
        w.into_bytes()
    }

    #[test]
    fn job_and_result_payloads_round_trip() {
        let job_bytes = encode_job("gaussian.v1", 3, 2.5, b"sss");
        let job = decode_job(&job_bytes).unwrap();
        assert_eq!(job.wire_id, "gaussian.v1");
        assert_eq!(job.slot, 3);
        assert_eq!(job.dt, 2.5);
        assert_eq!(job.state, b"sss");

        let res_bytes = encode_result(3, 2.5, b"ttt");
        let res = decode_result(&res_bytes).unwrap();
        assert_eq!(res.slot, 3);
        assert_eq!(res.state, b"ttt");
    }

    #[test]
    fn truncated_payloads_are_typed_errors() {
        let bytes = encode_job("noisy.v1", 0, 1.0, b"state");
        for cut in 0..bytes.len() {
            assert!(decode_job(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        let bytes = encode_result(0, 1.0, b"state");
        for cut in 0..bytes.len() {
            assert!(decode_result(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn registry_executes_bit_identically_to_inline() {
        let mut local = GaussianStream::new(4.0, 3.0, 77);
        local.extend(1.5); // season the RNG (leaves a cached spare)
        let shipped = state_of(&local);
        let dt = 2.25;

        let payload = encode_job("gaussian.v1", 9, dt, &shipped);
        let result = decode_result(&execute_job(&payload).unwrap()).unwrap();
        assert_eq!(result.slot, 9);

        local.extend(dt); // the inline continuation
        assert_eq!(
            result.state,
            state_of(&local),
            "wire execution must be bit-identical to inline"
        );
    }

    #[test]
    fn unknown_wire_id_is_refused() {
        let payload = encode_job("martian.v9", 0, 1.0, b"");
        assert!(matches!(
            execute_job(&payload),
            Err(WireError::UnknownWireId(_))
        ));
    }

    #[test]
    fn damaged_state_is_refused_not_guessed() {
        let s = GaussianStream::new(1.0, 1.0, 1);
        let mut state = state_of(&s);
        state.truncate(state.len() - 3);
        let payload = encode_job("gaussian.v1", 0, 1.0, &state);
        assert!(matches!(execute_job(&payload), Err(WireError::Codec(_))));
    }
}
