//! [`Transport`] over a connected Unix-domain socket — the real wire between
//! the master and a worker *process*.
//!
//! The socket is a byte stream with no message boundaries, so the receive
//! side reassembles frames with [`FrameBuffer`] across arbitrarily split
//! reads. Worker death shows up here as EOF (`read` returning 0) or a broken
//! pipe on write, both surfaced as [`TransportError::Closed`] — the
//! process-level analogue of the channel-disconnect signal the threaded pool
//! uses for death detection.

use super::{Frame, FrameBuffer, Transport, TransportError};
use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::time::{Duration, Instant};

/// The floor for `set_read_timeout`: zero means "block forever" to the OS,
/// which is the opposite of what a zero remaining deadline wants.
const MIN_READ_TIMEOUT: Duration = Duration::from_millis(1);

/// One endpoint of a Unix-domain socket link.
pub struct SocketTransport {
    stream: UnixStream,
    buf: FrameBuffer,
    /// Scratch for `read` calls.
    chunk: [u8; 64 * 1024],
}

impl SocketTransport {
    /// Wrap a connected stream. The stream is switched to blocking mode with
    /// per-call read timeouts managed by [`recv_timeout`](Transport::recv_timeout).
    pub fn new(stream: UnixStream) -> std::io::Result<Self> {
        stream.set_nonblocking(false)?;
        Ok(SocketTransport {
            stream,
            buf: FrameBuffer::new(),
            chunk: [0u8; 64 * 1024],
        })
    }

    /// Connect to a listening socket at `path`.
    pub fn connect(path: &std::path::Path) -> std::io::Result<Self> {
        SocketTransport::new(UnixStream::connect(path)?)
    }

    fn map_io(e: std::io::Error) -> TransportError {
        match e.kind() {
            std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::UnexpectedEof => TransportError::Closed,
            kind => TransportError::Io(kind),
        }
    }

    /// Drain everything the kernel has buffered without blocking, then try
    /// to assemble a frame. This is the fast path for pools multiplexing
    /// many links: polling a quiet link costs one `read` returning
    /// `WouldBlock`, not a timed wait.
    fn recv_nonblocking(&mut self) -> Result<Option<Frame>, TransportError> {
        self.stream.set_nonblocking(true).map_err(Self::map_io)?;
        let mut status = Ok(());
        loop {
            match self.stream.read(&mut self.chunk) {
                Ok(0) => {
                    status = Err(TransportError::Closed);
                    break;
                }
                Ok(n) => self.buf.extend(&self.chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    status = Err(Self::map_io(e));
                    break;
                }
            }
        }
        let _ = self.stream.set_nonblocking(false);
        match self.buf.try_frame()? {
            // Deliver a buffered frame even when the peer also closed; the
            // next call reports the hangup.
            Some(frame) => Ok(Some(frame)),
            None => status.map(|()| None),
        }
    }
}

impl Transport for SocketTransport {
    fn send(&mut self, frame: &Frame) -> Result<(), TransportError> {
        self.stream.write_all(&frame.encode()).map_err(Self::map_io)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Frame>, TransportError> {
        if let Some(frame) = self.buf.try_frame()? {
            return Ok(Some(frame));
        }
        if timeout.is_zero() {
            return self.recv_nonblocking();
        }
        let deadline = Instant::now() + timeout;
        loop {
            let left = deadline
                .saturating_duration_since(Instant::now())
                .max(MIN_READ_TIMEOUT);
            self.stream
                .set_read_timeout(Some(left))
                .map_err(Self::map_io)?;
            match self.stream.read(&mut self.chunk) {
                Ok(0) => return Err(TransportError::Closed),
                Ok(n) => {
                    self.buf.extend(&self.chunk[..n]);
                    if let Some(frame) = self.buf.try_frame()? {
                        return Ok(Some(frame));
                    }
                    // Partial frame; keep reading within the deadline.
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if Instant::now() >= deadline {
                        return Ok(None);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(Self::map_io(e)),
            }
            if Instant::now() >= deadline && self.buf.try_frame()?.is_none() {
                return Ok(None);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::FrameKind;

    fn socket_pair() -> (SocketTransport, SocketTransport) {
        let (a, b) = UnixStream::pair().unwrap();
        (
            SocketTransport::new(a).unwrap(),
            SocketTransport::new(b).unwrap(),
        )
    }

    #[test]
    fn frames_cross_the_socket() {
        let (mut a, mut b) = socket_pair();
        a.send(&Frame::new(FrameKind::Job, 7, vec![1, 2, 3]))
            .unwrap();
        let f = b.recv_timeout(Duration::from_secs(1)).unwrap().unwrap();
        assert_eq!(f.seq, 7);
        assert_eq!(f.payload, vec![1, 2, 3]);
        assert_eq!(b.recv_timeout(Duration::from_millis(5)).unwrap(), None);
    }

    #[test]
    fn split_writes_reassemble() {
        let (a, mut b) = socket_pair();
        let frame = Frame::new(FrameKind::Result, 9, vec![0xAB; 100]);
        let bytes = frame.encode();
        let mut raw = a.stream.try_clone().unwrap();
        let t = std::thread::spawn(move || {
            for chunk in bytes.chunks(7) {
                raw.write_all(chunk).unwrap();
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        let got = b.recv_timeout(Duration::from_secs(5)).unwrap().unwrap();
        t.join().unwrap();
        assert_eq!(got, frame);
    }

    #[test]
    fn peer_hangup_is_closed() {
        let (a, mut b) = socket_pair();
        drop(a);
        assert_eq!(
            b.recv_timeout(Duration::from_millis(10)),
            Err(TransportError::Closed)
        );
    }

    #[test]
    fn zero_timeout_is_a_nonblocking_poll() {
        let (mut a, mut b) = socket_pair();
        let t0 = Instant::now();
        assert_eq!(b.recv_timeout(Duration::ZERO).unwrap(), None);
        assert!(t0.elapsed() < Duration::from_millis(20));
        a.send(&Frame::new(FrameKind::Job, 1, vec![9])).unwrap();
        // Unix-socket writes land synchronously, but give slow CI a beat.
        std::thread::sleep(Duration::from_millis(2));
        let f = b.recv_timeout(Duration::ZERO).unwrap().unwrap();
        assert_eq!(f.seq, 1);
    }

    #[test]
    fn corrupt_bytes_are_typed() {
        let (a, mut b) = socket_pair();
        let mut raw = a.stream.try_clone().unwrap();
        raw.write_all(&[0xFF; 64]).unwrap();
        assert!(matches!(
            b.recv_timeout(Duration::from_millis(50)),
            Err(TransportError::Corrupt(_))
        ));
    }
}
