//! The transport seam under [`crate::comm`]: how master and workers exchange
//! frames (DESIGN.md §12).
//!
//! The paper's MW deployment runs master and workers as separate MPI ranks
//! on a cluster; everything in this workspace so far substitutes threads and
//! channels. This module cuts that substitution at a seam: a [`Transport`]
//! moves opaque [`Frame`]s between a master endpoint and one worker
//! endpoint, and two implementations are provided —
//!
//! * [`ChannelTransport`] — the existing in-process story: frames travel as
//!   encoded bytes over a `crossbeam` channel pair (the codec still runs, so
//!   the wire format is exercised without any OS plumbing);
//! * [`SocketTransport`] — a Unix-domain socket to a real worker *process*
//!   spawned by [`ProcessPool`], which is how `BENCH_dist.json` shows
//!   scale-up past a single process's thread count.
//!
//! The frame format reuses the PR-5 checkpoint codec (`stoch-eval::codec`):
//! little-endian fields, `f64` as raw bits, length-prefixed payloads, and a
//! trailing CRC-32 — see [`frame`]. Stream state crosses the wire via
//! `SampleStream::save_state`/`load_state`, which are bit-exact, so a job
//! executed in another process returns the same bits the calling thread
//! would have produced; see [`wire`].
//!
//! Network chaos is injected master-side by [`FaultedTransport`], driven by
//! the `netdelay`/`netdrop`/`partition`/`reorder` directives of
//! [`crate::faults::FaultPlan`]. Lost frames are recovered by the
//! per-attempt timeout + retry machinery in [`ProcessBackend`], which
//! re-dispatches from master-side stream backups exactly like the threaded
//! backend — so every survivable fault plan is invisible in the results.

pub mod frame;
pub mod inproc;
pub mod process;
pub mod socket;
pub mod wire;
pub mod worker;

pub use frame::{Frame, FrameBuffer, FrameError, FrameKind, WIRE_VERSION};
pub use inproc::{channel_pair, ChannelTransport};
pub use process::{ProcessBackend, ProcessPool};
pub use socket::SocketTransport;

use crate::faults::NetFault;
use std::time::Duration;

/// A transport-layer failure. Corruption is always *typed* — a damaged
/// frame can make a link unusable, never a silently wrong sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The peer is gone: socket EOF, broken pipe, or a dropped channel.
    /// For a worker link this is the process-level analogue of
    /// [`crate::pool::WorkerLost`].
    Closed,
    /// An I/O error other than disconnection.
    Io(std::io::ErrorKind),
    /// The byte stream failed frame validation (bad magic, version, CRC,
    /// ...). The link is desynchronized and must be torn down; the master
    /// recovers by respawning the worker and retrying from backups.
    Corrupt(FrameError),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Closed => write!(f, "transport peer disconnected"),
            TransportError::Io(kind) => write!(f, "transport I/O error: {kind:?}"),
            TransportError::Corrupt(e) => write!(f, "corrupt frame on transport: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<FrameError> for TransportError {
    fn from(e: FrameError) -> Self {
        TransportError::Corrupt(e)
    }
}

/// Moves frames between one master endpoint and one worker endpoint.
///
/// Implementations deliver frames reliably and in order on a healthy link
/// (both sides of the seam are stream-oriented); unreliability is modelled
/// explicitly by [`FaultedTransport`], and recovery lives one layer up in
/// [`ProcessBackend`]'s retry loop.
pub trait Transport: Send {
    /// Send one frame. [`TransportError::Closed`] when the peer is gone.
    fn send(&mut self, frame: &Frame) -> Result<(), TransportError>;

    /// Receive the next frame, waiting at most `timeout`. `Ok(None)` on
    /// timeout (the link is healthy, nothing arrived yet).
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Frame>, TransportError>;
}

impl<T: Transport + ?Sized> Transport for Box<T> {
    fn send(&mut self, frame: &Frame) -> Result<(), TransportError> {
        (**self).send(frame)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Frame>, TransportError> {
        (**self).recv_timeout(timeout)
    }
}

/// Wraps a transport with outbound [`NetFault`] injection: delayed, dropped,
/// partitioned (black-holed window), or reordered sends. Inbound frames are
/// untouched — the partition is *half-open*, the nastier case for a master
/// that must decide whether a silent worker is dead or unreachable.
pub struct FaultedTransport<T> {
    inner: T,
    net: NetFault,
    sent: u64,
    /// A frame held back by `reorder`: delivered after the next send. If no
    /// further send happens it is never delivered — a reorder at the tail of
    /// a burst degenerates to a drop, which the retry layer absorbs.
    held: Option<Frame>,
}

impl<T: Transport> FaultedTransport<T> {
    /// Wrap `inner`, injecting `net` on outbound frames (counted from the
    /// next send).
    pub fn new(inner: T, net: NetFault) -> Self {
        FaultedTransport {
            inner,
            net,
            sent: 0,
            held: None,
        }
    }

    /// Outbound frames attempted so far (including swallowed ones).
    pub fn sent(&self) -> u64 {
        self.sent
    }
}

impl<T: Transport> Transport for FaultedTransport<T> {
    fn send(&mut self, frame: &Frame) -> Result<(), TransportError> {
        let idx = self.sent;
        self.sent += 1;
        if self.net.swallows(idx) {
            // Dropped or partitioned: the bytes never leave the master. The
            // caller sees success — exactly what a lost datagram looks like.
            return Ok(());
        }
        if let Some(d) = self.net.delay_for(idx) {
            std::thread::sleep(d);
        }
        if self.net.reorder_at == Some(idx) {
            self.held = Some(frame.clone());
            return Ok(());
        }
        self.inner.send(frame)?;
        if let Some(h) = self.held.take() {
            self.inner.send(&h)?;
        }
        Ok(())
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Frame>, TransportError> {
        self.inner.recv_timeout(timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faulted_transport_drops_delays_and_reorders() {
        let (mut a, b) = channel_pair();
        let net = NetFault {
            drop_at: Some(1),
            reorder_at: Some(2),
            ..NetFault::default()
        };
        let mut faulted = FaultedTransport::new(b, net);
        for seq in 0..4u64 {
            faulted
                .send(&Frame::new(FrameKind::Job, seq, vec![seq as u8]))
                .unwrap();
        }
        // Frame 1 dropped; frame 2 held and delivered after frame 3.
        let got: Vec<u64> = std::iter::from_fn(|| {
            a.recv_timeout(Duration::from_millis(50))
                .unwrap()
                .map(|f| f.seq)
        })
        .collect();
        assert_eq!(got, vec![0, 3, 2]);
    }

    #[test]
    fn partition_black_holes_a_window() {
        let (mut a, b) = channel_pair();
        let net = NetFault {
            partition: Some((1, 2)),
            ..NetFault::default()
        };
        let mut faulted = FaultedTransport::new(b, net);
        for seq in 0..4u64 {
            faulted
                .send(&Frame::new(FrameKind::Job, seq, vec![]))
                .unwrap();
        }
        let got: Vec<u64> = std::iter::from_fn(|| {
            a.recv_timeout(Duration::from_millis(50))
                .unwrap()
                .map(|f| f.seq)
        })
        .collect();
        assert_eq!(got, vec![0, 3]);
        assert_eq!(faulted.sent(), 4);
    }
}
