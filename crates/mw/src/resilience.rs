//! Resilience policies for the master–worker layer (DESIGN.md §16):
//! straggler hedging, heartbeat liveness, and jittered respawn backoff.
//!
//! The paper's MW deployment assumes workers answer eventually and at
//! roughly uniform latency; at service scale a single slow worker stalls
//! every run rendezvoused into the shared batch. Three policies close that
//! gap without touching the determinism contract:
//!
//! * [`HedgePolicy`] — when a job's in-flight latency exceeds a
//!   quantile-tracked threshold (a [`P2Quantile`] estimator over completed
//!   job latencies, not a fixed timeout), the backend speculatively
//!   re-dispatches the same stream clone to a second worker and takes the
//!   first answer. Retries are already bit-identical by RNG-state carry, so
//!   first-wins cannot change results — only tail latency.
//! * [`HeartbeatPolicy`] — the process transport exchanges periodic
//!   Ping/Pong frames so a half-dead socket is detected even between jobs,
//!   and a stalled worker is buried before it wedges a rendezvous.
//! * [`BackoffPolicy`] — repeated respawns of the same worker slot are
//!   deferred by a deterministically-jittered exponential delay instead of
//!   thundering-herd respawning into a dying host. The first respawn of a
//!   slot is always immediate (a one-off crash costs nothing extra).
//!
//! All three parse from the environment (`NSX_HEDGE`, `NSX_HEARTBEAT`,
//! `NSX_RESPAWN_BACKOFF`) with the same `keyword:key=value` grammar as
//! `NSX_BREAKDOWN`.

use std::time::Duration;

// ---------------------------------------------------------------------------
// P² online quantile estimation
// ---------------------------------------------------------------------------

/// The P² (piecewise-parabolic) online quantile estimator of Jain &
/// Chlamtac (CACM 1985): tracks a single quantile of a stream in O(1)
/// space with five markers, no sample buffer.
///
/// Used by the hedging layer to estimate the p-quantile of observed job
/// latencies; the estimate is heuristic (it gates *when* to hedge, never
/// *what* a result is), so its approximation error is harmless to the
/// determinism contract.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    /// The target quantile in (0, 1).
    q: f64,
    /// Marker heights (estimated quantile values), ascending.
    heights: [f64; 5],
    /// Actual marker positions (1-based ranks).
    pos: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Per-observation increments of the desired positions.
    inc: [f64; 5],
    /// Observations ingested so far.
    count: u64,
}

impl P2Quantile {
    /// Estimator for quantile `q`, clamped into (0.01, 0.99).
    pub fn new(q: f64) -> Self {
        let q = q.clamp(0.01, 0.99);
        P2Quantile {
            q,
            heights: [0.0; 5],
            pos: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            inc: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        }
    }

    /// Observations ingested so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The quantile this estimator tracks.
    pub fn quantile(&self) -> f64 {
        self.q
    }

    /// Ingest one observation. Non-finite values are ignored (they carry no
    /// latency information and would poison the markers).
    pub fn observe(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        if self.count < 5 {
            // Bootstrap: collect the first five observations sorted.
            let n = self.count as usize;
            self.heights[n] = x;
            self.count += 1;
            let live = &mut self.heights[..self.count as usize];
            live.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            return;
        }
        self.count += 1;
        // Find the cell k such that heights[k] <= x < heights[k+1],
        // extending the extreme markers when x falls outside them.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if self.heights[i] <= x {
                    k = i;
                }
            }
            k
        };
        for p in self.pos.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, i) in self.desired.iter_mut().zip(self.inc) {
            *d += i;
        }
        // Adjust the three interior markers toward their desired positions
        // with the piecewise-parabolic (fall back: linear) formula.
        for i in 1..4 {
            let d = self.desired[i] - self.pos[i];
            let right = self.pos[i + 1] - self.pos[i];
            let left = self.pos[i - 1] - self.pos[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let d = d.signum();
                let h = self.parabolic(i, d);
                self.heights[i] = if self.heights[i - 1] < h && h < self.heights[i + 1] {
                    h
                } else {
                    self.linear(i, d)
                };
                self.pos[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (n, h) = (&self.pos, &self.heights);
        h[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i] + d * (self.heights[j] - self.heights[i]) / (self.pos[j] - self.pos[i])
    }

    /// Current estimate of the tracked quantile; `None` until five
    /// observations have been ingested.
    pub fn estimate(&self) -> Option<f64> {
        if self.count >= 5 {
            Some(self.heights[2])
        } else {
            None
        }
    }
}

// ---------------------------------------------------------------------------
// Hedged re-dispatch policy
// ---------------------------------------------------------------------------

/// When to speculatively re-dispatch a slow in-flight job (DESIGN.md §16).
///
/// A job is hedged once its in-flight latency exceeds
/// `max(quantile_estimate × factor, min_delay)`, where the quantile
/// estimate is a [`P2Quantile`] over completed job latencies. No hedges
/// launch until `warmup` jobs have completed (the estimator needs data,
/// and cold pools have unrepresentative latencies).
///
/// Environment: `NSX_HEDGE=off` (the default) or
/// `NSX_HEDGE=on[:q=0.95][:factor=2.0][:min_ms=20][:warmup=16]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgePolicy {
    /// Master switch; everything else is ignored when false.
    pub enabled: bool,
    /// Latency quantile to track (default 0.95).
    pub quantile: f64,
    /// Multiple of the quantile estimate that triggers a hedge (default 2).
    pub factor: f64,
    /// Hedging floor: never hedge before this much in-flight time, however
    /// fast the pool looks (default 20 ms).
    pub min_delay: Duration,
    /// Completed jobs required before any hedge launches (default 16).
    pub warmup: u64,
}

impl Default for HedgePolicy {
    fn default() -> Self {
        HedgePolicy {
            enabled: false,
            quantile: 0.95,
            factor: 2.0,
            min_delay: Duration::from_millis(20),
            warmup: 16,
        }
    }
}

impl HedgePolicy {
    /// The policy selected by `NSX_HEDGE`, or the disabled default.
    pub fn from_env() -> Self {
        std::env::var("NSX_HEDGE")
            .ok()
            .and_then(|s| Self::parse(&s))
            .unwrap_or_default()
    }

    /// An enabled policy with the default knobs.
    pub fn enabled() -> Self {
        HedgePolicy {
            enabled: true,
            ..Self::default()
        }
    }

    /// Parse `off` | `on[:q=..][:factor=..][:min_ms=..][:warmup=..]`.
    pub fn parse(s: &str) -> Option<Self> {
        let mut parts = s.split(':');
        let mut p = match parts.next()? {
            "off" => return Some(HedgePolicy::default()),
            "on" => Self::enabled(),
            _ => return None,
        };
        for part in parts {
            let (key, value) = part.split_once('=')?;
            match key {
                "q" => p.quantile = value.parse().ok().filter(|q| (0.0..1.0).contains(q))?,
                "factor" => p.factor = value.parse().ok().filter(|f| *f >= 1.0)?,
                "min_ms" => p.min_delay = Duration::from_millis(value.parse().ok()?),
                "warmup" => p.warmup = value.parse().ok()?,
                _ => return None,
            }
        }
        Some(p)
    }

    /// The in-flight latency beyond which a job should be hedged, given the
    /// current quantile estimate (`None` while the estimator is cold).
    /// Returns `None` when hedging is off or still warming up.
    pub fn hedge_after(&self, completed: u64, quantile_secs: Option<f64>) -> Option<Duration> {
        if !self.enabled || completed < self.warmup {
            return None;
        }
        let est = quantile_secs?;
        if !est.is_finite() || est < 0.0 {
            return None;
        }
        Some(Duration::from_secs_f64(est * self.factor).max(self.min_delay))
    }
}

// ---------------------------------------------------------------------------
// Heartbeat liveness policy
// ---------------------------------------------------------------------------

/// Ping/Pong liveness for the process transport (DESIGN.md §16).
///
/// The master sends a `Ping` frame to an idle link after `interval` without
/// traffic; a worker that fails to `Pong` within `timeout` is buried and
/// respawned. Any received frame counts as liveness, so busy links are
/// never pinged.
///
/// Environment: `NSX_HEARTBEAT=off` or
/// `NSX_HEARTBEAT=on[:interval_ms=1000][:timeout_ms=3000]` (on by default).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeartbeatPolicy {
    /// Master switch.
    pub enabled: bool,
    /// Quiet time after which a Ping is sent.
    pub interval: Duration,
    /// Time after an unanswered Ping at which the link is declared dead.
    pub timeout: Duration,
}

impl Default for HeartbeatPolicy {
    fn default() -> Self {
        HeartbeatPolicy {
            enabled: true,
            interval: Duration::from_millis(1000),
            timeout: Duration::from_millis(3000),
        }
    }
}

impl HeartbeatPolicy {
    /// The policy selected by `NSX_HEARTBEAT`, or the enabled default.
    pub fn from_env() -> Self {
        std::env::var("NSX_HEARTBEAT")
            .ok()
            .and_then(|s| Self::parse(&s))
            .unwrap_or_default()
    }

    /// Parse `off` | `on[:interval_ms=..][:timeout_ms=..]`.
    pub fn parse(s: &str) -> Option<Self> {
        let mut parts = s.split(':');
        let mut p = match parts.next()? {
            "off" => {
                return Some(HeartbeatPolicy {
                    enabled: false,
                    ..Self::default()
                })
            }
            "on" => Self::default(),
            _ => return None,
        };
        for part in parts {
            let (key, value) = part.split_once('=')?;
            match key {
                "interval_ms" => p.interval = Duration::from_millis(value.parse().ok()?),
                "timeout_ms" => p.timeout = Duration::from_millis(value.parse().ok()?),
                _ => return None,
            }
        }
        Some(p)
    }
}

// ---------------------------------------------------------------------------
// Jittered exponential respawn backoff
// ---------------------------------------------------------------------------

/// Deferral schedule for repeated respawns of one worker slot
/// (DESIGN.md §16).
///
/// The first respawn of a slot is immediate — a one-off crash should cost
/// nothing beyond the lost attempt. From the second respawn on, the slot
/// waits `base × 2^(k-2)` (capped at `cap`) scaled by a deterministic
/// jitter in `[0.5, 1.5)` seeded from `(slot, incarnation)`, so a host
/// killing workers in a loop sees staggered, slowing respawns rather than
/// a thundering herd. Supervision *defers* (skips the slot this pass)
/// rather than sleeping, so no run ever blocks on a backoff.
///
/// Environment: `NSX_RESPAWN_BACKOFF=off` or
/// `NSX_RESPAWN_BACKOFF=on[:base_ms=25][:cap_ms=2000]` (on by default).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Master switch; `off` restores the historical immediate respawn.
    pub enabled: bool,
    /// Delay before the second respawn of a slot.
    pub base: Duration,
    /// Upper bound on any single deferral.
    pub cap: Duration,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            enabled: true,
            base: Duration::from_millis(25),
            cap: Duration::from_millis(2000),
        }
    }
}

impl BackoffPolicy {
    /// The policy selected by `NSX_RESPAWN_BACKOFF`, or the enabled default.
    pub fn from_env() -> Self {
        std::env::var("NSX_RESPAWN_BACKOFF")
            .ok()
            .and_then(|s| Self::parse(&s))
            .unwrap_or_default()
    }

    /// Parse `off` | `on[:base_ms=..][:cap_ms=..]`.
    pub fn parse(s: &str) -> Option<Self> {
        let mut parts = s.split(':');
        let mut p = match parts.next()? {
            "off" => {
                return Some(BackoffPolicy {
                    enabled: false,
                    ..Self::default()
                })
            }
            "on" => Self::default(),
            _ => return None,
        };
        for part in parts {
            let (key, value) = part.split_once('=')?;
            match key {
                "base_ms" => p.base = Duration::from_millis(value.parse().ok()?),
                "cap_ms" => p.cap = Duration::from_millis(value.parse().ok()?),
                _ => return None,
            }
        }
        Some(p)
    }

    /// The deferral before respawn number `respawn` (1-based) of `slot`.
    /// `Duration::ZERO` for the first respawn or when disabled.
    pub fn delay_for(&self, slot: usize, respawn: u32) -> Duration {
        if !self.enabled || respawn <= 1 {
            return Duration::ZERO;
        }
        let exp = (respawn - 2).min(20);
        let raw = self.base.saturating_mul(1u32 << exp).min(self.cap);
        raw.mul_f64(jitter(slot as u64, respawn as u64))
    }
}

/// Deterministic jitter factor in `[0.5, 1.5)` from a `(slot, respawn)`
/// key — a splitmix64 finalizer, so the same slot's schedule is
/// reproducible run to run while distinct slots de-synchronize.
pub fn jitter(slot: u64, respawn: u64) -> f64 {
    let mut z = slot
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(respawn)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    0.5 + (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2_tracks_known_quantiles_of_uniform_ramp() {
        // A deterministic pseudo-random permutation of 0..10_000 via a
        // multiplicative stride coprime to the length.
        let n = 10_000usize;
        for &q in &[0.5, 0.9, 0.95, 0.99] {
            let mut est = P2Quantile::new(q);
            for i in 0..n {
                let v = (i * 7919) % n;
                est.observe(v as f64);
            }
            let got = est.estimate().unwrap();
            let want = q * n as f64;
            // P² is approximate; 2% of range is ample for a uniform ramp.
            assert!(
                (got - want).abs() < 0.02 * n as f64,
                "q={q}: got {got}, want ~{want}"
            );
        }
    }

    #[test]
    fn p2_is_exactish_in_bootstrap_phase() {
        let mut est = P2Quantile::new(0.5);
        assert_eq!(est.estimate(), None);
        for v in [5.0, 1.0, 4.0, 2.0, 3.0] {
            est.observe(v);
        }
        // Five sorted observations: the middle marker is the exact median.
        assert_eq!(est.estimate(), Some(3.0));
    }

    #[test]
    fn p2_ignores_nonfinite() {
        let mut est = P2Quantile::new(0.9);
        est.observe(f64::NAN);
        est.observe(f64::INFINITY);
        assert_eq!(est.count(), 0);
    }

    #[test]
    fn hedge_parse_grammar() {
        assert_eq!(HedgePolicy::parse("off"), Some(HedgePolicy::default()));
        assert_eq!(HedgePolicy::parse("on"), Some(HedgePolicy::enabled()));
        let p = HedgePolicy::parse("on:q=0.9:factor=3:min_ms=5:warmup=2").unwrap();
        assert!(p.enabled);
        assert_eq!(p.quantile, 0.9);
        assert_eq!(p.factor, 3.0);
        assert_eq!(p.min_delay, Duration::from_millis(5));
        assert_eq!(p.warmup, 2);
        assert_eq!(HedgePolicy::parse("on:q=1.5"), None);
        assert_eq!(HedgePolicy::parse("on:factor=0.5"), None);
        assert_eq!(HedgePolicy::parse("maybe"), None);
        assert_eq!(HedgePolicy::parse("on:bogus=1"), None);
    }

    #[test]
    fn hedge_threshold_respects_warmup_floor_and_factor() {
        let p = HedgePolicy::parse("on:q=0.95:factor=2:min_ms=20:warmup=4").unwrap();
        // Cold: no hedging.
        assert_eq!(p.hedge_after(3, Some(0.1)), None);
        // Warm, healthy estimate: factor × estimate.
        assert_eq!(
            p.hedge_after(10, Some(0.1)),
            Some(Duration::from_secs_f64(0.2))
        );
        // Tiny estimate: the floor wins.
        assert_eq!(
            p.hedge_after(10, Some(1e-6)),
            Some(Duration::from_millis(20))
        );
        // No estimate yet: no hedging.
        assert_eq!(p.hedge_after(10, None), None);
        // Disabled: never.
        assert_eq!(HedgePolicy::default().hedge_after(100, Some(0.1)), None);
    }

    #[test]
    fn heartbeat_parse_grammar() {
        let off = HeartbeatPolicy::parse("off").unwrap();
        assert!(!off.enabled);
        let p = HeartbeatPolicy::parse("on:interval_ms=100:timeout_ms=250").unwrap();
        assert!(p.enabled);
        assert_eq!(p.interval, Duration::from_millis(100));
        assert_eq!(p.timeout, Duration::from_millis(250));
        assert_eq!(HeartbeatPolicy::parse("on:bogus=1"), None);
        assert_eq!(HeartbeatPolicy::parse(""), None);
    }

    #[test]
    fn backoff_first_respawn_is_free_then_grows_to_cap() {
        let p = BackoffPolicy::parse("on:base_ms=10:cap_ms=100").unwrap();
        assert_eq!(p.delay_for(0, 1), Duration::ZERO);
        let d2 = p.delay_for(0, 2);
        let d5 = p.delay_for(0, 5);
        // Jitter is in [0.5, 1.5): bounds scale accordingly.
        assert!(d2 >= Duration::from_millis(5) && d2 < Duration::from_millis(15));
        // 10ms × 2^3 = 80ms, jittered within [40, 120) but capped pre-jitter
        // at 100 → [50, 150).
        assert!(d5 >= Duration::from_millis(40) && d5 < Duration::from_millis(150));
        // Far future respawns are capped, not overflowing.
        assert!(p.delay_for(0, 60) <= Duration::from_millis(150));
        // Disabled: always immediate.
        let off = BackoffPolicy::parse("off").unwrap();
        assert_eq!(off.delay_for(0, 7), Duration::ZERO);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        for slot in 0..16u64 {
            for r in 0..16u64 {
                let a = jitter(slot, r);
                let b = jitter(slot, r);
                assert_eq!(a, b);
                assert!((0.5..1.5).contains(&a), "jitter {a} out of range");
            }
        }
        // Distinct keys de-synchronize.
        assert_ne!(jitter(0, 2), jitter(1, 2));
    }
}
